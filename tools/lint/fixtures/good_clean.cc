// Clean fixture for the sb7-lint selftest: exercises every rule's *pass*
// path and must produce zero findings.

#include <atomic>

struct TxCommitInfo;

struct Observer {
  virtual void OnTxCommit(const TxCommitInfo&) noexcept = 0;
  virtual ~Observer() = default;
};

struct Careful : Observer {
  void OnTxCommit(const TxCommitInfo&) noexcept override;
};

struct Field {
  // raw-ok: fixture stand-in for the seam declaration itself.
  unsigned long LoadRaw() const { return 0; }
};

std::atomic<int> counter{0};

int Disciplined(Field& field) {
  // mo: relaxed — statistical counter, no ordering needed.
  counter.fetch_add(1, std::memory_order_relaxed);
  // raw-ok: fixture demonstrating an annotated out-of-seam read.
  return static_cast<int>(field.LoadRaw());
}
