// Seeded-bad fixture for sb7-lint R2 (raw Field access scope). Never
// compiled — the selftest treats this file as living outside src/stm/ and
// src/mvstm/ and expects an R2 finding for the unannotated raw access.

struct Field {
  unsigned long LoadRaw() const { return 0; }
  void StoreRaw(unsigned long) {}
};

unsigned long SneakPastTheSeam(Field& field) {
  field.StoreRaw(7);       // raw store outside the seam, no raw-ok: annotation
  return field.LoadRaw();  // same
}
