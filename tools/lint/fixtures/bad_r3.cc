// Seeded-bad fixture for sb7-lint R3 (TxObserver callbacks noexcept).
// Never compiled — the selftest expects an R3 finding for the throwing
// override.

struct TxCommitInfo;

struct Observer {
  virtual void OnTxCommit(const TxCommitInfo&) noexcept = 0;
  virtual ~Observer() = default;
};

struct Sloppy : Observer {
  void OnTxCommit(const TxCommitInfo&) override;  // missing noexcept
};
