// Seeded-bad fixture for sb7-lint R1 (atomics discipline). Never compiled —
// the lint selftest runs the rule engines over this text and expects at
// least two R1 findings.

#include <atomic>

std::atomic<int> counter{0};

void DefaultedSeqCst() {
  counter.store(1);          // no memory_order named: defaulted seq_cst
  (void)counter.load();      // same
}

void OrderWithoutRationale() {
  counter.fetch_add(1, std::memory_order_relaxed);  // names an order but no rationale
}
