// sb7-lint: in-tree source checker for the STM-specific rules the compiler
// cannot enforce. No dependencies beyond the standard library; wired into
// ctest as `lint` (the tree must be clean) and `lint_selftest` (the seeded
// bad fixtures under tools/lint/fixtures/ must trip every rule).
//
// Rules:
//   R1  atomics discipline — in src/stm, src/mvstm, src/trace,
//       src/telemetry and src/net every atomic
//       member op (.load/.store/.exchange/.fetch_*/.compare_exchange_*)
//       must name a memory_order (no defaulted seq_cst) and carry a
//       `// mo:` rationale on the same line or within the 6 preceding ones.
//   R2  seam scope — raw Field storage access (LoadRaw, StoreRaw,
//       LoadMvHistory, StoreMvHistory) is only allowed inside src/stm/ and
//       src/mvstm/ (the Tx API seam and the backends behind it). Sites
//       elsewhere need a `// raw-ok: <reason>` annotation nearby.
//   R3  observer contract — TxObserver callback overrides must be noexcept
//       (callbacks run inside commit/abort paths; an escaping exception
//       would unwind through backend code holding stripe locks).
//   R4  schema drift — the StmStats X-macro field list, kCsvSchemaVersion,
//       kBenchSchemaVersion, kTelemetrySchemaVersion and
//       kRedoLogFormatVersion must match tools/lint/schema.lock; adding a
//       counter or changing an artifact layout without bumping the consumer
//       schema (and the lock) is the exact drift this catches. The redo-log
//       pin matters doubly: old logs must stay replayable after a crash.
//       Refresh the lock deliberately with `sb7-lint --update-schema-lock`.
//
// Exit codes: 0 clean, 1 findings, 2 usage/environment error.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#if __has_include(<filesystem>)
#include <filesystem>
namespace fs = std::filesystem;
#else
#error "sb7-lint needs <filesystem>"
#endif

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string label;               // path as reported in findings
  std::vector<std::string> raw;    // verbatim lines (comments intact)
  std::vector<std::string> code;   // comments and literals blanked out
};

// --- tokenizer-lite: blank out comments and string/char literals ----------

std::vector<std::string> StripNonCode(const std::vector<std::string>& raw) {
  std::vector<std::string> code;
  code.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string out(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // rest of the line is a comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            out[i] = quote;
            break;
          }
          ++i;
        }
        continue;
      }
      out[i] = c;
    }
    code.push_back(std::move(out));
  }
  return code;
}

std::optional<SourceFile> LoadFile(const fs::path& path, const std::string& label) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  SourceFile file;
  file.label = label;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    file.raw.push_back(line);
  }
  file.code = StripNonCode(file.raw);
  return file;
}

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Finds `name` as a whole identifier in `text`, starting at `from`.
size_t FindIdent(const std::string& text, const std::string& name, size_t from) {
  size_t pos = from;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      return pos;
    }
    pos = end;
  }
  return std::string::npos;
}

// Collects the balanced-paren argument text of a call whose '(' is at
// code[line][open], spanning at most `max_lines` lines.
std::string CallArgs(const std::vector<std::string>& code, size_t line, size_t open,
                     size_t max_lines = 8) {
  std::string args;
  int depth = 0;
  for (size_t l = line; l < code.size() && l < line + max_lines; ++l) {
    const std::string& text = code[l];
    for (size_t i = (l == line ? open : 0); i < text.size(); ++i) {
      if (text[i] == '(') {
        ++depth;
        if (depth == 1) {
          continue;
        }
      } else if (text[i] == ')') {
        --depth;
        if (depth == 0) {
          return args;
        }
      }
      if (depth >= 1) {
        args.push_back(text[i]);
      }
    }
    args.push_back(' ');
  }
  return args;  // unbalanced within the window; caller treats as-is
}

// True when one of raw[line-window .. line] contains a comment holding `tag`.
bool CommentNearby(const SourceFile& file, size_t line, const std::string& tag,
                   size_t window) {
  const size_t first = line >= window ? line - window : 0;
  for (size_t l = first; l <= line && l < file.raw.size(); ++l) {
    const size_t comment = file.raw[l].find("//");
    if (comment != std::string::npos &&
        file.raw[l].find(tag, comment) != std::string::npos) {
      return true;
    }
    // Block comments: anything after /* on the line counts.
    const size_t block = file.raw[l].find("/*");
    if (block != std::string::npos && file.raw[l].find(tag, block) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- R1: atomics discipline -----------------------------------------------

const char* const kAtomicOps[] = {
    "load",        "store",        "exchange",
    "fetch_add",   "fetch_sub",    "fetch_and",
    "fetch_or",    "fetch_xor",    "compare_exchange_strong",
    "compare_exchange_weak",
};

void CheckAtomicsDiscipline(const SourceFile& file, std::vector<Finding>* findings) {
  for (size_t l = 0; l < file.code.size(); ++l) {
    const std::string& text = file.code[l];
    for (const char* op : kAtomicOps) {
      size_t pos = 0;
      while ((pos = FindIdent(text, op, pos)) != std::string::npos) {
        const size_t start = pos;
        pos += std::string(op).size();
        // Member call only: preceded by '.' or '->' (skips std::exchange,
        // free functions, and declarations of same-named methods).
        const bool member =
            (start >= 1 && text[start - 1] == '.') ||
            (start >= 2 && text[start - 2] == '-' && text[start - 1] == '>');
        if (!member || pos >= text.size() || text[pos] != '(') {
          continue;
        }
        const std::string args = CallArgs(file.code, l, pos);
        if (args.find("order") == std::string::npos) {
          findings->push_back(
              {file.label, static_cast<int>(l + 1), "R1",
               std::string("atomic ") + op +
                   " defaults to seq_cst: name the memory_order explicitly"});
        } else if (!CommentNearby(file, l, "mo:", 6)) {
          findings->push_back(
              {file.label, static_cast<int>(l + 1), "R1",
               std::string("atomic ") + op +
                   " has no `// mo:` rationale on this line or the 6 above"});
        }
      }
    }
  }
}

// --- R2: raw Field access scope -------------------------------------------

const char* const kRawAccessors[] = {"LoadRaw", "StoreRaw", "LoadMvHistory",
                                     "StoreMvHistory"};

void CheckRawAccessScope(const SourceFile& file, std::vector<Finding>* findings) {
  for (size_t l = 0; l < file.code.size(); ++l) {
    const std::string& text = file.code[l];
    for (const char* accessor : kRawAccessors) {
      size_t pos = 0;
      while ((pos = FindIdent(text, accessor, pos)) != std::string::npos) {
        const size_t end = pos + std::string(accessor).size();
        pos = end;
        if (end >= text.size() || text[end] != '(') {
          continue;  // mention in a comment-stripped context, not a call
        }
        if (!CommentNearby(file, l, "raw-ok:", 2)) {
          findings->push_back(
              {file.label, static_cast<int>(l + 1), "R2",
               std::string(accessor) +
                   " outside src/stm//src/mvstm/ needs a `// raw-ok: <reason>`"});
        }
      }
    }
  }
}

// --- R3: TxObserver callbacks noexcept ------------------------------------

const char* const kObserverCallbacks[] = {
    "OnTxBegin",  "OnTxRead",      "OnTxWrite",        "OnTxCommit",
    "OnTxAbort",  "OnTxValidation", "OnTxBackoff",     "OnTxAttemptTiming",
    "OnFieldBirth", "OnRawStore",
};

void CheckObserverNoexcept(const SourceFile& file, std::vector<Finding>* findings) {
  for (size_t l = 0; l < file.code.size(); ++l) {
    const std::string& text = file.code[l];
    for (const char* callback : kObserverCallbacks) {
      const size_t pos = FindIdent(text, callback, 0);
      if (pos == std::string::npos || pos + std::string(callback).size() >= text.size() ||
          text[pos + std::string(callback).size()] != '(') {
        continue;
      }
      // Gather the declaration up to its body or terminating ';'.
      std::string decl;
      for (size_t k = l; k < file.code.size() && k < l + 8; ++k) {
        decl += file.code[k];
        decl.push_back(' ');
        if (file.code[k].find('{') != std::string::npos ||
            file.code[k].find(';') != std::string::npos) {
          break;
        }
      }
      if (FindIdent(decl, "override", 0) == std::string::npos) {
        continue;  // base-class declaration or a definition; header carries it
      }
      if (FindIdent(decl, "noexcept", 0) == std::string::npos) {
        findings->push_back({file.label, static_cast<int>(l + 1), "R3",
                             std::string(callback) +
                                 " override is not noexcept (TxObserver contract)"});
      }
    }
  }
}

// --- R4: schema drift ------------------------------------------------------

struct Schema {
  std::vector<std::string> stats_fields;
  int csv_version = -1;
  int bench_version = -1;
  int telemetry_version = -1;
  int redo_log_version = -1;
};

std::optional<int> ParseVersionConstant(const fs::path& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t pos = line.find(name);
    if (pos == std::string::npos || line.find("constexpr") == std::string::npos) {
      continue;
    }
    const size_t eq = line.find('=', pos);
    if (eq == std::string::npos) {
      continue;
    }
    return std::atoi(line.c_str() + eq + 1);
  }
  return std::nullopt;
}

std::optional<Schema> CollectSchema(const fs::path& root, std::string* error) {
  Schema schema;
  std::ifstream in(root / "src/stm/stm.h");
  if (!in) {
    *error = "cannot read src/stm/stm.h";
    return std::nullopt;
  }
  std::string line;
  bool in_macro = false;
  while (std::getline(in, line)) {
    if (!in_macro) {
      if (line.find("#define SB7_STM_STATS_FIELDS") != std::string::npos) {
        in_macro = true;
      } else {
        continue;
      }
    }
    size_t pos = 0;
    while ((pos = FindIdent(line, "X", pos)) != std::string::npos) {
      ++pos;
      if (pos >= line.size() || line[pos] != '(') {
        continue;
      }
      const size_t close = line.find(')', pos);
      if (close != std::string::npos) {
        schema.stats_fields.push_back(line.substr(pos + 1, close - pos - 1));
      }
    }
    // The macro continues while lines end in a backslash.
    std::string trimmed = line;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty() || trimmed.back() != '\\') {
      break;
    }
  }
  if (schema.stats_fields.empty()) {
    *error = "found no X(field) entries in SB7_STM_STATS_FIELDS (parser rot?)";
    return std::nullopt;
  }
  const auto csv = ParseVersionConstant(root / "src/harness/report.cc", "kCsvSchemaVersion");
  const auto bench = ParseVersionConstant(root / "src/perf/report.h", "kBenchSchemaVersion");
  const auto telemetry =
      ParseVersionConstant(root / "src/telemetry/series.h", "kTelemetrySchemaVersion");
  const auto redo =
      ParseVersionConstant(root / "src/mvstm/redo_log.h", "kRedoLogFormatVersion");
  if (!csv || !bench || !telemetry || !redo) {
    *error =
        "cannot parse kCsvSchemaVersion / kBenchSchemaVersion / "
        "kTelemetrySchemaVersion / kRedoLogFormatVersion";
    return std::nullopt;
  }
  schema.csv_version = *csv;
  schema.bench_version = *bench;
  schema.telemetry_version = *telemetry;
  schema.redo_log_version = *redo;
  return schema;
}

std::optional<Schema> ReadSchemaLock(const fs::path& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path.string() + " (run `sb7-lint --update-schema-lock`)";
    return std::nullopt;
  }
  Schema lock;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "csv_schema_version") {
      fields >> lock.csv_version;
    } else if (key == "bench_schema_version") {
      fields >> lock.bench_version;
    } else if (key == "telemetry_schema_version") {
      fields >> lock.telemetry_version;
    } else if (key == "redo_log_format_version") {
      fields >> lock.redo_log_version;
    } else if (key == "stats_fields") {
      std::string name;
      while (fields >> name) {
        lock.stats_fields.push_back(name);
      }
    } else {
      *error = "unknown key '" + key + "' in " + path.string();
      return std::nullopt;
    }
  }
  return lock;
}

bool WriteSchemaLock(const fs::path& path, const Schema& schema) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# sb7-lint schema lock. Regenerate deliberately (after bumping the\n"
         "# consumer schema versions) with: sb7-lint --update-schema-lock\n";
  out << "csv_schema_version " << schema.csv_version << "\n";
  out << "bench_schema_version " << schema.bench_version << "\n";
  out << "telemetry_schema_version " << schema.telemetry_version << "\n";
  out << "redo_log_format_version " << schema.redo_log_version << "\n";
  out << "stats_fields";
  for (const std::string& field : schema.stats_fields) {
    out << " " << field;
  }
  out << "\n";
  return static_cast<bool>(out);
}

void CompareSchemas(const Schema& lock, const Schema& current,
                    std::vector<Finding>* findings) {
  const std::string lock_file = "tools/lint/schema.lock";
  if (lock.stats_fields != current.stats_fields) {
    std::ostringstream message;
    message << "StmStats X-macro drifted from the lock (lock " << lock.stats_fields.size()
            << " fields, tree " << current.stats_fields.size()
            << "): bump kCsvSchemaVersion/kBenchSchemaVersion if the artifact layout "
               "changed, then run `sb7-lint --update-schema-lock`";
    findings->push_back({lock_file, 1, "R4", message.str()});
  }
  if (lock.csv_version != current.csv_version) {
    findings->push_back({lock_file, 1, "R4",
                         "kCsvSchemaVersion is " + std::to_string(current.csv_version) +
                             " but the lock says " + std::to_string(lock.csv_version)});
  }
  if (lock.bench_version != current.bench_version) {
    findings->push_back({lock_file, 1, "R4",
                         "kBenchSchemaVersion is " + std::to_string(current.bench_version) +
                             " but the lock says " + std::to_string(lock.bench_version)});
  }
  if (lock.telemetry_version != current.telemetry_version) {
    findings->push_back(
        {lock_file, 1, "R4",
         "kTelemetrySchemaVersion is " + std::to_string(current.telemetry_version) +
             " but the lock says " + std::to_string(lock.telemetry_version)});
  }
  if (lock.redo_log_version != current.redo_log_version) {
    findings->push_back(
        {lock_file, 1, "R4",
         "kRedoLogFormatVersion is " + std::to_string(current.redo_log_version) +
             " but the lock says " + std::to_string(lock.redo_log_version) +
             " — old logs must stay replayable; bump deliberately and run "
             "`sb7-lint --update-schema-lock`"});
  }
}

// --- driver ----------------------------------------------------------------

bool HasPrefix(const std::string& text, const std::string& prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::vector<Finding> LintTree(const fs::path& root, std::string* error) {
  std::vector<Finding> findings;
  std::vector<std::string> labels;
  for (const char* top : {"src", "tests"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        labels.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(labels.begin(), labels.end());
  for (const std::string& label : labels) {
    const auto file = LoadFile(root / label, label);
    if (!file) {
      *error = "cannot read " + label;
      return findings;
    }
    const bool r1_scope = HasPrefix(label, "src/stm/") || HasPrefix(label, "src/mvstm/") ||
                          HasPrefix(label, "src/trace/") ||
                          HasPrefix(label, "src/telemetry/") ||
                          HasPrefix(label, "src/net/");
    const bool r2_allowed = HasPrefix(label, "src/stm/") || HasPrefix(label, "src/mvstm/");
    if (r1_scope) {
      CheckAtomicsDiscipline(*file, &findings);
    }
    if (!r2_allowed) {
      CheckRawAccessScope(*file, &findings);
    }
    CheckObserverNoexcept(*file, &findings);
  }
  const auto current = CollectSchema(root, error);
  if (!current) {
    return findings;
  }
  const auto lock = ReadSchemaLock(root / "tools/lint/schema.lock", error);
  if (!lock) {
    return findings;
  }
  CompareSchemas(*lock, *current, &findings);
  return findings;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int count = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == rule) {
      ++count;
    }
  }
  return count;
}

// Self-test: every seeded-bad fixture must trip its rule; the clean fixture
// must not trip anything; the schema comparator must flag a corrupted lock.
int RunSelfTest(const fs::path& root) {
  int failures = 0;
  const auto expect = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "selftest FAIL: " << what << "\n";
      ++failures;
    }
  };
  const fs::path fixtures = root / "tools/lint/fixtures";
  struct Case {
    const char* file;
    const char* rule;
    int min_findings;
  };
  for (const Case& c : {Case{"bad_r1.cc", "R1", 2}, Case{"bad_r2.cc", "R2", 1},
                        Case{"bad_r3.cc", "R3", 1}}) {
    const auto file = LoadFile(fixtures / c.file, c.file);
    if (!file) {
      expect(false, std::string("missing fixture ") + c.file);
      continue;
    }
    std::vector<Finding> findings;
    CheckAtomicsDiscipline(*file, &findings);
    CheckRawAccessScope(*file, &findings);
    CheckObserverNoexcept(*file, &findings);
    expect(CountRule(findings, c.rule) >= c.min_findings,
           std::string(c.file) + " should trip " + c.rule + " at least " +
               std::to_string(c.min_findings) + "x, got " +
               std::to_string(CountRule(findings, c.rule)));
  }
  const auto clean = LoadFile(fixtures / "good_clean.cc", "good_clean.cc");
  if (!clean) {
    expect(false, "missing fixture good_clean.cc");
  } else {
    std::vector<Finding> findings;
    CheckAtomicsDiscipline(*clean, &findings);
    CheckRawAccessScope(*clean, &findings);
    CheckObserverNoexcept(*clean, &findings);
    expect(findings.empty(), "good_clean.cc should be clean, got " +
                                 std::to_string(findings.size()) + " findings");
  }
  std::string error;
  const auto current = CollectSchema(root, &error);
  expect(static_cast<bool>(current), "schema parser: " + error);
  if (current) {
    expect(!current->stats_fields.empty() && current->csv_version > 0 &&
               current->bench_version > 0 && current->telemetry_version > 0 &&
               current->redo_log_version > 0,
           "schema parser returned implausible values");
    Schema corrupted = *current;
    corrupted.csv_version += 1;
    corrupted.telemetry_version += 1;
    corrupted.redo_log_version += 1;
    corrupted.stats_fields.push_back("bogus_counter");
    std::vector<Finding> findings;
    CompareSchemas(corrupted, *current, &findings);
    expect(CountRule(findings, "R4") >= 4, "corrupted lock should trip R4 four times");
  }
  if (failures == 0) {
    std::cout << "sb7-lint selftest: all fixtures behave\n";
  }
  return failures == 0 ? 0 : 1;
}

std::string UsageText() {
  return R"(usage: sb7-lint [options]
  --root <dir>           tree to lint (default: the configured source dir)
  --selftest             run the rule engines against the seeded fixtures
  --update-schema-lock   rewrite tools/lint/schema.lock from the tree
  --help                 show this message
)";
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SB7_SOURCE_DIR
  fs::path root = SB7_SOURCE_DIR;
#else
  fs::path root = fs::current_path();
#endif
  bool selftest = false;
  bool update_lock = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << UsageText();
      return 0;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--update-schema-lock") {
      update_lock = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::cerr << "sb7-lint: unknown argument '" << arg << "'\n" << UsageText();
      return 2;
    }
  }
  if (!fs::exists(root / "src")) {
    std::cerr << "sb7-lint: " << root << " does not look like the repo root\n";
    return 2;
  }
  if (selftest) {
    return RunSelfTest(root);
  }
  if (update_lock) {
    std::string error;
    const auto current = CollectSchema(root, &error);
    if (!current) {
      std::cerr << "sb7-lint: " << error << "\n";
      return 2;
    }
    if (!WriteSchemaLock(root / "tools/lint/schema.lock", *current)) {
      std::cerr << "sb7-lint: cannot write tools/lint/schema.lock\n";
      return 2;
    }
    std::cout << "schema.lock updated: " << current->stats_fields.size()
              << " stats fields, csv v" << current->csv_version << ", bench v"
              << current->bench_version << "\n";
    return 0;
  }
  std::string error;
  const std::vector<Finding> findings = LintTree(root, &error);
  if (!error.empty()) {
    std::cerr << "sb7-lint: " << error << "\n";
    return 2;
  }
  for (const Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "sb7-lint: clean\n";
    return 0;
  }
  std::cout << findings.size() << " finding(s)\n";
  return 1;
}
