#!/usr/bin/env bash
# Crash-recovery loop (docs/DURABILITY.md): repeatedly start a write-dominated
# mvstm run with a durable redo log, kill -9 it at a pseudo-random offset, and
# replay whatever survived under two different backends. Every iteration must
# recover (torn tails are expected, corruption is not) and both replays must
# print the same "fingerprint:" line — the content-based world fingerprint is
# backend-independent, so a disagreement means the log or the replay is wrong.
#
# usage: crash_loop.sh <stmbench7-binary> [iterations] [artifact-dir]
#
# On failure the surviving redo log and every captured output land in
# <artifact-dir> (default /tmp/sb7_crash_loop_artifacts) for CI to upload.
# CRASH_LOOP_SEED varies the run seeds and kill offsets (default 20070326).
set -u

BIN=${1:?usage: crash_loop.sh <stmbench7-binary> [iterations] [artifact-dir]}
ITERS=${2:-10}
ARTIFACTS=${3:-/tmp/sb7_crash_loop_artifacts}
SEED=${CRASH_LOOP_SEED:-20070326}

WORK=$(mktemp -d /tmp/sb7_crash_loop.XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() {
  mkdir -p "$ARTIFACTS"
  cp "$WORK"/*.redo "$WORK"/*.out "$ARTIFACTS/" 2>/dev/null || true
  echo "crash_loop: FAIL: $1 (artifacts in $ARTIFACTS)" >&2
  exit 1
}

fingerprint_of() {
  # The terminal report's fingerprint line; crash_loop greps, never parses.
  grep '^fingerprint:' "$1" | head -n 1
}

for i in $(seq 1 "$ITERS"); do
  log=$WORK/run$i.redo
  "$BIN" -g mvstm -w w -s tiny -t 4 -l 30 --seed $((SEED + i)) \
      --redo-log "$log" --durability group >"$WORK/run$i.out" 2>&1 &
  pid=$!

  # 30-329 ms after launch: early kills land mid-structure-build (header-only
  # or empty logs), late ones mid-storm (torn group tails). Both must recover.
  offset_ms=$(( (SEED + i * 7919) % 300 + 30 ))
  sleep "0.$(printf '%03d' "$offset_ms")"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null

  [ -e "$log" ] || fail "iteration $i: run died before creating $log"

  "$BIN" --recover "$log" -g mvstm >"$WORK/run$i.mvstm.out" 2>&1 ||
    fail "iteration $i: mvstm replay failed (run$i.mvstm.out)"
  "$BIN" --recover "$log" -g tl2 >"$WORK/run$i.tl2.out" 2>&1 ||
    fail "iteration $i: tl2 replay failed (run$i.tl2.out)"

  fp_mvstm=$(fingerprint_of "$WORK/run$i.mvstm.out")
  fp_tl2=$(fingerprint_of "$WORK/run$i.tl2.out")
  [ -n "$fp_mvstm" ] || fail "iteration $i: mvstm replay printed no fingerprint"
  if [ "$fp_mvstm" != "$fp_tl2" ]; then
    fail "iteration $i: replay fingerprints disagree: mvstm '$fp_mvstm' vs tl2 '$fp_tl2'"
  fi
  echo "crash_loop: iteration $i ok (killed at +${offset_ms}ms, $fp_mvstm)"
done

echo "crash_loop: $ITERS iterations recovered consistently"
