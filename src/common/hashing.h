// Shared non-cryptographic hashing helpers, used by the structural
// invariant checksum (src/core/invariants.cc) and the correctness oracle's
// deep fingerprint (src/check/fingerprint.*). One definition keeps the two
// hash families from silently diverging.

#ifndef STMBENCH7_SRC_COMMON_HASHING_H_
#define STMBENCH7_SRC_COMMON_HASHING_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"

namespace sb7 {

// Avalanche mixer (the SplitMix64 finalizer).
inline uint64_t MixHash(uint64_t value) {
  uint64_t state = value;
  return SplitMix64Next(state);
}

// FNV-1a folded through MixHash.
inline uint64_t HashString(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return MixHash(h);
}

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_HASHING_H_
