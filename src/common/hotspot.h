// Process-global hotspot policy for random id selection.
//
// The benchmark's designed failure source is uniformly random ids in
// [1, pool.capacity()] (traversal entry points and index keys alike). The
// scenario engine can replace that uniform choice with a Zipfian one so that
// accesses concentrate on a hot set of low ids — the objects created when the
// structure was built, hence almost always live. The policy is published by
// the phase controller and read by every worker on each id draw; with the
// policy disabled (theta == 0) the draw consumes exactly one uniform value,
// bit-identical to the historical uniform RandomId, which the cross-backend
// equivalence tests rely on.

#ifndef STMBENCH7_SRC_COMMON_HOTSPOT_H_
#define STMBENCH7_SRC_COMMON_HOTSPOT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace sb7 {

struct HotspotPolicy {
  // Zipf skew in [0, 1); 0 disables the policy (uniform ids).
  double theta = 0.0;
  // Ids <= ceil(hot_fraction * capacity) count as "hot" in the counters
  // below. Reporting only — the skew itself is fully described by theta.
  double hot_fraction = 0.1;
};

// Publishes `policy` to all threads (phase boundaries, tests).
void SetHotspotPolicy(const HotspotPolicy& policy);
// Restores the uniform default.
void ResetHotspotPolicy();
HotspotPolicy CurrentHotspotPolicy();

// Builds the shared Zipfian samplers for these id-space capacities under the
// currently published policy (no-op when it is uniform). Called right after
// SetHotspotPolicy so the O(capacity) harmonic precomputation runs at the
// phase boundary instead of inside the first measured operation.
void PrewarmHotspotSamplers(const std::vector<int64_t>& capacities);

// Monotonic counters of skewed draws; the phase controller reads deltas.
// Only draws made while a policy is active are counted.
struct HotspotCounters {
  int64_t samples = 0;
  int64_t hot_hits = 0;
};
HotspotCounters ReadHotspotCounters();

// Random id in [1, capacity]: uniform when the policy is disabled, Zipfian
// over the id space otherwise (rank 0 -> id 1, so low ids are hot).
int64_t SampleHotspotId(int64_t capacity, Rng& rng);

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_HOTSPOT_H_
