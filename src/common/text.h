// Text generation and manipulation helpers for documents and the manual.
//
// The OO7/STMBench7 text operations (T4, T5, ST2, ST7, OP4, OP5, OP11) count
// and substitute characters and phrases inside document/manual bodies. The
// generators below mirror the original benchmark's texts: bodies built by
// repeating an "I am the ..." sentence up to the configured size, so the
// phrase-swap operations always have material to work on.

#ifndef STMBENCH7_SRC_COMMON_TEXT_H_
#define STMBENCH7_SRC_COMMON_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sb7 {

// Number of occurrences of `c` in `text`.
int64_t CountChar(std::string_view text, char c);

// Number of non-overlapping occurrences of `sub` in `text`.
int64_t CountOccurrences(std::string_view text, std::string_view sub);

// Replaces every non-overlapping occurrence of `from` with `to`; returns the
// new text and the number of replacements made.
std::pair<std::string, int64_t> ReplaceAll(std::string_view text, std::string_view from,
                                           std::string_view to);

// Replaces every occurrence of character `from` with `to`; returns the new
// text and the number of replacements.
std::pair<std::string, int64_t> ReplaceChar(std::string_view text, char from, char to);

// Document body for composite part `part_id`, at least `size` characters
// (rounded up to whole sentences).
std::string BuildDocumentText(int64_t part_id, int size);

// Manual body for module `module_id`, at least `size` characters.
std::string BuildManualText(int64_t module_id, int size);

// Splits comma-separated `text` into its non-empty items (empty items are
// skipped, so "a,,b" and ",a,b," both yield {a, b}). The one comma-list
// parser shared by the CLIs and the sweep/scenario spec formats.
std::vector<std::string> SplitCommaList(std::string_view text);

// Strict whole-string number parsing, shared by the CLI and the scenario
// spec parser: false on empty input, any trailing garbage, or overflow.
bool ParseInt64(const std::string& text, int64_t& out);
bool ParseDouble(const std::string& text, double& out);
// Full-uint64 parsing for seeds: accepts either a non-negative decimal up to
// 2^64-1 or a negative decimal (wrapped, mirroring `--seed -1` semantics),
// so a seed printed back as unsigned always round-trips.
bool ParseUint64(const std::string& text, uint64_t& out);

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_TEXT_H_
