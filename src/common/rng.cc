#include "src/common/rng.h"

#include <cmath>

#include "src/common/diag.h"

namespace sb7 {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64Next(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SB7_DCHECK(bound != 0);
  // Lemire's method: multiply into 128 bits, reject the biased low slice.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SB7_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Split() {
  // xoshiro256++ jump(): advances this generator by 2^128 steps; the
  // pre-jump state becomes the child stream.
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
                                       0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  Rng child = *this;
  uint64_t s0 = 0;
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  uint64_t s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  return child;
}

ZipfianSampler::ZipfianSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  SB7_CHECK(n >= 1);
  SB7_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  half_pow_theta_ = std::pow(0.5, theta_);
  const double zeta2 = 1.0 + half_pow_theta_;
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianSampler::Sample(Rng& rng) const {
  // Every call consumes exactly one uniform draw, so callers stay
  // stream-deterministic regardless of the value sampled.
  const double u = rng.NextDouble();
  if (theta_ == 0.0 || n_ == 1) {
    return static_cast<uint64_t>(u * static_cast<double>(n_));
  }
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + half_pow_theta_) {
    return 1;
  }
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace sb7
