// Monotonic-clock helpers shared by the harness and the benches.

#ifndef STMBENCH7_SRC_COMMON_TIMING_H_
#define STMBENCH7_SRC_COMMON_TIMING_H_

#include <chrono>
#include <cstdint>

namespace sb7 {

// Nanoseconds on the steady clock; only differences are meaningful.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double NanosToMillis(int64_t nanos) { return static_cast<double>(nanos) / 1e6; }

inline double NanosToSeconds(int64_t nanos) { return static_cast<double>(nanos) / 1e9; }

// Scoped stopwatch: measures the lifetime of the object in nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}

  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMillis() const { return NanosToMillis(ElapsedNanos()); }
  double ElapsedSeconds() const { return NanosToSeconds(ElapsedNanos()); }

  void Restart() { start_ = NowNanos(); }

 private:
  int64_t start_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_TIMING_H_
