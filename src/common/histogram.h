// Latency (time-to-completion, "TTC") histogram.
//
// The paper's Appendix A specifies per-operation TTC histograms printed as
// "ttc, count" pairs with 1-millisecond buckets. Latencies beyond the linear
// range fall into geometrically growing overflow buckets so that long
// traversals (seconds to minutes under the ASTM port) are still recorded
// without unbounded memory.
//
// Two flavours share the bucket geometry:
//   TtcHistogram            — single-writer, merged after the run.
//   ConcurrentTtcHistogram  — lock-free multi-producer companion for the
//                             live telemetry sampler (src/telemetry/):
//                             worker threads Record() concurrently, the
//                             sampler thread takes Snapshot() merges.

#ifndef STMBENCH7_SRC_COMMON_HISTOGRAM_H_
#define STMBENCH7_SRC_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sb7 {

class TtcHistogram {
 public:
  // Linear 1 ms buckets in [0, linear_buckets); geometric buckets after that.
  explicit TtcHistogram(int linear_buckets = 1000);

  void Record(int64_t nanos);

  // Merges `other` into this histogram (used to combine per-thread data).
  void Merge(const TtcHistogram& other);

  // Bucket-wise `end - begin` for two snapshots of the same growing
  // histogram (the telemetry sampler's per-interval window). total/sum are
  // recomputed from the delta buckets; max carries over from `end` — a
  // cumulative upper bound, since the true window max is not recoverable
  // from bucket counts.
  static TtcHistogram Delta(const TtcHistogram& end, const TtcHistogram& begin);

  int64_t total_count() const { return total_count_; }
  int64_t max_nanos() const { return max_nanos_; }
  int64_t sum_nanos() const { return sum_nanos_; }
  double MeanMillis() const;

  // Quantile (q in [0,1]) in milliseconds, linearly interpolated within the
  // bucket where the cumulative count crosses q * total. This is the same
  // linear-interpolation convention as perf::QuantileOf / perf::Median, so
  // harness CSV/JSON percentiles and sb7-bench aggregates agree on what a
  // "p50" means. The result is clamped to the recorded max.
  double QuantileMillis(double q) const;

  // Appendix-A format: space-delimited "ttc, count" pairs for all non-empty
  // buckets, where ttc is the bucket's lower bound in milliseconds.
  std::string Format() const;

  // Bucket geometry, shared with ConcurrentTtcHistogram: [0..linear) are
  // 1 ms wide; bucket linear+k covers [linear * 2^k, linear * 2^(k+1)) ms,
  // for k in [0, kOverflowBuckets).
  static constexpr int kOverflowBuckets = 24;
  static int BucketCount(int linear_buckets) { return linear_buckets + kOverflowBuckets; }
  static int BucketIndex(int64_t nanos, int linear_buckets);

 private:
  friend class ConcurrentTtcHistogram;

  // The bucket array is allocated on first Record/Merge; the harness keeps a
  // histogram per (thread, phase, operation) and most stay empty.
  void EnsureBuckets();
  int BucketFor(int64_t nanos) const { return BucketIndex(nanos, linear_buckets_); }
  // Lower bound of bucket `i`, in milliseconds.
  int64_t BucketLowerMillis(int i) const;
  // Upper bound of bucket `i`, in milliseconds (the last geometric bucket is
  // open-ended; its nominal upper bound is twice the lower bound).
  int64_t BucketUpperMillis(int i) const;

  int linear_buckets_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
  int64_t max_nanos_ = 0;
  int64_t sum_nanos_ = 0;
};

// Lock-free multi-producer histogram with TtcHistogram's bucket geometry.
// Record() is wait-free apart from a bounded CAS loop on the stripe max;
// threads hash onto cache-line-aligned stripes so concurrent recorders do
// not contend on the same counters. Snapshot() merges the stripes into a
// plain TtcHistogram; it is safe to call concurrently with recorders and
// yields a monotone, per-bucket-consistent view (total is derived from the
// bucket counts, so quantiles are always internally consistent even if a
// record lands mid-snapshot).
class ConcurrentTtcHistogram {
 public:
  explicit ConcurrentTtcHistogram(int linear_buckets = 1000);

  // Any thread, any time; never blocks a recorder on another thread.
  void Record(int64_t nanos);

  TtcHistogram Snapshot() const;

 private:
  static constexpr int kStripes = 8;

  struct alignas(64) Stripe {
    explicit Stripe(int buckets) : counts(static_cast<size_t>(buckets)) {}
    // Value-initialized atomics start at zero; the vector is never resized.
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };

  int linear_buckets_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_HISTOGRAM_H_
