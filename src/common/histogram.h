// Latency (time-to-completion, "TTC") histogram.
//
// The paper's Appendix A specifies per-operation TTC histograms printed as
// "ttc, count" pairs with 1-millisecond buckets. Latencies beyond the linear
// range fall into geometrically growing overflow buckets so that long
// traversals (seconds to minutes under the ASTM port) are still recorded
// without unbounded memory.

#ifndef STMBENCH7_SRC_COMMON_HISTOGRAM_H_
#define STMBENCH7_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sb7 {

class TtcHistogram {
 public:
  // Linear 1 ms buckets in [0, linear_buckets); geometric buckets after that.
  explicit TtcHistogram(int linear_buckets = 1000);

  void Record(int64_t nanos);

  // Merges `other` into this histogram (used to combine per-thread data).
  void Merge(const TtcHistogram& other);

  int64_t total_count() const { return total_count_; }
  int64_t max_nanos() const { return max_nanos_; }
  int64_t sum_nanos() const { return sum_nanos_; }
  double MeanMillis() const;

  // Approximate quantile (q in [0,1]) in milliseconds, computed from bucket
  // boundaries; exact for the linear range.
  double QuantileMillis(double q) const;

  // Appendix-A format: space-delimited "ttc, count" pairs for all non-empty
  // buckets, where ttc is the bucket's lower bound in milliseconds.
  std::string Format() const;

 private:
  // Buckets: [0..linear) are 1 ms wide; bucket linear+k covers
  // [linear * 2^k, linear * 2^(k+1)) ms, for k in [0, kOverflowBuckets).
  static constexpr int kOverflowBuckets = 24;

  // The bucket array is allocated on first Record/Merge; the harness keeps a
  // histogram per (thread, phase, operation) and most stay empty.
  void EnsureBuckets();
  int BucketFor(int64_t nanos) const;
  // Lower bound of bucket `i`, in milliseconds.
  int64_t BucketLowerMillis(int i) const;

  int linear_buckets_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
  int64_t max_nanos_ = 0;
  int64_t sum_nanos_ = 0;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_HISTOGRAM_H_
