#include "src/common/text.h"

#include <cerrno>
#include <cstdlib>

#include "src/common/diag.h"

namespace sb7 {

int64_t CountChar(std::string_view text, char c) {
  int64_t n = 0;
  for (char ch : text) {
    if (ch == c) {
      ++n;
    }
  }
  return n;
}

int64_t CountOccurrences(std::string_view text, std::string_view sub) {
  SB7_DCHECK(!sub.empty());
  int64_t n = 0;
  size_t pos = 0;
  while ((pos = text.find(sub, pos)) != std::string_view::npos) {
    ++n;
    pos += sub.size();
  }
  return n;
}

std::pair<std::string, int64_t> ReplaceAll(std::string_view text, std::string_view from,
                                           std::string_view to) {
  SB7_DCHECK(!from.empty());
  std::string out;
  out.reserve(text.size());
  int64_t n = 0;
  size_t pos = 0;
  while (true) {
    const size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      break;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
    ++n;
  }
  return {std::move(out), n};
}

std::pair<std::string, int64_t> ReplaceChar(std::string_view text, char from, char to) {
  std::string out(text);
  int64_t n = 0;
  for (char& c : out) {
    if (c == from) {
      c = to;
      ++n;
    }
  }
  return {std::move(out), n};
}

namespace {

std::string RepeatToSize(const std::string& sentence, int size) {
  std::string out;
  out.reserve(static_cast<size_t>(size) + sentence.size());
  while (out.size() < static_cast<size_t>(size)) {
    out += sentence;
  }
  return out;
}

}  // namespace

std::string BuildDocumentText(int64_t part_id, int size) {
  const std::string sentence =
      "I am the documentation for composite part #" + std::to_string(part_id) + ". ";
  return RepeatToSize(sentence, size);
}

std::string BuildManualText(int64_t module_id, int size) {
  const std::string sentence = "I am the manual for module #" + std::to_string(module_id) + ". ";
  return RepeatToSize(sentence, size);
}

bool ParseInt64(const std::string& text, int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t& out) {
  if (!text.empty() && text[0] == '-') {
    int64_t negative = 0;
    if (!ParseInt64(text, negative)) {
      return false;
    }
    out = static_cast<uint64_t>(negative);
    return true;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  out = value;
  return true;
}

bool ParseDouble(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0') {
    return false;
  }
  out = value;
  return true;
}

std::vector<std::string> SplitCommaList(std::string_view text) {
  std::vector<std::string> items;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string_view::npos ? text.size() : comma;
    if (end > begin) {
      items.emplace_back(text.substr(begin, end - begin));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    begin = comma + 1;
  }
  return items;
}

}  // namespace sb7
