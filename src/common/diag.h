// Diagnostic macros used across the STMBench7 reproduction.
//
// SB7_CHECK is always on and aborts with a message on violation; it guards
// conditions whose failure means the process state is unusable (broken
// invariants in the shared structure, protocol violations in the STMs).
// SB7_DCHECK compiles away in release builds and is used on hot paths.

#ifndef STMBENCH7_SRC_COMMON_DIAG_H_
#define STMBENCH7_SRC_COMMON_DIAG_H_

#include <cstdio>
#include <cstdlib>

namespace sb7 {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "SB7_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace sb7

#define SB7_CHECK(cond)                           \
  do {                                            \
    if (!(cond)) {                                \
      ::sb7::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                             \
  } while (0)

#ifndef NDEBUG
#define SB7_DCHECK(cond) SB7_CHECK(cond)
#else
#define SB7_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // STMBENCH7_SRC_COMMON_DIAG_H_
