// Deterministic pseudo-random number generation.
//
// The benchmark derives every random choice (operation selection, random IDs,
// random paths through the structure, generated text) from per-thread Rng
// instances seeded from a single benchmark seed. Equal seeds therefore yield
// bit-identical single-threaded runs, which the cross-backend equivalence
// tests rely on.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
// so that low-entropy seeds (0, 1, 2, ...) still produce well-mixed states.

#ifndef STMBENCH7_SRC_COMMON_RNG_H_
#define STMBENCH7_SRC_COMMON_RNG_H_

#include <cstdint>

namespace sb7 {

// SplitMix64 step; used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64Next(uint64_t& state);

class Rng {
 public:
  // Seeds the four-word xoshiro256++ state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5b7b3d2f9e1cull);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound == 0 is invalid. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in the closed range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  // Creates an independent stream: applies xoshiro's jump() polynomial to a
  // copy of this generator. Used to hand each worker thread its own stream.
  Rng Split();

  // State capture for the redo log's replay records (src/mvstm/redo_log.h):
  // a restored generator continues the stream bit-identically, so replaying
  // a logged transaction consumes exactly the draws the original attempt did.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) {
      out[i] = s_[i];
    }
  }
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) {
      s_[i] = in[i];
    }
  }

 private:
  uint64_t s_[4];
};

// Zipfian-distributed ranks in [0, n): rank r is drawn with probability
// proportional to 1 / (r+1)^theta, so low ranks form a configurable hot set.
// Uses the Gray et al. / YCSB closed-form inversion, which needs one uniform
// draw per sample after an O(n) harmonic precomputation at construction.
// theta must lie in [0, 1); theta == 0 degenerates to the uniform
// distribution. Sampling is deterministic given the Rng stream.
class ZipfianSampler {
 public:
  ZipfianSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;  // generalized harmonic number H_{n,theta}
  double half_pow_theta_;  // pow(0.5, theta), hoisted off the sampling path
  double alpha_;
  double eta_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_COMMON_RNG_H_
