#include "src/common/hotspot.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/diag.h"

namespace sb7 {
namespace {

// The policy is stored in word-sized atomics so the per-draw read is two
// relaxed loads; the generation counter invalidates the per-thread sampler
// caches whenever a new policy is published.
std::atomic<double> g_theta{0.0};
std::atomic<double> g_hot_fraction{0.1};
std::atomic<uint64_t> g_generation{0};

// The counters are bumped by every skewed draw from every worker; keep each
// on its own cache line, away from the policy atomics every draw also reads
// (same false-sharing treatment as StmStats).
struct alignas(64) AlignedCounter {
  std::atomic<int64_t> value{0};
};
AlignedCounter g_samples;
AlignedCounter g_hot_hits;

// Samplers are built once per (policy generation, capacity) in a shared
// table — the constructor's O(n) harmonic sum must not run on every thread,
// let alone inside a measured operation (SetHotspotPolicy callers prewarm
// the table via PrewarmHotspotSamplers). Threads keep a tiny lock-free
// cache of copies (a sampler is five doubles); a run touches only a handful
// of pool capacities, so linear search is fine.
struct SamplerTable {
  std::mutex mu;
  uint64_t generation = ~0ull;
  std::vector<std::pair<int64_t, ZipfianSampler>> samplers;
};

SamplerTable& GlobalSamplers() {
  static SamplerTable* table = new SamplerTable;
  return *table;
}

ZipfianSampler SharedSampler(int64_t capacity, double theta, uint64_t generation) {
  SamplerTable& table = GlobalSamplers();
  std::lock_guard<std::mutex> lock(table.mu);
  if (table.generation != generation) {
    table.samplers.clear();
    table.generation = generation;
  }
  for (const auto& entry : table.samplers) {
    if (entry.first == capacity) {
      return entry.second;
    }
  }
  table.samplers.emplace_back(capacity,
                              ZipfianSampler(static_cast<uint64_t>(capacity), theta));
  return table.samplers.back().second;
}

struct ThreadSamplerCache {
  uint64_t generation = ~0ull;
  std::vector<std::pair<int64_t, ZipfianSampler>> samplers;
};

const ZipfianSampler& CachedSampler(int64_t capacity, double theta, uint64_t generation) {
  thread_local ThreadSamplerCache cache;
  if (cache.generation != generation) {
    cache.samplers.clear();
    cache.generation = generation;
  }
  for (const auto& entry : cache.samplers) {
    if (entry.first == capacity) {
      return entry.second;
    }
  }
  cache.samplers.emplace_back(capacity, SharedSampler(capacity, theta, generation));
  return cache.samplers.back().second;
}

}  // namespace

void SetHotspotPolicy(const HotspotPolicy& policy) {
  SB7_CHECK(policy.theta >= 0.0 && policy.theta < 1.0);
  SB7_CHECK(policy.hot_fraction > 0.0 && policy.hot_fraction <= 1.0);
  g_hot_fraction.store(policy.hot_fraction, std::memory_order_relaxed);
  g_theta.store(policy.theta, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

void ResetHotspotPolicy() { SetHotspotPolicy(HotspotPolicy{}); }

void PrewarmHotspotSamplers(const std::vector<int64_t>& capacities) {
  const uint64_t generation = g_generation.load(std::memory_order_acquire);
  const double theta = g_theta.load(std::memory_order_relaxed);
  if (theta <= 0.0) {
    return;
  }
  for (const int64_t capacity : capacities) {
    SharedSampler(capacity, theta, generation);
  }
}

HotspotPolicy CurrentHotspotPolicy() {
  HotspotPolicy policy;
  policy.theta = g_theta.load(std::memory_order_relaxed);
  policy.hot_fraction = g_hot_fraction.load(std::memory_order_relaxed);
  return policy;
}

HotspotCounters ReadHotspotCounters() {
  HotspotCounters counters;
  counters.samples = g_samples.value.load(std::memory_order_relaxed);
  counters.hot_hits = g_hot_hits.value.load(std::memory_order_relaxed);
  return counters;
}

int64_t SampleHotspotId(int64_t capacity, Rng& rng) {
  // Load the generation first (acquire pairs with SetHotspotPolicy's release
  // bump): a thread that observes the new generation is then guaranteed to
  // read the new theta, so it can never seed the new generation's shared
  // sampler table with the previous phase's skew.
  const uint64_t generation = g_generation.load(std::memory_order_acquire);
  const double theta = g_theta.load(std::memory_order_relaxed);
  if (theta <= 0.0) {
    return 1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(capacity)));
  }
  const ZipfianSampler& sampler = CachedSampler(capacity, theta, generation);
  const int64_t id = 1 + static_cast<int64_t>(sampler.Sample(rng));
  const double hot_fraction = g_hot_fraction.load(std::memory_order_relaxed);
  const auto hot_cut = static_cast<int64_t>(
      std::ceil(hot_fraction * static_cast<double>(capacity)));
  g_samples.value.fetch_add(1, std::memory_order_relaxed);
  if (id <= hot_cut) {
    g_hot_hits.value.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

}  // namespace sb7
