#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/diag.h"

namespace sb7 {

TtcHistogram::TtcHistogram(int linear_buckets) : linear_buckets_(linear_buckets) {
  SB7_CHECK(linear_buckets > 0);
}

void TtcHistogram::EnsureBuckets() {
  if (counts_.empty()) {
    counts_.assign(static_cast<size_t>(linear_buckets_) + kOverflowBuckets, 0);
  }
}

int TtcHistogram::BucketFor(int64_t nanos) const {
  const int64_t ms = nanos / 1'000'000;
  if (ms < linear_buckets_) {
    return static_cast<int>(ms);
  }
  // Geometric range: find k with linear * 2^k <= ms < linear * 2^(k+1).
  int k = 0;
  int64_t bound = static_cast<int64_t>(linear_buckets_) * 2;
  while (k + 1 < kOverflowBuckets && ms >= bound) {
    bound *= 2;
    ++k;
  }
  return linear_buckets_ + k;
}

int64_t TtcHistogram::BucketLowerMillis(int i) const {
  if (i < linear_buckets_) {
    return i;
  }
  return static_cast<int64_t>(linear_buckets_) << (i - linear_buckets_);
}

void TtcHistogram::Record(int64_t nanos) {
  if (nanos < 0) {
    nanos = 0;
  }
  EnsureBuckets();
  counts_[BucketFor(nanos)] += 1;
  total_count_ += 1;
  sum_nanos_ += nanos;
  max_nanos_ = std::max(max_nanos_, nanos);
}

void TtcHistogram::Merge(const TtcHistogram& other) {
  SB7_CHECK(linear_buckets_ == other.linear_buckets_);
  if (!other.counts_.empty()) {
    EnsureBuckets();
    for (size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
  total_count_ += other.total_count_;
  sum_nanos_ += other.sum_nanos_;
  max_nanos_ = std::max(max_nanos_, other.max_nanos_);
}

double TtcHistogram::MeanMillis() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_nanos_) / 1e6 / static_cast<double>(total_count_);
}

double TtcHistogram::QuantileMillis(double q) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<int64_t>(std::ceil(q * static_cast<double>(total_count_)));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return static_cast<double>(BucketLowerMillis(static_cast<int>(i)));
    }
  }
  return static_cast<double>(BucketLowerMillis(static_cast<int>(counts_.size()) - 1));
}

std::string TtcHistogram::Format() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += std::to_string(BucketLowerMillis(static_cast<int>(i)));
    out += ',';
    out += std::to_string(counts_[i]);
  }
  return out;
}

}  // namespace sb7
