#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/diag.h"

namespace sb7 {

TtcHistogram::TtcHistogram(int linear_buckets) : linear_buckets_(linear_buckets) {
  SB7_CHECK(linear_buckets > 0);
}

void TtcHistogram::EnsureBuckets() {
  if (counts_.empty()) {
    counts_.assign(static_cast<size_t>(BucketCount(linear_buckets_)), 0);
  }
}

int TtcHistogram::BucketIndex(int64_t nanos, int linear_buckets) {
  const int64_t ms = nanos / 1'000'000;
  if (ms < linear_buckets) {
    return static_cast<int>(ms);
  }
  // Geometric range: find k with linear * 2^k <= ms < linear * 2^(k+1).
  int k = 0;
  int64_t bound = static_cast<int64_t>(linear_buckets) * 2;
  while (k + 1 < kOverflowBuckets && ms >= bound) {
    bound *= 2;
    ++k;
  }
  return linear_buckets + k;
}

int64_t TtcHistogram::BucketLowerMillis(int i) const {
  if (i < linear_buckets_) {
    return i;
  }
  return static_cast<int64_t>(linear_buckets_) << (i - linear_buckets_);
}

int64_t TtcHistogram::BucketUpperMillis(int i) const {
  if (i < linear_buckets_) {
    return i + 1;
  }
  return static_cast<int64_t>(linear_buckets_) << (i - linear_buckets_ + 1);
}

void TtcHistogram::Record(int64_t nanos) {
  if (nanos < 0) {
    nanos = 0;
  }
  EnsureBuckets();
  counts_[BucketFor(nanos)] += 1;
  total_count_ += 1;
  sum_nanos_ += nanos;
  max_nanos_ = std::max(max_nanos_, nanos);
}

void TtcHistogram::Merge(const TtcHistogram& other) {
  SB7_CHECK(linear_buckets_ == other.linear_buckets_);
  if (!other.counts_.empty()) {
    EnsureBuckets();
    for (size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
  total_count_ += other.total_count_;
  sum_nanos_ += other.sum_nanos_;
  max_nanos_ = std::max(max_nanos_, other.max_nanos_);
}

TtcHistogram TtcHistogram::Delta(const TtcHistogram& end, const TtcHistogram& begin) {
  SB7_CHECK(end.linear_buckets_ == begin.linear_buckets_);
  TtcHistogram delta(end.linear_buckets_);
  if (!end.counts_.empty()) {
    delta.EnsureBuckets();
    for (size_t i = 0; i < end.counts_.size(); ++i) {
      const int64_t before = begin.counts_.empty() ? 0 : begin.counts_[i];
      delta.counts_[i] = std::max<int64_t>(end.counts_[i] - before, 0);
      delta.total_count_ += delta.counts_[i];
    }
  }
  delta.sum_nanos_ = std::max<int64_t>(end.sum_nanos_ - begin.sum_nanos_, 0);
  delta.max_nanos_ = end.max_nanos_;
  return delta;
}

double TtcHistogram::MeanMillis() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_nanos_) / 1e6 / static_cast<double>(total_count_);
}

double TtcHistogram::QuantileMillis(double q) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double max_ms = static_cast<double>(max_nanos_) / 1e6;
  const double target = q * static_cast<double>(total_count_);
  double seen = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double after = seen + static_cast<double>(counts_[i]);
    if (after >= target) {
      const auto lower = static_cast<double>(BucketLowerMillis(static_cast<int>(i)));
      const auto upper = static_cast<double>(BucketUpperMillis(static_cast<int>(i)));
      const double frac = (target - seen) / static_cast<double>(counts_[i]);
      return std::min(lower + (upper - lower) * frac, max_ms);
    }
    seen = after;
  }
  // Reachable only on a racy concurrent snapshot where total outran the
  // bucket counts; the recorded max is the honest fallback.
  return max_ms;
}

std::string TtcHistogram::Format() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += std::to_string(BucketLowerMillis(static_cast<int>(i)));
    out += ',';
    out += std::to_string(counts_[i]);
  }
  return out;
}

ConcurrentTtcHistogram::ConcurrentTtcHistogram(int linear_buckets)
    : linear_buckets_(linear_buckets) {
  SB7_CHECK(linear_buckets > 0);
  stripes_.reserve(kStripes);
  for (int s = 0; s < kStripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>(TtcHistogram::BucketCount(linear_buckets_)));
  }
}

namespace {

// Stable per-thread stripe assignment: round-robin at first touch, so up to
// kStripes concurrent recorders never share a cache line.
size_t ThreadStripeIndex(size_t stripes) {
  // mo: relaxed — the counter only spreads threads across stripes; no other
  // state is published through it.
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t assigned = next_thread.fetch_add(1, std::memory_order_relaxed);
  return assigned % stripes;
}

}  // namespace

void ConcurrentTtcHistogram::Record(int64_t nanos) {
  if (nanos < 0) {
    nanos = 0;
  }
  Stripe& stripe = *stripes_[ThreadStripeIndex(stripes_.size())];
  const int bucket = TtcHistogram::BucketIndex(nanos, linear_buckets_);
  // mo: relaxed — monotonic tallies; the sampler derives totals from the
  // bucket counts themselves, so no cross-field ordering is required.
  stripe.counts[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(nanos, std::memory_order_relaxed);
  // mo: relaxed — monotone max; a lost race simply retries with the larger
  // observed value.
  int64_t prev = stripe.max.load(std::memory_order_relaxed);
  while (nanos > prev &&
         !stripe.max.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
}

TtcHistogram ConcurrentTtcHistogram::Snapshot() const {
  TtcHistogram merged(linear_buckets_);
  merged.EnsureBuckets();
  for (const auto& stripe : stripes_) {
    for (size_t i = 0; i < stripe->counts.size(); ++i) {
      // mo: relaxed — see Record; per-bucket monotone counts.
      const int64_t count = stripe->counts[i].load(std::memory_order_relaxed);
      merged.counts_[i] += count;
      merged.total_count_ += count;
    }
    // mo: relaxed — sum/max are advisory aggregates of the same tallies.
    merged.sum_nanos_ += stripe->sum.load(std::memory_order_relaxed);
    merged.max_nanos_ =
        std::max(merged.max_nanos_, stripe->max.load(std::memory_order_relaxed));
  }
  return merged;
}

}  // namespace sb7
