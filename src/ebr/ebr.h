// Quiescent-state-based epoch reclamation (QSBR).
//
// Why this exists: the word-based STMs (TL2, TinySTM) read shared memory
// optimistically. A doomed transaction — one that will fail validation — may
// still be dereferencing objects that a concurrent, committed structure-
// modification operation has already unlinked. The original Java benchmark
// leaned on the JVM's garbage collector for this "type-stable memory"
// guarantee; here the same guarantee comes from deferring frees until every
// registered thread has passed through a quiescent state (a point outside any
// transaction / critical section).
//
// Usage contract:
//   * every worker thread registers once (RAII ThreadRegistration, or lazily
//     through the thread_local accessor);
//   * threads announce quiescence between benchmark operations by calling
//     EbrDomain::Quiesce();
//   * deleters run on whichever thread triggers reclamation; they must not
//     touch shared state.
//
// The implementation is the classic three-epoch scheme folded into QSBR: a
// global epoch advances once every registered thread has observed it; retired
// objects tagged with epoch E are freed once the global epoch reaches E + 2.

#ifndef STMBENCH7_SRC_EBR_EBR_H_
#define STMBENCH7_SRC_EBR_EBR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

namespace sb7 {

class EbrDomain {
 public:
  static constexpr int kMaxThreads = 256;

  EbrDomain();
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // Process-wide domain used by the benchmark structure.
  static EbrDomain& Global();

  // Defers destruction of `ptr` until it is provably unreachable. May be
  // called from unregistered threads (the object is then routed through the
  // orphan list and freed on the next successful reclamation pass).
  void Retire(void* ptr, void (*deleter)(void*));

  template <typename T>
  void RetireObject(T* ptr) {
    Retire(const_cast<std::remove_const_t<T>*>(ptr),
           [](void* p) { delete static_cast<std::remove_const_t<T>*>(p); });
  }

  // Announces that the calling thread holds no references into shared
  // structures. Cheap; called between operations.
  void Quiesce();

  // Attempts to advance the global epoch and free everything that became
  // safe. Called internally from Quiesce()/Retire(); exposed for tests and
  // for draining at shutdown.
  void TryReclaim();

  // Frees every retired object unconditionally. Only safe when the caller
  // guarantees no other thread is inside a read-side section (e.g. after all
  // workers joined). Returns the number of objects freed.
  int64_t DrainAll();

  // Number of objects currently waiting in limbo (approximate; for tests).
  int64_t PendingCount() const;

  uint64_t global_epoch() const { return global_epoch_.load(std::memory_order_acquire); }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  struct Slot {
    std::atomic<bool> in_use{false};
    // Last global epoch this thread has announced. kOffline when the thread
    // is registered but has never quiesced yet (treated as current).
    std::atomic<uint64_t> local_epoch{0};
  };

  class ThreadState;
  friend class ThreadState;

  // Registers the calling thread and returns its slot index.
  int RegisterThread();
  void UnregisterThread(int slot, std::vector<Retired>&& leftovers);

  ThreadState& LocalState();

  // Smallest epoch announced by any registered thread.
  uint64_t MinAnnouncedEpoch() const;

  void FreeSafe(std::vector<Retired>& limbo, uint64_t safe_before);

  std::atomic<uint64_t> global_epoch_{2};
  // Distinguishes domain generations: a domain constructed at the address of
  // a destroyed one must not inherit cached per-thread state (slots would
  // alias across unrelated threads).
  uint64_t id_;
  Slot slots_[kMaxThreads];

  // Objects inherited from exited threads; protected by orphan_mu_.
  mutable std::mutex orphan_mu_;
  std::vector<Retired> orphans_;

  std::atomic<int64_t> pending_{0};
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_EBR_EBR_H_
