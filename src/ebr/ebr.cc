#include "src/ebr/ebr.h"

#include <algorithm>
#include <memory>

#include "src/common/diag.h"

namespace sb7 {
namespace {

// Domains that are still alive. Thread-exit cleanup consults this so that a
// ThreadState outliving its (test-local) domain does not touch freed memory.
std::mutex& AliveMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<EbrDomain*>& AliveDomains() {
  static std::vector<EbrDomain*> domains;
  return domains;
}

constexpr size_t kLimboReclaimThreshold = 512;
constexpr uint64_t kQuiesceReclaimPeriod = 64;

}  // namespace

// Per-thread, per-domain state. Destroyed at thread exit; any objects still
// in limbo are handed to the domain's orphan list.
class EbrDomain::ThreadState {
 public:
  explicit ThreadState(EbrDomain* domain)
      : domain_(domain), domain_id_(domain->id_), slot_(domain->RegisterThread()) {}

  ~ThreadState() {
    std::lock_guard<std::mutex> lock(AliveMutex());
    auto& alive = AliveDomains();
    if (std::find(alive.begin(), alive.end(), domain_) != alive.end() &&
        domain_->id_ == domain_id_) {
      domain_->UnregisterThread(slot_, std::move(limbo_));
    } else {
      // The domain died before this thread (or its address was reused by a
      // younger domain): nobody can still be reading the retired objects.
      for (const Retired& entry : limbo_) {
        entry.deleter(entry.ptr);
      }
    }
  }

  ThreadState(const ThreadState&) = delete;
  ThreadState& operator=(const ThreadState&) = delete;

  EbrDomain* domain_;
  uint64_t domain_id_;
  int slot_;
  std::vector<Retired> limbo_;
  uint64_t quiesce_calls_ = 0;
};

namespace {
std::atomic<uint64_t> g_ebr_domain_counter{1};
}  // namespace

EbrDomain::EbrDomain() : id_(g_ebr_domain_counter.fetch_add(1, std::memory_order_relaxed)) {
  std::lock_guard<std::mutex> lock(AliveMutex());
  AliveDomains().push_back(this);
}

EbrDomain::~EbrDomain() {
  DrainAll();
  std::lock_guard<std::mutex> lock(AliveMutex());
  auto& alive = AliveDomains();
  alive.erase(std::remove(alive.begin(), alive.end(), this), alive.end());
}

EbrDomain& EbrDomain::Global() {
  static EbrDomain* domain = new EbrDomain();  // intentionally immortal
  return *domain;
}

int EbrDomain::RegisterThread() {
  const uint64_t now = global_epoch_.load(std::memory_order_acquire);
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      slots_[i].local_epoch.store(now, std::memory_order_release);
      return i;
    }
  }
  SB7_CHECK(false && "EbrDomain: too many registered threads");
  return -1;
}

void EbrDomain::UnregisterThread(int slot, std::vector<Retired>&& leftovers) {
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    orphans_.insert(orphans_.end(), leftovers.begin(), leftovers.end());
  }
  slots_[slot].in_use.store(false, std::memory_order_release);
}

EbrDomain::ThreadState& EbrDomain::LocalState() {
  thread_local std::vector<std::unique_ptr<ThreadState>> states;
  for (const auto& state : states) {
    if (state->domain_ == this && state->domain_id_ == id_) {
      return *state;
    }
  }
  states.push_back(std::make_unique<ThreadState>(this));
  return *states.back();
}

void EbrDomain::Retire(void* ptr, void (*deleter)(void*)) {
  ThreadState& state = LocalState();
  state.limbo_.push_back(
      Retired{ptr, deleter, global_epoch_.load(std::memory_order_acquire)});
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (state.limbo_.size() >= kLimboReclaimThreshold) {
    TryReclaim();
  }
}

void EbrDomain::Quiesce() {
  ThreadState& state = LocalState();
  slots_[state.slot_].local_epoch.store(global_epoch_.load(std::memory_order_acquire),
                                        std::memory_order_release);
  if (++state.quiesce_calls_ % kQuiesceReclaimPeriod == 0 || !state.limbo_.empty()) {
    TryReclaim();
  }
}

uint64_t EbrDomain::MinAnnouncedEpoch() const {
  uint64_t min_epoch = global_epoch_.load(std::memory_order_acquire);
  for (const Slot& slot : slots_) {
    if (slot.in_use.load(std::memory_order_acquire)) {
      min_epoch = std::min(min_epoch, slot.local_epoch.load(std::memory_order_acquire));
    }
  }
  return min_epoch;
}

void EbrDomain::FreeSafe(std::vector<Retired>& limbo, uint64_t safe_before) {
  auto writer = limbo.begin();
  for (auto& entry : limbo) {
    if (entry.epoch < safe_before) {
      entry.deleter(entry.ptr);
      pending_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      *writer++ = entry;
    }
  }
  limbo.erase(writer, limbo.end());
}

void EbrDomain::TryReclaim() {
  const uint64_t min_epoch = MinAnnouncedEpoch();
  const uint64_t global = global_epoch_.load(std::memory_order_acquire);
  if (min_epoch == global) {
    // Every thread has seen the current epoch; it is safe to open a new one.
    uint64_t expected = global;
    global_epoch_.compare_exchange_strong(expected, global + 1, std::memory_order_acq_rel);
  }
  // Objects retired at epoch e are safe once min >= e + 2.
  if (min_epoch < 2) {
    return;
  }
  const uint64_t safe_before = min_epoch - 1;
  FreeSafe(LocalState().limbo_, safe_before);
  if (orphan_mu_.try_lock()) {
    FreeSafe(orphans_, safe_before);
    orphan_mu_.unlock();
  }
}

int64_t EbrDomain::DrainAll() {
  int64_t freed = 0;
  const uint64_t everything = ~uint64_t{0};
  {
    std::vector<Retired>& limbo = LocalState().limbo_;
    freed += static_cast<int64_t>(limbo.size());
    FreeSafe(limbo, everything);
  }
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    freed += static_cast<int64_t>(orphans_.size());
    FreeSafe(orphans_, everything);
  }
  return freed;
}

int64_t EbrDomain::PendingCount() const { return pending_.load(std::memory_order_relaxed); }

}  // namespace sb7
