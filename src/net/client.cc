#include "src/net/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/harness/workload.h"
#include "src/net/net.h"
#include "src/net/wire.h"

namespace sb7::net {

namespace {

/// Matches the driver's "delayed" threshold: sub-millisecond lateness is
/// scheduling noise, not queueing.
constexpr int64_t kDelayedThresholdNanos = 1'000'000;

/// Sleep granularity while waiting for a scheduled arrival.
constexpr int64_t kPaceSleepNanos = 200'000;

struct ConnState {
  ClientResult result;
  /// request_id → reference nanos (send time for closed loop, scheduled
  /// arrival for open loop) for every unanswered request.
  std::unordered_map<uint64_t, int64_t> outstanding;
  std::string inbuf;
};

/// Reads one whole frame (header + payload) with the remaining budget.
bool ReadFrame(int fd, std::string* payload, int timeout_ms) {
  unsigned char header[4];
  if (!ReadFull(fd, header, sizeof(header), timeout_ms)) {
    return false;
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    return false;
  }
  payload->resize(length);
  return length == 0 || ReadFull(fd, payload->data(), length, timeout_ms);
}

void CountResponse(ConnState& state, const OpResponse& response,
                   int64_t now_nanos) {
  auto it = state.outstanding.find(response.request_id);
  if (it == state.outstanding.end()) {
    return;  // duplicate or unknown id; nothing sane to account it to
  }
  const int64_t reference = it->second;
  state.outstanding.erase(it);
  switch (response.status) {
    case Status::kOk:
      ++state.result.ok;
      break;
    case Status::kOpFailed:
      ++state.result.op_failed;
      break;
    case Status::kRejected:
      ++state.result.rejected;
      return;  // rejected: no latency sample — it was never executed
    case Status::kBadRequest:
      ++state.result.bad;
      return;
  }
  const int64_t latency = now_nanos - reference;
  state.result.latency.Record(latency > 0 ? latency : 0);
  state.result.server_latency.Record(response.server_nanos);
}

/// Drains whatever response bytes are available without blocking.
/// Returns false on a dead connection.
bool DrainResponses(int fd, ConnState& state) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ReadSome(fd, buffer, sizeof(buffer));
    if (n > 0) {
      state.inbuf.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    return false;  // EOF or hard error
  }
  std::string payload;
  for (;;) {
    const FrameStatus status = TryExtractFrame(&state.inbuf, &payload);
    if (status == FrameStatus::kNeedMore) {
      return true;
    }
    if (status == FrameStatus::kTooLarge) {
      return false;
    }
    OpResponse response;
    if (DecodeResponse(payload, &response)) {
      CountResponse(state, response, NowNanos());
    }
  }
}

void RunConnection(const ClientOptions& options, int64_t op_budget, Rng rng,
                   ConnState& state) {
  ConnectResult conn = ConnectTcp(options.host, options.port);
  if (!conn.ok()) {
    state.result.error = conn.error;
    return;
  }
  const int fd = conn.fd.get();
  // Non-blocking end to end: every wait below goes through the poll-based
  // deadline helpers, so a dead server times out instead of hanging.
  if (!SetNonBlocking(fd)) {
    state.result.error = "fcntl(O_NONBLOCK) failed";
    return;
  }

  std::string frame;
  AppendFrame(&frame, EncodeHello(Hello{}));
  if (!WriteAll(fd, frame, options.io_timeout_ms)) {
    state.result.error = "handshake write failed";
    return;
  }
  std::string payload;
  if (!ReadFrame(fd, &payload, options.io_timeout_ms)) {
    state.result.error = "handshake read failed";
    return;
  }
  HelloAck ack;
  if (!DecodeHelloAck(payload, &ack) || ack.version != kWireVersion) {
    state.result.error = "handshake rejected (version mismatch?)";
    return;
  }
  if (static_cast<size_t>(ack.op_count) != options.ratios.size()) {
    state.result.error = "operation registry size mismatch with server";
    return;
  }

  const bool open_loop = options.arrival != ArrivalModel::kClosed;
  const double worker_rate =
      options.rate_ops_per_sec / std::max(1, options.connections);
  const int64_t start = NowNanos();
  const int64_t deadline =
      start + static_cast<int64_t>(options.seconds * 1e9);
  int64_t next_arrival = start;
  if (options.arrival == ArrivalModel::kPoisson) {
    // Stagger the first arrival by one drawn gap, like the driver, so the
    // connections don't fire in lockstep at t=0.
    next_arrival +=
        static_cast<int64_t>(-std::log1p(-rng.NextDouble()) * 1e9 / worker_rate);
  }
  int64_t arrival_count = 0;
  uint64_t next_id = 1;

  while (NowNanos() < deadline &&
         (op_budget < 0 || state.result.sent < op_budget)) {
    int64_t reference;
    if (open_loop) {
      const int64_t arrival = next_arrival;
      int64_t gap = 0;
      if (options.arrival == ArrivalModel::kPoisson) {
        gap = static_cast<int64_t>(-std::log1p(-rng.NextDouble()) * 1e9 /
                                   worker_rate);
      } else {
        // Bursty: burst_size back-to-back arrivals, spaced so the average
        // rate still meets the target (same math as the driver).
        arrival_count += 1;
        if (arrival_count % options.burst_size == 0) {
          gap = static_cast<int64_t>(
              static_cast<double>(options.burst_size) * 1e9 / worker_rate);
        }
      }
      next_arrival = arrival + gap;
      int64_t now;
      bool expired = false;
      while ((now = NowNanos()) < arrival) {
        if (now >= deadline) {
          expired = true;
          break;
        }
        // Use the wait to keep the response pipe drained.
        if (!DrainResponses(fd, state)) {
          state.result.error = "connection lost mid-run";
          return;
        }
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min(arrival - now, kPaceSleepNanos)));
      }
      if (expired) {
        break;
      }
      const int64_t send_begin = NowNanos();
      state.result.pace.arrivals += 1;
      const int64_t delay = send_begin - arrival;
      state.result.pace.queue_delay.Record(delay > 0 ? delay : 0);
      if (delay > kDelayedThresholdNanos) {
        state.result.pace.delayed += 1;
        const auto backlog = static_cast<int64_t>(
            static_cast<double>(delay) / 1e9 * worker_rate);
        state.result.pace.backlog_peak =
            std::max(state.result.pace.backlog_peak, backlog);
      }
      reference = arrival;  // sojourn time: scheduled arrival → response
    } else {
      reference = NowNanos();  // service time: send → response
    }

    OpRequest request;
    request.request_id = next_id++;
    request.op_index =
        static_cast<uint16_t>(SampleOperation(options.ratios, rng));
    frame.clear();
    AppendFrame(&frame, EncodeRequest(request));
    if (!WriteAll(fd, frame, options.io_timeout_ms)) {
      state.result.error = "request write failed";
      return;
    }
    state.outstanding[request.request_id] = reference;
    ++state.result.sent;

    if (open_loop) {
      if (!DrainResponses(fd, state)) {
        state.result.error = "connection lost mid-run";
        return;
      }
    } else {
      // Closed loop: block (deadline-bounded) until this request's
      // response arrives before issuing the next one.
      while (!state.outstanding.empty()) {
        if (!ReadFrame(fd, &payload, options.io_timeout_ms)) {
          state.result.error = "response read failed";
          return;
        }
        OpResponse response;
        if (DecodeResponse(payload, &response)) {
          CountResponse(state, response, NowNanos());
        }
      }
    }
  }

  // Final drain: give in-flight requests one io_timeout to come home;
  // whatever is still unanswered counts as lost.
  const int64_t drain_deadline =
      NowNanos() + static_cast<int64_t>(options.io_timeout_ms) * 1'000'000;
  while (!state.outstanding.empty() && NowNanos() < drain_deadline) {
    if (!ReadFrame(fd, &payload, 50)) {
      if (!DrainResponses(fd, state)) {
        break;
      }
      continue;
    }
    OpResponse response;
    if (DecodeResponse(payload, &response)) {
      CountResponse(state, response, NowNanos());
    }
  }
  state.result.lost = static_cast<int64_t>(state.outstanding.size());
  state.result.elapsed_seconds =
      static_cast<double>(NowNanos() - start) / 1e9;
}

}  // namespace

ClientResult RunLoadClient(const ClientOptions& options) {
  ClientResult merged;
  if (options.connections < 1) {
    merged.error = "connections must be >= 1";
    return merged;
  }
  if (options.ratios.empty()) {
    merged.error = "empty operation mix";
    return merged;
  }

  const int conns = options.connections;
  std::vector<ConnState> states(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  Rng seeder(options.seed ^ 0xc1ee75e5b7ull);
  for (int c = 0; c < conns; ++c) {
    // Split the total budget across connections; the first few absorb the
    // remainder so the sum is exact.
    int64_t budget = -1;
    if (options.max_ops >= 0) {
      budget = options.max_ops / conns + (c < options.max_ops % conns ? 1 : 0);
    }
    Rng rng = seeder.Split();
    threads.emplace_back([&options, budget, rng, &states, c]() mutable {
      RunConnection(options, budget, rng, states[c]);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  for (ConnState& state : states) {
    if (!state.result.Ok() && merged.error.empty()) {
      merged.error = state.result.error;
    }
    merged.sent += state.result.sent;
    merged.ok += state.result.ok;
    merged.op_failed += state.result.op_failed;
    merged.rejected += state.result.rejected;
    merged.bad += state.result.bad;
    merged.lost += state.result.lost;
    merged.latency.Merge(state.result.latency);
    merged.server_latency.Merge(state.result.server_latency);
    merged.pace.Merge(state.result.pace);
    merged.elapsed_seconds =
        std::max(merged.elapsed_seconds, state.result.elapsed_seconds);
  }
  return merged;
}

}  // namespace sb7::net
