#include "src/net/ingress.h"

#include <chrono>

namespace sb7::net {

bool IngressQueue::TryPush(const IngressRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    queue_.push_back(request);
    ++accepted_;
  }
  not_empty_.notify_one();
  return true;
}

size_t IngressQueue::PopBatch(std::vector<IngressRequest>* out,
                              size_t max_batch, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty() && !closed_ && timeout_ms > 0) {
    not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return !queue_.empty() || closed_; });
  }
  size_t popped = 0;
  while (popped < max_batch && !queue_.empty()) {
    out->push_back(queue_.front());
    queue_.pop_front();
    ++popped;
  }
  return popped;
}

void IngressQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool IngressQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t IngressQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t IngressQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

uint64_t IngressQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace sb7::net
