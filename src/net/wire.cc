#include "src/net/wire.h"

namespace sb7::net {

namespace {

void PutU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

bool GetU16(const std::string& in, size_t* pos, uint16_t* value) {
  if (*pos + 2 > in.size()) {
    return false;
  }
  *value = static_cast<uint16_t>(
      static_cast<uint8_t>(in[*pos]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(in[*pos + 1])) << 8));
  *pos += 2;
  return true;
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* value) {
  if (*pos + 4 > in.size()) {
    return false;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *value = v;
  *pos += 4;
  return true;
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* value) {
  if (*pos + 8 > in.size()) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *value = v;
  *pos += 8;
  return true;
}

bool CheckType(const std::string& payload, MsgType expected, size_t* pos) {
  if (payload.empty() ||
      static_cast<uint8_t>(payload[0]) != static_cast<uint8_t>(expected)) {
    return false;
  }
  *pos = 1;
  return true;
}

}  // namespace

void AppendFrame(std::string* out, const std::string& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

FrameStatus TryExtractFrame(std::string* buffer, std::string* payload) {
  if (buffer->size() < 4) {
    return FrameStatus::kNeedMore;
  }
  size_t pos = 0;
  uint32_t length = 0;
  GetU32(*buffer, &pos, &length);
  if (length > kMaxFrameBytes) {
    return FrameStatus::kTooLarge;
  }
  if (buffer->size() < 4 + static_cast<size_t>(length)) {
    return FrameStatus::kNeedMore;
  }
  payload->assign(*buffer, 4, length);
  buffer->erase(0, 4 + static_cast<size_t>(length));
  return FrameStatus::kFrame;
}

std::string EncodeHello(const Hello& msg) {
  std::string out;
  out.push_back(static_cast<char>(MsgType::kHello));
  PutU32(&out, msg.magic);
  PutU16(&out, msg.version);
  return out;
}

std::string EncodeHelloAck(const HelloAck& msg) {
  std::string out;
  out.push_back(static_cast<char>(MsgType::kHelloAck));
  PutU16(&out, msg.version);
  PutU16(&out, msg.op_count);
  return out;
}

std::string EncodeRequest(const OpRequest& msg) {
  std::string out;
  out.push_back(static_cast<char>(MsgType::kRequest));
  PutU64(&out, msg.request_id);
  PutU16(&out, msg.op_index);
  return out;
}

std::string EncodeResponse(const OpResponse& msg) {
  std::string out;
  out.push_back(static_cast<char>(MsgType::kResponse));
  PutU64(&out, msg.request_id);
  out.push_back(static_cast<char>(msg.status));
  PutU32(&out, msg.server_nanos);
  return out;
}

bool DecodeHello(const std::string& payload, Hello* out) {
  size_t pos = 0;
  return CheckType(payload, MsgType::kHello, &pos) &&
         GetU32(payload, &pos, &out->magic) &&
         GetU16(payload, &pos, &out->version);
}

bool DecodeHelloAck(const std::string& payload, HelloAck* out) {
  size_t pos = 0;
  return CheckType(payload, MsgType::kHelloAck, &pos) &&
         GetU16(payload, &pos, &out->version) &&
         GetU16(payload, &pos, &out->op_count);
}

bool DecodeRequest(const std::string& payload, OpRequest* out) {
  size_t pos = 0;
  return CheckType(payload, MsgType::kRequest, &pos) &&
         GetU64(payload, &pos, &out->request_id) &&
         GetU16(payload, &pos, &out->op_index);
}

bool DecodeResponse(const std::string& payload, OpResponse* out) {
  size_t pos = 0;
  if (!CheckType(payload, MsgType::kResponse, &pos) ||
      !GetU64(payload, &pos, &out->request_id)) {
    return false;
  }
  if (pos >= payload.size()) {
    return false;
  }
  out->status = static_cast<Status>(static_cast<uint8_t>(payload[pos]));
  ++pos;
  return GetU32(payload, &pos, &out->server_nanos);
}

uint8_t PeekType(const std::string& payload) {
  return payload.empty() ? 0 : static_cast<uint8_t>(payload[0]);
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kOpFailed:
      return "op_failed";
    case Status::kRejected:
      return "rejected";
    case Status::kBadRequest:
      return "bad_request";
  }
  return "unknown";
}

}  // namespace sb7::net
