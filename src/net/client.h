// Load-generator client for sb7-serve: the remote counterpart of the
// scenario engine's arrival models. Each connection runs its own thread
// speaking the wire.h protocol; the arrival process is either closed-loop
// (next request after the previous response — PR-3's implicit model) or
// open-loop Poisson / bursty, reusing the driver's arrival math so a
// `--arrival poisson --rate R` client run is directly comparable to the
// same in-process scenario phase. Open-loop latency is the full sojourn
// time (scheduled arrival → response), so server-side queueing shows up in
// the percentiles the way the paper's open-loop analysis expects.

#ifndef STMBENCH7_SRC_NET_CLIENT_H_
#define STMBENCH7_SRC_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/metrics.h"
#include "src/scenario/scenario.h"

namespace sb7::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 1;
  double seconds = 5.0;

  ArrivalModel arrival = ArrivalModel::kClosed;
  /// Aggregate target rate across all connections (open-loop models only).
  double rate_ops_per_sec = 1000.0;
  int burst_size = 32;

  /// Operation mix, parallel to the server's registry (ComputeOperationRatios
  /// output). Its size must equal the op_count the server advertises.
  std::vector<double> ratios;

  uint64_t seed = 20070326;
  /// Total request budget across connections; -1 = until `seconds` elapse.
  int64_t max_ops = -1;
  /// Per-I/O deadline (handshake, sends, final response drain).
  int io_timeout_ms = 5000;
};

struct ClientResult {
  std::string error;  ///< non-empty = the run failed to start or mid-flight
  double elapsed_seconds = 0.0;

  int64_t sent = 0;
  int64_t ok = 0;
  int64_t op_failed = 0;
  int64_t rejected = 0;  ///< typed backpressure responses
  int64_t bad = 0;       ///< kBadRequest responses (should be zero)
  int64_t lost = 0;      ///< sent but never answered (drain deadline hit)

  /// End-to-end latency of answered requests: send→response for closed
  /// loop, scheduled-arrival→response (sojourn) for open loop.
  TtcHistogram latency;
  /// Server-reported execute latency (the wire's server_nanos field);
  /// latency minus this is wire + queueing overhead.
  TtcHistogram server_latency;
  /// Client-side pacing accounting (open-loop models only).
  PaceMetrics pace;

  bool Ok() const { return error.empty(); }
  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(ok + op_failed) / elapsed_seconds : 0.0;
  }
};

/// Runs the load client to completion (blocks). Thread-per-connection;
/// the result merges all connections.
ClientResult RunLoadClient(const ClientOptions& options);

}  // namespace sb7::net

#endif  // STMBENCH7_SRC_NET_CLIENT_H_
