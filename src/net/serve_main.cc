// sb7-serve: the network front-end (and its load generator).
//
//   --listen  <port>       serve operation requests over TCP: the event
//                          loop (src/net/server.*) admits requests into a
//                          bounded ingress queue and the phase-aware
//                          BenchmarkRunner's workers execute them.
//   --connect <host:port>  drive a remote sb7-serve as a load generator,
//                          reusing the scenario engine's closed-loop /
//                          Poisson / bursty arrival models client-side.
//
// See docs/SERVING.md for the wire format, session lifecycle, and
// backpressure semantics.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/text.h"
#include "src/harness/driver.h"
#include "src/harness/report.h"
#include "src/harness/workload.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace sb7 {
namespace {

struct ServeOptions {
  // --listen mode
  bool listen = false;
  int port = 0;
  std::string backend = "tl2";
  std::string scale = "small";
  int threads = 4;
  double seconds = 10.0;
  size_t queue_capacity = 1024;
  size_t batch = 16;
  int metrics_port = -1;
  std::string redo_log;         // non-empty: durable redo log (mvstm only)
  std::string durability = "off";

  // --connect mode
  bool connect = false;
  std::string host = "127.0.0.1";
  int connections = 4;
  std::string arrival = "closed";
  double rate = 1000.0;
  int burst = 32;
  int64_t max_ops = -1;

  // shared
  std::string workload = "r";
  double read_fraction = -1.0;  // < 0: use the workload preset
  uint64_t seed = 20070326;
};

const char kUsage[] = R"(usage:
  sb7-serve --listen <port> [server flags]
  sb7-serve --connect <host:port> [client flags]

server flags:
  -b, --backend <name>      sync strategy (default tl2)
  -s, --scale <name>        tiny | small | medium (default small)
  -t, --threads <n>         executor worker threads (default 4)
  -l, --seconds <s>         serve duration (default 10)
      --queue <n>           ingress queue capacity (default 1024);
                            a full queue rejects with a typed error
      --batch <n>           requests per worker queue pop (default 16)
      --metrics-port <p>    telemetry /metrics endpoint (0 = ephemeral)
      --redo-log <file>     append a durable redo log; group commit amortizes
                            the fsyncs (-b mvstm only, docs/DURABILITY.md)
      --durability <p>      off | group | always (default off; needs --redo-log)

client flags:
  -t, --threads <n>         concurrent connections (default 4)
  -l, --seconds <s>         run duration (default 10)
      --arrival <model>     closed | poisson | bursty (default closed)
      --rate <ops/s>        aggregate open-loop target rate (default 1000)
      --burst <n>           bursty batch size (default 32)
      --max-ops <n>         total request budget (default unlimited)

shared flags:
  -w, --workload <type>     r | rw | w operation mix (default r)
      --read-fraction <f>   override the preset read-only share
      --seed <n>            RNG seed (default 20070326)
  -h, --help
)";

bool ParseArgs(int argc, char** argv, ServeOptions* opts, std::string* error) {
  auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      *error = flag + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t n = 0;
    double d = 0.0;
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--listen") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 0 || n > 65535) {
        *error = error->empty() ? "--listen needs a port in [0, 65535]" : *error;
        return false;
      }
      opts->listen = true;
      opts->port = static_cast<int>(n);
    } else if (arg == "--connect") {
      const char* value = need_value(i, arg);
      if (value == nullptr) {
        return false;
      }
      const std::string target = value;
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon + 1 >= target.size() ||
          !ParseInt64(target.substr(colon + 1), n) || n <= 0 || n > 65535) {
        *error = "--connect needs host:port";
        return false;
      }
      opts->connect = true;
      opts->host = target.substr(0, colon);
      opts->port = static_cast<int>(n);
    } else if (arg == "-b" || arg == "--backend") {
      const char* value = need_value(i, arg);
      if (value == nullptr) {
        return false;
      }
      opts->backend = value;
    } else if (arg == "-s" || arg == "--scale") {
      const char* value = need_value(i, arg);
      if (value == nullptr) {
        return false;
      }
      opts->scale = value;
    } else if (arg == "-t" || arg == "--threads") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 1) {
        *error = error->empty() ? "--threads needs a positive integer" : *error;
        return false;
      }
      opts->threads = static_cast<int>(n);
      opts->connections = static_cast<int>(n);
    } else if (arg == "-l" || arg == "--seconds") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseDouble(value, d) || d <= 0) {
        *error = error->empty() ? "--seconds needs a positive number" : *error;
        return false;
      }
      opts->seconds = d;
    } else if (arg == "--queue") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 1) {
        *error = error->empty() ? "--queue needs a positive integer" : *error;
        return false;
      }
      opts->queue_capacity = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 1) {
        *error = error->empty() ? "--batch needs a positive integer" : *error;
        return false;
      }
      opts->batch = static_cast<size_t>(n);
    } else if (arg == "--metrics-port") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 0 || n > 65535) {
        *error = error->empty() ? "--metrics-port needs a port" : *error;
        return false;
      }
      opts->metrics_port = static_cast<int>(n);
    } else if (arg == "--redo-log") {
      const char* value = need_value(i, arg);
      if (value == nullptr || *value == '\0') {
        *error = error->empty() ? "--redo-log needs a file path" : *error;
        return false;
      }
      opts->redo_log = value;
    } else if (arg == "--durability") {
      const char* value = need_value(i, arg);
      redo::Durability durability = redo::Durability::kOff;
      if (value == nullptr || !redo::ParseDurability(value, &durability)) {
        *error = error->empty() ? "--durability needs off, group or always" : *error;
        return false;
      }
      opts->durability = value;
    } else if (arg == "--arrival") {
      const char* value = need_value(i, arg);
      if (value == nullptr) {
        return false;
      }
      opts->arrival = value;
    } else if (arg == "--rate") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseDouble(value, d) || d <= 0) {
        *error = error->empty() ? "--rate needs a positive number" : *error;
        return false;
      }
      opts->rate = d;
    } else if (arg == "--burst") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n) || n < 1) {
        *error = error->empty() ? "--burst needs a positive integer" : *error;
        return false;
      }
      opts->burst = static_cast<int>(n);
    } else if (arg == "--max-ops") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseInt64(value, n)) {
        *error = error->empty() ? "--max-ops needs an integer" : *error;
        return false;
      }
      opts->max_ops = n;
    } else if (arg == "-w" || arg == "--workload") {
      const char* value = need_value(i, arg);
      if (value == nullptr) {
        return false;
      }
      opts->workload = value;
    } else if (arg == "--read-fraction") {
      const char* value = need_value(i, arg);
      if (value == nullptr || !ParseDouble(value, d) || d < 0 || d > 1) {
        *error = error->empty() ? "--read-fraction needs a value in [0, 1]" : *error;
        return false;
      }
      opts->read_fraction = d;
    } else if (arg == "--seed") {
      const char* value = need_value(i, arg);
      uint64_t seed = 0;
      if (value == nullptr || !ParseUint64(value, seed)) {
        *error = error->empty() ? "--seed needs an integer" : *error;
        return false;
      }
      opts->seed = seed;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  if (opts->listen == opts->connect) {
    *error = "exactly one of --listen or --connect is required";
    return false;
  }
  if (!opts->redo_log.empty() && opts->backend != "mvstm") {
    *error = "--redo-log requires -b mvstm (group commit is an mvstm capability)";
    return false;
  }
  return true;
}

int RunServer(const ServeOptions& opts) {
  net::IngressQueue queue(opts.queue_capacity);

  BenchConfig config;
  config.strategy = opts.backend;
  config.scale = opts.scale;
  config.threads = opts.threads;
  config.length_seconds = opts.seconds;
  config.workload = WorkloadTypeForName(opts.workload);
  if (opts.read_fraction >= 0) {
    config.read_fraction = opts.read_fraction;
  }
  config.seed = opts.seed;
  config.metrics_port = opts.metrics_port;
  config.ingress = &queue;
  config.ingress_batch = opts.batch;
  config.redo_log_path = opts.redo_log;
  config.durability = opts.durability;

  // The server must exist before the runner so the completion hook can
  // capture it; op_count comes from the runner's registry after build.
  net::ServerOptions server_options;
  server_options.port = opts.port;
  net::OpServer* server_ptr = nullptr;
  config.on_ingress_complete = [&server_ptr](const net::IngressRequest& request,
                                             net::Status status,
                                             int64_t nanos) {
    if (server_ptr != nullptr) {
      server_ptr->Complete(request, status, nanos);
    }
  };

  std::cerr << "building the " << config.scale << " structure...\n";
  BenchmarkRunner runner(config);
  net::OpServer server(server_options, &queue,
                       static_cast<uint16_t>(runner.registry().all().size()));
  server_ptr = &server;

  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: cannot listen: " << error << "\n";
    return 2;
  }
  if (config.metrics_port >= 0 && runner.telemetry() != nullptr) {
    if (runner.telemetry()->StartServer(&error)) {
      std::cerr << "metrics endpoint listening on port "
                << runner.telemetry()->server_port() << " (/metrics, /series)\n";
    } else {
      std::cerr << "warning: metrics endpoint disabled: " << error << "\n";
    }
  }
  std::cerr << "serving on port " << server.port() << " ("
            << runner.spawned_threads() << " executor(s), backend '"
            << config.strategy << "', queue " << opts.queue_capacity
            << ", batch " << opts.batch << ") for " << opts.seconds << " s...\n";

  const BenchResult result = runner.Run();

  // Shutdown order: close the queue first so late arrivals get typed
  // rejections while anything already admitted has been answered, then
  // stop the event loop.
  queue.Close();
  server.Stop();

  PrintReport(std::cout, runner, result);
  const net::ServerStats stats = server.stats();
  std::cout << "serve: sessions accepted " << stats.sessions_accepted
            << ", dropped " << stats.sessions_dropped << ", frames in "
            << stats.frames_in << ", bad " << stats.bad_frames
            << ", admitted " << queue.accepted() << ", rejected "
            << queue.rejected() << "\n";
  if (runner.redo_writer() != nullptr) {
    const redo::WriterStats& redo_stats = runner.redo_writer()->stats();
    std::cout << "redo log: " << runner.redo_writer()->path() << " — "
              << redo_stats.groups << " groups, " << redo_stats.members
              << " commits, " << redo_stats.fsyncs << " fsyncs (durability="
              << opts.durability << ")\n";
  }
  return 0;
}

int RunClient(const ServeOptions& opts) {
  net::ClientOptions client;
  client.host = opts.host;
  client.port = opts.port;
  client.connections = opts.connections;
  client.seconds = opts.seconds;
  client.seed = opts.seed;
  client.max_ops = opts.max_ops;
  client.rate_ops_per_sec = opts.rate;
  client.burst_size = opts.burst;
  if (opts.arrival == "closed") {
    client.arrival = ArrivalModel::kClosed;
  } else if (opts.arrival == "poisson") {
    client.arrival = ArrivalModel::kPoisson;
  } else if (opts.arrival == "bursty") {
    client.arrival = ArrivalModel::kBursty;
  } else {
    std::cerr << "error: unknown arrival model '" << opts.arrival << "'\n";
    return 2;
  }

  // The client samples from the same ratio table the server's registry
  // would produce, so the remote mix matches an in-process run bit-for-bit
  // under the same seed.
  OperationRegistry registry;
  const double read_fraction =
      opts.read_fraction >= 0 ? opts.read_fraction
                              : ReadOnlyFraction(WorkloadTypeForName(opts.workload));
  client.ratios = ComputeOperationRatios(registry, read_fraction,
                                         /*long_traversals_enabled=*/true,
                                         /*structure_mods_enabled=*/true, {});

  std::cerr << "driving " << opts.host << ":" << opts.port << " with "
            << client.connections << " connection(s), arrival "
            << opts.arrival << ", for " << opts.seconds << " s...\n";
  const net::ClientResult result = RunLoadClient(client);
  if (!result.Ok()) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }

  std::cout << "client: sent " << result.sent << ", ok " << result.ok
            << ", op_failed " << result.op_failed << ", rejected "
            << result.rejected << ", bad " << result.bad << ", lost "
            << result.lost << "\n";
  std::cout << "throughput: " << result.Throughput() << " op/s over "
            << result.elapsed_seconds << " s\n";
  std::cout << "latency ms: p50 " << result.latency.QuantileMillis(0.50)
            << "  p90 " << result.latency.QuantileMillis(0.90) << "  p99 "
            << result.latency.QuantileMillis(0.99) << "  p999 "
            << result.latency.QuantileMillis(0.999) << "  max "
            << static_cast<double>(result.latency.max_nanos()) / 1e6 << "\n";
  std::cout << "server-side execute ms: p50 "
            << result.server_latency.QuantileMillis(0.50) << "  p99 "
            << result.server_latency.QuantileMillis(0.99) << "\n";
  if (result.pace.arrivals > 0) {
    std::cout << "pacing: arrivals " << result.pace.arrivals << ", delayed "
              << result.pace.delayed << " (queue delay p50 "
              << result.pace.queue_delay.QuantileMillis(0.50) << " ms, p99 "
              << result.pace.queue_delay.QuantileMillis(0.99)
              << " ms, backlog peak " << result.pace.backlog_peak << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace sb7

int main(int argc, char** argv) {
  sb7::ServeOptions opts;
  std::string error;
  if (!sb7::ParseArgs(argc, argv, &opts, &error)) {
    std::cerr << "error: " << error << "\n" << sb7::kUsage;
    return 2;
  }
  return opts.listen ? sb7::RunServer(opts) : sb7::RunClient(opts);
}
