// sb7-serve front-end: an event loop (epoll on Linux, poll elsewhere) that
// accepts TCP clients speaking the wire.h protocol, admits their operation
// requests into a bounded IngressQueue, and writes responses back as the
// BenchmarkRunner's workers complete them.
//
// Threading model: one event-loop thread owns accept + reads + admission;
// worker threads (via BenchmarkRunner's on_ingress_complete hook) call
// Complete() to write responses directly to the session socket. Writes and
// the final close are serialized per-session by a mutex, so a worker can
// never write into an fd the event loop just recycled.

#ifndef STMBENCH7_SRC_NET_SERVER_H_
#define STMBENCH7_SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/net/ingress.h"
#include "src/net/net.h"
#include "src/net/wire.h"

namespace sb7::net {

struct ServerOptions {
  int port = 0;  ///< 0 = ephemeral; read the bound port via port()
  /// Budget for writing one response to a slow client before the session
  /// is declared dead and dropped (the slow-consumer backstop).
  int write_timeout_ms = 2000;
};

struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_dropped = 0;  ///< protocol violations + dead writers
  uint64_t frames_in = 0;
  uint64_t bad_frames = 0;  ///< oversize/undecodable frames (drops session)
  uint64_t rejected = 0;    ///< kRejected responses (queue full / closed)
};

class OpServer {
 public:
  /// `ingress` must outlive the server. `op_count` is the size of the
  /// operation registry, advertised in the HelloAck and used to bounce
  /// out-of-range op indexes as kBadRequest before they reach a worker.
  OpServer(const ServerOptions& options, IngressQueue* ingress,
           uint16_t op_count);
  ~OpServer();

  OpServer(const OpServer&) = delete;
  OpServer& operator=(const OpServer&) = delete;

  /// Binds, listens and spawns the event-loop thread. False + `*error` on
  /// failure.
  bool Start(std::string* error);

  /// Stops the event loop and closes every session. Idempotent. Does NOT
  /// close the ingress queue — the run's shutdown order is: close queue,
  /// join runner, then Stop() so late arrivals still get typed rejections
  /// while workers drain.
  void Stop();

  /// Writes the response for one admitted request. Thread-safe; called
  /// from BenchmarkRunner workers. A write failure (or timeout) marks the
  /// session dead; the event loop reaps it.
  void Complete(const IngressRequest& request, Status status,
                int64_t server_nanos);

  int port() const { return port_; }
  ServerStats stats() const;

 private:
  struct Session;
  class Poller;

  void EventLoop();
  void AcceptNewSessions(Poller* poller);
  /// Drains readable bytes and frames from one session; returns false when
  /// the session should be dropped.
  bool ServiceSession(Session& session);
  bool HandleFrame(Session& session, const std::string& payload);
  /// Serialized frame write; marks the session dead on failure.
  bool SendFrame(Session& session, const std::string& payload);
  void DropSession(uint64_t session_id, Poller* poller);

  const ServerOptions options_;
  IngressQueue* const ingress_;
  const uint16_t op_count_;

  UniqueFd listen_fd_;
  int port_ = -1;
  std::thread loop_thread_;
  // mo: start/stop handshake only — the loop re-checks every tick and
  // Stop() joins the thread, so relaxed visibility timing is enough.
  std::atomic<bool> running_{false};

  mutable std::mutex sessions_mutex_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace sb7::net

#endif  // STMBENCH7_SRC_NET_SERVER_H_
