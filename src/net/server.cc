#include "src/net/server.h"

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "src/common/timing.h"

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace sb7::net {

namespace {

/// How long the event loop sleeps when nothing is ready; bounds shutdown
/// latency and the reap delay for sessions killed by a worker's write.
constexpr int kLoopTickMs = 50;

}  // namespace

#if defined(__linux__)

/// epoll-backed readiness watcher (the common production path).
class OpServer::Poller {
 public:
  Poller() : epfd_(::epoll_create1(0)) {}

  bool ok() const { return epfd_.valid(); }

  void Add(int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev);
  }

  void Remove(int fd) {
    epoll_event ev{};
    ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  /// Fills `ready` with readable fds, EINTR-retrying like PollRetry.
  void Wait(std::vector<int>* ready, int timeout_ms) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epfd_.get(), events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      ready->push_back(events[i].data.fd);
    }
  }

 private:
  UniqueFd epfd_;
};

#else  // !__linux__

/// poll(2) fallback: rebuilds the fd list per wait. Fine for the session
/// counts a benchmark front-end sees.
class OpServer::Poller {
 public:
  bool ok() const { return true; }

  void Add(int fd) { fds_.push_back(fd); }

  void Remove(int fd) {
    fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
  }

  void Wait(std::vector<int>* ready, int timeout_ms) {
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (int fd : fds_) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfds.push_back(pfd);
    }
    const int n =
        PollRetry(pfds.data(), static_cast<int>(pfds.size()), timeout_ms);
    if (n <= 0) {
      return;
    }
    for (const pollfd& pfd : pfds) {
      if (pfd.revents != 0) {
        ready->push_back(pfd.fd);
      }
    }
  }

 private:
  std::vector<int> fds_;
};

#endif  // __linux__

struct OpServer::Session {
  uint64_t id = 0;
  UniqueFd fd;
  std::string inbuf;
  bool hello_done = false;
  // Serializes worker-thread response writes against each other and
  // against the event loop's final close — a worker can never write into
  // an fd number the kernel has already recycled.
  std::mutex write_mutex;
  // mo: release/acquire pairs the killing thread's write failure with the
  // event loop's reap check; the fd itself is protected by write_mutex.
  std::atomic<bool> dead{false};
};

OpServer::OpServer(const ServerOptions& options, IngressQueue* ingress,
                   uint16_t op_count)
    : options_(options), ingress_(ingress), op_count_(op_count) {}

OpServer::~OpServer() { Stop(); }

bool OpServer::Start(std::string* error) {
  ListenResult listen = ListenTcp(options_.port);
  if (!listen.ok()) {
    if (error != nullptr) {
      *error = listen.error;
    }
    return false;
  }
  listen_fd_ = std::move(listen.fd);
  port_ = listen.port;
  // mo: start handshake with the loop thread; thread creation below is the
  // real synchronization point.
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return true;
}

void OpServer::Stop() {
  // mo: loop exit flag; the join below is the real synchronization.
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  if (was_running) {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> write_lock(session->write_mutex);
      session->fd.reset();
    }
    sessions_.clear();
  }
  listen_fd_.reset();
}

ServerStats OpServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void OpServer::Complete(const IngressRequest& request, Status status,
                        int64_t server_nanos) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end()) {
      return;  // session already dropped; nobody is waiting for the answer
    }
    session = it->second;
  }
  OpResponse response;
  response.request_id = request.request_id;
  response.status = status;
  // The wire field is u32 nanos (~4.29 s); anything longer saturates.
  response.server_nanos =
      server_nanos < 0
          ? 0
          : static_cast<uint32_t>(std::min<int64_t>(server_nanos, UINT32_MAX));
  SendFrame(*session, EncodeResponse(response));
}

bool OpServer::SendFrame(Session& session, const std::string& payload) {
  std::string frame;
  AppendFrame(&frame, payload);
  std::lock_guard<std::mutex> lock(session.write_mutex);
  if (!session.fd.valid()) {
    return false;
  }
  if (!WriteAll(session.fd.get(), frame, options_.write_timeout_ms)) {
    // mo: publish the death; the event loop's acquire reap check pairs
    // with this release.
    session.dead.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

void OpServer::EventLoop() {
  Poller poller;
  if (!poller.ok()) {
    return;
  }
  poller.Add(listen_fd_.get());
  std::vector<int> ready;
  // mo: plain run/stop flag re-checked every tick; Stop() joins.
  while (running_.load(std::memory_order_acquire)) {
    ready.clear();
    poller.Wait(&ready, kLoopTickMs);

    for (int fd : ready) {
      if (fd == listen_fd_.get()) {
        AcceptNewSessions(&poller);
        break;
      }
    }

    // Snapshot the ready sessions once; servicing happens outside the
    // table lock so Complete() calls never contend with slow reads.
    std::vector<std::shared_ptr<Session>> to_service;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (int fd : ready) {
        if (fd == listen_fd_.get()) {
          continue;
        }
        for (auto& [id, session] : sessions_) {
          if (session->fd.valid() && session->fd.get() == fd) {
            to_service.push_back(session);
            break;
          }
        }
      }
    }
    for (auto& session : to_service) {
      // mo: acquire pairs with the release in SendFrame's failure path.
      if (session->dead.load(std::memory_order_acquire) ||
          !ServiceSession(*session)) {
        DropSession(session->id, &poller);
      }
    }

    // Reap sessions killed by worker-thread response writes this tick.
    std::vector<uint64_t> reap;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (auto& [id, session] : sessions_) {
        // mo: acquire pairs with the release in SendFrame's failure path.
        if (session->dead.load(std::memory_order_acquire)) {
          reap.push_back(id);
        }
      }
    }
    for (uint64_t id : reap) {
      DropSession(id, &poller);
    }
  }
}

void OpServer::AcceptNewSessions(Poller* poller) {
  for (;;) {
    const int client = AcceptRetry(listen_fd_.get());
    if (client < 0) {
      // EAGAIN: backlog drained (or the pending client vanished between
      // poll readiness and accept — the exact race the old blocking
      // telemetry accept could wedge on).
      return;
    }
    if (!SetNonBlocking(client)) {
      CloseFd(client);
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = UniqueFd(client);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      session->id = next_session_id_++;
      sessions_[session->id] = session;
    }
    poller->Add(client);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.sessions_accepted;
  }
}

bool OpServer::ServiceSession(Session& session) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ReadSome(session.fd.get(), buffer, sizeof(buffer));
    if (n > 0) {
      session.inbuf.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // drained for now
    }
    return false;  // orderly EOF or hard error: drop
  }

  std::string payload;
  for (;;) {
    const FrameStatus status = TryExtractFrame(&session.inbuf, &payload);
    if (status == FrameStatus::kNeedMore) {
      return true;
    }
    if (status == FrameStatus::kTooLarge) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_frames;
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_in;
    }
    if (!HandleFrame(session, payload)) {
      return false;
    }
  }
}

bool OpServer::HandleFrame(Session& session, const std::string& payload) {
  if (!session.hello_done) {
    Hello hello;
    if (!DecodeHello(payload, &hello) || hello.magic != kWireMagic ||
        hello.version != kWireVersion) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_frames;
      return false;
    }
    session.hello_done = true;
    HelloAck ack;
    ack.op_count = op_count_;
    return SendFrame(session, EncodeHelloAck(ack));
  }

  OpRequest request;
  if (!DecodeRequest(payload, &request)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.bad_frames;
    return false;
  }

  OpResponse immediate;
  immediate.request_id = request.request_id;
  if (request.op_index >= op_count_) {
    immediate.status = Status::kBadRequest;
    return SendFrame(session, EncodeResponse(immediate));
  }

  IngressRequest admit;
  admit.session_id = session.id;
  admit.request_id = request.request_id;
  admit.op_index = request.op_index;
  admit.accepted_nanos = NowNanos();
  if (!ingress_->TryPush(admit)) {
    // Admission control: the bounded queue is full (or the run is over).
    // The typed rejection goes out immediately — backpressure the client
    // can act on, instead of silent buffering or a dropped connection.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
    }
    immediate.status = Status::kRejected;
    return SendFrame(session, EncodeResponse(immediate));
  }
  return true;
}

void OpServer::DropSession(uint64_t session_id, Poller* poller) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return;
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  {
    // Closing under write_mutex: an in-flight Complete() finishes its
    // write first, and later ones see the invalid fd and bail. Unregister
    // from the poller before close so the fd is never watched while dead
    // (the poll fallback would spin on POLLNVAL otherwise).
    std::lock_guard<std::mutex> lock(session->write_mutex);
    if (session->fd.valid()) {
      poller->Remove(session->fd.get());
    }
    session->fd.reset();
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.sessions_dropped;
}

}  // namespace sb7::net
