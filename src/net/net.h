// Hardened socket primitives shared by every network surface of the tree:
// the sb7-serve operation front-end (src/net/server.*, src/net/client.*)
// and the telemetry /metrics endpoint (src/telemetry/http.*).
//
// The layer exists because the first socket ingress (PR-8's metrics server)
// shipped the classic robustness bugs one at a time: send() without
// MSG_NOSIGNAL (a scraper disconnecting mid-response SIGPIPEs the whole
// benchmark process), `n <= 0` checks that treat EINTR as a dead peer, and
// blocking accept/recv that let one stalled client wedge the poll loop.
// Every helper here retries EINTR, never raises SIGPIPE, and works on
// non-blocking fds by polling for readiness up to a caller-supplied
// deadline — so a caller cannot reintroduce those bugs by construction.
//
// Everything is plain POSIX sockets; on platforms without them the listener
// and connect helpers fail with a message instead of compiling the callers
// out (matching the telemetry server's stub behaviour).

#ifndef STMBENCH7_SRC_NET_NET_H_
#define STMBENCH7_SRC_NET_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define SB7_HAVE_SOCKETS 1
#include <poll.h>
#endif

namespace sb7::net {

/// Move-only RAII owner of a file descriptor; closes (EINTR-aware) on
/// destruction. `release()` hands the fd out without closing.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Closes `fd` without retrying on EINTR: POSIX leaves the fd state
/// unspecified after an interrupted close, and on Linux the descriptor is
/// already gone — a retry could close an fd another thread just opened.
void CloseFd(int fd);

/// Marks `fd` O_NONBLOCK. Returns false (errno preserved) on failure.
bool SetNonBlocking(int fd);

#if defined(SB7_HAVE_SOCKETS)

/// poll(2) retrying EINTR with the remaining timeout re-armed, so a signal
/// burst cannot silently stretch a bounded wait. Negative timeout = forever.
int PollRetry(pollfd* fds, int nfds, int timeout_ms);

/// One recv(2) retrying EINTR only. Returns the (possibly short) byte
/// count, 0 on orderly EOF, or -1 with errno (EAGAIN on a drained
/// non-blocking fd).
ssize_t ReadSome(int fd, void* buffer, size_t length);

/// One send(2) with MSG_NOSIGNAL, retrying EINTR only. Returns the
/// (possibly short) byte count or -1 with errno. Never raises SIGPIPE: a
/// vanished peer surfaces as EPIPE instead.
ssize_t WriteSome(int fd, const void* buffer, size_t length);

/// accept(2) retrying EINTR only. Returns the client fd, or -1 with errno
/// (EAGAIN when a non-blocking listener has drained its backlog — e.g. the
/// pending client dropped between poll readiness and the accept).
int AcceptRetry(int listen_fd);

/// Reads exactly `length` bytes, polling for readability on non-blocking
/// fds and retrying EINTR throughout. `timeout_ms` bounds the *total* wait
/// (negative = no deadline). Returns false on EOF, error, or timeout.
bool ReadFull(int fd, void* buffer, size_t length, int timeout_ms);

/// Writes all of `data`, polling for writability on non-blocking fds and
/// retrying EINTR throughout; SIGPIPE-free. `timeout_ms` bounds the total
/// wait (negative = no deadline) — the slow-consumer backstop: a response
/// that cannot drain within the budget fails instead of wedging the writer.
bool WriteAll(int fd, const void* data, size_t length, int timeout_ms);
bool WriteAll(int fd, const std::string& data, int timeout_ms);

#endif  // SB7_HAVE_SOCKETS

struct ListenResult {
  UniqueFd fd;        ///< non-blocking listening socket
  int port = -1;      ///< actually-bound port (resolves port 0)
  std::string error;  ///< set iff !ok()

  bool ok() const { return error.empty(); }
};

/// Binds and listens on `port` (0 = ephemeral) on all interfaces with
/// SO_REUSEADDR; the returned socket is non-blocking so an accept after a
/// dropped client can never wedge an event loop.
ListenResult ListenTcp(int port, int backlog = 64);

struct ConnectResult {
  UniqueFd fd;        ///< connected blocking socket with TCP_NODELAY
  std::string error;  ///< set iff !ok()

  bool ok() const { return error.empty(); }
};

/// Connects to `host:port` (IPv4 dotted quad or "localhost"). TCP_NODELAY
/// is set: the serve protocol is small request/response frames where
/// Nagle's algorithm would serialize the closed loop on delayed ACKs.
ConnectResult ConnectTcp(const std::string& host, int port);

}  // namespace sb7::net

#endif  // STMBENCH7_SRC_NET_NET_H_
