#include "src/net/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(SB7_HAVE_SOCKETS)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace sb7::net {

namespace {

#if defined(SB7_HAVE_SOCKETS)

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget for a deadline-bounded loop: negative `timeout_ms`
/// means "no deadline" (poll forever), otherwise the clamped-to-zero
/// remainder so poll() returns immediately once the budget is spent.
int RemainingMillis(int timeout_ms, int64_t start_ms) {
  if (timeout_ms < 0) {
    return -1;
  }
  const int64_t elapsed = NowMillis() - start_ms;
  if (elapsed >= timeout_ms) {
    return 0;
  }
  return static_cast<int>(timeout_ms - elapsed);
}

/// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the budget
/// runs out. Returns false on timeout or poll error.
bool WaitReady(int fd, short events, int timeout_ms, int64_t start_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int remaining = RemainingMillis(timeout_ms, start_ms);
  if (remaining == 0 && timeout_ms >= 0) {
    return false;
  }
  const int ready = PollRetry(&pfd, 1, remaining);
  // POLLERR/POLLHUP also count as "ready": the subsequent read/write will
  // surface the actual error instead of this loop spinning to timeout.
  return ready > 0;
}

#endif  // SB7_HAVE_SOCKETS

}  // namespace

void CloseFd(int fd) {
#if defined(SB7_HAVE_SOCKETS)
  if (fd >= 0) {
    ::close(fd);
  }
#else
  (void)fd;
#endif
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0 && fd_ != fd) {
    CloseFd(fd_);
  }
  fd_ = fd;
}

bool SetNonBlocking(int fd) {
#if defined(SB7_HAVE_SOCKETS)
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return false;
  }
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
#else
  (void)fd;
  return false;
#endif
}

#if defined(SB7_HAVE_SOCKETS)

int PollRetry(pollfd* fds, int nfds, int timeout_ms) {
  const int64_t start_ms = NowMillis();
  for (;;) {
    const int remaining = RemainingMillis(timeout_ms, start_ms);
    const int ready = ::poll(fds, static_cast<nfds_t>(nfds), remaining);
    if (ready >= 0 || errno != EINTR) {
      return ready;
    }
    // EINTR: re-arm with the *remaining* budget, not the original one.
  }
}

ssize_t ReadSome(int fd, void* buffer, size_t length) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, length, 0);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

ssize_t WriteSome(int fd, const void* buffer, size_t length) {
#if defined(MSG_NOSIGNAL)
  constexpr int kFlags = MSG_NOSIGNAL;
#else
  // macOS has no MSG_NOSIGNAL; SIGPIPE suppression there would need
  // SO_NOSIGPIPE per socket. ListenTcp/ConnectTcp set it below.
  constexpr int kFlags = 0;
#endif
  for (;;) {
    const ssize_t n = ::send(fd, buffer, length, kFlags);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

int AcceptRetry(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) {
      return fd;
    }
  }
}

bool ReadFull(int fd, void* buffer, size_t length, int timeout_ms) {
  const int64_t start_ms = NowMillis();
  char* out = static_cast<char*>(buffer);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ReadSome(fd, out + done, length - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return false;  // orderly EOF mid-message
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!WaitReady(fd, POLLIN, timeout_ms, start_ms)) {
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

bool WriteAll(int fd, const void* data, size_t length, int timeout_ms) {
  const int64_t start_ms = NowMillis();
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = WriteSome(fd, in + done, length - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!WaitReady(fd, POLLOUT, timeout_ms, start_ms)) {
        return false;
      }
      continue;
    }
    return false;  // EPIPE (peer gone), ECONNRESET, or a zero-byte send
  }
  return true;
}

bool WriteAll(int fd, const std::string& data, int timeout_ms) {
  return WriteAll(fd, data.data(), data.size(), timeout_ms);
}

namespace {

/// Best-effort per-socket SIGPIPE suppression for platforms without
/// MSG_NOSIGNAL (macOS). No-op elsewhere.
void SuppressSigpipe(int fd) {
#if defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

#endif  // SB7_HAVE_SOCKETS

ListenResult ListenTcp(int port, int backlog) {
  ListenResult result;
#if defined(SB7_HAVE_SOCKETS)
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  SuppressSigpipe(fd.get());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    result.error = std::string("bind: ") + std::strerror(errno);
    return result;
  }
  if (::listen(fd.get(), backlog) < 0) {
    result.error = std::string("listen: ") + std::strerror(errno);
    return result;
  }
  if (!SetNonBlocking(fd.get())) {
    result.error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
    return result;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    result.error = std::string("getsockname: ") + std::strerror(errno);
    return result;
  }
  result.port = ntohs(bound.sin_port);
  result.fd = std::move(fd);
#else
  (void)port;
  (void)backlog;
  result.error = "sockets unavailable on this platform";
#endif
  return result;
}

ConnectResult ConnectTcp(const std::string& host, int port) {
  ConnectResult result;
#if defined(SB7_HAVE_SOCKETS)
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  SuppressSigpipe(fd.get());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string target =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    result.error = "unsupported host (IPv4 dotted quad or localhost): " + host;
    return result;
  }
  int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINTR) {
    // An interrupted connect keeps completing asynchronously; retrying the
    // call yields EALREADY. Wait for writability and read SO_ERROR instead.
    pollfd pfd{};
    pfd.fd = fd.get();
    pfd.events = POLLOUT;
    if (PollRetry(&pfd, 1, -1) <= 0) {
      result.error = "connect: interrupted and poll failed";
      return result;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      result.error =
          std::string("connect: ") + std::strerror(so_error ? so_error : errno);
      return result;
    }
    rc = 0;
  }
  if (rc < 0) {
    result.error = std::string("connect: ") + std::strerror(errno);
    return result;
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  result.fd = std::move(fd);
#else
  (void)host;
  (void)port;
  result.error = "sockets unavailable on this platform";
#endif
  return result;
}

}  // namespace sb7::net
