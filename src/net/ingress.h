// Bounded admission queue between the sb7-serve event loop (producer) and
// the BenchmarkRunner worker threads (consumers). The bound IS the
// admission-control policy: when the queue is full the event loop rejects
// the request immediately with Status::kRejected instead of buffering
// unbounded work — backpressure reaches the client as a typed error, and
// queue depth (and thus queue delay) stays bounded.

#ifndef STMBENCH7_SRC_NET_INGRESS_H_
#define STMBENCH7_SRC_NET_INGRESS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace sb7::net {

/// One admitted operation request, queued for a worker.
struct IngressRequest {
  uint64_t session_id = 0;      ///< which client session to answer on
  uint64_t request_id = 0;      ///< client-chosen id, echoed back
  uint16_t op_index = 0;        ///< index into the operation registry
  int64_t accepted_nanos = 0;   ///< steady-clock admit time (queue delay)
};

/// MPMC bounded FIFO (mutex + condvars). Throughput is dominated by the
/// transactions the requests trigger, not by queue ops, so a lock-free
/// ring would buy nothing here; correctness under many producers and
/// consumers is what matters.
class IngressQueue {
 public:
  explicit IngressQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admit. Returns false when the queue is full (caller
  /// sends kRejected) or closed.
  bool TryPush(const IngressRequest& request);

  /// Pops up to `max_batch` requests, waiting up to `timeout_ms` for the
  /// first one. Returns the number popped; 0 with closed()==true means
  /// drain-complete and the consumer should exit.
  size_t PopBatch(std::vector<IngressRequest>* out, size_t max_batch,
                  int timeout_ms);

  /// Wakes all waiters; subsequent TryPush fails, PopBatch drains the
  /// remaining items and then returns 0.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t accepted() const;
  uint64_t rejected() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<IngressRequest> queue_;
  bool closed_ = false;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace sb7::net

#endif  // STMBENCH7_SRC_NET_INGRESS_H_
