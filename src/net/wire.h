// Wire format for the sb7-serve operation protocol.
//
// Every message is a length-prefixed binary frame:
//
//     u32-LE payload length | payload bytes
//
// and every payload starts with a u8 message type. All multi-byte integers
// are little-endian, encoded/decoded byte-by-byte (no struct punning, so
// the format is identical across hosts). See docs/SERVING.md for the
// protocol walk-through.

#ifndef STMBENCH7_SRC_NET_WIRE_H_
#define STMBENCH7_SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sb7::net {

/// Frames larger than this are a protocol violation (the largest legal
/// message is a few dozen bytes); the session is dropped instead of
/// letting a garbage length prefix drive an allocation.
constexpr uint32_t kMaxFrameBytes = 4096;

/// Protocol magic ("SB7\n" little-endian) and version, exchanged in the
/// Hello handshake so a mismatched client fails fast with a clear error.
constexpr uint32_t kWireMagic = 0x0A374253;
constexpr uint16_t kWireVersion = 1;

enum class MsgType : uint8_t {
  kHello = 1,     ///< client → server, first frame on a session
  kHelloAck = 2,  ///< server → client, carries the operation count
  kRequest = 3,   ///< client → server, one operation to execute
  kResponse = 4,  ///< server → client, outcome of one request
};

/// Outcome of an operation request.
enum class Status : uint8_t {
  kOk = 0,          ///< executed, committed
  kOpFailed = 1,    ///< executed, operation reported failure
  kRejected = 2,    ///< admission control: ingress queue full, not executed
  kBadRequest = 3,  ///< malformed request (e.g. op index out of range)
};

struct Hello {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
};

struct HelloAck {
  uint16_t version = kWireVersion;
  uint16_t op_count = 0;  ///< size of the server's operation registry
};

struct OpRequest {
  uint64_t request_id = 0;  ///< echoed in the response; client-chosen
  uint16_t op_index = 0;    ///< index into the operation registry
};

struct OpResponse {
  uint64_t request_id = 0;
  Status status = Status::kOk;
  uint32_t server_nanos = 0;  ///< server-side execute latency (0 if rejected)
};

/// Appends `payload` to `out` as one frame (length prefix + bytes).
void AppendFrame(std::string* out, const std::string& payload);

enum class FrameStatus {
  kFrame,     ///< one complete frame extracted and consumed from `buffer`
  kNeedMore,  ///< buffer holds only a partial frame; read more bytes
  kTooLarge,  ///< length prefix exceeds kMaxFrameBytes; drop the session
};

/// Extracts the next complete frame from the front of `buffer` into
/// `payload`, consuming it. Handles arbitrarily fragmented input: callers
/// append whatever recv() produced and loop until kNeedMore.
FrameStatus TryExtractFrame(std::string* buffer, std::string* payload);

// Payload codecs. Encode* returns the payload (frame it with AppendFrame);
// Decode* returns false on wrong type byte or truncated payload.
std::string EncodeHello(const Hello& msg);
std::string EncodeHelloAck(const HelloAck& msg);
std::string EncodeRequest(const OpRequest& msg);
std::string EncodeResponse(const OpResponse& msg);
bool DecodeHello(const std::string& payload, Hello* out);
bool DecodeHelloAck(const std::string& payload, HelloAck* out);
bool DecodeRequest(const std::string& payload, OpRequest* out);
bool DecodeResponse(const std::string& payload, OpResponse* out);

/// Type byte of a payload, or 0 if empty.
uint8_t PeekType(const std::string& payload);

const char* StatusName(Status status);

}  // namespace sb7::net

#endif  // STMBENCH7_SRC_NET_WIRE_H_
