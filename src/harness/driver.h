// Benchmark driver: builds the world, spawns uniform worker threads, and
// collects results (§4: "threads are uniform — each picks its next operation
// randomly from the whole pool of 45 operations" with the configured ratios).

#ifndef STMBENCH7_SRC_HARNESS_DRIVER_H_
#define STMBENCH7_SRC_HARNESS_DRIVER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/core/data_holder.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"
#include "src/strategy/strategy.h"

namespace sb7 {

struct BenchConfig {
  std::string strategy = "coarse";  // coarse | medium | fine | tl2 | tinystm | norec | astm | mvstm
  std::string contention_manager = "polka";
  std::string scale = "small";  // tiny | small | medium
  // Defaults to DefaultIndexKindFor(strategy) when unset.
  std::optional<IndexKind> index_kind;

  WorkloadType workload = WorkloadType::kReadDominated;
  // Overrides the workload preset's read-only share when set (in [0, 1]).
  std::optional<double> read_fraction;
  int threads = 1;
  double length_seconds = 10.0;
  bool long_traversals = true;
  bool structure_mods = true;
  std::set<std::string> disabled_ops;

  bool ttc_histograms = false;
  // Run the structural invariant checker after the benchmark (CLI --verify).
  bool verify_invariants = false;
  // When non-empty, the CLI writes a machine-readable CSV here.
  std::string csv_path;
  uint64_t seed = 20070326;

  // Optional cap on started operations (whichever of time/cap hits first);
  // -1 = unlimited. Used by tests and benches for determinism.
  int64_t max_operations = -1;
};

class BenchmarkRunner {
 public:
  explicit BenchmarkRunner(const BenchConfig& config);

  // Runs the configured workload to completion. May be called once.
  BenchResult Run();

  const BenchConfig& config() const { return config_; }
  DataHolder& data() { return *data_; }
  SyncStrategy& strategy() const { return *strategy_; }
  const OperationRegistry& registry() const { return registry_; }
  const std::vector<double>& ratios() const { return ratios_; }

 private:
  void WorkerLoop(int worker_index, Rng rng, int64_t deadline_nanos,
                  std::vector<OpMetrics>& metrics);

  BenchConfig config_;
  OperationRegistry registry_;
  std::unique_ptr<SyncStrategy> strategy_;
  std::unique_ptr<DataHolder> data_;
  std::vector<double> ratios_;
  std::atomic<int64_t> started_budget_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_DRIVER_H_
