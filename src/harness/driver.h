// Benchmark driver: builds the world, spawns uniform worker threads, and
// collects results (§4: "threads are uniform — each picks its next operation
// randomly from the whole pool of 45 operations" with the configured ratios).
//
// The run loop is phase-aware: a plain run is one implicit closed-loop phase,
// a scenario run walks the scenario's phase list, swapping operation ratios,
// active thread count, arrival pacing and hotspot skew at phase boundaries
// without restarting the worker threads. Any worker that observes the current
// phase's deadline (or started-op cap) advances the run to the next phase, so
// the single-threaded mode needs no extra controller thread and stays fully
// deterministic under a fixed seed.

#ifndef STMBENCH7_SRC_HARNESS_DRIVER_H_
#define STMBENCH7_SRC_HARNESS_DRIVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "src/common/hotspot.h"
#include "src/mvstm/group_commit.h"
#include "src/net/ingress.h"
#include "src/net/wire.h"
#include "src/core/data_holder.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"
#include "src/scenario/scenario.h"
#include "src/strategy/strategy.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/tracer.h"

namespace sb7 {

struct BenchConfig {
  std::string strategy = "coarse";  // coarse | medium | fine | tl2 | tinystm | norec | astm | mvstm
  std::string contention_manager = "polka";
  std::string scale = "small";  // tiny | small | medium
  // Defaults to DefaultIndexKindFor(strategy) when unset.
  std::optional<IndexKind> index_kind;

  WorkloadType workload = WorkloadType::kReadDominated;
  // Overrides the workload preset's read-only share when set (in [0, 1]).
  std::optional<double> read_fraction;
  int threads = 1;
  double length_seconds = 10.0;
  bool long_traversals = true;
  bool structure_mods = true;
  std::set<std::string> disabled_ops;

  // Scenario driving the run (CLI --scenario). Unset = one implicit
  // closed-loop phase derived from the settings above. Phase overrides win
  // over the run-level settings; the run length is split across phases
  // proportionally to their duration weights.
  std::optional<Scenario> scenario;

  bool ttc_histograms = false;
  // Run the structural invariant checker after the benchmark (CLI --verify).
  bool verify_invariants = false;
  // Record committed read/write sets during the run and check the history
  // for opacity afterwards (CLI --check-opacity; STM strategies only).
  bool check_opacity = false;

  // Install the tracer (src/trace/) for the run: conflict attribution,
  // latency decomposition, and sampled lifecycle events. Implied by a
  // non-empty trace_path; sb7-bench sets it directly for --trace-cells.
  bool trace = false;
  // When non-empty, the CLI writes a Chrome trace-event JSON timeline here
  // (CLI --trace; implies `trace`).
  std::string trace_path;
  // Record every Nth transaction's lifecycle events (CLI --trace-sample).
  uint32_t trace_sample = 1;
  // Per-thread event-ring capacity in events, rounded up to a power of two
  // (CLI --trace-buffer).
  size_t trace_buffer = 1 << 16;
  // Install the live telemetry subsystem (src/telemetry/): background
  // sampler, metrics registry, hardware counters. Implied by a non-empty
  // telemetry_path or a metrics_port >= 0; sb7-bench sets it directly to
  // keep the series in memory for steady-state detection.
  bool telemetry = false;
  // When non-empty, the CLI flushes the sampled series as a versioned JSONL
  // artifact here (CLI --telemetry; implies `telemetry`).
  std::string telemetry_path;
  // Sampler tick interval in seconds (CLI --telemetry-interval).
  double telemetry_interval = 1.0;
  // TCP port for the /metrics + /series exposition endpoint; -1 = off,
  // 0 = ephemeral (CLI --metrics-port; implies `telemetry`).
  int metrics_port = -1;
  // Open perf_event hardware counters for the run (graceful no-op when
  // unavailable); only meaningful with telemetry enabled.
  bool telemetry_hw = true;
  // When non-empty, the CLI writes a machine-readable CSV here.
  std::string csv_path;
  // When non-empty, the CLI writes a machine-readable JSON report here.
  std::string json_path;
  // Durable redo log (mvstm only, docs/DURABILITY.md): when non-empty the
  // runner opens a RedoLogWriter here, attaches a group-commit sequencer to
  // the backend, and closes the log when the run ends (CLI --redo-log).
  std::string redo_log_path;
  // Fsync policy for the redo log: "off" | "group" | "always"
  // (CLI --durability; meaningful only with a redo log).
  std::string durability = "off";
  // Fault injection for the crash-recovery tests (CLI --crash-at): fires the
  // configured crash point when the log reaches `crash_at_group` groups.
  // kNone = disabled. The default on_fire (_Exit(137)) stands in for kill -9.
  redo::CrashPoint crash_point = redo::CrashPoint::kNone;
  uint64_t crash_at_group = 0;
  uint64_t seed = 20070326;

  // Optional cap on started operations (whichever of time/cap hits first);
  // -1 = unlimited. Used by tests and benches for determinism.
  int64_t max_operations = -1;

  // Network serve mode (sb7-serve --listen): when set, workers stop
  // sampling operations locally and instead drain admitted client requests
  // from this queue in batches, executing each under the current phase's
  // accounting (per-op metrics, telemetry, queue-delay percentiles). The
  // queue must outlive the runner; the run ends when the queue is closed
  // and drained, or at the usual wall-clock deadline.
  net::IngressQueue* ingress = nullptr;
  // Invoked once per drained ingress request with its outcome and the
  // server-side execute latency; the serve front-end writes the response
  // frame here. Called from worker threads — must be thread-safe.
  std::function<void(const net::IngressRequest&, net::Status, int64_t)>
      on_ingress_complete;
  // Requests a worker claims per queue pop: batching amortizes the queue
  // lock without letting one worker starve the others.
  size_t ingress_batch = 16;
};

class BenchmarkRunner {
 public:
  explicit BenchmarkRunner(const BenchConfig& config);

  // Runs the configured workload to completion. May be called once.
  BenchResult Run();

  const BenchConfig& config() const { return config_; }
  DataHolder& data() { return *data_; }
  SyncStrategy& strategy() const { return *strategy_; }
  const OperationRegistry& registry() const { return registry_; }
  // Phase-duration-weighted mix over the whole run (equals the single
  // phase's ratios for plain runs).
  const std::vector<double>& ratios() const { return ratios_; }
  // Number of worker threads actually spawned (the max active count over
  // all phases; a scenario thread ramp can exceed config().threads).
  int spawned_threads() const { return spawn_threads_; }
  // The run's tracer; null unless the config enabled tracing. Valid for the
  // runner's lifetime — the CLI drains it for the timeline export after
  // Run() returns.
  trace::Tracer* tracer() const { return tracer_.get(); }
  // The run's telemetry facade; null unless the config enabled telemetry.
  // Valid for the runner's lifetime — the CLI starts the exposition server
  // before Run() and flushes the JSONL artifact after; sb7-bench reads the
  // series for steady-state detection.
  telemetry::Telemetry* telemetry() const { return telemetry_.get(); }
  // The run's redo-log writer; null unless config().redo_log_path is set.
  // Valid for the runner's lifetime — the CLI reads the append stats for the
  // run-end durability summary after Run() returns (the log itself is closed
  // by then).
  redo::RedoLogWriter* redo_writer() const { return redo_writer_.get(); }

 private:
  // One scenario phase, resolved against the run-level configuration.
  struct PhaseRuntime {
    PhaseSpec spec;
    std::vector<double> ratios;
    int active_threads = 0;
    double read_fraction = 0.0;
    int64_t duration_nanos = 0;
    std::atomic<int64_t> start_nanos{0};
    // max_ops bookkeeping: claimed admits workers, executed ends the phase.
    std::atomic<int64_t> claimed{0};
    std::atomic<int64_t> executed{0};
  };

  // Counter snapshots taken at the phase's boundaries by whichever thread
  // advanced it (guarded by phase_mutex_).
  struct PhaseAccounting {
    int64_t start_nanos = 0;
    int64_t end_nanos = 0;
    StmStats::View stm_begin = {};
    StmStats::View stm_end = {};
    HotspotCounters hot_begin;
    HotspotCounters hot_end;
    // Conflict-table snapshots at the phase boundaries (tracing runs only).
    trace::ConflictTable::Snapshot conflict_begin;
    trace::ConflictTable::Snapshot conflict_end;
    // Hardware-counter readings at the phase boundaries (telemetry runs
    // with perf_event available only; {available=false} otherwise).
    telemetry::HwSample hw_begin;
    telemetry::HwSample hw_end;
  };

  // Per-worker open-loop pacing state for one phase.
  struct PaceState {
    int64_t next_arrival_nanos = -1;  // -1 until the worker enters the phase
    int64_t arrival_count = 0;
  };

  void WorkerLoop(int worker_index, Rng rng,
                  std::vector<std::vector<OpMetrics>>& metrics,  // [phase][op]
                  std::vector<PaceMetrics>& pace);               // [phase]

  // Closes phase `phase_index` and opens the next one (or ends the run).
  // No-op when another thread already advanced past it.
  void TryAdvancePhase(int phase_index);
  void BeginPhaseLocked(int phase_index);
  void FinishPhaseLocked(int phase_index);
  StmStats::View StmSnapshot() const;

  BenchConfig config_;
  OperationRegistry registry_;
  std::unique_ptr<SyncStrategy> strategy_;
  std::unique_ptr<redo::RedoLogWriter> redo_writer_;
  std::unique_ptr<GroupCommitSequencer> sequencer_;
  std::unique_ptr<DataHolder> data_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::vector<double> ratios_;
  int spawn_threads_ = 1;

  std::vector<std::unique_ptr<PhaseRuntime>> phases_;
  std::vector<PhaseAccounting> accounting_;
  std::mutex phase_mutex_;
  std::atomic<int> current_phase_{0};
  std::atomic<int64_t> started_budget_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_DRIVER_H_
