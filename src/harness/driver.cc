#include "src/harness/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/timing.h"
#include "src/ebr/ebr.h"
#include "src/mvstm/mvstm.h"
#include "src/mvstm/redo_log.h"

namespace sb7 {
namespace {

// Sleep granularity of the phase controller paths: short enough that phase
// boundaries and open-loop arrivals land within ~a millisecond.
constexpr int64_t kPollNanos = 1'000'000;

// An open-loop operation counts as "delayed" only when it started more than
// one histogram bucket (1 ms) after its scheduled arrival; sub-millisecond
// lateness is scheduling noise, not queueing.
constexpr int64_t kDelayedThresholdNanos = 1'000'000;

void SleepNanos(int64_t nanos) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

// How many hottest locations / deadliest op pairs phase and run reports
// keep from the conflict table.
constexpr size_t kConflictTopK = 8;

}  // namespace

BenchmarkRunner::BenchmarkRunner(const BenchConfig& config) : config_(config) {
  SB7_CHECK(config_.threads >= 1);
  SB7_CHECK(config_.length_seconds > 0);
  strategy_ = MakeStrategy(config_.strategy, config_.contention_manager);
  SB7_CHECK(strategy_ != nullptr);

  if (!config_.redo_log_path.empty()) {
    // Group commit + redo logging is an mvstm capability (the CLI validates
    // this; programmatic callers get the check below).
    auto* mvstm = dynamic_cast<MvStm*>(strategy_->stm());
    SB7_CHECK(mvstm != nullptr);
    redo::Durability durability = redo::Durability::kOff;
    SB7_CHECK(redo::ParseDurability(config_.durability, &durability));
    redo_writer_ =
        std::make_unique<redo::RedoLogWriter>(config_.redo_log_path, durability);
    SB7_CHECK(redo_writer_->ok());
    if (config_.crash_point != redo::CrashPoint::kNone) {
      redo::CrashConfig crash;
      crash.point = config_.crash_point;
      crash.at_group = config_.crash_at_group;
      redo_writer_->SetCrashConfig(std::move(crash));
    }
    // The header precedes the workers; every later append comes from the
    // group-commit leader, so the writer never needs internal locking.
    redo_writer_->WriteFileHeader(config_.seed, config_.scale, config_.strategy);
    sequencer_ = std::make_unique<GroupCommitSequencer>(redo_writer_.get());
    mvstm->AttachSequencer(sequencer_.get());
  }

  if (config_.trace || !config_.trace_path.empty()) {
    config_.trace = true;
    trace::TraceOptions options;
    options.ring_capacity = config_.trace_buffer;
    options.sample_period = config_.trace_sample > 0 ? config_.trace_sample : 1;
    tracer_ = std::make_unique<trace::Tracer>(options);
  }

  if (config_.telemetry || !config_.telemetry_path.empty() || config_.metrics_port >= 0) {
    config_.telemetry = true;
    telemetry::TelemetryOptions options;
    options.interval_seconds = config_.telemetry_interval;
    options.hw_counters = config_.telemetry_hw;
    options.metrics_port = config_.metrics_port;
    telemetry_ = std::make_unique<telemetry::Telemetry>(options);
    // Hardware counters must open before the worker threads exist —
    // perf_event inherit only covers threads spawned afterwards.
    telemetry_->StartHw();
    telemetry_->SetStmSource([this]() { return StmSnapshot(); });
    if (tracer_ != nullptr) {
      telemetry_->SetTraceDroppedSource([this]() { return tracer_->TotalDropped(); });
    }
  }

  DataHolder::Setup setup;
  setup.params = Parameters::ForName(config_.scale);
  setup.index_kind = config_.index_kind.value_or(DefaultIndexKindFor(config_.strategy));
  setup.seed = config_.seed;
  data_ = std::make_unique<DataHolder>(setup);

  // Resolve the phase list: the configured scenario, or one implicit
  // closed-loop phase mirroring the plain CLI settings.
  Scenario scenario;
  if (config_.scenario.has_value()) {
    scenario = *config_.scenario;
  } else {
    PhaseSpec main_phase;
    main_phase.name = "main";
    scenario.phases.push_back(main_phase);
  }
  const double total_weight = scenario.TotalWeight();
  SB7_CHECK(total_weight > 0);

  const double base_read_fraction =
      config_.read_fraction.value_or(ReadOnlyFraction(config_.workload));
  spawn_threads_ = config_.scenario.has_value() ? 1 : config_.threads;
  for (const PhaseSpec& spec : scenario.phases) {
    auto phase = std::make_unique<PhaseRuntime>();
    phase->spec = spec;
    phase->active_threads = spec.threads.value_or(config_.threads);
    SB7_CHECK(phase->active_threads >= 1);
    spawn_threads_ = std::max(spawn_threads_, phase->active_threads);
    phase->read_fraction = spec.read_fraction.value_or(base_read_fraction);

    std::set<std::string> disabled = config_.disabled_ops;
    disabled.insert(spec.disabled_ops.begin(), spec.disabled_ops.end());
    phase->ratios = ComputeOperationRatios(
        registry_, phase->read_fraction,
        spec.long_traversals.value_or(config_.long_traversals),
        spec.structure_mods.value_or(config_.structure_mods), disabled);

    phase->duration_nanos = static_cast<int64_t>(config_.length_seconds * 1e9 *
                                                 spec.duration_weight / total_weight);
    phases_.push_back(std::move(phase));
  }
  accounting_.resize(phases_.size());

  // Run-level mix: phase ratios weighted by phase duration.
  ratios_.assign(registry_.all().size(), 0.0);
  for (const auto& phase : phases_) {
    const double weight = phase->spec.duration_weight / total_weight;
    for (size_t i = 0; i < ratios_.size(); ++i) {
      ratios_[i] += weight * phase->ratios[i];
    }
  }

  if (telemetry_ != nullptr) {
    telemetry::RunInfo info;
    info.backend = config_.strategy;
    info.scenario = config_.scenario.has_value() ? config_.scenario->name : "-";
    info.scale = config_.scale;
    info.threads = spawn_threads_;
    telemetry_->SetRunInfo(std::move(info));
    // Live phase/arrival-queue state: gauges read the current phase's
    // runtime through the same acquire index the workers use, so a scrape
    // mid-run sees the phase that is actually executing.
    auto current = [this]() -> const PhaseRuntime* {
      const int p = current_phase_.load(std::memory_order_acquire);
      if (p < 0 || p >= static_cast<int>(phases_.size())) {
        return nullptr;
      }
      return phases_[p].get();
    };
    telemetry_->registry().AddGauge(
        "sb7_phase_active_threads", "Worker threads active in the current phase",
        [current]() {
          const PhaseRuntime* phase = current();
          return phase != nullptr ? static_cast<double>(phase->active_threads) : 0.0;
        });
    telemetry_->registry().AddGauge(
        "sb7_phase_target_rate", "Open-loop arrival rate of the current phase (op/s; 0 = closed loop)",
        [current]() {
          const PhaseRuntime* phase = current();
          return phase != nullptr && phase->spec.arrival != ArrivalModel::kClosed
                     ? phase->spec.rate_ops_per_sec
                     : 0.0;
        });
    telemetry_->registry().AddGauge(
        "sb7_phase_executed_total", "Operations executed in the current phase",
        [current]() {
          const PhaseRuntime* phase = current();
          return phase != nullptr ? static_cast<double>(
                                        phase->executed.load(std::memory_order_relaxed))
                                  : 0.0;
        });
  }
}

StmStats::View BenchmarkRunner::StmSnapshot() const {
  Stm* stm = strategy_->stm();
  return stm != nullptr ? stm->stats().Snapshot() : StmStats::View{};
}

void BenchmarkRunner::BeginPhaseLocked(int phase_index) {
  PhaseRuntime& phase = *phases_[phase_index];
  HotspotPolicy policy;
  policy.theta = phase.spec.zipf_theta;
  policy.hot_fraction = phase.spec.hot_fraction;
  SetHotspotPolicy(policy);
  // Pay the O(capacity) sampler construction here, at the phase boundary,
  // not inside the first measured operations of the phase.
  PrewarmHotspotSamplers({data_->atomic_part_ids().capacity(),
                          data_->composite_part_ids().capacity(),
                          data_->base_assembly_ids().capacity(),
                          data_->complex_assembly_ids().capacity()});

  const int64_t now = NowNanos();
  phase.start_nanos.store(now, std::memory_order_relaxed);
  PhaseAccounting& acc = accounting_[phase_index];
  acc.start_nanos = now;
  acc.stm_begin = StmSnapshot();
  acc.hot_begin = ReadHotspotCounters();
  if (tracer_ != nullptr) {
    acc.conflict_begin = tracer_->ConflictSnapshot();
  }
  if (telemetry_ != nullptr) {
    acc.hw_begin = telemetry_->HwNow();
    telemetry_->SetPhase(phase_index, phase.spec.name);
  }
}

void BenchmarkRunner::FinishPhaseLocked(int phase_index) {
  PhaseAccounting& acc = accounting_[phase_index];
  acc.end_nanos = NowNanos();
  acc.stm_end = StmSnapshot();
  acc.hot_end = ReadHotspotCounters();
  if (tracer_ != nullptr) {
    acc.conflict_end = tracer_->ConflictSnapshot();
  }
  if (telemetry_ != nullptr) {
    acc.hw_end = telemetry_->HwNow();
  }
}

void BenchmarkRunner::TryAdvancePhase(int phase_index) {
  std::lock_guard<std::mutex> lock(phase_mutex_);
  if (current_phase_.load(std::memory_order_relaxed) != phase_index) {
    return;  // someone else advanced it first
  }
  FinishPhaseLocked(phase_index);
  const int next = phase_index + 1;
  if (next < static_cast<int>(phases_.size())) {
    BeginPhaseLocked(next);
  } else {
    ResetHotspotPolicy();
  }
  current_phase_.store(next, std::memory_order_release);
}

void BenchmarkRunner::WorkerLoop(int worker_index, Rng rng,
                                 std::vector<std::vector<OpMetrics>>& metrics,
                                 std::vector<PaceMetrics>& pace) {
  const auto& ops = registry_.all();
  const int64_t budget = config_.max_operations;
  const int phase_count = static_cast<int>(phases_.size());
  std::vector<PaceState> pace_state(phases_.size());

  // Register with the EBR domain before the first operation: a worker must
  // be visible to reclamation before it can chase optimistic pointers.
  EbrDomain::Global().Quiesce();

  while (!stop_.load(std::memory_order_relaxed)) {
    const int p = current_phase_.load(std::memory_order_acquire);
    if (p >= phase_count) {
      break;
    }
    PhaseRuntime& phase = *phases_[p];

    // Phase end conditions: wall-clock deadline or started-op cap. Every
    // worker — active or idle — may flip the phase, so a boundary is
    // observed as soon as any worker is between operations.
    const int64_t phase_start = phase.start_nanos.load(std::memory_order_relaxed);
    const bool over_time = NowNanos() >= phase_start + phase.duration_nanos;
    const bool over_cap =
        phase.spec.max_ops >= 0 &&
        phase.executed.load(std::memory_order_relaxed) >= phase.spec.max_ops;
    if (over_time || over_cap) {
      TryAdvancePhase(p);
      continue;
    }

    if (worker_index >= phase.active_threads) {
      // Parked for this phase (thread ramp). Stay quiescent so EBR
      // reclamation keeps making progress.
      EbrDomain::Global().Quiesce();
      SleepNanos(kPollNanos / 4);
      continue;
    }

    if (config_.ingress != nullptr) {
      // Serve mode: drain admitted client requests in batches instead of
      // sampling operations locally. The phase checks above still apply, so
      // a scenario can reshape thread count / hotspot skew mid-serve; the
      // arrival process itself lives on the clients, so the open-loop
      // pacing below is skipped entirely.
      std::vector<net::IngressRequest> batch;
      batch.reserve(config_.ingress_batch);
      const size_t got =
          config_.ingress->PopBatch(&batch, config_.ingress_batch, /*timeout_ms=*/5);
      if (got == 0) {
        if (config_.ingress->closed()) {
          break;  // drained and no more producers: run is over
        }
        continue;  // idle tick; re-check phase deadline at the loop top
      }
      PaceMetrics& pm = pace[p];
      pm.backlog_peak = std::max(
          pm.backlog_peak, static_cast<int64_t>(config_.ingress->size()));
      bool budget_hit = false;
      for (const net::IngressRequest& request : batch) {
        if (budget_hit ||
            (budget >= 0 &&
             started_budget_.fetch_add(1, std::memory_order_relaxed) >= budget)) {
          // Out of budget: the popped request must still be answered, and
          // kRejected is the honest outcome — it was never executed.
          budget_hit = true;
          if (config_.on_ingress_complete) {
            config_.on_ingress_complete(request, net::Status::kRejected, 0);
          }
          continue;
        }
        const int64_t begin = NowNanos();
        pm.arrivals += 1;
        const int64_t delay = begin - request.accepted_nanos;
        pm.queue_delay.Record(delay > 0 ? delay : 0);
        if (delay > kDelayedThresholdNanos) {
          pm.delayed += 1;
        }
        if (request.op_index >= ops.size()) {
          if (config_.on_ingress_complete) {
            config_.on_ingress_complete(request, net::Status::kBadRequest, 0);
          }
          continue;
        }
        const int index = request.op_index;
        SetTxOpContext(index);
        // Tag the attempt context so the redo log's member records carry the
        // client's request id — what makes `acked ⊆ durable` checkable
        // against a recovered log (tests/recovery_test.cc).
        redo::SetCaptureClientTag(request.request_id);
        try {
          strategy_->Execute(*ops[index], *data_, rng);
          const int64_t latency = NowNanos() - begin;
          metrics[p][index].RecordSuccess(latency);
          if (telemetry_ != nullptr) {
            telemetry_->RecordOp(true, latency);
          }
          if (config_.on_ingress_complete) {
            config_.on_ingress_complete(request, net::Status::kOk, latency);
          }
        } catch (const OperationFailed&) {
          metrics[p][index].RecordFailure();
          if (telemetry_ != nullptr) {
            telemetry_->RecordOp(false, 0);
          }
          if (config_.on_ingress_complete) {
            config_.on_ingress_complete(request, net::Status::kOpFailed,
                                        NowNanos() - begin);
          }
        }
        SetTxOpContext(-1);
        redo::SetCaptureClientTag(0);
        phase.executed.fetch_add(1, std::memory_order_relaxed);
      }
      EbrDomain::Global().Quiesce();
      if (budget_hit) {
        stop_.store(true, std::memory_order_relaxed);
      }
      continue;
    }

    // Claim a phase slot before touching the global budget: workers waiting
    // out a capped phase must not burn budget that later phases still need.
    if (phase.spec.max_ops >= 0 &&
        phase.claimed.fetch_add(1, std::memory_order_relaxed) >= phase.spec.max_ops) {
      SleepNanos(kPollNanos / 4);  // cap reached; wait for the phase to flip
      continue;
    }
    if (budget >= 0 && started_budget_.fetch_add(1, std::memory_order_relaxed) >= budget) {
      stop_.store(true, std::memory_order_relaxed);
      break;
    }

    // Open-loop pacing: wait for this worker's next scheduled arrival.
    const bool open_loop = phase.spec.arrival != ArrivalModel::kClosed;
    int64_t arrival = 0;
    if (open_loop) {
      PaceState& state = pace_state[p];
      const double worker_rate =
          phase.spec.rate_ops_per_sec / static_cast<double>(phase.active_threads);
      if (state.next_arrival_nanos < 0) {
        // First arrival of this phase for this worker: start the process at
        // the later of phase start and now — a worker entering late (still
        // finishing the previous phase's operation) must not count its own
        // lateness as queue delay — and stagger Poisson workers by one drawn
        // gap instead of firing them all at the boundary in lockstep.
        state.next_arrival_nanos = std::max(phase_start, NowNanos());
        if (phase.spec.arrival == ArrivalModel::kPoisson) {
          state.next_arrival_nanos +=
              static_cast<int64_t>(-std::log1p(-rng.NextDouble()) * 1e9 / worker_rate);
        }
      }
      arrival = state.next_arrival_nanos;
      int64_t gap = 0;
      if (phase.spec.arrival == ArrivalModel::kPoisson) {
        // Exponential inter-arrival gap; exactly one uniform draw per
        // arrival keeps fixed-seed runs stream-deterministic.
        gap = static_cast<int64_t>(-std::log1p(-rng.NextDouble()) * 1e9 / worker_rate);
      } else {
        // Bursty: batches of burst_size back-to-back arrivals, spaced so
        // the average rate still meets the target.
        state.arrival_count += 1;
        if (state.arrival_count % phase.spec.burst_size == 0) {
          gap = static_cast<int64_t>(static_cast<double>(phase.spec.burst_size) * 1e9 /
                                     worker_rate);
        }
      }
      state.next_arrival_nanos = arrival + gap;

      // Wait for the arrival, but never past the phase deadline: with a low
      // rate every active worker can be parked here, and someone must still
      // reach the loop top in time to advance the phase.
      const int64_t phase_deadline = phase_start + phase.duration_nanos;
      bool interrupted = false;
      int64_t now = 0;
      while ((now = NowNanos()) < arrival) {
        if (now >= phase_deadline || current_phase_.load(std::memory_order_relaxed) != p ||
            stop_.load(std::memory_order_relaxed)) {
          interrupted = true;
          break;
        }
        SleepNanos(std::min(arrival - now, kPollNanos));
      }
      if (interrupted) {
        // The phase ended while we waited: drop the arrival and hand its
        // global-budget claim back — the operation never started.
        if (budget >= 0) {
          started_budget_.fetch_sub(1, std::memory_order_relaxed);
        }
        continue;
      }
    }

    const int index = SampleOperation(phase.ratios, rng);
    const int64_t begin = NowNanos();
    if (open_loop) {
      PaceMetrics& pm = pace[p];
      pm.arrivals += 1;
      const int64_t delay = begin - arrival;
      pm.queue_delay.Record(delay > 0 ? delay : 0);
      if (delay > kDelayedThresholdNanos) {
        pm.delayed += 1;
        const double worker_rate =
            phase.spec.rate_ops_per_sec / static_cast<double>(phase.active_threads);
        const auto backlog =
            static_cast<int64_t>(static_cast<double>(delay) / 1e9 * worker_rate);
        pm.backlog_peak = std::max(pm.backlog_peak, backlog);
      }
    }
    SetTxOpContext(index);
    try {
      strategy_->Execute(*ops[index], *data_, rng);
      const int64_t latency = NowNanos() - begin;
      metrics[p][index].RecordSuccess(latency);
      if (telemetry_ != nullptr) {
        telemetry_->RecordOp(true, latency);
      }
    } catch (const OperationFailed&) {
      metrics[p][index].RecordFailure();
      if (telemetry_ != nullptr) {
        telemetry_->RecordOp(false, 0);
      }
    }
    SetTxOpContext(-1);
    phase.executed.fetch_add(1, std::memory_order_relaxed);
    EbrDomain::Global().Quiesce();
  }
}

BenchResult BenchmarkRunner::Run() {
  const size_t op_count = registry_.all().size();
  const size_t phase_count = phases_.size();
  std::vector<std::vector<std::vector<OpMetrics>>> per_thread(
      spawn_threads_, std::vector<std::vector<OpMetrics>>(
                          phase_count, std::vector<OpMetrics>(op_count)));
  std::vector<std::vector<PaceMetrics>> per_thread_pace(
      spawn_threads_, std::vector<PaceMetrics>(phase_count));

  Rng seeder(config_.seed ^ 0x9d867b3543aa5391ull);
  if (tracer_ != nullptr) {
    tracer_->Install();
  }
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    BeginPhaseLocked(0);
  }
  current_phase_.store(0, std::memory_order_release);
  const int64_t start = accounting_[0].start_nanos;
  if (telemetry_ != nullptr) {
    telemetry_->Start();
  }

  if (spawn_threads_ == 1) {
    // In-thread execution keeps single-threaded runs fully deterministic,
    // which the cross-backend equivalence tests require.
    WorkerLoop(0, seeder.Split(), per_thread[0], per_thread_pace[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(spawn_threads_);
    for (int t = 0; t < spawn_threads_; ++t) {
      Rng rng = seeder.Split();
      workers.emplace_back([this, t, rng, &per_thread, &per_thread_pace]() mutable {
        WorkerLoop(t, rng, per_thread[t], per_thread_pace[t]);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  const int64_t end = NowNanos();

  {
    // If the run stopped early (global op cap), the live phase was never
    // closed by a worker; close it so its accounting window is valid.
    std::lock_guard<std::mutex> lock(phase_mutex_);
    const int p = current_phase_.load(std::memory_order_relaxed);
    if (p < static_cast<int>(phase_count)) {
      FinishPhaseLocked(p);
      current_phase_.store(static_cast<int>(phase_count), std::memory_order_relaxed);
    }
  }
  if (config_.ingress != nullptr) {
    // The run is over: close the queue so the front-end's TryPush turns
    // every later arrival into an immediate typed rejection, then reject
    // whatever was admitted but never popped — a closed-loop client must
    // never be left waiting on a request no worker will execute.
    config_.ingress->Close();
    std::vector<net::IngressRequest> stranded;
    while (config_.ingress->PopBatch(&stranded, 64, /*timeout_ms=*/0) > 0) {
      if (config_.on_ingress_complete) {
        for (const net::IngressRequest& request : stranded) {
          config_.on_ingress_complete(request, net::Status::kRejected, 0);
        }
      }
      stranded.clear();
    }
  }
  if (redo_writer_ != nullptr) {
    // Workers are joined: no commit can race the close record. A writer a
    // crash point killed stays frozen in its crash state (Close is dropped).
    redo_writer_->Close();
  }
  if (telemetry_ != nullptr) {
    // Takes the tail sample, joins the sampler and shuts the exposition
    // server; the sampled series stays readable (and flushable as JSONL)
    // for the runner's lifetime.
    telemetry_->Stop();
  }
  if (tracer_ != nullptr) {
    tracer_->Uninstall();
  }
  ResetHotspotPolicy();

  BenchResult result;
  result.per_op.resize(op_count);
  result.phases.resize(config_.scenario.has_value() ? phase_count : 0);
  for (size_t p = 0; p < phase_count; ++p) {
    const PhaseRuntime& phase = *phases_[p];
    const PhaseAccounting& acc = accounting_[p];
    PhaseResult scratch;
    PhaseResult& pr = p < result.phases.size() ? result.phases[p] : scratch;
    pr.name = phase.spec.name;
    pr.read_fraction = phase.read_fraction;
    pr.threads = phase.active_threads;
    pr.arrival = phase.spec.arrival;
    pr.target_rate = phase.spec.rate_ops_per_sec;
    pr.zipf_theta = phase.spec.zipf_theta;
    pr.hot_fraction = phase.spec.hot_fraction;
    pr.ratios = phase.ratios;
    pr.per_op.resize(op_count);
    for (int t = 0; t < spawn_threads_; ++t) {
      for (size_t i = 0; i < op_count; ++i) {
        pr.per_op[i].Merge(per_thread[t][p][i]);
      }
      pr.pace.Merge(per_thread_pace[t][p]);
    }
    for (size_t i = 0; i < op_count; ++i) {
      pr.total_success += pr.per_op[i].success;
      pr.total_started += pr.per_op[i].started();
      result.per_op[i].Merge(pr.per_op[i]);
    }
    pr.elapsed_seconds =
        acc.end_nanos > acc.start_nanos ? NanosToSeconds(acc.end_nanos - acc.start_nanos) : 0.0;
    pr.stm = StmStats::View::Subtract(acc.stm_end, acc.stm_begin);
    pr.hot_samples = acc.hot_end.samples - acc.hot_begin.samples;
    pr.hot_hits = acc.hot_end.hot_hits - acc.hot_begin.hot_hits;
    pr.hw = telemetry::HwSample::Delta(acc.hw_end, acc.hw_begin);
    if (tracer_ != nullptr) {
      pr.conflicts = tracer_->SummarizeWindow(acc.conflict_end, acc.conflict_begin, kConflictTopK);
    }
  }
  for (const OpMetrics& metrics : result.per_op) {
    result.total_success += metrics.success;
    result.total_started += metrics.started();
  }
  result.ratios = ratios_;
  result.elapsed_seconds = NanosToSeconds(end - start);
  if (Stm* stm = strategy_->stm()) {
    result.stm = stm->stats().Snapshot();
  }
  // Whole-run hardware window: first begun phase to last finished phase (a
  // global op cap can leave trailing phases that never began).
  for (auto it = accounting_.rbegin(); it != accounting_.rend(); ++it) {
    if (it->end_nanos != 0) {
      result.hw = telemetry::HwSample::Delta(it->hw_end, accounting_.front().hw_begin);
      break;
    }
  }
  if (tracer_ != nullptr) {
    result.traced = true;
    result.conflicts = tracer_->SummarizeWindow(tracer_->ConflictSnapshot(),
                                                trace::ConflictTable::Snapshot{}, kConflictTopK);
    result.latency_by_op = tracer_->LatencyByOp();
    result.trace_events_dropped = tracer_->TotalDropped();
  }
  EbrDomain::Global().Quiesce();
  EbrDomain::Global().TryReclaim();
  return result;
}

}  // namespace sb7
