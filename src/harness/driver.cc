#include "src/harness/driver.h"

#include <thread>

#include "src/common/timing.h"
#include "src/ebr/ebr.h"

namespace sb7 {

BenchmarkRunner::BenchmarkRunner(const BenchConfig& config) : config_(config) {
  SB7_CHECK(config_.threads >= 1);
  strategy_ = MakeStrategy(config_.strategy, config_.contention_manager);
  SB7_CHECK(strategy_ != nullptr);

  DataHolder::Setup setup;
  setup.params = Parameters::ForName(config_.scale);
  setup.index_kind = config_.index_kind.value_or(DefaultIndexKindFor(config_.strategy));
  setup.seed = config_.seed;
  data_ = std::make_unique<DataHolder>(setup);

  const double read_fraction =
      config_.read_fraction.value_or(ReadOnlyFraction(config_.workload));
  ratios_ = ComputeOperationRatios(registry_, read_fraction, config_.long_traversals,
                                   config_.structure_mods, config_.disabled_ops);
}

void BenchmarkRunner::WorkerLoop(int worker_index, Rng rng, int64_t deadline_nanos,
                                 std::vector<OpMetrics>& metrics) {
  (void)worker_index;
  const auto& ops = registry_.all();
  const int64_t budget = config_.max_operations;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (NowNanos() >= deadline_nanos) {
      break;
    }
    if (budget >= 0 &&
        started_budget_.fetch_add(1, std::memory_order_relaxed) >= budget) {
      break;
    }
    const int index = SampleOperation(ratios_, rng);
    const int64_t begin = NowNanos();
    try {
      strategy_->Execute(*ops[index], *data_, rng);
      metrics[index].RecordSuccess(NowNanos() - begin);
    } catch (const OperationFailed&) {
      metrics[index].RecordFailure();
    }
    EbrDomain::Global().Quiesce();
  }
}

BenchResult BenchmarkRunner::Run() {
  const size_t op_count = registry_.all().size();
  std::vector<std::vector<OpMetrics>> per_thread(config_.threads,
                                                 std::vector<OpMetrics>(op_count));

  Rng seeder(config_.seed ^ 0x9d867b3543aa5391ull);
  const int64_t start = NowNanos();
  const int64_t deadline =
      start + static_cast<int64_t>(config_.length_seconds * 1e9);

  if (config_.threads == 1) {
    // In-thread execution keeps single-threaded runs fully deterministic,
    // which the cross-backend equivalence tests require.
    WorkerLoop(0, seeder.Split(), deadline, per_thread[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(config_.threads);
    for (int t = 0; t < config_.threads; ++t) {
      Rng rng = seeder.Split();
      workers.emplace_back([this, t, rng, deadline, &per_thread]() mutable {
        WorkerLoop(t, rng, deadline, per_thread[t]);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  const int64_t end = NowNanos();

  BenchResult result;
  result.per_op.resize(op_count);
  for (const auto& thread_metrics : per_thread) {
    for (size_t i = 0; i < op_count; ++i) {
      result.per_op[i].Merge(thread_metrics[i]);
    }
  }
  for (const OpMetrics& metrics : result.per_op) {
    result.total_success += metrics.success;
    result.total_started += metrics.started();
  }
  result.ratios = ratios_;
  result.elapsed_seconds = NanosToSeconds(end - start);
  if (Stm* stm = strategy_->stm()) {
    result.stm = stm->stats().Snapshot();
  }
  EbrDomain::Global().Quiesce();
  EbrDomain::Global().TryReclaim();
  return result;
}

}  // namespace sb7
