#include "src/harness/report.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <string>

namespace sb7 {
namespace {

constexpr std::array<OpCategory, 4> kCategories = {
    OpCategory::kLongTraversal,
    OpCategory::kShortTraversal,
    OpCategory::kShortOperation,
    OpCategory::kStructureModification,
};

// CSV metadata schema version. 1 = the implicit pre-scenario layout; 2 adds
// p999_ms/started_per_s op columns and the per-phase section; 3 adds the
// stm_kills/abort-cause metadata keys and syncs the per-phase rows with the
// run-level STM block (validation_steps, kills, abort causes).
constexpr int kCsvSchemaVersion = 3;

// Pair-matrix axis label: slot 0 is activity outside any operation (setup,
// tests), slot i+1 is registry op i.
std::string SlotName(const std::vector<std::unique_ptr<Operation>>& ops, int slot) {
  if (slot <= 0 || static_cast<size_t>(slot) > ops.size()) {
    return "(none)";
  }
  return ops[slot - 1]->name();
}

void PrintConflictSummary(std::ostream& out, const trace::ConflictSummary& conflicts,
                          const std::vector<std::unique_ptr<Operation>>& ops,
                          const char* indent) {
  out << indent << "conflicts: " << conflicts.attributed_aborts << " of "
      << conflicts.total_aborts << " aborts attributed to a stripe\n";
  for (const trace::ConflictHotLocation& location : conflicts.top_locations) {
    out << indent << "  stripe 0x" << std::hex << location.key << std::dec << ": "
        << location.aborts << " aborts\n";
  }
  for (const trace::ConflictPair& pair : conflicts.top_pairs) {
    out << indent << "  " << SlotName(ops, pair.victim_slot) << " killed by "
        << SlotName(ops, pair.writer_slot) << ": " << pair.aborts << "\n";
  }
}

// One-line hardware-counter summary (telemetry runs where perf_event opened).
void PrintHwLine(std::ostream& out, const telemetry::HwSample& hw, const char* indent) {
  if (!hw.available || hw.cycles == 0) {
    return;
  }
  const double ipc = static_cast<double>(hw.instructions) / static_cast<double>(hw.cycles);
  const double stall =
      100.0 * static_cast<double>(hw.stalled_cycles) / static_cast<double>(hw.cycles);
  out << indent << "hw: cycles " << hw.cycles << ", instructions " << hw.instructions
      << " (IPC " << std::fixed << std::setprecision(2) << ipc << "), LLC misses "
      << hw.llc_misses << ", backend stalls " << std::setprecision(1) << stall << "%\n";
}

void PrintPhaseSection(std::ostream& out, const PhaseResult& phase,
                       const std::vector<std::unique_ptr<Operation>>& ops, bool traced) {
  out << "  phase " << std::left << std::setw(10) << phase.name << std::right
      << " arrival=" << ArrivalModelName(phase.arrival) << " threads=" << phase.threads
      << " read-fraction=" << std::fixed << std::setprecision(2) << phase.read_fraction;
  if (phase.zipf_theta > 0.0) {
    const double hit_rate = phase.hot_samples > 0
                                ? static_cast<double>(phase.hot_hits) /
                                      static_cast<double>(phase.hot_samples)
                                : 0.0;
    out << " zipf=" << phase.zipf_theta << " (hot " << std::setprecision(0)
        << phase.hot_fraction * 100 << "% of ids drew " << std::setprecision(1)
        << hit_rate * 100 << "% of draws)";
  }
  out << "\n";
  out << "    elapsed " << std::setprecision(3) << phase.elapsed_seconds << " s, completed "
      << phase.total_success << " (" << std::setprecision(2) << phase.SuccessThroughput()
      << " op/s), started " << phase.total_started << " (" << phase.StartedThroughput()
      << " op/s)\n";
  if (phase.arrival != ArrivalModel::kClosed) {
    const PaceMetrics& pace = phase.pace;
    const double delayed_pct =
        pace.arrivals > 0
            ? 100.0 * static_cast<double>(pace.delayed) / static_cast<double>(pace.arrivals)
            : 0.0;
    out << "    open-loop: target " << std::setprecision(0) << phase.target_rate
        << " op/s, arrivals " << pace.arrivals << ", delayed " << pace.delayed << " ("
        << std::setprecision(1) << delayed_pct << "%), queue delay p50/p99/p99.9/max "
        << std::setprecision(2) << pace.queue_delay.QuantileMillis(0.5) << "/"
        << pace.queue_delay.QuantileMillis(0.99) << "/"
        << pace.queue_delay.QuantileMillis(0.999) << "/"
        << static_cast<double>(pace.queue_delay.max_nanos()) / 1e6
        << " ms, est. backlog peak " << pace.backlog_peak << "\n";
  }
  if (phase.stm.starts > 0) {
    out << "    stm: commits " << phase.stm.commits << ", aborts " << phase.stm.aborts
        << ", read-only commits " << phase.stm.ro_commits << ", read-only aborts "
        << phase.stm.ro_aborts << "\n";
    if (phase.stm.aborts > 0) {
      out << "    abort causes: read-validation " << phase.stm.aborts_read_validation
          << ", write-lock " << phase.stm.aborts_write_lock << ", kill "
          << phase.stm.aborts_kill << ", snapshot-too-old "
          << phase.stm.aborts_snapshot_too_old << ", unknown " << phase.stm.aborts_unknown
          << "\n";
    }
  }
  if (traced && phase.conflicts.total_aborts > 0) {
    PrintConflictSummary(out, phase.conflicts, ops, "    ");
  }
  PrintHwLine(out, phase.hw, "    ");
}

}  // namespace

void PrintReport(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "== Benchmark parameters ==\n";
  out << "  strategy:            " << config.strategy;
  if (config.strategy == "astm") {
    out << " (contention manager: " << config.contention_manager << ")";
  }
  out << "\n";
  out << "  scale:               " << config.scale << "\n";
  out << "  index kind:          "
      << IndexKindName(config.index_kind.value_or(DefaultIndexKindFor(config.strategy)))
      << "\n";
  out << "  threads:             " << runner.spawned_threads() << "\n";
  out << "  length [s]:          " << config.length_seconds << "\n";
  out << "  workload:            " << WorkloadTypeName(config.workload) << "\n";
  if (config.scenario.has_value()) {
    out << "  scenario:            " << config.scenario->name << " ("
        << config.scenario->phases.size() << " phases)\n";
  }
  out << "  long traversals:     " << (config.long_traversals ? "enabled" : "disabled") << "\n";
  out << "  structure mods:      " << (config.structure_mods ? "enabled" : "disabled") << "\n";
  if (!config.disabled_ops.empty()) {
    out << "  disabled operations:";
    for (const std::string& name : config.disabled_ops) {
      out << ' ' << name;
    }
    out << "\n";
  }
  out << "  seed:                " << config.seed << "\n";

  if (config.ttc_histograms) {
    out << "\n== TTC histograms ==\n";
    for (size_t i = 0; i < ops.size(); ++i) {
      if (result.per_op[i].success == 0) {
        continue;
      }
      out << "TTC histogram for " << ops[i]->name() << ": "
          << result.per_op[i].histogram.Format() << "\n";
    }
  }

  out << "\n== Detailed results ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(12) << "completed"
      << std::setw(14) << "max-ttc[ms]" << std::setw(10) << "failed" << "\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpMetrics& metrics = result.per_op[i];
    if (metrics.started() == 0 && result.ratios[i] == 0.0) {
      continue;
    }
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::setw(12)
        << metrics.success << std::setw(14) << std::fixed << std::setprecision(2)
        << result.MaxLatencyMillis(i) << std::setw(10) << metrics.failed << "\n";
  }

  // Sample errors (Appendix A §4): CT = configured ratio, RT = observed ratio
  // of successful completions, ET = |CT - RT|; AT additionally counts failed
  // executions, FT = |AT - RT|.
  out << "\n== Sample errors ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(10) << "CT"
      << std::setw(10) << "RT" << std::setw(10) << "ET" << std::setw(10) << "AT"
      << std::setw(10) << "FT" << "\n";
  double total_e = 0.0;
  double total_f = 0.0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const double ct = result.ratios[i];
    const double rt = result.total_success > 0
                          ? static_cast<double>(metrics.success) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double at = result.total_success > 0
                          ? static_cast<double>(metrics.started()) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double et = std::abs(ct - rt);
    const double ft = std::abs(at - rt);
    total_e += et;
    total_f += ft;
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::fixed
        << std::setprecision(4) << std::setw(10) << ct << std::setw(10) << rt << std::setw(10)
        << et << std::setw(10) << at << std::setw(10) << ft << "\n";
  }
  out << "total sample errors: E = " << std::setprecision(4) << total_e << ", F = " << total_f
      << "\n";

  if (!result.phases.empty()) {
    out << "\n== Phase results ==\n";
    for (const PhaseResult& phase : result.phases) {
      PrintPhaseSection(out, phase, ops, result.traced);
    }
  }

  out << "\n== Summary results ==\n";
  for (OpCategory category : kCategories) {
    int64_t success = 0;
    int64_t failed = 0;
    int64_t max_nanos = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i]->category() != category) {
        continue;
      }
      success += result.per_op[i].success;
      failed += result.per_op[i].failed;
      max_nanos = std::max(max_nanos, result.per_op[i].histogram.max_nanos());
    }
    out << "  " << std::left << std::setw(26) << OpCategoryName(category) << std::right
        << " completed " << std::setw(10) << success << "  max-ttc[ms] " << std::setw(12)
        << std::fixed << std::setprecision(2) << static_cast<double>(max_nanos) / 1e6
        << "  failed " << std::setw(8) << failed << "  started " << std::setw(10)
        << success + failed << "\n";
  }
  out << "\n  total throughput:    " << std::fixed << std::setprecision(2)
      << result.SuccessThroughput() << " op/s successful, " << result.StartedThroughput()
      << " op/s started\n";
  out << "  elapsed time [s]:    " << std::setprecision(3) << result.elapsed_seconds << "\n";

  if (runner.strategy().stm() != nullptr) {
    const StmStats::View& stm = result.stm;
    out << "\n== STM statistics ==\n";
    out << "  starts/commits/aborts: " << stm.starts << " / " << stm.commits << " / "
        << stm.aborts << "\n";
    out << "  reads/writes:          " << stm.reads << " / " << stm.writes << "\n";
    out << "  validation steps:      " << stm.validation_steps << "\n";
    out << "  bytes cloned:          " << stm.bytes_cloned << "\n";
    out << "  contention kills:      " << stm.kills << "\n";
    out << "  read-only s/c/a:       " << stm.ro_starts << " / " << stm.ro_commits << " / "
        << stm.ro_aborts << "\n";
    if (stm.aborts > 0) {
      out << "  abort causes:          read-validation " << stm.aborts_read_validation
          << ", write-lock " << stm.aborts_write_lock << ", kill " << stm.aborts_kill
          << ", snapshot-too-old " << stm.aborts_snapshot_too_old << ", unknown "
          << stm.aborts_unknown << "\n";
    }
  }

  if (result.hw.available && result.hw.cycles > 0) {
    out << "\n== Hardware counters ==\n";
    PrintHwLine(out, result.hw, "  ");
  }

  if (result.traced) {
    out << "\n== Conflict attribution ==\n";
    PrintConflictSummary(out, result.conflicts, ops, "  ");
    if (result.trace_events_dropped > 0) {
      out << "  timeline events dropped to ring overflow: " << result.trace_events_dropped
          << " (raise --trace-buffer or --trace-sample)\n";
    }

    // Latency decomposition: where a transaction attempt's time went, per
    // operation, averaged over attempts (commits and aborts alike).
    bool any = false;
    for (const trace::OpLatencyBreakdown& lat : result.latency_by_op) {
      if (lat.attempts > 0) {
        any = true;
        break;
      }
    }
    if (any) {
      out << "\n== Latency decomposition (mean us/attempt) ==\n";
      out << std::left << std::setw(10) << "op" << std::right << std::setw(10) << "attempts"
          << std::setw(10) << "commits" << std::setw(10) << "read" << std::setw(12)
          << "validate" << std::setw(10) << "commit" << std::setw(10) << "backoff" << "\n";
      for (size_t slot = 0; slot < result.latency_by_op.size(); ++slot) {
        const trace::OpLatencyBreakdown& lat = result.latency_by_op[slot];
        if (lat.attempts == 0) {
          continue;
        }
        const double n = static_cast<double>(lat.attempts);
        out << std::left << std::setw(10) << SlotName(ops, static_cast<int>(slot))
            << std::right << std::setw(10) << lat.attempts << std::setw(10) << lat.commits
            << std::fixed << std::setprecision(1) << std::setw(10)
            << static_cast<double>(lat.read_nanos) / n / 1e3 << std::setw(12)
            << static_cast<double>(lat.validation_nanos) / n / 1e3 << std::setw(10)
            << static_cast<double>(lat.commit_nanos) / n / 1e3 << std::setw(10)
            << static_cast<double>(lat.backoff_nanos) / n / 1e3 << "\n";
      }
    }
  }
}

void WriteCsv(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "# schema=" << kCsvSchemaVersion << "\n";
  out << "# strategy=" << config.strategy << "\n";
  out << "# scale=" << config.scale << "\n";
  out << "# workload=" << WorkloadTypeName(config.workload) << "\n";
  if (config.scenario.has_value()) {
    out << "# scenario=" << config.scenario->name << "\n";
    out << "# phases=" << config.scenario->phases.size() << "\n";
  }
  out << "# threads=" << runner.spawned_threads() << "\n";
  out << "# seed=" << config.seed << "\n";
  out << "# elapsed_seconds=" << result.elapsed_seconds << "\n";
  out << "# throughput_success=" << result.SuccessThroughput() << "\n";
  out << "# throughput_started=" << result.StartedThroughput() << "\n";
  if (runner.strategy().stm() != nullptr) {
    out << "# stm_commits=" << result.stm.commits << "\n";
    out << "# stm_aborts=" << result.stm.aborts << "\n";
    out << "# stm_validation_steps=" << result.stm.validation_steps << "\n";
    out << "# stm_bytes_cloned=" << result.stm.bytes_cloned << "\n";
    out << "# stm_ro_aborts=" << result.stm.ro_aborts << "\n";
    out << "# stm_kills=" << result.stm.kills << "\n";
    out << "# stm_aborts_read_validation=" << result.stm.aborts_read_validation << "\n";
    out << "# stm_aborts_write_lock=" << result.stm.aborts_write_lock << "\n";
    out << "# stm_aborts_kill=" << result.stm.aborts_kill << "\n";
    out << "# stm_aborts_snapshot_too_old=" << result.stm.aborts_snapshot_too_old << "\n";
    out << "# stm_aborts_unknown=" << result.stm.aborts_unknown << "\n";
  }
  if (result.traced) {
    out << "# trace_events_dropped=" << result.trace_events_dropped << "\n";
  }
  // Schema 2 keeps the schema-1 column order and appends p999_ms and the
  // per-operation started throughput.
  out << "op,category,read_only,ratio,completed,failed,max_ms,mean_ms,p50_ms,p90_ms,p99_ms,"
         "p999_ms,started_per_s\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0 && result.per_op[i].started() == 0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const TtcHistogram& hist = metrics.histogram;
    const double started_per_s =
        result.elapsed_seconds > 0
            ? static_cast<double>(metrics.started()) / result.elapsed_seconds
            : 0.0;
    out << ops[i]->name() << ',' << OpCategoryName(ops[i]->category()) << ','
        << (ops[i]->read_only() ? 1 : 0) << ',' << result.ratios[i] << ',' << metrics.success
        << ',' << metrics.failed << ',' << static_cast<double>(hist.max_nanos()) / 1e6 << ','
        << hist.MeanMillis() << ',' << hist.QuantileMillis(0.5) << ','
        << hist.QuantileMillis(0.9) << ',' << hist.QuantileMillis(0.99) << ','
        << hist.QuantileMillis(0.999) << ',' << started_per_s << "\n";
  }
  out << "TOTAL,,," << 1.0 << ',' << result.total_success << ','
      << result.total_started - result.total_success << ",,,,,,," << result.StartedThroughput()
      << "\n";

  // Per-phase section (scenario runs): one row per phase, including the
  // open-loop queue-delay percentiles and the STM/hotspot deltas.
  if (!result.phases.empty()) {
    out << "phase,arrival,threads,read_fraction,zipf_theta,elapsed_s,completed,failed,"
           "ops_per_s,started_per_s,target_rate,arrivals,delayed,backlog_peak,"
           "qd_p50_ms,qd_p90_ms,qd_p99_ms,qd_p999_ms,qd_max_ms,"
           "stm_commits,stm_aborts,stm_ro_aborts,stm_validation_steps,stm_kills,"
           "stm_aborts_read_validation,stm_aborts_write_lock,stm_aborts_kill,"
           "stm_aborts_snapshot_too_old,hot_hits,hot_samples\n";
    for (const PhaseResult& phase : result.phases) {
      const TtcHistogram& qd = phase.pace.queue_delay;
      out << phase.name << ',' << ArrivalModelName(phase.arrival) << ',' << phase.threads
          << ',' << phase.read_fraction << ',' << phase.zipf_theta << ','
          << phase.elapsed_seconds << ',' << phase.total_success << ','
          << phase.total_started - phase.total_success << ',' << phase.SuccessThroughput()
          << ',' << phase.StartedThroughput() << ',' << phase.target_rate << ','
          << phase.pace.arrivals << ',' << phase.pace.delayed << ','
          << phase.pace.backlog_peak << ',' << qd.QuantileMillis(0.5) << ','
          << qd.QuantileMillis(0.9) << ',' << qd.QuantileMillis(0.99) << ','
          << qd.QuantileMillis(0.999) << ',' << static_cast<double>(qd.max_nanos()) / 1e6
          << ',' << phase.stm.commits << ',' << phase.stm.aborts << ',' << phase.stm.ro_aborts
          << ',' << phase.stm.validation_steps << ',' << phase.stm.kills << ','
          << phase.stm.aborts_read_validation << ',' << phase.stm.aborts_write_lock << ','
          << phase.stm.aborts_kill << ',' << phase.stm.aborts_snapshot_too_old << ','
          << phase.hot_hits << ',' << phase.hot_samples << "\n";
    }
  }
}

namespace {

std::string JsonString(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void WriteStmJson(std::ostream& out, const StmStats::View& stm, const char* indent) {
  out << "{\n";
  out << indent << "  \"starts\": " << stm.starts << ", \"commits\": " << stm.commits
      << ", \"aborts\": " << stm.aborts << ",\n";
  out << indent << "  \"reads\": " << stm.reads << ", \"writes\": " << stm.writes
      << ", \"validation_steps\": " << stm.validation_steps
      << ", \"bytes_cloned\": " << stm.bytes_cloned << ", \"kills\": " << stm.kills << ",\n";
  out << indent << "  \"ro_starts\": " << stm.ro_starts
      << ", \"ro_commits\": " << stm.ro_commits << ", \"ro_aborts\": " << stm.ro_aborts
      << ",\n";
  out << indent << "  \"abort_causes\": {\"read_validation\": " << stm.aborts_read_validation
      << ", \"write_lock\": " << stm.aborts_write_lock << ", \"kill\": " << stm.aborts_kill
      << ", \"snapshot_too_old\": " << stm.aborts_snapshot_too_old
      << ", \"unknown\": " << stm.aborts_unknown << "}\n";
  out << indent << "}";
}

void WriteConflictsJson(std::ostream& out, const trace::ConflictSummary& conflicts,
                        const std::vector<std::unique_ptr<Operation>>& ops,
                        const char* indent) {
  out << "{\n";
  out << indent << "  \"total_aborts\": " << conflicts.total_aborts
      << ", \"attributed_aborts\": " << conflicts.attributed_aborts << ",\n";
  out << indent << "  \"top_locations\": [";
  for (size_t i = 0; i < conflicts.top_locations.size(); ++i) {
    const trace::ConflictHotLocation& location = conflicts.top_locations[i];
    out << (i == 0 ? "" : ", ") << "{\"key\": \"0x" << std::hex << location.key << std::dec
        << "\", \"aborts\": " << location.aborts << "}";
  }
  out << "],\n";
  out << indent << "  \"top_pairs\": [";
  for (size_t i = 0; i < conflicts.top_pairs.size(); ++i) {
    const trace::ConflictPair& pair = conflicts.top_pairs[i];
    out << (i == 0 ? "" : ", ") << "{\"victim\": " << JsonString(SlotName(ops, pair.victim_slot))
        << ", \"writer\": " << JsonString(SlotName(ops, pair.writer_slot))
        << ", \"aborts\": " << pair.aborts << "}";
  }
  out << "]\n";
  out << indent << "}";
}

}  // namespace

void WriteJson(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "{\n";
  out << "  \"schema\": " << kCsvSchemaVersion << ",\n";
  out << "  \"config\": {\n";
  out << "    \"strategy\": " << JsonString(config.strategy) << ",\n";
  out << "    \"contention_manager\": " << JsonString(config.contention_manager) << ",\n";
  out << "    \"scale\": " << JsonString(config.scale) << ",\n";
  out << "    \"workload\": " << JsonString(WorkloadTypeName(config.workload)) << ",\n";
  if (config.scenario.has_value()) {
    out << "    \"scenario\": " << JsonString(config.scenario->name) << ",\n";
  }
  out << "    \"threads\": " << runner.spawned_threads() << ",\n";
  out << "    \"length_seconds\": " << config.length_seconds << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"elapsed_seconds\": " << result.elapsed_seconds << ",\n";
  out << "  \"total_success\": " << result.total_success << ",\n";
  out << "  \"total_started\": " << result.total_started << ",\n";
  out << "  \"throughput_success\": " << result.SuccessThroughput() << ",\n";
  out << "  \"throughput_started\": " << result.StartedThroughput() << ",\n";
  if (runner.strategy().stm() != nullptr) {
    out << "  \"stm\": ";
    WriteStmJson(out, result.stm, "  ");
    out << ",\n";
  }
  if (result.traced) {
    out << "  \"trace\": {\n";
    out << "    \"dropped_events\": " << result.trace_events_dropped << ",\n";
    out << "    \"conflicts\": ";
    WriteConflictsJson(out, result.conflicts, ops, "    ");
    out << ",\n    \"latency_by_op\": [";
    bool first_slot = true;
    for (size_t slot = 0; slot < result.latency_by_op.size(); ++slot) {
      const trace::OpLatencyBreakdown& lat = result.latency_by_op[slot];
      if (lat.attempts == 0) {
        continue;
      }
      out << (first_slot ? "\n" : ",\n");
      first_slot = false;
      out << "      {\"op\": " << JsonString(SlotName(ops, static_cast<int>(slot)))
          << ", \"attempts\": " << lat.attempts << ", \"commits\": " << lat.commits
          << ", \"aborts\": " << lat.aborts << ", \"read_nanos\": " << lat.read_nanos
          << ", \"validation_nanos\": " << lat.validation_nanos
          << ", \"commit_nanos\": " << lat.commit_nanos
          << ", \"backoff_nanos\": " << lat.backoff_nanos << "}";
    }
    out << (first_slot ? "]" : "\n    ]") << "\n  },\n";
  }

  out << "  \"operations\": [";
  bool first_op = true;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0 && result.per_op[i].started() == 0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const TtcHistogram& hist = metrics.histogram;
    const double started_per_s =
        result.elapsed_seconds > 0
            ? static_cast<double>(metrics.started()) / result.elapsed_seconds
            : 0.0;
    out << (first_op ? "\n" : ",\n");
    first_op = false;
    out << "    {\"op\": " << JsonString(ops[i]->name())
        << ", \"category\": " << JsonString(OpCategoryName(ops[i]->category()))
        << ", \"read_only\": " << (ops[i]->read_only() ? "true" : "false")
        << ", \"ratio\": " << result.ratios[i] << ", \"completed\": " << metrics.success
        << ", \"failed\": " << metrics.failed
        << ", \"max_ms\": " << static_cast<double>(hist.max_nanos()) / 1e6
        << ", \"mean_ms\": " << hist.MeanMillis()
        << ", \"p50_ms\": " << hist.QuantileMillis(0.5)
        << ", \"p90_ms\": " << hist.QuantileMillis(0.9)
        << ", \"p99_ms\": " << hist.QuantileMillis(0.99)
        << ", \"p999_ms\": " << hist.QuantileMillis(0.999)
        << ", \"started_per_s\": " << started_per_s << "}";
  }
  out << "\n  ]";

  if (!result.phases.empty()) {
    out << ",\n  \"phases\": [";
    for (size_t p = 0; p < result.phases.size(); ++p) {
      const PhaseResult& phase = result.phases[p];
      const TtcHistogram& qd = phase.pace.queue_delay;
      out << (p == 0 ? "\n" : ",\n");
      out << "    {\n";
      out << "      \"name\": " << JsonString(phase.name) << ",\n";
      out << "      \"arrival\": " << JsonString(ArrivalModelName(phase.arrival)) << ",\n";
      out << "      \"threads\": " << phase.threads << ",\n";
      out << "      \"read_fraction\": " << phase.read_fraction << ",\n";
      out << "      \"zipf_theta\": " << phase.zipf_theta << ",\n";
      out << "      \"hot_fraction\": " << phase.hot_fraction << ",\n";
      out << "      \"elapsed_seconds\": " << phase.elapsed_seconds << ",\n";
      out << "      \"completed\": " << phase.total_success << ",\n";
      out << "      \"started\": " << phase.total_started << ",\n";
      out << "      \"ops_per_s\": " << phase.SuccessThroughput() << ",\n";
      out << "      \"started_per_s\": " << phase.StartedThroughput() << ",\n";
      out << "      \"open_loop\": {\n";
      out << "        \"target_rate\": " << phase.target_rate << ",\n";
      out << "        \"arrivals\": " << phase.pace.arrivals << ",\n";
      out << "        \"delayed\": " << phase.pace.delayed << ",\n";
      out << "        \"backlog_peak\": " << phase.pace.backlog_peak << ",\n";
      out << "        \"queue_delay_ms\": {\"p50\": " << qd.QuantileMillis(0.5)
          << ", \"p90\": " << qd.QuantileMillis(0.9) << ", \"p99\": " << qd.QuantileMillis(0.99)
          << ", \"p999\": " << qd.QuantileMillis(0.999)
          << ", \"max\": " << static_cast<double>(qd.max_nanos()) / 1e6 << "}\n";
      out << "      },\n";
      out << "      \"hotspot\": {\"hits\": " << phase.hot_hits
          << ", \"samples\": " << phase.hot_samples << "},\n";
      out << "      \"stm\": ";
      WriteStmJson(out, phase.stm, "      ");
      if (result.traced) {
        out << ",\n      \"conflicts\": ";
        WriteConflictsJson(out, phase.conflicts, ops, "      ");
      }
      out << "\n    }";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
}

}  // namespace sb7
