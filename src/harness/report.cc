#include "src/harness/report.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <string>

namespace sb7 {
namespace {

constexpr std::array<OpCategory, 4> kCategories = {
    OpCategory::kLongTraversal,
    OpCategory::kShortTraversal,
    OpCategory::kShortOperation,
    OpCategory::kStructureModification,
};

// CSV metadata schema version. 1 = the implicit pre-scenario layout; 2 adds
// p999_ms/started_per_s op columns and the per-phase section.
constexpr int kCsvSchemaVersion = 2;

void PrintPhaseSection(std::ostream& out, const PhaseResult& phase) {
  out << "  phase " << std::left << std::setw(10) << phase.name << std::right
      << " arrival=" << ArrivalModelName(phase.arrival) << " threads=" << phase.threads
      << " read-fraction=" << std::fixed << std::setprecision(2) << phase.read_fraction;
  if (phase.zipf_theta > 0.0) {
    const double hit_rate = phase.hot_samples > 0
                                ? static_cast<double>(phase.hot_hits) /
                                      static_cast<double>(phase.hot_samples)
                                : 0.0;
    out << " zipf=" << phase.zipf_theta << " (hot " << std::setprecision(0)
        << phase.hot_fraction * 100 << "% of ids drew " << std::setprecision(1)
        << hit_rate * 100 << "% of draws)";
  }
  out << "\n";
  out << "    elapsed " << std::setprecision(3) << phase.elapsed_seconds << " s, completed "
      << phase.total_success << " (" << std::setprecision(2) << phase.SuccessThroughput()
      << " op/s), started " << phase.total_started << " (" << phase.StartedThroughput()
      << " op/s)\n";
  if (phase.arrival != ArrivalModel::kClosed) {
    const PaceMetrics& pace = phase.pace;
    const double delayed_pct =
        pace.arrivals > 0
            ? 100.0 * static_cast<double>(pace.delayed) / static_cast<double>(pace.arrivals)
            : 0.0;
    out << "    open-loop: target " << std::setprecision(0) << phase.target_rate
        << " op/s, arrivals " << pace.arrivals << ", delayed " << pace.delayed << " ("
        << std::setprecision(1) << delayed_pct << "%), queue delay p50/p99/p99.9/max "
        << std::setprecision(2) << pace.queue_delay.QuantileMillis(0.5) << "/"
        << pace.queue_delay.QuantileMillis(0.99) << "/"
        << pace.queue_delay.QuantileMillis(0.999) << "/"
        << static_cast<double>(pace.queue_delay.max_nanos()) / 1e6
        << " ms, est. backlog peak " << pace.backlog_peak << "\n";
  }
  if (phase.stm.starts > 0) {
    out << "    stm: commits " << phase.stm.commits << ", aborts " << phase.stm.aborts
        << ", read-only commits " << phase.stm.ro_commits << ", read-only aborts "
        << phase.stm.ro_aborts << "\n";
  }
}

}  // namespace

void PrintReport(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "== Benchmark parameters ==\n";
  out << "  strategy:            " << config.strategy;
  if (config.strategy == "astm") {
    out << " (contention manager: " << config.contention_manager << ")";
  }
  out << "\n";
  out << "  scale:               " << config.scale << "\n";
  out << "  index kind:          "
      << IndexKindName(config.index_kind.value_or(DefaultIndexKindFor(config.strategy)))
      << "\n";
  out << "  threads:             " << runner.spawned_threads() << "\n";
  out << "  length [s]:          " << config.length_seconds << "\n";
  out << "  workload:            " << WorkloadTypeName(config.workload) << "\n";
  if (config.scenario.has_value()) {
    out << "  scenario:            " << config.scenario->name << " ("
        << config.scenario->phases.size() << " phases)\n";
  }
  out << "  long traversals:     " << (config.long_traversals ? "enabled" : "disabled") << "\n";
  out << "  structure mods:      " << (config.structure_mods ? "enabled" : "disabled") << "\n";
  if (!config.disabled_ops.empty()) {
    out << "  disabled operations:";
    for (const std::string& name : config.disabled_ops) {
      out << ' ' << name;
    }
    out << "\n";
  }
  out << "  seed:                " << config.seed << "\n";

  if (config.ttc_histograms) {
    out << "\n== TTC histograms ==\n";
    for (size_t i = 0; i < ops.size(); ++i) {
      if (result.per_op[i].success == 0) {
        continue;
      }
      out << "TTC histogram for " << ops[i]->name() << ": "
          << result.per_op[i].histogram.Format() << "\n";
    }
  }

  out << "\n== Detailed results ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(12) << "completed"
      << std::setw(14) << "max-ttc[ms]" << std::setw(10) << "failed" << "\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpMetrics& metrics = result.per_op[i];
    if (metrics.started() == 0 && result.ratios[i] == 0.0) {
      continue;
    }
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::setw(12)
        << metrics.success << std::setw(14) << std::fixed << std::setprecision(2)
        << result.MaxLatencyMillis(i) << std::setw(10) << metrics.failed << "\n";
  }

  // Sample errors (Appendix A §4): CT = configured ratio, RT = observed ratio
  // of successful completions, ET = |CT - RT|; AT additionally counts failed
  // executions, FT = |AT - RT|.
  out << "\n== Sample errors ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(10) << "CT"
      << std::setw(10) << "RT" << std::setw(10) << "ET" << std::setw(10) << "AT"
      << std::setw(10) << "FT" << "\n";
  double total_e = 0.0;
  double total_f = 0.0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const double ct = result.ratios[i];
    const double rt = result.total_success > 0
                          ? static_cast<double>(metrics.success) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double at = result.total_success > 0
                          ? static_cast<double>(metrics.started()) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double et = std::abs(ct - rt);
    const double ft = std::abs(at - rt);
    total_e += et;
    total_f += ft;
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::fixed
        << std::setprecision(4) << std::setw(10) << ct << std::setw(10) << rt << std::setw(10)
        << et << std::setw(10) << at << std::setw(10) << ft << "\n";
  }
  out << "total sample errors: E = " << std::setprecision(4) << total_e << ", F = " << total_f
      << "\n";

  if (!result.phases.empty()) {
    out << "\n== Phase results ==\n";
    for (const PhaseResult& phase : result.phases) {
      PrintPhaseSection(out, phase);
    }
  }

  out << "\n== Summary results ==\n";
  for (OpCategory category : kCategories) {
    int64_t success = 0;
    int64_t failed = 0;
    int64_t max_nanos = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i]->category() != category) {
        continue;
      }
      success += result.per_op[i].success;
      failed += result.per_op[i].failed;
      max_nanos = std::max(max_nanos, result.per_op[i].histogram.max_nanos());
    }
    out << "  " << std::left << std::setw(26) << OpCategoryName(category) << std::right
        << " completed " << std::setw(10) << success << "  max-ttc[ms] " << std::setw(12)
        << std::fixed << std::setprecision(2) << static_cast<double>(max_nanos) / 1e6
        << "  failed " << std::setw(8) << failed << "  started " << std::setw(10)
        << success + failed << "\n";
  }
  out << "\n  total throughput:    " << std::fixed << std::setprecision(2)
      << result.SuccessThroughput() << " op/s successful, " << result.StartedThroughput()
      << " op/s started\n";
  out << "  elapsed time [s]:    " << std::setprecision(3) << result.elapsed_seconds << "\n";

  if (runner.strategy().stm() != nullptr) {
    const StmStats::View& stm = result.stm;
    out << "\n== STM statistics ==\n";
    out << "  starts/commits/aborts: " << stm.starts << " / " << stm.commits << " / "
        << stm.aborts << "\n";
    out << "  reads/writes:          " << stm.reads << " / " << stm.writes << "\n";
    out << "  validation steps:      " << stm.validation_steps << "\n";
    out << "  bytes cloned:          " << stm.bytes_cloned << "\n";
    out << "  contention kills:      " << stm.kills << "\n";
    out << "  read-only s/c/a:       " << stm.ro_starts << " / " << stm.ro_commits << " / "
        << stm.ro_aborts << "\n";
  }
}

void WriteCsv(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "# schema=" << kCsvSchemaVersion << "\n";
  out << "# strategy=" << config.strategy << "\n";
  out << "# scale=" << config.scale << "\n";
  out << "# workload=" << WorkloadTypeName(config.workload) << "\n";
  if (config.scenario.has_value()) {
    out << "# scenario=" << config.scenario->name << "\n";
    out << "# phases=" << config.scenario->phases.size() << "\n";
  }
  out << "# threads=" << runner.spawned_threads() << "\n";
  out << "# seed=" << config.seed << "\n";
  out << "# elapsed_seconds=" << result.elapsed_seconds << "\n";
  out << "# throughput_success=" << result.SuccessThroughput() << "\n";
  out << "# throughput_started=" << result.StartedThroughput() << "\n";
  if (runner.strategy().stm() != nullptr) {
    out << "# stm_commits=" << result.stm.commits << "\n";
    out << "# stm_aborts=" << result.stm.aborts << "\n";
    out << "# stm_validation_steps=" << result.stm.validation_steps << "\n";
    out << "# stm_bytes_cloned=" << result.stm.bytes_cloned << "\n";
    out << "# stm_ro_aborts=" << result.stm.ro_aborts << "\n";
  }
  // Schema 2 keeps the schema-1 column order and appends p999_ms and the
  // per-operation started throughput.
  out << "op,category,read_only,ratio,completed,failed,max_ms,mean_ms,p50_ms,p90_ms,p99_ms,"
         "p999_ms,started_per_s\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0 && result.per_op[i].started() == 0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const TtcHistogram& hist = metrics.histogram;
    const double started_per_s =
        result.elapsed_seconds > 0
            ? static_cast<double>(metrics.started()) / result.elapsed_seconds
            : 0.0;
    out << ops[i]->name() << ',' << OpCategoryName(ops[i]->category()) << ','
        << (ops[i]->read_only() ? 1 : 0) << ',' << result.ratios[i] << ',' << metrics.success
        << ',' << metrics.failed << ',' << static_cast<double>(hist.max_nanos()) / 1e6 << ','
        << hist.MeanMillis() << ',' << hist.QuantileMillis(0.5) << ','
        << hist.QuantileMillis(0.9) << ',' << hist.QuantileMillis(0.99) << ','
        << hist.QuantileMillis(0.999) << ',' << started_per_s << "\n";
  }
  out << "TOTAL,,," << 1.0 << ',' << result.total_success << ','
      << result.total_started - result.total_success << ",,,,,,," << result.StartedThroughput()
      << "\n";

  // Per-phase section (scenario runs): one row per phase, including the
  // open-loop queue-delay percentiles and the STM/hotspot deltas.
  if (!result.phases.empty()) {
    out << "phase,arrival,threads,read_fraction,zipf_theta,elapsed_s,completed,failed,"
           "ops_per_s,started_per_s,target_rate,arrivals,delayed,backlog_peak,"
           "qd_p50_ms,qd_p90_ms,qd_p99_ms,qd_p999_ms,qd_max_ms,"
           "stm_commits,stm_aborts,stm_ro_aborts,hot_hits,hot_samples\n";
    for (const PhaseResult& phase : result.phases) {
      const TtcHistogram& qd = phase.pace.queue_delay;
      out << phase.name << ',' << ArrivalModelName(phase.arrival) << ',' << phase.threads
          << ',' << phase.read_fraction << ',' << phase.zipf_theta << ','
          << phase.elapsed_seconds << ',' << phase.total_success << ','
          << phase.total_started - phase.total_success << ',' << phase.SuccessThroughput()
          << ',' << phase.StartedThroughput() << ',' << phase.target_rate << ','
          << phase.pace.arrivals << ',' << phase.pace.delayed << ','
          << phase.pace.backlog_peak << ',' << qd.QuantileMillis(0.5) << ','
          << qd.QuantileMillis(0.9) << ',' << qd.QuantileMillis(0.99) << ','
          << qd.QuantileMillis(0.999) << ',' << static_cast<double>(qd.max_nanos()) / 1e6
          << ',' << phase.stm.commits << ',' << phase.stm.aborts << ',' << phase.stm.ro_aborts
          << ',' << phase.hot_hits << ',' << phase.hot_samples << "\n";
    }
  }
}

namespace {

std::string JsonString(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void WriteStmJson(std::ostream& out, const StmStats::View& stm, const char* indent) {
  out << "{\n";
  out << indent << "  \"starts\": " << stm.starts << ", \"commits\": " << stm.commits
      << ", \"aborts\": " << stm.aborts << ",\n";
  out << indent << "  \"reads\": " << stm.reads << ", \"writes\": " << stm.writes
      << ", \"validation_steps\": " << stm.validation_steps
      << ", \"bytes_cloned\": " << stm.bytes_cloned << ", \"kills\": " << stm.kills << ",\n";
  out << indent << "  \"ro_starts\": " << stm.ro_starts
      << ", \"ro_commits\": " << stm.ro_commits << ", \"ro_aborts\": " << stm.ro_aborts << "\n";
  out << indent << "}";
}

}  // namespace

void WriteJson(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "{\n";
  out << "  \"schema\": " << kCsvSchemaVersion << ",\n";
  out << "  \"config\": {\n";
  out << "    \"strategy\": " << JsonString(config.strategy) << ",\n";
  out << "    \"contention_manager\": " << JsonString(config.contention_manager) << ",\n";
  out << "    \"scale\": " << JsonString(config.scale) << ",\n";
  out << "    \"workload\": " << JsonString(WorkloadTypeName(config.workload)) << ",\n";
  if (config.scenario.has_value()) {
    out << "    \"scenario\": " << JsonString(config.scenario->name) << ",\n";
  }
  out << "    \"threads\": " << runner.spawned_threads() << ",\n";
  out << "    \"length_seconds\": " << config.length_seconds << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"elapsed_seconds\": " << result.elapsed_seconds << ",\n";
  out << "  \"total_success\": " << result.total_success << ",\n";
  out << "  \"total_started\": " << result.total_started << ",\n";
  out << "  \"throughput_success\": " << result.SuccessThroughput() << ",\n";
  out << "  \"throughput_started\": " << result.StartedThroughput() << ",\n";
  if (runner.strategy().stm() != nullptr) {
    out << "  \"stm\": ";
    WriteStmJson(out, result.stm, "  ");
    out << ",\n";
  }

  out << "  \"operations\": [";
  bool first_op = true;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0 && result.per_op[i].started() == 0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const TtcHistogram& hist = metrics.histogram;
    const double started_per_s =
        result.elapsed_seconds > 0
            ? static_cast<double>(metrics.started()) / result.elapsed_seconds
            : 0.0;
    out << (first_op ? "\n" : ",\n");
    first_op = false;
    out << "    {\"op\": " << JsonString(ops[i]->name())
        << ", \"category\": " << JsonString(OpCategoryName(ops[i]->category()))
        << ", \"read_only\": " << (ops[i]->read_only() ? "true" : "false")
        << ", \"ratio\": " << result.ratios[i] << ", \"completed\": " << metrics.success
        << ", \"failed\": " << metrics.failed
        << ", \"max_ms\": " << static_cast<double>(hist.max_nanos()) / 1e6
        << ", \"mean_ms\": " << hist.MeanMillis()
        << ", \"p50_ms\": " << hist.QuantileMillis(0.5)
        << ", \"p90_ms\": " << hist.QuantileMillis(0.9)
        << ", \"p99_ms\": " << hist.QuantileMillis(0.99)
        << ", \"p999_ms\": " << hist.QuantileMillis(0.999)
        << ", \"started_per_s\": " << started_per_s << "}";
  }
  out << "\n  ]";

  if (!result.phases.empty()) {
    out << ",\n  \"phases\": [";
    for (size_t p = 0; p < result.phases.size(); ++p) {
      const PhaseResult& phase = result.phases[p];
      const TtcHistogram& qd = phase.pace.queue_delay;
      out << (p == 0 ? "\n" : ",\n");
      out << "    {\n";
      out << "      \"name\": " << JsonString(phase.name) << ",\n";
      out << "      \"arrival\": " << JsonString(ArrivalModelName(phase.arrival)) << ",\n";
      out << "      \"threads\": " << phase.threads << ",\n";
      out << "      \"read_fraction\": " << phase.read_fraction << ",\n";
      out << "      \"zipf_theta\": " << phase.zipf_theta << ",\n";
      out << "      \"hot_fraction\": " << phase.hot_fraction << ",\n";
      out << "      \"elapsed_seconds\": " << phase.elapsed_seconds << ",\n";
      out << "      \"completed\": " << phase.total_success << ",\n";
      out << "      \"started\": " << phase.total_started << ",\n";
      out << "      \"ops_per_s\": " << phase.SuccessThroughput() << ",\n";
      out << "      \"started_per_s\": " << phase.StartedThroughput() << ",\n";
      out << "      \"open_loop\": {\n";
      out << "        \"target_rate\": " << phase.target_rate << ",\n";
      out << "        \"arrivals\": " << phase.pace.arrivals << ",\n";
      out << "        \"delayed\": " << phase.pace.delayed << ",\n";
      out << "        \"backlog_peak\": " << phase.pace.backlog_peak << ",\n";
      out << "        \"queue_delay_ms\": {\"p50\": " << qd.QuantileMillis(0.5)
          << ", \"p90\": " << qd.QuantileMillis(0.9) << ", \"p99\": " << qd.QuantileMillis(0.99)
          << ", \"p999\": " << qd.QuantileMillis(0.999)
          << ", \"max\": " << static_cast<double>(qd.max_nanos()) / 1e6 << "}\n";
      out << "      },\n";
      out << "      \"hotspot\": {\"hits\": " << phase.hot_hits
          << ", \"samples\": " << phase.hot_samples << "},\n";
      out << "      \"stm\": ";
      WriteStmJson(out, phase.stm, "      ");
      out << "\n    }";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
}

}  // namespace sb7
