#include "src/harness/report.h"

#include <array>
#include <cmath>
#include <iomanip>

namespace sb7 {
namespace {

constexpr std::array<OpCategory, 4> kCategories = {
    OpCategory::kLongTraversal,
    OpCategory::kShortTraversal,
    OpCategory::kShortOperation,
    OpCategory::kStructureModification,
};

}  // namespace

void PrintReport(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "== Benchmark parameters ==\n";
  out << "  strategy:            " << config.strategy;
  if (config.strategy == "astm") {
    out << " (contention manager: " << config.contention_manager << ")";
  }
  out << "\n";
  out << "  scale:               " << config.scale << "\n";
  out << "  index kind:          "
      << IndexKindName(config.index_kind.value_or(DefaultIndexKindFor(config.strategy)))
      << "\n";
  out << "  threads:             " << config.threads << "\n";
  out << "  length [s]:          " << config.length_seconds << "\n";
  out << "  workload:            " << WorkloadTypeName(config.workload) << "\n";
  out << "  long traversals:     " << (config.long_traversals ? "enabled" : "disabled") << "\n";
  out << "  structure mods:      " << (config.structure_mods ? "enabled" : "disabled") << "\n";
  if (!config.disabled_ops.empty()) {
    out << "  disabled operations:";
    for (const std::string& name : config.disabled_ops) {
      out << ' ' << name;
    }
    out << "\n";
  }
  out << "  seed:                " << config.seed << "\n";

  if (config.ttc_histograms) {
    out << "\n== TTC histograms ==\n";
    for (size_t i = 0; i < ops.size(); ++i) {
      if (result.per_op[i].success == 0) {
        continue;
      }
      out << "TTC histogram for " << ops[i]->name() << ": "
          << result.per_op[i].histogram.Format() << "\n";
    }
  }

  out << "\n== Detailed results ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(12) << "completed"
      << std::setw(14) << "max-ttc[ms]" << std::setw(10) << "failed" << "\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpMetrics& metrics = result.per_op[i];
    if (metrics.started() == 0 && result.ratios[i] == 0.0) {
      continue;
    }
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::setw(12)
        << metrics.success << std::setw(14) << std::fixed << std::setprecision(2)
        << result.MaxLatencyMillis(i) << std::setw(10) << metrics.failed << "\n";
  }

  // Sample errors (Appendix A §4): CT = configured ratio, RT = observed ratio
  // of successful completions, ET = |CT - RT|; AT additionally counts failed
  // executions, FT = |AT - RT|.
  out << "\n== Sample errors ==\n";
  out << std::left << std::setw(6) << "op" << std::right << std::setw(10) << "CT"
      << std::setw(10) << "RT" << std::setw(10) << "ET" << std::setw(10) << "AT"
      << std::setw(10) << "FT" << "\n";
  double total_e = 0.0;
  double total_f = 0.0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const double ct = result.ratios[i];
    const double rt = result.total_success > 0
                          ? static_cast<double>(metrics.success) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double at = result.total_success > 0
                          ? static_cast<double>(metrics.started()) /
                                static_cast<double>(result.total_success)
                          : 0.0;
    const double et = std::abs(ct - rt);
    const double ft = std::abs(at - rt);
    total_e += et;
    total_f += ft;
    out << std::left << std::setw(6) << ops[i]->name() << std::right << std::fixed
        << std::setprecision(4) << std::setw(10) << ct << std::setw(10) << rt << std::setw(10)
        << et << std::setw(10) << at << std::setw(10) << ft << "\n";
  }
  out << "total sample errors: E = " << std::setprecision(4) << total_e << ", F = " << total_f
      << "\n";

  out << "\n== Summary results ==\n";
  for (OpCategory category : kCategories) {
    int64_t success = 0;
    int64_t failed = 0;
    int64_t max_nanos = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i]->category() != category) {
        continue;
      }
      success += result.per_op[i].success;
      failed += result.per_op[i].failed;
      max_nanos = std::max(max_nanos, result.per_op[i].histogram.max_nanos());
    }
    out << "  " << std::left << std::setw(26) << OpCategoryName(category) << std::right
        << " completed " << std::setw(10) << success << "  max-ttc[ms] " << std::setw(12)
        << std::fixed << std::setprecision(2) << static_cast<double>(max_nanos) / 1e6
        << "  failed " << std::setw(8) << failed << "  started " << std::setw(10)
        << success + failed << "\n";
  }
  out << "\n  total throughput:    " << std::fixed << std::setprecision(2)
      << result.SuccessThroughput() << " op/s successful, " << result.StartedThroughput()
      << " op/s started\n";
  out << "  elapsed time [s]:    " << std::setprecision(3) << result.elapsed_seconds << "\n";

  if (runner.strategy().stm() != nullptr) {
    const StmStats::View& stm = result.stm;
    out << "\n== STM statistics ==\n";
    out << "  starts/commits/aborts: " << stm.starts << " / " << stm.commits << " / "
        << stm.aborts << "\n";
    out << "  reads/writes:          " << stm.reads << " / " << stm.writes << "\n";
    out << "  validation steps:      " << stm.validation_steps << "\n";
    out << "  bytes cloned:          " << stm.bytes_cloned << "\n";
    out << "  contention kills:      " << stm.kills << "\n";
    out << "  read-only s/c/a:       " << stm.ro_starts << " / " << stm.ro_commits << " / "
        << stm.ro_aborts << "\n";
  }
}

void WriteCsv(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result) {
  const BenchConfig& config = runner.config();
  const auto& ops = runner.registry().all();

  out << "# strategy=" << config.strategy << "\n";
  out << "# scale=" << config.scale << "\n";
  out << "# workload=" << WorkloadTypeName(config.workload) << "\n";
  out << "# threads=" << config.threads << "\n";
  out << "# seed=" << config.seed << "\n";
  out << "# elapsed_seconds=" << result.elapsed_seconds << "\n";
  out << "# throughput_success=" << result.SuccessThroughput() << "\n";
  out << "# throughput_started=" << result.StartedThroughput() << "\n";
  if (runner.strategy().stm() != nullptr) {
    out << "# stm_commits=" << result.stm.commits << "\n";
    out << "# stm_aborts=" << result.stm.aborts << "\n";
    out << "# stm_validation_steps=" << result.stm.validation_steps << "\n";
    out << "# stm_bytes_cloned=" << result.stm.bytes_cloned << "\n";
    out << "# stm_ro_aborts=" << result.stm.ro_aborts << "\n";
  }
  out << "op,category,read_only,ratio,completed,failed,max_ms,mean_ms,p50_ms,p90_ms,p99_ms\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (result.ratios[i] == 0.0 && result.per_op[i].started() == 0) {
      continue;
    }
    const OpMetrics& metrics = result.per_op[i];
    const TtcHistogram& hist = metrics.histogram;
    out << ops[i]->name() << ',' << OpCategoryName(ops[i]->category()) << ','
        << (ops[i]->read_only() ? 1 : 0) << ',' << result.ratios[i] << ',' << metrics.success
        << ',' << metrics.failed << ',' << static_cast<double>(hist.max_nanos()) / 1e6 << ','
        << hist.MeanMillis() << ',' << hist.QuantileMillis(0.5) << ','
        << hist.QuantileMillis(0.9) << ',' << hist.QuantileMillis(0.99) << "\n";
  }
  out << "TOTAL,,," << 1.0 << ',' << result.total_success << ','
      << result.total_started - result.total_success << ",,,,,\n";
}

}  // namespace sb7
