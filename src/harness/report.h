// Appendix-A report formatting: benchmark parameters, optional TTC
// histograms, detailed per-operation results, sample errors, and summary.

#ifndef STMBENCH7_SRC_HARNESS_REPORT_H_
#define STMBENCH7_SRC_HARNESS_REPORT_H_

#include <ostream>

#include "src/harness/driver.h"

namespace sb7 {

void PrintReport(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result);

// Machine-readable CSV (schema 3): '#'-prefixed metadata lines (including
// the per-cause abort breakdown), then one row per enabled operation (name,
// category, read_only, configured ratio, completed, failed,
// max/mean/p50/p90/p99/p99.9 latency in ms and started throughput) and a
// TOTAL row. Scenario runs append a per-phase section (one row per phase
// with throughput, queue-delay percentiles, backlog and STM — including
// validation/kill/abort-cause — and hotspot deltas).
void WriteCsv(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result);

// Machine-readable JSON mirroring the CSV content: config and totals as one
// object, per-operation rows as an array, and — for scenario runs — one
// block per phase (including open-loop queue-delay percentiles).
void WriteJson(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result);

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_REPORT_H_
