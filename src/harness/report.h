// Appendix-A report formatting: benchmark parameters, optional TTC
// histograms, detailed per-operation results, sample errors, and summary.

#ifndef STMBENCH7_SRC_HARNESS_REPORT_H_
#define STMBENCH7_SRC_HARNESS_REPORT_H_

#include <ostream>

#include "src/harness/driver.h"

namespace sb7 {

void PrintReport(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result);

// Machine-readable CSV: '#'-prefixed metadata lines, then one row per
// enabled operation (name, category, read_only, configured ratio, completed,
// failed, max/mean/p50/p90/p99 latency in ms) and a TOTAL row.
void WriteCsv(std::ostream& out, const BenchmarkRunner& runner, const BenchResult& result);

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_REPORT_H_
