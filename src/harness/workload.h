// Workload mixing (§3, Table 2).
//
// Operation categories get fixed weights (long traversals 5%, short
// traversals 40%, short operations 45%, structure modifications 10%); the
// workload type splits each category's weight between its read-only and
// update members (90/10, 60/40 or 10/90). Structure modifications are all
// updates and receive only the write share of their category weight. The
// resulting per-operation ratios are normalized to sum to one — the paper's
// "ratios ... combined and adjusted, based on the benchmark parameters".
// Disabled operations get ratio zero and the rest renormalize.

#ifndef STMBENCH7_SRC_HARNESS_WORKLOAD_H_
#define STMBENCH7_SRC_HARNESS_WORKLOAD_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ops/operation.h"

namespace sb7 {

enum class WorkloadType { kReadDominated, kReadWrite, kWriteDominated };

// "r" | "rw" | "w" (Appendix A); defaults to read-dominated.
WorkloadType WorkloadTypeForName(std::string_view name);
std::string_view WorkloadTypeName(WorkloadType type);
// Fraction of read-only work: 0.9 / 0.6 / 0.1.
double ReadOnlyFraction(WorkloadType type);

// Category weights of Table 2 (percent).
double CategoryWeight(OpCategory category);

// Per-operation selection probabilities, parallel to `registry.all()`.
// Operations that are disabled (long traversals off, structure modifications
// off, or named in `disabled_ops`) get probability zero. `read_fraction` is
// the share of read-only work in each category (the paper's presets are
// 0.9/0.6/0.1; arbitrary fractions support the "more workloads" exploration
// §6 calls for).
std::vector<double> ComputeOperationRatios(const OperationRegistry& registry,
                                           double read_fraction, bool long_traversals_enabled,
                                           bool structure_mods_enabled,
                                           const std::set<std::string>& disabled_ops);

// Preset convenience overload.
std::vector<double> ComputeOperationRatios(const OperationRegistry& registry, WorkloadType type,
                                           bool long_traversals_enabled,
                                           bool structure_mods_enabled,
                                           const std::set<std::string>& disabled_ops);

// Samples an operation index from `ratios` (which must sum to ~1).
int SampleOperation(const std::vector<double>& ratios, Rng& rng);

// The operations §5 disables for the Figure 6 experiment: everything that
// reads very large object sets or writes the manual / the large atomic part
// index. (Long traversals are disabled via the category flag.)
const std::set<std::string>& Figure6DisabledOps();

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_WORKLOAD_H_
