#include "src/harness/cli.h"

#include "src/common/text.h"
#include "src/scenario/scenario.h"
#include "src/stm/contention.h"

namespace sb7 {

std::string UsageText() {
  return R"(usage: stmbench7 [options]
  -t <n>                 number of threads (default 1)
  -l <seconds>           benchmark length (default 10)
  -w r|rw|w              workload type (default r = read-dominated)
  -g <strategy>          coarse | medium | fine | tl2 | tinystm | norec | astm | mvstm
  --no-traversals        disable long traversals
  --no-sms               disable structure modification operations
  --ttc-histograms       print TTC (latency) histograms
  -s <scale>             tiny | small | medium (default small)
  --seed <n>             RNG seed (default 20070326)
  --index <kind>         stdmap | snapshot | skiplist (default: per strategy)
  --cm <manager>         polka | karma | aggressive | timid (astm only)
  --disable <op>         disable one operation by name (repeatable)
  --short-only           apply the paper's Figure-6 operation subset
  --max-ops <n>          stop after n started operations
  --read-ratio <f>       custom read-only share in [0,1] (overrides -w)
  --read-fraction <f>    alias for --read-ratio
  --scenario <name|file> phased scenario: steady-read | write-storm | diurnal |
                         hotspot | ramp, or a key=value spec file (see README)
  --csv <file>           also write a machine-readable CSV report
  --json <file>          also write a machine-readable JSON report
  --trace <file>         trace the run and write a Chrome trace-event JSON
                         timeline (load in Perfetto / chrome://tracing)
  --trace-sample <n>     record every nth transaction's timeline events
                         (default 1 = all; attribution always sees every tx)
  --trace-buffer <n>     per-thread trace ring capacity in events (default
                         65536, rounded up to a power of two)
  --telemetry <file>     sample live telemetry during the run and write the
                         series as versioned JSONL (see docs/OBSERVABILITY.md)
  --telemetry-interval <sec>
                         sampler tick interval in seconds (default 1)
  --metrics-port <n>     serve /metrics (Prometheus text) and /series (JSON)
                         on this TCP port during the run (0 = ephemeral)
  --no-hw-counters       skip the perf_event hardware counters
  --verify               check all structure invariants after the run
  --check-opacity        record committed read/write sets and verify the
                         history is opaque (STM strategies only)
  --redo-log <file>      append a durable redo log during the run and commit
                         writers in groups (-g mvstm only; docs/DURABILITY.md)
  --durability <policy>  redo-log fsync policy: off | group | always
                         (default off; requires --redo-log)
  --crash-at <point>:<n> fault injection: wound the log and die at group n;
                         point is before-append | torn-write | after-append
                         (requires --redo-log; exits 137, like kill -9)
  --recover <file>       replay a redo log instead of running a benchmark and
                         print the recovered world's fingerprint (-g selects
                         the replay backend, default mvstm)
  --differential         run the differential cross-backend oracle instead of
                         a benchmark (uses --seed, -s, --max-ops)
  --fuzz <seed>          run the deterministic fuzz/stress driver (see also
                         the --fuzz-* flags below; -g restricts backends)
  --fuzz-cases <n>       number of fuzz cases to sweep (default 25)
  --fuzz-case <i>        reproduce one fuzz case instead of sweeping
  --fuzz-phases <names>  comma-separated phase subset for --fuzz-case
  --fuzz-threads <n>     force every phase of --fuzz-case to n threads
  --fuzz-ops <n>         started-operation cap per fuzz phase (default 150)
  --fuzz-budget <sec>    wall-clock budget for the fuzz sweep
  --help                 show this message
)";
}

CliResult ParseCommandLine(int argc, const char* const* argv) {
  CliResult result;
  BenchConfig& config = result.config;

  auto fail = [&result](std::string message) {
    result.error = std::move(message);
    return result;
  };

  bool fuzz_seed_given = false;
  bool fuzz_sweep_flag_given = false;  // --fuzz-cases / --fuzz-budget
  bool trace_knob_given = false;       // --trace-sample / --trace-buffer
  bool telemetry_knob_given = false;   // --telemetry-interval / --no-hw-counters
  bool durability_knob_given = false;  // --durability / --crash-at
  // The --fuzz-* companion flags may appear in any order relative to --fuzz.
  auto fuzz_cli = [&result]() -> FuzzCli& {
    if (!result.fuzz.has_value()) {
      result.fuzz.emplace();
    }
    return *result.fuzz;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      result.show_help = true;
      return result;
    }
    if (arg == "-t") {
      int64_t threads = 0;
      if (!next(value) || !ParseInt64(value, threads) || threads < 1) {
        return fail("-t requires a positive integer");
      }
      config.threads = static_cast<int>(threads);
    } else if (arg == "-l") {
      double seconds = 0;
      if (!next(value) || !ParseDouble(value, seconds) || seconds <= 0) {
        return fail("-l requires a positive number of seconds");
      }
      config.length_seconds = seconds;
    } else if (arg == "-w") {
      if (!next(value) || (value != "r" && value != "rw" && value != "w")) {
        return fail("-w requires r, rw or w");
      }
      config.workload = WorkloadTypeForName(value);
    } else if (arg == "-g") {
      if (!next(value)) {
        return fail("-g requires a strategy name");
      }
      if (value != "coarse" && value != "medium" && value != "fine" && value != "tl2" &&
          value != "tinystm" && value != "norec" && value != "astm" && value != "mvstm") {
        return fail("unknown strategy: " + value);
      }
      config.strategy = value;
      result.strategy_given = true;
    } else if (arg == "--no-traversals") {
      config.long_traversals = false;
    } else if (arg == "--no-sms") {
      config.structure_mods = false;
    } else if (arg == "--ttc-histograms") {
      config.ttc_histograms = true;
    } else if (arg == "-s") {
      if (!next(value) || (value != "tiny" && value != "small" && value != "medium")) {
        return fail("-s requires tiny, small or medium");
      }
      config.scale = value;
    } else if (arg == "--seed") {
      uint64_t seed = 0;
      if (!next(value) || !ParseUint64(value, seed)) {
        return fail("--seed requires an integer");
      }
      config.seed = seed;
    } else if (arg == "--index") {
      if (!next(value) ||
          (value != "stdmap" && value != "snapshot" && value != "skiplist")) {
        return fail("--index requires stdmap, snapshot or skiplist");
      }
      config.index_kind = IndexKindForName(value);
    } else if (arg == "--cm") {
      // Validate through the factory so the CLI can never drift from the
      // set of managers that actually construct.
      if (!next(value) || MakeContentionManager(value) == nullptr) {
        return fail("--cm requires polka, karma, aggressive or timid");
      }
      config.contention_manager = value;
    } else if (arg == "--disable") {
      if (!next(value)) {
        return fail("--disable requires an operation name");
      }
      config.disabled_ops.insert(value);
    } else if (arg == "--short-only") {
      for (const std::string& name : Figure6DisabledOps()) {
        config.disabled_ops.insert(name);
      }
      config.long_traversals = false;
    } else if (arg == "--read-ratio" || arg == "--read-fraction") {
      double fraction = 0;
      if (!next(value) || !ParseDouble(value, fraction) || fraction < 0 || fraction > 1) {
        return fail(arg + " requires a number in [0,1]");
      }
      config.read_fraction = fraction;
    } else if (arg == "--scenario") {
      if (!next(value) || value.empty()) {
        return fail("--scenario requires a built-in name (" + BuiltinScenarioList() +
                    ") or a spec-file path");
      }
      ScenarioParseResult loaded = LoadScenario(value);
      if (!loaded.scenario.has_value()) {
        return fail(loaded.error);
      }
      config.scenario = std::move(loaded.scenario);
    } else if (arg == "--csv") {
      if (!next(value) || value.empty()) {
        return fail("--csv requires a file path");
      }
      config.csv_path = value;
    } else if (arg == "--json") {
      if (!next(value) || value.empty()) {
        return fail("--json requires a file path");
      }
      config.json_path = value;
    } else if (arg == "--trace") {
      if (!next(value) || value.empty()) {
        return fail("--trace requires a file path");
      }
      config.trace = true;
      config.trace_path = value;
    } else if (arg == "--trace-sample") {
      int64_t period = 0;
      if (!next(value) || !ParseInt64(value, period) || period < 1) {
        return fail("--trace-sample requires a positive integer");
      }
      config.trace_sample = static_cast<uint32_t>(period);
      trace_knob_given = true;
    } else if (arg == "--trace-buffer") {
      int64_t capacity = 0;
      if (!next(value) || !ParseInt64(value, capacity) || capacity < 1) {
        return fail("--trace-buffer requires a positive integer");
      }
      config.trace_buffer = static_cast<size_t>(capacity);
      trace_knob_given = true;
    } else if (arg == "--telemetry") {
      if (!next(value) || value.empty()) {
        return fail("--telemetry requires a file path");
      }
      config.telemetry = true;
      config.telemetry_path = value;
    } else if (arg == "--telemetry-interval") {
      double seconds = 0;
      if (!next(value) || !ParseDouble(value, seconds) || seconds <= 0) {
        return fail("--telemetry-interval requires a positive number of seconds");
      }
      config.telemetry_interval = seconds;
      telemetry_knob_given = true;
    } else if (arg == "--metrics-port") {
      int64_t port = 0;
      if (!next(value) || !ParseInt64(value, port) || port < 0 || port > 65535) {
        return fail("--metrics-port requires a port number in [0,65535]");
      }
      config.telemetry = true;
      config.metrics_port = static_cast<int>(port);
    } else if (arg == "--no-hw-counters") {
      config.telemetry_hw = false;
      telemetry_knob_given = true;
    } else if (arg == "--verify") {
      config.verify_invariants = true;
    } else if (arg == "--check-opacity") {
      config.check_opacity = true;
    } else if (arg == "--redo-log") {
      if (!next(value) || value.empty()) {
        return fail("--redo-log requires a file path");
      }
      config.redo_log_path = value;
    } else if (arg == "--durability") {
      redo::Durability durability = redo::Durability::kOff;
      if (!next(value) || !redo::ParseDurability(value, &durability)) {
        return fail("--durability requires off, group or always");
      }
      config.durability = value;
      durability_knob_given = true;
    } else if (arg == "--crash-at") {
      // <point>:<group>, e.g. torn-write:5.
      std::string::size_type colon;
      uint64_t group = 0;
      if (!next(value) || (colon = value.find(':')) == std::string::npos ||
          !redo::ParseCrashPoint(value.substr(0, colon), &config.crash_point) ||
          !ParseUint64(value.substr(colon + 1), group)) {
        return fail(
            "--crash-at requires <point>:<group> with point one of "
            "before-append, torn-write, after-append");
      }
      config.crash_at_group = group;
      durability_knob_given = true;
    } else if (arg == "--recover") {
      if (!next(value) || value.empty()) {
        return fail("--recover requires a redo-log file path");
      }
      result.recover_path = value;
    } else if (arg == "--differential") {
      result.differential = true;
    } else if (arg == "--fuzz") {
      uint64_t seed = 0;
      // Full-uint64 parsing: the shrinker prints the seed back as unsigned
      // in reproduce commands, and that round-trip must be exact.
      if (!next(value) || !ParseUint64(value, seed)) {
        return fail("--fuzz requires an integer seed");
      }
      fuzz_cli().seed = seed;
      fuzz_seed_given = true;
    } else if (arg == "--fuzz-cases") {
      int64_t cases = 0;
      if (!next(value) || !ParseInt64(value, cases) || cases < 1) {
        return fail("--fuzz-cases requires a positive integer");
      }
      fuzz_cli().cases = static_cast<int>(cases);
      fuzz_sweep_flag_given = true;
    } else if (arg == "--fuzz-case") {
      int64_t index = 0;
      if (!next(value) || !ParseInt64(value, index) || index < 0) {
        return fail("--fuzz-case requires a non-negative integer");
      }
      fuzz_cli().case_index = static_cast<int>(index);
    } else if (arg == "--fuzz-phases") {
      if (!next(value) || value.empty()) {
        return fail("--fuzz-phases requires a comma-separated phase list");
      }
      for (std::string& name : SplitCommaList(value)) {
        fuzz_cli().phases.push_back(std::move(name));
      }
      if (fuzz_cli().phases.empty()) {
        return fail("--fuzz-phases requires at least one phase name");
      }
    } else if (arg == "--fuzz-threads") {
      int64_t threads = 0;
      if (!next(value) || !ParseInt64(value, threads) || threads < 1) {
        return fail("--fuzz-threads requires a positive integer");
      }
      fuzz_cli().threads_override = static_cast<int>(threads);
    } else if (arg == "--fuzz-ops") {
      int64_t ops = 0;
      if (!next(value) || !ParseInt64(value, ops) || ops < 1) {
        return fail("--fuzz-ops requires a positive integer");
      }
      fuzz_cli().ops_per_phase = ops;
    } else if (arg == "--fuzz-budget") {
      double seconds = 0;
      if (!next(value) || !ParseDouble(value, seconds) || seconds <= 0) {
        return fail("--fuzz-budget requires a positive number of seconds");
      }
      fuzz_cli().budget_seconds = seconds;
      fuzz_sweep_flag_given = true;
    } else if (arg == "--max-ops") {
      int64_t cap = 0;
      if (!next(value) || !ParseInt64(value, cap) || cap < 0) {
        return fail("--max-ops requires a non-negative integer");
      }
      config.max_operations = cap;
    } else {
      return fail("unknown argument: " + arg);
    }
  }
  if (result.fuzz.has_value() && !fuzz_seed_given) {
    return fail("--fuzz-* flags require --fuzz <seed>");
  }
  // Mode flags that the selected mode would silently ignore are errors: a
  // flag that reads as a constraint but does nothing misleads ("bug gone").
  if (result.fuzz.has_value() && result.fuzz->case_index < 0 &&
      (!result.fuzz->phases.empty() || result.fuzz->threads_override > 0)) {
    return fail("--fuzz-phases/--fuzz-threads only apply with --fuzz-case <i>");
  }
  if (result.fuzz.has_value() && result.fuzz->case_index >= 0 && fuzz_sweep_flag_given) {
    return fail("--fuzz-cases/--fuzz-budget only apply to a sweep, not --fuzz-case");
  }
  if (result.differential && result.strategy_given) {
    return fail("--differential always compares all backends; -g is not applicable");
  }
  if (trace_knob_given && !config.trace) {
    return fail("--trace-sample/--trace-buffer only apply with --trace <file>");
  }
  if (telemetry_knob_given && !config.telemetry) {
    return fail(
        "--telemetry-interval/--no-hw-counters only apply with --telemetry <file> "
        "or --metrics-port <n>");
  }
  if (durability_knob_given && config.redo_log_path.empty()) {
    return fail("--durability/--crash-at only apply with --redo-log <file>");
  }
  if (!config.redo_log_path.empty() && config.strategy != "mvstm") {
    return fail("--redo-log requires -g mvstm (group commit is an mvstm capability)");
  }
  if (!result.recover_path.empty() && !config.redo_log_path.empty()) {
    return fail("--recover replays an existing log; it cannot be combined with --redo-log");
  }
  return result;
}

}  // namespace sb7
