#include "src/harness/cli.h"

#include "src/common/text.h"
#include "src/scenario/scenario.h"
#include "src/stm/contention.h"

namespace sb7 {

std::string UsageText() {
  return R"(usage: stmbench7 [options]
  -t <n>                 number of threads (default 1)
  -l <seconds>           benchmark length (default 10)
  -w r|rw|w              workload type (default r = read-dominated)
  -g <strategy>          coarse | medium | fine | tl2 | tinystm | norec | astm | mvstm
  --no-traversals        disable long traversals
  --no-sms               disable structure modification operations
  --ttc-histograms       print TTC (latency) histograms
  -s <scale>             tiny | small | medium (default small)
  --seed <n>             RNG seed (default 20070326)
  --index <kind>         stdmap | snapshot | skiplist (default: per strategy)
  --cm <manager>         polka | karma | aggressive | timid (astm only)
  --disable <op>         disable one operation by name (repeatable)
  --short-only           apply the paper's Figure-6 operation subset
  --max-ops <n>          stop after n started operations
  --read-ratio <f>       custom read-only share in [0,1] (overrides -w)
  --read-fraction <f>    alias for --read-ratio
  --scenario <name|file> phased scenario: steady-read | write-storm | diurnal |
                         hotspot | ramp, or a key=value spec file (see README)
  --csv <file>           also write a machine-readable CSV report
  --json <file>          also write a machine-readable JSON report
  --verify               check all structure invariants after the run
  --help                 show this message
)";
}

CliResult ParseCommandLine(int argc, const char* const* argv) {
  CliResult result;
  BenchConfig& config = result.config;

  auto fail = [&result](std::string message) {
    result.error = std::move(message);
    return result;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      result.show_help = true;
      return result;
    }
    if (arg == "-t") {
      int64_t threads = 0;
      if (!next(value) || !ParseInt64(value, threads) || threads < 1) {
        return fail("-t requires a positive integer");
      }
      config.threads = static_cast<int>(threads);
    } else if (arg == "-l") {
      double seconds = 0;
      if (!next(value) || !ParseDouble(value, seconds) || seconds <= 0) {
        return fail("-l requires a positive number of seconds");
      }
      config.length_seconds = seconds;
    } else if (arg == "-w") {
      if (!next(value) || (value != "r" && value != "rw" && value != "w")) {
        return fail("-w requires r, rw or w");
      }
      config.workload = WorkloadTypeForName(value);
    } else if (arg == "-g") {
      if (!next(value)) {
        return fail("-g requires a strategy name");
      }
      if (value != "coarse" && value != "medium" && value != "fine" && value != "tl2" &&
          value != "tinystm" && value != "norec" && value != "astm" && value != "mvstm") {
        return fail("unknown strategy: " + value);
      }
      config.strategy = value;
    } else if (arg == "--no-traversals") {
      config.long_traversals = false;
    } else if (arg == "--no-sms") {
      config.structure_mods = false;
    } else if (arg == "--ttc-histograms") {
      config.ttc_histograms = true;
    } else if (arg == "-s") {
      if (!next(value) || (value != "tiny" && value != "small" && value != "medium")) {
        return fail("-s requires tiny, small or medium");
      }
      config.scale = value;
    } else if (arg == "--seed") {
      int64_t seed = 0;
      if (!next(value) || !ParseInt64(value, seed)) {
        return fail("--seed requires an integer");
      }
      config.seed = static_cast<uint64_t>(seed);
    } else if (arg == "--index") {
      if (!next(value) ||
          (value != "stdmap" && value != "snapshot" && value != "skiplist")) {
        return fail("--index requires stdmap, snapshot or skiplist");
      }
      config.index_kind = IndexKindForName(value);
    } else if (arg == "--cm") {
      // Validate through the factory so the CLI can never drift from the
      // set of managers that actually construct.
      if (!next(value) || MakeContentionManager(value) == nullptr) {
        return fail("--cm requires polka, karma, aggressive or timid");
      }
      config.contention_manager = value;
    } else if (arg == "--disable") {
      if (!next(value)) {
        return fail("--disable requires an operation name");
      }
      config.disabled_ops.insert(value);
    } else if (arg == "--short-only") {
      for (const std::string& name : Figure6DisabledOps()) {
        config.disabled_ops.insert(name);
      }
      config.long_traversals = false;
    } else if (arg == "--read-ratio" || arg == "--read-fraction") {
      double fraction = 0;
      if (!next(value) || !ParseDouble(value, fraction) || fraction < 0 || fraction > 1) {
        return fail(arg + " requires a number in [0,1]");
      }
      config.read_fraction = fraction;
    } else if (arg == "--scenario") {
      if (!next(value) || value.empty()) {
        return fail("--scenario requires a built-in name (" + BuiltinScenarioList() +
                    ") or a spec-file path");
      }
      ScenarioParseResult loaded = LoadScenario(value);
      if (!loaded.scenario.has_value()) {
        return fail(loaded.error);
      }
      config.scenario = std::move(loaded.scenario);
    } else if (arg == "--csv") {
      if (!next(value) || value.empty()) {
        return fail("--csv requires a file path");
      }
      config.csv_path = value;
    } else if (arg == "--json") {
      if (!next(value) || value.empty()) {
        return fail("--json requires a file path");
      }
      config.json_path = value;
    } else if (arg == "--verify") {
      config.verify_invariants = true;
    } else if (arg == "--max-ops") {
      int64_t cap = 0;
      if (!next(value) || !ParseInt64(value, cap) || cap < 0) {
        return fail("--max-ops requires a non-negative integer");
      }
      config.max_operations = cap;
    } else {
      return fail("unknown argument: " + arg);
    }
  }
  return result;
}

}  // namespace sb7
