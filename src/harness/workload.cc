#include "src/harness/workload.h"

#include "src/common/diag.h"

namespace sb7 {

WorkloadType WorkloadTypeForName(std::string_view name) {
  if (name == "w") {
    return WorkloadType::kWriteDominated;
  }
  if (name == "rw") {
    return WorkloadType::kReadWrite;
  }
  return WorkloadType::kReadDominated;
}

std::string_view WorkloadTypeName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kReadDominated:
      return "read-dominated";
    case WorkloadType::kReadWrite:
      return "read-write";
    case WorkloadType::kWriteDominated:
      return "write-dominated";
  }
  return "read-dominated";
}

double ReadOnlyFraction(WorkloadType type) {
  switch (type) {
    case WorkloadType::kReadDominated:
      return 0.9;
    case WorkloadType::kReadWrite:
      return 0.6;
    case WorkloadType::kWriteDominated:
      return 0.1;
  }
  return 0.9;
}

double CategoryWeight(OpCategory category) {
  switch (category) {
    case OpCategory::kLongTraversal:
      return 5.0;
    case OpCategory::kShortTraversal:
      return 40.0;
    case OpCategory::kShortOperation:
      return 45.0;
    case OpCategory::kStructureModification:
      return 10.0;
  }
  return 0.0;
}

std::vector<double> ComputeOperationRatios(const OperationRegistry& registry, WorkloadType type,
                                           bool long_traversals_enabled,
                                           bool structure_mods_enabled,
                                           const std::set<std::string>& disabled_ops) {
  return ComputeOperationRatios(registry, ReadOnlyFraction(type), long_traversals_enabled,
                                structure_mods_enabled, disabled_ops);
}

std::vector<double> ComputeOperationRatios(const OperationRegistry& registry,
                                           double read_fraction, bool long_traversals_enabled,
                                           bool structure_mods_enabled,
                                           const std::set<std::string>& disabled_ops) {
  const auto& ops = registry.all();
  SB7_CHECK(read_fraction >= 0.0 && read_fraction <= 1.0);

  auto enabled = [&](const Operation& op) {
    if (op.category() == OpCategory::kLongTraversal && !long_traversals_enabled) {
      return false;
    }
    if (op.category() == OpCategory::kStructureModification && !structure_mods_enabled) {
      return false;
    }
    return disabled_ops.count(op.name()) == 0;
  };

  // Subgroup = (category, read-only flag); each subgroup splits its share
  // evenly among its enabled members.
  auto subgroup_size = [&](OpCategory category, bool read_only) {
    int n = 0;
    for (const auto& op : ops) {
      if (op->category() == category && op->read_only() == read_only && enabled(*op)) {
        ++n;
      }
    }
    return n;
  };

  std::vector<double> ratios(ops.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = *ops[i];
    if (!enabled(op)) {
      continue;
    }
    const int peers = subgroup_size(op.category(), op.read_only());
    SB7_DCHECK(peers > 0);
    const double share = op.read_only() ? read_fraction : 1.0 - read_fraction;
    ratios[i] = CategoryWeight(op.category()) * share / peers;
    total += ratios[i];
  }
  SB7_CHECK(total > 0.0);
  for (double& ratio : ratios) {
    ratio /= total;
  }
  return ratios;
}

int SampleOperation(const std::vector<double>& ratios, Rng& rng) {
  const double pick = rng.NextDouble();
  double cumulative = 0.0;
  int last_enabled = -1;
  for (size_t i = 0; i < ratios.size(); ++i) {
    if (ratios[i] <= 0.0) {
      continue;
    }
    last_enabled = static_cast<int>(i);
    cumulative += ratios[i];
    if (pick < cumulative) {
      return static_cast<int>(i);
    }
  }
  SB7_CHECK(last_enabled >= 0);
  return last_enabled;  // floating-point tail
}

const std::set<std::string>& Figure6DisabledOps() {
  static const std::set<std::string>* ops = new std::set<std::string>{
      // Large read sets:
      "ST5", "OP2", "OP3",
      // The manual (a single large object):
      "OP4", "OP5", "OP11",
      // Writers of the large atomic part indexes:
      "OP15", "SM1", "SM2",
      // Whole-subtree modifications (long operations):
      "SM7", "SM8",
  };
  return *ops;
}

}  // namespace sb7
