// Per-operation measurement containers and result aggregation.

#ifndef STMBENCH7_SRC_HARNESS_METRICS_H_
#define STMBENCH7_SRC_HARNESS_METRICS_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/ops/operation.h"
#include "src/scenario/scenario.h"
#include "src/stm/stm.h"
#include "src/telemetry/series.h"
#include "src/trace/conflict.h"
#include "src/trace/tracer.h"

namespace sb7 {

// Counters for one operation on one thread; merged after the run. The TTC
// histogram records successful completions (Appendix A reports failures as a
// bare count).
struct OpMetrics {
  int64_t success = 0;
  int64_t failed = 0;
  TtcHistogram histogram;

  int64_t started() const { return success + failed; }
  void RecordSuccess(int64_t nanos) {
    ++success;
    histogram.Record(nanos);
  }
  void RecordFailure() { ++failed; }
  void Merge(const OpMetrics& other) {
    success += other.success;
    failed += other.failed;
    histogram.Merge(other.histogram);
  }
};

// Open-loop pacing counters for one phase on one thread; merged after the
// run. Queue delay is how long an operation's start lagged its scheduled
// arrival; backlog_peak estimates the deepest arrival queue observed
// (delay x per-worker rate).
struct PaceMetrics {
  int64_t arrivals = 0;
  // Operations that started more than 1 ms after their scheduled arrival
  // (sub-millisecond lateness is scheduling noise, not queueing).
  int64_t delayed = 0;
  int64_t backlog_peak = 0;
  TtcHistogram queue_delay{200};

  void Merge(const PaceMetrics& other) {
    arrivals += other.arrivals;
    delayed += other.delayed;
    backlog_peak = backlog_peak > other.backlog_peak ? backlog_peak : other.backlog_peak;
    queue_delay.Merge(other.queue_delay);
  }
};

// Results of one scenario phase: the phase's effective configuration, the
// per-operation counters restricted to the phase, open-loop pacing, and the
// STM/hotspot counter deltas over the phase.
struct PhaseResult {
  std::string name;
  double elapsed_seconds = 0.0;

  // Effective phase configuration (after inheriting run-level settings).
  double read_fraction = 0.0;
  int threads = 0;
  ArrivalModel arrival = ArrivalModel::kClosed;
  double target_rate = 0.0;
  double zipf_theta = 0.0;
  double hot_fraction = 0.0;

  std::vector<OpMetrics> per_op;  // parallel to OperationRegistry::all()
  std::vector<double> ratios;
  int64_t total_success = 0;
  int64_t total_started = 0;

  PaceMetrics pace;
  StmStats::View stm = {};  // delta over the phase
  int64_t hot_samples = 0;  // skewed id draws during the phase
  int64_t hot_hits = 0;

  // Conflict attribution over the phase window (tracing runs only;
  // attributed_aborts stays 0 otherwise).
  trace::ConflictSummary conflicts;

  // Hardware-counter delta over the phase (telemetry runs with perf_event
  // available only; available=false otherwise).
  telemetry::HwSample hw;

  double SuccessThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_success) / elapsed_seconds : 0.0;
  }
  double StartedThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_started) / elapsed_seconds : 0.0;
  }
};

struct BenchResult {
  // Parallel to OperationRegistry::all().
  std::vector<OpMetrics> per_op;
  std::vector<double> ratios;  // configured selection probabilities

  double elapsed_seconds = 0.0;
  int64_t total_success = 0;
  int64_t total_started = 0;

  StmStats::View stm = {};  // zeros for lock strategies

  // One entry per scenario phase, in execution order; empty for plain
  // (non-scenario) runs.
  std::vector<PhaseResult> phases;

  // --- tracing outputs (meaningful only when the run traced) ---
  bool traced = false;
  // Whole-run conflict attribution.
  trace::ConflictSummary conflicts;
  // Latency decomposition indexed by op slot (trace::ConflictOpSlot
  // convention: 0 = no op context, i+1 = registry op i). Empty when not
  // traced.
  std::vector<trace::OpLatencyBreakdown> latency_by_op;
  // Events lost to ring overflow (an honesty signal for the timeline).
  int64_t trace_events_dropped = 0;

  // Whole-run hardware-counter delta (telemetry runs with perf_event
  // available only).
  telemetry::HwSample hw;

  double SuccessThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_success) / elapsed_seconds : 0.0;
  }
  double StartedThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_started) / elapsed_seconds : 0.0;
  }

  // Max successful latency of operation `index`, in milliseconds.
  double MaxLatencyMillis(size_t index) const {
    return static_cast<double>(per_op[index].histogram.max_nanos()) / 1e6;
  }
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_METRICS_H_
