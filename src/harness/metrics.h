// Per-operation measurement containers and result aggregation.

#ifndef STMBENCH7_SRC_HARNESS_METRICS_H_
#define STMBENCH7_SRC_HARNESS_METRICS_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/ops/operation.h"
#include "src/stm/stm.h"

namespace sb7 {

// Counters for one operation on one thread; merged after the run. The TTC
// histogram records successful completions (Appendix A reports failures as a
// bare count).
struct OpMetrics {
  int64_t success = 0;
  int64_t failed = 0;
  TtcHistogram histogram;

  int64_t started() const { return success + failed; }
  void RecordSuccess(int64_t nanos) {
    ++success;
    histogram.Record(nanos);
  }
  void RecordFailure() { ++failed; }
  void Merge(const OpMetrics& other) {
    success += other.success;
    failed += other.failed;
    histogram.Merge(other.histogram);
  }
};

struct BenchResult {
  // Parallel to OperationRegistry::all().
  std::vector<OpMetrics> per_op;
  std::vector<double> ratios;  // configured selection probabilities

  double elapsed_seconds = 0.0;
  int64_t total_success = 0;
  int64_t total_started = 0;

  StmStats::View stm = {};  // zeros for lock strategies

  double SuccessThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_success) / elapsed_seconds : 0.0;
  }
  double StartedThroughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_started) / elapsed_seconds : 0.0;
  }

  // Max successful latency of operation `index`, in milliseconds.
  double MaxLatencyMillis(size_t index) const {
    return static_cast<double>(per_op[index].histogram.max_nanos()) / 1e6;
  }
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_METRICS_H_
