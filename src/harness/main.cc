// The stmbench7 command-line benchmark (Appendix A).

#include <fstream>
#include <iostream>

#include "src/core/invariants.h"
#include "src/harness/cli.h"
#include "src/harness/report.h"

int main(int argc, char** argv) {
  sb7::CliResult cli = sb7::ParseCommandLine(argc, argv);
  if (cli.show_help) {
    std::cout << sb7::UsageText();
    return 0;
  }
  if (cli.error.has_value()) {
    std::cerr << "error: " << *cli.error << "\n" << sb7::UsageText();
    return 2;
  }

  std::cerr << "building the " << cli.config.scale << " structure...\n";
  sb7::BenchmarkRunner runner(cli.config);
  std::cerr << "running " << runner.spawned_threads() << " thread(s) for "
            << cli.config.length_seconds << " s under '" << cli.config.strategy << "'";
  if (cli.config.scenario.has_value()) {
    std::cerr << " (scenario '" << cli.config.scenario->name << "', "
              << cli.config.scenario->phases.size() << " phases)";
  }
  std::cerr << "...\n";
  const sb7::BenchResult result = runner.Run();
  sb7::PrintReport(std::cout, runner, result);

  if (!cli.config.csv_path.empty()) {
    std::ofstream csv(cli.config.csv_path);
    if (!csv) {
      std::cerr << "error: cannot write " << cli.config.csv_path << "\n";
      return 2;
    }
    sb7::WriteCsv(csv, runner, result);
    std::cerr << "CSV written to " << cli.config.csv_path << "\n";
  }

  if (!cli.config.json_path.empty()) {
    std::ofstream json(cli.config.json_path);
    if (!json) {
      std::cerr << "error: cannot write " << cli.config.json_path << "\n";
      return 2;
    }
    sb7::WriteJson(json, runner, result);
    std::cerr << "JSON written to " << cli.config.json_path << "\n";
  }

  if (cli.config.verify_invariants) {
    const sb7::InvariantReport report = sb7::CheckInvariants(runner.data());
    if (!report.ok()) {
      std::cerr << "INVARIANT VIOLATIONS (" << report.violations.size() << "):\n";
      for (const std::string& violation : report.violations) {
        std::cerr << "  " << violation << "\n";
      }
      return 1;
    }
    std::cerr << "structure invariants: OK (" << report.atomic_parts << " atomic parts, "
              << report.base_assemblies << " base assemblies live)\n";
  }
  return 0;
}
