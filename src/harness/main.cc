// The stmbench7 command-line benchmark (Appendix A), plus the correctness-
// oracle modes: --differential (cross-backend replay), --fuzz (deterministic
// fuzz/stress sweep with shrinking) and --check-opacity (record the run's
// committed history and verify it is opaque).

#include <fstream>
#include <iostream>

#include "src/check/differential.h"
#include "src/check/fuzz.h"
#include "src/check/history.h"
#include "src/core/invariants.h"
#include "src/harness/cli.h"
#include "src/harness/report.h"
#include "src/mvstm/redo_log.h"
#include "src/trace/chrome_trace.h"

namespace {

int RunDifferentialMode(const sb7::BenchConfig& config) {
  sb7::DifferentialOptions options;
  options.scale = config.scale;
  options.seed = config.seed;
  if (config.max_operations > 0) {
    options.operations = static_cast<int>(config.max_operations);
  }
  options.long_traversals = config.long_traversals;
  options.structure_mods = config.structure_mods;
  options.disabled_ops = config.disabled_ops;
  std::cerr << "replaying " << options.operations << " operations under "
            << options.strategies.size() << " backends...\n";
  const sb7::DifferentialReport report = sb7::RunDifferential(options);
  std::cout << sb7::FormatDifferentialReport(report);
  return report.ok() ? 0 : 1;
}

int RunFuzzMode(const sb7::BenchConfig& config, bool strategy_given,
                const sb7::FuzzCli& cli) {
  sb7::FuzzOptions options;
  options.seed = cli.seed;
  options.cases = cli.cases;
  options.scale = config.scale;
  options.budget_seconds = cli.budget_seconds;
  options.log = &std::cerr;
  if (cli.ops_per_phase > 0) {
    options.ops_per_phase = cli.ops_per_phase;
  }
  // An explicit -g restricts the sweep to that backend; the default sweeps
  // every strategy the differential fingerprint can compare.
  if (strategy_given) {
    options.strategies = {config.strategy};
  }

  if (cli.case_index >= 0) {
    sb7::FuzzCase fuzz_case = sb7::GenerateFuzzCase(options, cli.case_index);
    if (!cli.phases.empty()) {
      std::vector<sb7::PhaseSpec> kept;
      for (const sb7::PhaseSpec& phase : fuzz_case.scenario.phases) {
        for (const std::string& name : cli.phases) {
          if (phase.name == name) {
            kept.push_back(phase);
            break;
          }
        }
      }
      if (kept.empty()) {
        std::cerr << "error: --fuzz-phases matched no phase of case " << cli.case_index
                  << "\n";
        return 2;
      }
      fuzz_case.scenario.phases = std::move(kept);
    }
    if (cli.threads_override > 0) {
      for (sb7::PhaseSpec& phase : fuzz_case.scenario.phases) {
        phase.threads = cli.threads_override;
      }
    }
    std::cerr << "reproducing fuzz case " << cli.case_index << " ("
              << fuzz_case.scenario.phases.size() << " phases, backend "
              << fuzz_case.strategy << ")...\n";
    const std::string reason = sb7::RunFuzzCase(options, fuzz_case);
    if (reason.empty()) {
      std::cout << "fuzz case " << cli.case_index << ": OK\n";
      return 0;
    }
    std::cout << "fuzz case " << cli.case_index << ": FAILED\n  " << reason << "\n";
    return 1;
  }

  const sb7::FuzzReport report = sb7::RunFuzz(options);
  if (report.ok()) {
    std::cout << "fuzz: " << report.cases_run << " cases passed (seed " << options.seed
              << ")\n";
    return 0;
  }
  const sb7::FuzzFailure& failure = *report.failure;
  std::cout << "fuzz: case " << failure.original.index << " FAILED after "
            << report.cases_run << " cases\n";
  std::cout << "  reason:    " << failure.reason << "\n";
  std::cout << "  minimal:   " << failure.minimal.scenario.phases.size() << " of "
            << failure.original.scenario.phases.size() << " phases (";
  for (size_t p = 0; p < failure.minimal.scenario.phases.size(); ++p) {
    std::cout << (p == 0 ? "" : ",") << failure.minimal.scenario.phases[p].name;
  }
  std::cout << ")\n";
  std::cout << "  reproduce: " << failure.reproduce_command << "\n";
  return 1;
}

// --recover <file>: rebuild the world from a redo log and report what was
// recovered. Exit codes: 0 = recovered (torn tails included — that is the
// kill -9 case working as designed), 1 = the log is structurally illegal or
// the recovered world violates invariants, 2 = I/O error.
int RunRecoverMode(const std::string& path, const std::string& backend) {
  std::string bytes;
  std::string error;
  if (!sb7::redo::ReadLogFile(path, &bytes, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  std::cerr << "replaying " << path << " (" << bytes.size() << " bytes) under '"
            << backend << "'...\n";
  const sb7::redo::ReplayResult result = sb7::redo::RecoverFromBytes(bytes, backend);
  std::cout << sb7::redo::FormatReplayResult(result);
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sb7::CliResult cli = sb7::ParseCommandLine(argc, argv);
  if (cli.show_help) {
    std::cout << sb7::UsageText();
    return 0;
  }
  if (cli.error.has_value()) {
    std::cerr << "error: " << *cli.error << "\n" << sb7::UsageText();
    return 2;
  }
  if (cli.differential) {
    return RunDifferentialMode(cli.config);
  }
  if (cli.fuzz.has_value()) {
    return RunFuzzMode(cli.config, cli.strategy_given, *cli.fuzz);
  }
  if (!cli.recover_path.empty()) {
    return RunRecoverMode(cli.recover_path,
                          cli.strategy_given ? cli.config.strategy : "mvstm");
  }

  std::cerr << "building the " << cli.config.scale << " structure...\n";
  sb7::BenchmarkRunner runner(cli.config);
  std::cerr << "running " << runner.spawned_threads() << " thread(s) for "
            << cli.config.length_seconds << " s under '" << cli.config.strategy << "'";
  if (cli.config.scenario.has_value()) {
    std::cerr << " (scenario '" << cli.config.scenario->name << "', "
              << cli.config.scenario->phases.size() << " phases)";
  }
  std::cerr << "...\n";

  sb7::HistoryRecorder recorder;
  const bool record_opacity = cli.config.check_opacity && runner.strategy().stm() != nullptr;
  if (cli.config.check_opacity && !record_opacity) {
    std::cerr << "note: --check-opacity records transactional histories; strategy '"
              << cli.config.strategy << "' runs no transactions, nothing to check\n";
  }
  if (record_opacity) {
    recorder.Install();
  }
  if (cli.config.metrics_port >= 0 && runner.telemetry() != nullptr) {
    std::string error;
    if (runner.telemetry()->StartServer(&error)) {
      std::cerr << "metrics endpoint listening on port " << runner.telemetry()->server_port()
                << " (/metrics, /series)\n";
    } else {
      std::cerr << "warning: metrics endpoint disabled: " << error << "\n";
    }
  }
  if (runner.telemetry() != nullptr && !runner.telemetry()->hw_available()) {
    const std::string& detail = runner.telemetry()->hw_detail();
    if (!detail.empty()) {
      std::cerr << "note: hardware counters unavailable: " << detail << "\n";
    }
  }
  const sb7::BenchResult result = runner.Run();
  if (record_opacity) {
    recorder.Uninstall();
  }
  sb7::PrintReport(std::cout, runner, result);

  if (runner.redo_writer() != nullptr) {
    const sb7::redo::RedoLogWriter& writer = *runner.redo_writer();
    const sb7::redo::WriterStats& stats = writer.stats();
    std::cerr << "redo log: " << writer.path() << " — " << stats.groups
              << " groups, " << stats.members << " commits, " << stats.bytes
              << " bytes, " << stats.fsyncs << " fsyncs (durability="
              << sb7::redo::DurabilityName(writer.durability())
              << (writer.closed() ? ", closed cleanly)" : ", NOT closed)") << "\n";
    if (!writer.ok()) {
      std::cerr << "error: redo log writer failed: " << writer.error() << "\n";
      return 2;
    }
  }

  if (!cli.config.csv_path.empty()) {
    std::ofstream csv(cli.config.csv_path);
    if (!csv) {
      std::cerr << "error: cannot write " << cli.config.csv_path << "\n";
      return 2;
    }
    sb7::WriteCsv(csv, runner, result);
    std::cerr << "CSV written to " << cli.config.csv_path << "\n";
  }

  if (!cli.config.trace_path.empty()) {
    std::ofstream trace(cli.config.trace_path);
    if (!trace) {
      std::cerr << "error: cannot write " << cli.config.trace_path << "\n";
      return 2;
    }
    sb7::trace::ChromeTraceOptions options;
    for (const auto& op : runner.registry().all()) {
      options.op_names.push_back(op->name());
    }
    sb7::trace::WriteChromeTrace(trace, runner.tracer()->DrainEvents(), options);
    std::cerr << "trace timeline written to " << cli.config.trace_path
              << " (open in Perfetto or chrome://tracing)\n";
  }

  if (!cli.config.telemetry_path.empty()) {
    std::ofstream telemetry(cli.config.telemetry_path);
    if (!telemetry) {
      std::cerr << "error: cannot write " << cli.config.telemetry_path << "\n";
      return 2;
    }
    runner.telemetry()->WriteJsonl(telemetry);
    std::cerr << "telemetry series written to " << cli.config.telemetry_path << " ("
              << runner.telemetry()->SeriesSnapshot().size() << " samples)\n";
  }

  if (!cli.config.json_path.empty()) {
    std::ofstream json(cli.config.json_path);
    if (!json) {
      std::cerr << "error: cannot write " << cli.config.json_path << "\n";
      return 2;
    }
    sb7::WriteJson(json, runner, result);
    std::cerr << "JSON written to " << cli.config.json_path << "\n";
  }

  int exit_code = 0;
  if (record_opacity) {
    const sb7::History history = recorder.TakeHistory();
    if (history.truncated) {
      // A truncated history drops commits by mutex-arrival order, so kept
      // transactions can depend on dropped ones — checking it would report
      // false violations for a correct backend.
      std::cerr << "opacity: SKIPPED — recorder hit its transaction cap ("
                << history.committed.size()
                << " kept); rerun with --max-ops to bound the history\n";
    } else {
      std::cerr << "checking opacity of " << history.committed.size()
                << " recorded transactions...\n";
      const sb7::OpacityResult opacity = sb7::CheckOpacity(history);
      if (opacity.ok()) {
        std::cerr << "opacity: OK (" << opacity.serialized_updates
                  << " update transactions serialized)\n";
      } else if (opacity.inconclusive) {
        // Could not certify, but non-opacity was not proven either. Still a
        // failed gate (an oracle must not silently pass what it cannot
        // check), but labelled so nobody hunts a nonexistent STM bug.
        std::cerr << "opacity: INCONCLUSIVE — " << opacity.diagnosis
                  << "; rerun with a smaller --max-ops to bound the history\n";
        exit_code = 1;
      } else {
        std::cerr << "OPACITY VIOLATION: " << opacity.diagnosis << "\n";
        exit_code = 1;
      }
    }
  }

  if (cli.config.verify_invariants) {
    const sb7::InvariantReport report = sb7::CheckInvariants(runner.data());
    if (!report.ok()) {
      std::cerr << "INVARIANT VIOLATIONS (" << report.violations.size() << "):\n";
      for (const std::string& violation : report.violations) {
        std::cerr << "  " << violation << "\n";
      }
      return 1;
    }
    std::cerr << "structure invariants: OK (" << report.atomic_parts << " atomic parts, "
              << report.base_assemblies << " base assemblies live)\n";
  }
  return exit_code;
}
