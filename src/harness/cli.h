// Command-line parsing for the stmbench7 binary (Appendix A.1, plus the
// extensions this reproduction adds: scale, seed, index kind, contention
// manager, operation blacklist, op-count cap).

#ifndef STMBENCH7_SRC_HARNESS_CLI_H_
#define STMBENCH7_SRC_HARNESS_CLI_H_

#include <optional>
#include <string>

#include "src/harness/driver.h"

namespace sb7 {

struct CliResult {
  BenchConfig config;
  bool show_help = false;
  // Set when parsing failed; the message describes the offending argument.
  std::optional<std::string> error;
};

CliResult ParseCommandLine(int argc, const char* const* argv);

// Usage text for --help and parse errors.
std::string UsageText();

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_CLI_H_
