// Command-line parsing for the stmbench7 binary (Appendix A.1, plus the
// extensions this reproduction adds: scale, seed, index kind, contention
// manager, operation blacklist, op-count cap).

#ifndef STMBENCH7_SRC_HARNESS_CLI_H_
#define STMBENCH7_SRC_HARNESS_CLI_H_

#include <optional>
#include <string>
#include <vector>

#include "src/harness/driver.h"

namespace sb7 {

// `--fuzz`-mode arguments (see src/check/fuzz.h). Present iff --fuzz was
// given; the benchmark-run flags (-s, -g, --max-ops) feed into the fuzz
// options where they make sense.
struct FuzzCli {
  uint64_t seed = 0;
  int cases = 25;
  // >= 0: reproduce exactly this case instead of sweeping.
  int case_index = -1;
  // Phase-name subset for the reproduced case (from a shrunk repro command).
  std::vector<std::string> phases;
  // > 0: force every phase of the reproduced case to this thread count.
  int threads_override = 0;
  // Per-phase started-op cap override (--fuzz-ops).
  int64_t ops_per_phase = 0;
  // Wall-clock budget for the sweep (--fuzz-budget; 0 = none).
  double budget_seconds = 0.0;
};

struct CliResult {
  BenchConfig config;
  bool show_help = false;
  // True when -g was given explicitly (config.strategy alone cannot tell an
  // explicit "-g coarse" from the default; --fuzz needs the distinction).
  bool strategy_given = false;
  // Run the differential cross-backend oracle instead of a benchmark.
  bool differential = false;
  // Run the deterministic fuzz driver instead of a benchmark.
  std::optional<FuzzCli> fuzz;
  // Non-empty: replay this redo log (--recover <file>) instead of running a
  // benchmark. The replay backend comes from -g (default mvstm).
  std::string recover_path;
  // Set when parsing failed; the message describes the offending argument.
  std::optional<std::string> error;
};

CliResult ParseCommandLine(int argc, const char* const* argv);

// Usage text for --help and parse errors.
std::string UsageText();

}  // namespace sb7

#endif  // STMBENCH7_SRC_HARNESS_CLI_H_
