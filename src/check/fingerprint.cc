#include "src/check/fingerprint.h"

#include "src/stm/field.h"

namespace sb7 {
namespace {

// Domain-separation constants so that, e.g., an atomic part and an assembly
// with the same id cannot cancel each other in the commutative folds.
constexpr uint64_t kTagAssembly = 0x41u;
constexpr uint64_t kTagComposite = 0x43u;
constexpr uint64_t kTagAtomic = 0x50u;
constexpr uint64_t kTagConnection = 0x58u;
constexpr uint64_t kTagLink = 0x4cu;
constexpr uint64_t kTagIndex = 0x49u;

uint64_t HashAtomicPart(const AtomicPart& atom) {
  uint64_t h = MixHash(static_cast<uint64_t>(atom.id()) ^ (kTagAtomic << 56));
  h ^= MixHash(static_cast<uint64_t>(atom.build_date()) + 0x1111);
  h ^= MixHash(static_cast<uint64_t>(atom.x()) + 0x2222);
  h ^= MixHash(static_cast<uint64_t>(atom.y()) * 7 + 0x3333);
  return h;
}

uint64_t HashConnection(const Connection& conn) {
  uint64_t h = MixHash(static_cast<uint64_t>(conn.from()->id()) ^ (kTagConnection << 56));
  h ^= MixHash(static_cast<uint64_t>(conn.to()->id()) * 5 + 0x7777);
  h ^= MixHash(static_cast<uint64_t>(conn.length()) + 0x8888);
  return h;
}

}  // namespace

uint64_t DeepFingerprint(DataHolder& dh) {
  SB7_CHECK(CurrentTx() == nullptr);
  uint64_t sum = 0;

  // Composite parts: graphs (atomic parts + connections), documents, links.
  dh.composite_part_id_index().ForEach([&sum](const int64_t& id, CompositePart* const& part) {
    uint64_t h = MixHash(static_cast<uint64_t>(id) ^ (kTagComposite << 56));
    h ^= MixHash(static_cast<uint64_t>(part->build_date()) + 0x4242);
    h ^= HashString(part->documentation()->title());
    h ^= HashString(part->documentation()->text());
    h ^= MixHash(static_cast<uint64_t>(part->root_part()->id()) + 0x5151);
    uint64_t atoms = 0;
    uint64_t connections = 0;
    for (AtomicPart* atom : part->parts()) {
      atoms += HashAtomicPart(*atom);
      for (Connection* conn : atom->outgoing()) {
        connections += HashConnection(*conn);
      }
    }
    h ^= MixHash(atoms);
    h ^= MixHash(connections + 0x6666);
    uint64_t links = 0;
    part->used_in().ForEach([&links](BaseAssembly* base) {
      links += MixHash(static_cast<uint64_t>(base->id()) ^ (kTagLink << 56));
    });
    h ^= MixHash(links + 0x4444);
    sum += h;
    return true;
  });

  // Assembly tree, including the base-assembly -> composite-part bags (the
  // forward side of the many-to-many link; the backward side is folded above).
  auto walk = [&sum](auto&& self, Assembly* assembly) -> void {
    uint64_t h = MixHash(static_cast<uint64_t>(assembly->id()) ^ (kTagAssembly << 56));
    h ^= MixHash(static_cast<uint64_t>(assembly->build_date()) + 0x5555);
    h ^= MixHash(static_cast<uint64_t>(assembly->level()) + 0x6666);
    if (assembly->is_base()) {
      uint64_t components = 0;
      static_cast<BaseAssembly*>(assembly)->components().ForEach(
          [&components](CompositePart* part) {
            components += MixHash(static_cast<uint64_t>(part->id()) + 0x9999);
          });
      h ^= MixHash(components + 0xaaaa);
    }
    sum += h;
    if (!assembly->is_base()) {
      static_cast<ComplexAssembly*>(assembly)->sub_assemblies().ForEach(
          [&self](Assembly* child) { self(self, child); });
    }
  };
  walk(walk, dh.module()->design_root());

  sum += HashString(dh.manual()->text());
  sum += MixHash(static_cast<uint64_t>(dh.module()->id()) + 0xbbbb);

  // All six Table-1 indexes, by content. A racy update that corrupts an index
  // without breaking the object graph (stale entry, lost insert) lands here.
  const auto id_of = [](auto* object) { return static_cast<uint64_t>(object->id()); };
  const auto key_id = [](const int64_t& key) { return static_cast<uint64_t>(key); };
  const auto key_string = [](const std::string& key) { return HashString(key); };
  uint64_t indexes = kTagIndex;
  indexes ^= FingerprintIndex(dh.atomic_part_id_index(), key_id, id_of);
  indexes ^= MixHash(FingerprintIndex(dh.atomic_part_date_index(), key_id, id_of) + 1);
  indexes ^= MixHash(FingerprintIndex(dh.composite_part_id_index(), key_id, id_of) + 2);
  indexes ^= MixHash(FingerprintIndex(dh.document_title_index(), key_string, id_of) + 3);
  indexes ^= MixHash(FingerprintIndex(dh.base_assembly_id_index(), key_id, id_of) + 4);
  indexes ^= MixHash(FingerprintIndex(dh.complex_assembly_id_index(), key_id, id_of) + 5);
  sum += MixHash(indexes);

  return sum;
}

}  // namespace sb7
