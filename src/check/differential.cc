#include "src/check/differential.h"

#include <sstream>

#include "src/check/fingerprint.h"
#include "src/core/invariants.h"
#include "src/ebr/ebr.h"
#include "src/harness/workload.h"
#include "src/strategy/strategy.h"

namespace sb7 {
namespace {

// Executes the shared operation sequence under one strategy. The op-selection
// stream and the op-body stream both derive from options.seed, mirroring how
// the benchmark driver hands one Rng to a worker for both purposes.
DifferentialRun RunOneBackend(const DifferentialOptions& options,
                              const std::string& strategy_name,
                              const OperationRegistry& registry,
                              const std::vector<double>& ratios,
                              std::vector<std::string>* op_names) {
  DifferentialRun run;
  run.strategy = strategy_name;

  std::unique_ptr<SyncStrategy> strategy = MakeStrategy(strategy_name);
  SB7_CHECK(strategy != nullptr);
  DataHolder::Setup setup;
  setup.params = Parameters::ForName(options.scale);
  setup.index_kind = DefaultIndexKindFor(strategy_name);
  setup.seed = options.seed;
  DataHolder data(setup);

  const auto& ops = registry.all();
  Rng rng(options.seed ^ 0x5eedf00ddeadbeefull);
  run.results.reserve(options.operations);
  for (int i = 0; i < options.operations; ++i) {
    const int index = SampleOperation(ratios, rng);
    if (op_names != nullptr) {
      op_names->push_back(ops[index]->name());
    }
    int64_t value = kOperationFailedSentinel;
    try {
      value = strategy->Execute(*ops[index], data, rng);
    } catch (const OperationFailed&) {
      // Committed failure outcome; the sentinel must match across backends.
    }
    run.results.push_back(value);
    EbrDomain::Global().Quiesce();
  }
  EbrDomain::Global().Quiesce();
  EbrDomain::Global().TryReclaim();

  InvariantReport invariants = CheckInvariants(data);
  run.invariants_ok = invariants.ok();
  run.violations = std::move(invariants.violations);
  run.fingerprint = DeepFingerprint(data);
  return run;
}

}  // namespace

DifferentialReport RunDifferential(const DifferentialOptions& options) {
  DifferentialReport report;
  SB7_CHECK(!options.strategies.empty());
  SB7_CHECK(options.operations > 0);

  OperationRegistry registry;
  const std::vector<double> ratios = ComputeOperationRatios(
      registry, WorkloadType::kReadWrite, options.long_traversals, options.structure_mods,
      options.disabled_ops);

  for (size_t s = 0; s < options.strategies.size(); ++s) {
    report.runs.push_back(RunOneBackend(options, options.strategies[s], registry, ratios,
                                        s == 0 ? &report.op_names : nullptr));
  }

  const DifferentialRun& reference = report.runs.front();
  for (const DifferentialRun& run : report.runs) {
    if (!run.invariants_ok) {
      report.mismatches.push_back(run.strategy + ": structure invariants violated (" +
                                  (run.violations.empty() ? "?" : run.violations.front()) +
                                  ")");
    }
  }
  for (size_t s = 1; s < report.runs.size(); ++s) {
    const DifferentialRun& run = report.runs[s];
    for (size_t i = 0; i < run.results.size(); ++i) {
      if (run.results[i] != reference.results[i]) {
        std::ostringstream message;
        message << run.strategy << " vs " << reference.strategy << ": operation #" << i
                << " (" << report.op_names[i] << ") returned " << run.results[i]
                << " instead of " << reference.results[i];
        report.mismatches.push_back(message.str());
        break;  // one divergence per backend pair is enough to diagnose
      }
    }
    if (run.fingerprint != reference.fingerprint) {
      std::ostringstream message;
      message << run.strategy << " vs " << reference.strategy
              << ": final structural fingerprints differ (" << std::hex << run.fingerprint
              << " != " << reference.fingerprint << ")";
      report.mismatches.push_back(message.str());
    }
  }
  return report;
}

std::string FormatDifferentialReport(const DifferentialReport& report) {
  std::ostringstream out;
  out << "== Differential oracle ==\n";
  out << "  operations: " << report.op_names.size() << "\n";
  for (const DifferentialRun& run : report.runs) {
    out << "  " << run.strategy << ": fingerprint " << std::hex << run.fingerprint
        << std::dec << ", invariants " << (run.invariants_ok ? "OK" : "VIOLATED") << "\n";
  }
  if (report.ok()) {
    out << "  verdict: all backends agree\n";
  } else {
    out << "  verdict: DIVERGENCE\n";
    for (const std::string& mismatch : report.mismatches) {
      out << "    " << mismatch << "\n";
    }
  }
  return out.str();
}

}  // namespace sb7
