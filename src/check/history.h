// Transaction-history recording and offline opacity checking.
//
// The recorder is a TxObserver (src/stm/field.h): once installed it logs, per
// committed transaction, the program-ordered sequence of transactional reads
// and writes (field address + 64-bit word) plus a commit timestamp drawn from
// a global counter at the commit point. Aborted attempts are discarded — the
// benchmark's correctness statement is about committed state. Recording costs
// one thread-local append per field access and one mutex acquisition per
// commit; with no recorder installed the hook is a single relaxed load.
//
// The checker answers: is the recorded committed history *opaque* — i.e., is
// it equivalent to some serial execution in which every transaction (update
// and read-only alike) observed a consistent snapshot? It works purely from
// values:
//   1. each transaction is normalized to an external read set (first read of
//      each location not previously self-written) and a final write set;
//      repeated external reads of one location must agree — a torn read
//      inside one transaction is rejected immediately;
//   2. a backtracking search looks for one total order of all committed
//      transactions whose value replay succeeds and which respects the
//      recorded real-time intervals: begin and commit events draw from one
//      global sequence, and a transaction that began after another's commit
//      can never serialize before it. The interval constraint caps the
//      branching factor at the thread count (only transactions concurrent
//      with the earliest-committing pending one are candidates), and since
//      commit timestamps are nearly accurate the search degenerates to a
//      linear replay on honest histories. Pure readers that match the
//      current state are placed greedily — they change nothing, so deferring
//      them can never help. A snapshot mixing state from two epochs (the
//      mvstm/tl2 class of bugs) matches no reachable state and fails.
// Locations never grounded by an explicit initial value are grounded by
// their first observed read, exactly once — two transactions that disagree
// on a never-written location's value can therefore never both pass.
//
// Finding an order is a certificate of serializability. Exhausting the
// search space proves non-opacity; exhausting the *step budget* proves
// nothing and is reported as a distinct inconclusive outcome
// (OpacityResult::inconclusive) — still a failed gate, but labelled so
// nobody hunts a nonexistent STM bug.

#ifndef STMBENCH7_SRC_CHECK_HISTORY_H_
#define STMBENCH7_SRC_CHECK_HISTORY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/stm/field.h"

namespace sb7 {

struct HistoryAccess {
  uintptr_t loc = 0;      // field identity (its address during the run)
  uint64_t word = 0;      // raw 64-bit value read or written
  bool is_write = false;
};

struct HistoryTx {
  // Begin/commit sequence numbers drawn from one global counter. The
  // transaction's serialization point lies inside [begin_ts, commit_ts]
  // (the begin event fires before any attempt state is created, the commit
  // event after the commit point), so if A.commit_ts < B.begin_ts then A
  // serializes before B. Hand-crafted histories may leave begin_ts 0, which
  // imposes no ordering constraint.
  uint64_t begin_ts = 0;
  uint64_t commit_ts = 0;
  bool read_only = false;  // the retry loop's hint (informational)
  std::vector<HistoryAccess> accesses;  // program order
};

struct History {
  std::vector<HistoryTx> committed;
  // Known initial values; locations absent here are grounded lazily by their
  // first observed read. Tests crafting adversarial histories should ground
  // every location explicitly, otherwise the first reader defines "initial".
  std::unordered_map<uintptr_t, uint64_t> initial;
  // Set when the recorder hit its transaction cap and stopped recording.
  bool truncated = false;
};

class HistoryRecorder : public TxObserver {
 public:
  explicit HistoryRecorder(size_t max_transactions = 1'000'000)
      : max_transactions_(max_transactions) {}
  ~HistoryRecorder() override;

  // Install/Uninstall must run while no transactions are in flight.
  void Install();
  void Uninstall();

  // Moves the recorded history out (call after Uninstall / quiescence).
  History TakeHistory();

  // TxObserver implementation (called from worker threads).
  void OnTxBegin(bool read_only) noexcept override;
  void OnTxRead(const TxFieldBase& field, uint64_t word) noexcept override;
  void OnTxWrite(const TxFieldBase& field, uint64_t word) noexcept override;
  void OnTxCommit() noexcept override;
  void OnTxAbort(const TxAbortInfo& info) noexcept override;
  // Births and raw stores inside an open attempt become writes of that
  // transaction (they are pre-publication seeding of private objects, or STM
  // writeback of values the attempt already logged). Outside any attempt
  // (initial build, direct mode) they land in the history's initial map.
  void OnFieldBirth(const TxFieldBase& field, uint64_t word) noexcept override;
  void OnRawStore(const TxFieldBase& field, uint64_t word) noexcept override;

 private:
  struct ThreadBuffer {
    HistoryRecorder* owner = nullptr;  // recorder the open attempt belongs to
    bool read_only = false;
    uint64_t begin_ts = 0;
    std::vector<HistoryAccess> accesses;
  };
  static ThreadBuffer& LocalBuffer();

  void NoteNonTransactionalWord(const TxFieldBase& field, uint64_t word);

  const size_t max_transactions_;
  bool installed_ = false;

  // One global sequence for begin and commit events (see HistoryTx).
  std::atomic<uint64_t> sequence_{0};

  std::mutex mutex_;
  bool truncated_ = false;
  std::vector<HistoryTx> committed_;
  std::unordered_map<uintptr_t, uint64_t> bootstrap_;  // out-of-tx initials
};

struct OpacityResult {
  bool opaque = false;
  // Set when the search ran out of step budget: the history could not be
  // certified, but non-opacity was not proven either. Callers should report
  // this distinctly from a demonstrated violation.
  bool inconclusive = false;
  // Human-readable explanation when not opaque.
  std::string diagnosis;
  // Number of update transactions in the serialization the checker found.
  size_t serialized_updates = 0;

  bool ok() const { return opaque; }
};

OpacityResult CheckOpacity(const History& history);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CHECK_HISTORY_H_
