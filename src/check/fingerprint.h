// Deep structural fingerprinting for the correctness oracle.
//
// DeepFingerprint folds the *entire observable state* of the benchmark world
// into one 64-bit value: every assembly, composite part, atomic part (ids,
// dates, x/y), every connection (endpoints and length), document and manual
// bodies, the many-to-many assembly<->part links, and the full contents of
// all six Table-1 indexes. The fold is order-independent (commutative sums
// of per-entity hashes), so two structurally identical worlds fingerprint
// identically regardless of index implementation (stdmap / snapshot /
// skiplist) or the iteration order the containers happen to produce.
//
// This is what the differential oracle (src/check/differential.h) compares
// across backends, and what the fuzz driver (src/check/fuzz.h) uses as its
// cross-backend failure predicate. It subsumes core/invariants.h's
// StructureChecksum by additionally covering connections and index contents,
// where a racy index update would otherwise go unnoticed.

#ifndef STMBENCH7_SRC_CHECK_FINGERPRINT_H_
#define STMBENCH7_SRC_CHECK_FINGERPRINT_H_

#include <cstdint>

#include "src/common/hashing.h"
#include "src/containers/index.h"
#include "src/core/data_holder.h"

namespace sb7 {

// Order-independent fingerprint of one index's contents. Safe both from a
// quiescent state and from inside a transaction (iteration goes through the
// index's transactional reads), which the concurrent-iteration tests use.
template <typename K, typename V, typename KeyHash, typename ValueHash>
uint64_t FingerprintIndex(const Index<K, V>& index, KeyHash&& key_hash,
                          ValueHash&& value_hash) {
  uint64_t sum = 0;
  int64_t entries = 0;
  index.ForEach([&](const K& key, const V& value) {
    // Key and value are mixed independently before combining: a linear
    // combination (k*c + v) would let distinct entries cancel in the
    // commutative sum — exactly the corruption class being fingerprinted.
    sum += MixHash(MixHash(key_hash(key)) ^
                   MixHash(value_hash(value) + 0x517cc1b727220a95ull));
    ++entries;
    return true;
  });
  return MixHash(sum ^ MixHash(static_cast<uint64_t>(entries) + 0x9e3779b9ull));
}

// Fingerprint of the whole world. Must be called from a quiescent state (no
// transaction installed, no concurrent workers).
uint64_t DeepFingerprint(DataHolder& dh);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CHECK_FINGERPRINT_H_
