// Differential cross-backend oracle.
//
// Replays one deterministically-seeded operation sequence — same structure
// seed, same operation-selection stream, single thread, closed loop — under
// every configured synchronization strategy, and compares:
//   * the per-operation return values (Appendix-B result values, with
//     operation failures mapped to a sentinel), and
//   * the deep structural fingerprint (src/check/fingerprint.h) of the final
//     world, which covers the object graph, documents, the manual and all
//     six indexes, and
//   * the full invariant report (src/core/invariants.h).
//
// Single-threaded execution makes every backend consume the RNG stream
// identically (no aborts, no retries), so any divergence is a real semantic
// difference between backends — the class of bug a racy STM hides behind
// good throughput numbers. Each backend runs against its own default index
// kind; the fingerprint is content-based, so stdmap/snapshot/skiplist worlds
// compare equal when the backends agree.

#ifndef STMBENCH7_SRC_CHECK_DIFFERENTIAL_H_
#define STMBENCH7_SRC_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace sb7 {

struct DifferentialOptions {
  // Backends to compare; the first is the reference the others diff against.
  std::vector<std::string> strategies = {"fine",    "tl2",  "norec",
                                         "tinystm", "astm", "mvstm"};
  std::string scale = "tiny";
  uint64_t seed = 20070326;
  int operations = 200;
  bool long_traversals = true;
  bool structure_mods = true;
  std::set<std::string> disabled_ops;
};

// Return value recorded for an operation that threw OperationFailed.
constexpr int64_t kOperationFailedSentinel = INT64_MIN;

struct DifferentialRun {
  std::string strategy;
  std::vector<int64_t> results;  // one entry per executed operation
  uint64_t fingerprint = 0;
  bool invariants_ok = false;
  std::vector<std::string> violations;
};

struct DifferentialReport {
  std::vector<DifferentialRun> runs;
  // Human-readable divergences; empty iff all backends agree and all runs
  // preserve the structure invariants.
  std::vector<std::string> mismatches;
  // Names of the executed operations, parallel to each run's results.
  std::vector<std::string> op_names;

  bool ok() const { return mismatches.empty(); }
};

DifferentialReport RunDifferential(const DifferentialOptions& options);

// Formats the report for terminal output (used by the --differential mode).
std::string FormatDifferentialReport(const DifferentialReport& report);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CHECK_DIFFERENTIAL_H_
