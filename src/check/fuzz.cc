#include "src/check/fuzz.h"

#include <algorithm>
#include <sstream>

#include "src/check/fingerprint.h"
#include "src/common/timing.h"
#include "src/core/invariants.h"
#include "src/harness/driver.h"

namespace sb7 {
namespace {

const std::vector<std::string>& AllOperationNames() {
  static const std::vector<std::string>* names = []() {
    auto* out = new std::vector<std::string>;
    OperationRegistry registry;
    for (const auto& op : registry.all()) {
      out->push_back(op->name());
    }
    return out;
  }();
  return *names;
}

bool IsSingleThreaded(const FuzzCase& fuzz_case) {
  for (const PhaseSpec& phase : fuzz_case.scenario.phases) {
    if (phase.threads.value_or(1) != 1) {
      return false;
    }
  }
  return true;
}

// Runs `fuzz_case` under one backend; returns the failure reason ("" = ok)
// and the final deep fingerprint through `fingerprint`.
std::string RunUnderBackend(const FuzzOptions& options, const FuzzCase& fuzz_case,
                            const std::string& strategy, uint64_t& fingerprint) {
  BenchConfig config;
  config.strategy = strategy;
  config.scale = options.scale;
  config.seed = fuzz_case.structure_seed;
  config.threads = 1;  // every phase carries its own thread count
  // Phases end on their started-op caps; the wall-clock split only needs to
  // be generous enough never to fire first.
  config.length_seconds = 3600.0;
  config.scenario = fuzz_case.scenario;

  BenchmarkRunner runner(config);
  runner.Run();
  if (options.post_run_hook) {
    options.post_run_hook(runner.data(), fuzz_case);
  }
  const InvariantReport invariants = CheckInvariants(runner.data());
  fingerprint = DeepFingerprint(runner.data());
  if (!invariants.ok()) {
    return strategy + ": invariant violated: " + invariants.violations.front();
  }
  return "";
}

// Greedy shrink: force single-threaded, then remove phases to a fixpoint.
FuzzCase Shrink(const FuzzOptions& options, const FuzzCase& failing, std::string& reason) {
  FuzzCase minimal = failing;

  FuzzCase single = minimal;
  for (PhaseSpec& phase : single.scenario.phases) {
    phase.threads = 1;
  }
  if (std::string r = RunFuzzCase(options, single); !r.empty()) {
    minimal = std::move(single);
    reason = std::move(r);
  }

  bool changed = true;
  while (changed && minimal.scenario.phases.size() > 1) {
    changed = false;
    for (size_t p = 0; p < minimal.scenario.phases.size(); ++p) {
      FuzzCase candidate = minimal;
      candidate.scenario.phases.erase(candidate.scenario.phases.begin() +
                                      static_cast<ptrdiff_t>(p));
      if (std::string r = RunFuzzCase(options, candidate); !r.empty()) {
        minimal = std::move(candidate);
        reason = std::move(r);
        changed = true;
        break;
      }
    }
  }
  return minimal;
}

}  // namespace

FuzzCase GenerateFuzzCase(const FuzzOptions& options, int index) {
  SB7_CHECK(!options.strategies.empty());
  FuzzCase fuzz_case;
  fuzz_case.index = index;
  Rng rng(options.seed ^ MixHash(static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ull + 1));
  fuzz_case.strategy = options.strategies[rng.NextBounded(options.strategies.size())];
  fuzz_case.structure_seed = rng.Next();
  // Roughly a third of cases run single-threaded so the differential
  // fingerprint comparison applies; the rest hunt races with real threads.
  const int max_threads = rng.NextBool(0.35) ? 1 : options.max_threads;
  fuzz_case.scenario = ComposeRandomScenario(rng, AllOperationNames(), options.max_phases,
                                             options.ops_per_phase, max_threads);
  return fuzz_case;
}

std::string RunFuzzCase(const FuzzOptions& options, const FuzzCase& fuzz_case) {
  if (IsSingleThreaded(fuzz_case) && options.strategies.size() > 1) {
    // Deterministic case: every backend must agree on the final fingerprint.
    uint64_t reference_fingerprint = 0;
    std::string reference_strategy;
    for (const std::string& strategy : options.strategies) {
      uint64_t fingerprint = 0;
      if (std::string reason = RunUnderBackend(options, fuzz_case, strategy, fingerprint);
          !reason.empty()) {
        return reason;
      }
      if (reference_strategy.empty()) {
        reference_fingerprint = fingerprint;
        reference_strategy = strategy;
      } else if (fingerprint != reference_fingerprint) {
        std::ostringstream message;
        message << strategy << " vs " << reference_strategy
                << ": structural fingerprints diverge (" << std::hex << fingerprint
                << " != " << reference_fingerprint << ")";
        return message.str();
      }
    }
    return "";
  }
  uint64_t fingerprint = 0;
  return RunUnderBackend(options, fuzz_case, fuzz_case.strategy, fingerprint);
}

std::string ReproduceCommand(const FuzzOptions& options, const FuzzCase& fuzz_case) {
  std::ostringstream out;
  out << "stmbench7 --fuzz " << options.seed << " --fuzz-case " << fuzz_case.index << " -s "
      << options.scale;
  if (options.ops_per_phase != FuzzOptions{}.ops_per_phase) {
    out << " --fuzz-ops " << options.ops_per_phase;
  }
  if (options.strategies.size() == 1) {
    out << " -g " << options.strategies.front();
  }
  // The generated case always carries max_phases phases at most; a shrunk
  // case names the surviving subset and its (possibly reduced) threading.
  const FuzzCase generated = GenerateFuzzCase(options, fuzz_case.index);
  if (fuzz_case.scenario.phases.size() != generated.scenario.phases.size()) {
    out << " --fuzz-phases ";
    for (size_t p = 0; p < fuzz_case.scenario.phases.size(); ++p) {
      out << (p == 0 ? "" : ",") << fuzz_case.scenario.phases[p].name;
    }
  }
  bool threads_reduced = false;
  for (size_t p = 0; p < fuzz_case.scenario.phases.size(); ++p) {
    const std::string& name = fuzz_case.scenario.phases[p].name;
    for (const PhaseSpec& original : generated.scenario.phases) {
      if (original.name == name &&
          original.threads.value_or(1) != fuzz_case.scenario.phases[p].threads.value_or(1)) {
        threads_reduced = true;
      }
    }
  }
  if (threads_reduced) {
    out << " --fuzz-threads 1";
  }
  return out.str();
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  const Stopwatch budget;
  for (int index = 0; index < options.cases; ++index) {
    if (options.budget_seconds > 0 && budget.ElapsedSeconds() >= options.budget_seconds) {
      if (options.log != nullptr) {
        *options.log << "fuzz: wall-clock budget reached after " << report.cases_run
                     << " cases\n";
      }
      break;
    }
    const FuzzCase fuzz_case = GenerateFuzzCase(options, index);
    if (options.log != nullptr) {
      *options.log << "fuzz case " << index << ": " << fuzz_case.strategy << ", "
                   << fuzz_case.scenario.phases.size() << " phases"
                   << (IsSingleThreaded(fuzz_case) && options.strategies.size() > 1
                           ? " (differential)"
                           : "")
                   << "\n";
    }
    std::string reason = RunFuzzCase(options, fuzz_case);
    ++report.cases_run;
    if (reason.empty()) {
      continue;
    }
    if (options.log != nullptr) {
      *options.log << "fuzz case " << index << " FAILED: " << reason << "\nshrinking...\n";
    }
    FuzzFailure failure;
    failure.original = fuzz_case;
    failure.reason = reason;
    failure.minimal = Shrink(options, fuzz_case, failure.reason);
    failure.reproduce_command = ReproduceCommand(options, failure.minimal);
    report.failure = std::move(failure);
    break;
  }
  return report;
}

}  // namespace sb7
