// Deterministic fuzz/stress driver over the scenario engine.
//
// A fuzz *case* is a pure function of (seed, case index): a randomly drawn
// backend, structure seed, and random phase list (random read fractions,
// category switches, operation blacklists, thread counts, hotspot skew —
// see ComposeRandomScenario). Phases are capped by started-operation counts
// rather than wall-clock, so a fixed-seed case replays exactly.
//
// Failure predicate per case:
//   * the full invariant checker must pass after the run, and
//   * for single-threaded (deterministic) cases, the deep structural
//     fingerprint must agree across *all* configured backends — the
//     differential oracle applied to a whole scenario run. Roughly a third
//     of generated cases are forced single-threaded for this purpose.
//
// On failure the driver shrinks: first forcing every phase to one thread,
// then greedily removing phases while the failure persists, yielding a
// minimal phase list and a copy-pasteable reproduce command
// (`stmbench7 --fuzz <seed> --fuzz-case <i> --fuzz-phases p1,p3 ...`).

#ifndef STMBENCH7_SRC_CHECK_FUZZ_H_
#define STMBENCH7_SRC_CHECK_FUZZ_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/data_holder.h"
#include "src/scenario/scenario.h"

namespace sb7 {

struct FuzzCase {
  int index = 0;
  std::string strategy;      // backend for multi-threaded (race-hunting) cases
  uint64_t structure_seed = 0;
  Scenario scenario;         // phases named "p0", "p1", ...
};

struct FuzzOptions {
  uint64_t seed = 1;
  int cases = 25;
  std::vector<std::string> strategies = {"fine",    "tl2",  "norec",
                                         "tinystm", "astm", "mvstm"};
  std::string scale = "tiny";
  int64_t ops_per_phase = 150;
  int max_phases = 4;
  int max_threads = 4;
  // Stop starting new cases once this much wall-clock has elapsed (0 = no
  // budget). Case generation stays deterministic; only the count run varies.
  double budget_seconds = 0.0;
  // Progress log (nullptr = silent).
  std::ostream* log = nullptr;
  // Test-only fault injection: runs against the final structure of every
  // case run, before the checks. Lets tests plant a deterministic bug and
  // verify the driver finds, reproduces and shrinks it.
  std::function<void(DataHolder&, const FuzzCase&)> post_run_hook;
};

// Deterministic: equal (options.seed, index) always yield the same case.
FuzzCase GenerateFuzzCase(const FuzzOptions& options, int index);

// Runs one case and returns the failure reason, or "" when it passed.
std::string RunFuzzCase(const FuzzOptions& options, const FuzzCase& fuzz_case);

// The command line that replays `fuzz_case` (including a --fuzz-phases
// subset when the case was shrunk).
std::string ReproduceCommand(const FuzzOptions& options, const FuzzCase& fuzz_case);

struct FuzzFailure {
  FuzzCase original;
  FuzzCase minimal;           // after thread + phase shrinking
  std::string reason;         // failure reason of the minimal case
  std::string reproduce_command;
};

struct FuzzReport {
  int cases_run = 0;
  std::optional<FuzzFailure> failure;  // first failing case, shrunk

  bool ok() const { return !failure.has_value(); }
};

// Runs cases 0..options.cases-1 (stopping early on the wall-clock budget or
// the first failure, which is then shrunk).
FuzzReport RunFuzz(const FuzzOptions& options);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CHECK_FUZZ_H_
