#include "src/check/history.h"

#include <algorithm>

#include "src/common/diag.h"

namespace sb7 {

// --- recorder ---

HistoryRecorder::ThreadBuffer& HistoryRecorder::LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

HistoryRecorder::~HistoryRecorder() {
  if (installed_) {
    Uninstall();
  }
}

void HistoryRecorder::Install() {
  SB7_CHECK(!installed_);
  SB7_CHECK(InstallTxObserver(this));
  installed_ = true;
}

void HistoryRecorder::Uninstall() {
  SB7_CHECK(installed_);
  SB7_CHECK(RemoveTxObserver(this));
  installed_ = false;
}

History HistoryRecorder::TakeHistory() {
  std::lock_guard<std::mutex> lock(mutex_);
  History history;
  history.committed = std::move(committed_);
  history.initial = std::move(bootstrap_);
  history.truncated = truncated_;
  committed_.clear();
  bootstrap_.clear();
  // Reset the truncation flag with the data it describes: a later recording
  // session on the same recorder must not inherit a stale "truncated"
  // verdict (which would make callers skip a perfectly checkable history).
  truncated_ = false;
  return history;
}

void HistoryRecorder::OnTxBegin(bool read_only) noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  buffer.owner = this;
  buffer.read_only = read_only;
  buffer.begin_ts = sequence_.fetch_add(1, std::memory_order_seq_cst) + 1;
  buffer.accesses.clear();
}

void HistoryRecorder::OnTxRead(const TxFieldBase& field, uint64_t word) noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.owner == this) {
    buffer.accesses.push_back({reinterpret_cast<uintptr_t>(&field), word, false});
  }
}

void HistoryRecorder::OnTxWrite(const TxFieldBase& field, uint64_t word) noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.owner == this) {
    buffer.accesses.push_back({reinterpret_cast<uintptr_t>(&field), word, true});
  }
}

void HistoryRecorder::OnTxCommit() noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.owner != this) {
    return;
  }
  buffer.owner = nullptr;
  HistoryTx tx;
  tx.begin_ts = buffer.begin_ts;
  tx.commit_ts = sequence_.fetch_add(1, std::memory_order_seq_cst) + 1;
  tx.read_only = buffer.read_only;
  tx.accesses = std::move(buffer.accesses);
  buffer.accesses.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  if (committed_.size() >= max_transactions_) {
    truncated_ = true;
    return;
  }
  committed_.push_back(std::move(tx));
}

void HistoryRecorder::OnTxAbort(const TxAbortInfo& /*info*/) noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.owner == this) {
    buffer.owner = nullptr;
    buffer.accesses.clear();
  }
}

void HistoryRecorder::NoteNonTransactionalWord(const TxFieldBase& field, uint64_t word) {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.owner == this) {
    // Inside an attempt: a private-object birth/seed or an STM writeback;
    // either way the enclosing transaction is what installs the value.
    buffer.accesses.push_back({reinterpret_cast<uintptr_t>(&field), word, true});
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bootstrap_[reinterpret_cast<uintptr_t>(&field)] = word;
}

void HistoryRecorder::OnFieldBirth(const TxFieldBase& field, uint64_t word) noexcept {
  NoteNonTransactionalWord(field, word);
}

void HistoryRecorder::OnRawStore(const TxFieldBase& field, uint64_t word) noexcept {
  NoteNonTransactionalWord(field, word);
}

// --- checker ---

namespace {

// One transaction, normalized for serialization checking: the values it must
// observe at its serialization point, and the values it installs.
struct NormalTx {
  size_t history_index = 0;
  uint64_t begin_ts = 0;
  uint64_t commit_ts = 0;
  std::vector<std::pair<uintptr_t, uint64_t>> external_reads;
  std::unordered_map<uintptr_t, uint64_t> writes;
};

// World state during replay: values written by already-serialized updates,
// falling back to grounded initial values. Grounding writes into `ground`
// exactly once per location; a conflicting later grounding is a violation.
struct ReplayState {
  std::unordered_map<uintptr_t, uint64_t> current;           // after applied updates
  std::unordered_map<uintptr_t, uint64_t>* ground = nullptr; // shared initials

  // Checks one external read; `pending_ground` collects groundings that the
  // caller promotes only if the whole transaction matches.
  bool ReadMatches(uintptr_t loc, uint64_t value,
                   std::unordered_map<uintptr_t, uint64_t>& pending_ground) const {
    if (auto it = current.find(loc); it != current.end()) {
      return it->second == value;
    }
    if (auto it = ground->find(loc); it != ground->end()) {
      return it->second == value;
    }
    if (auto it = pending_ground.find(loc); it != pending_ground.end()) {
      return it->second == value;
    }
    pending_ground.emplace(loc, value);
    return true;
  }
};

// Returns true and fills `pending_ground` when every external read of `tx`
// matches `state`.
bool TxMatches(const NormalTx& tx, const ReplayState& state,
               std::unordered_map<uintptr_t, uint64_t>& pending_ground) {
  pending_ground.clear();
  for (const auto& [loc, value] : tx.external_reads) {
    if (!state.ReadMatches(loc, value, pending_ground)) {
      return false;
    }
  }
  return true;
}

std::string DescribeTx(const NormalTx& tx) {
  return "tx#" + std::to_string(tx.history_index) +
         " (commit_ts " + std::to_string(tx.commit_ts) + ")";
}

// Bounded backtracking search for a serialization of *all* committed
// transactions (updates and read-only alike) whose value replay succeeds.
// Candidates are tried in commit-timestamp order, so the search degenerates
// to a linear replay when timestamps are accurate; grounding and state
// changes are rolled back exactly on backtrack. The search is iterative
// (explicit frame stack): recorded histories run to a million transactions,
// which would overflow the call stack recursively.
class OrderSearch {
 public:
  OrderSearch(const std::vector<NormalTx>& txs,
              std::unordered_map<uintptr_t, uint64_t> ground)
      : txs_(txs),
        ground_(std::move(ground)),
        // Honest histories consume about one step per placed transaction, so
        // the budget must scale with the history — it exists to bound
        // pathological backtracking, not linear placement.
        step_budget_(std::max<int64_t>(1'000'000, 8 * static_cast<int64_t>(txs.size()))) {
    // suffix_min_begin_[i] = min begin_ts over txs_[i..]; lets a candidate
    // scan stop as soon as no later transaction can still be admissible.
    suffix_min_begin_.resize(txs_.size() + 1, ~uint64_t{0});
    for (size_t i = txs_.size(); i-- > 0;) {
      suffix_min_begin_[i] = std::min(suffix_min_begin_[i + 1], txs_[i].begin_ts);
    }
  }

  // On success `order` holds indices into `txs` in serialization order.
  bool Run(std::vector<size_t>& order);

  bool budget_exhausted() const { return steps_ >= step_budget_; }

 private:

  // Undo bookkeeping for one applied (branched) transaction.
  struct Applied {
    size_t index = 0;
    std::vector<uintptr_t> grounded;
    std::vector<uintptr_t> added_locs;
    std::vector<std::pair<uintptr_t, uint64_t>> previous_values;
  };

  // One level of the search: the readers force-placed on entry (a suffix of
  // `order`), the cached first-pending commit ts, the candidate-scan resume
  // cursor, and the undo state of the branched choice (when one is active).
  struct Frame {
    size_t forced_count = 0;
    uint64_t fp_commit_ts = 0;
    size_t cursor = 0;
    Applied chosen;
    bool has_chosen = false;
  };

  void Place(size_t i) {
    used_[i] = true;
    if (i == min_unused_) {
      while (min_unused_ < txs_.size() && used_[min_unused_]) {
        ++min_unused_;
      }
    }
  }

  void Unplace(size_t i) {
    used_[i] = false;
    min_unused_ = std::min(min_unused_, i);
  }

  void Apply(size_t i, ReplayState& state,
             const std::unordered_map<uintptr_t, uint64_t>& pending, Applied& undo) {
    undo.index = i;
    Place(i);
    for (const auto& [loc, value] : pending) {
      ground_.emplace(loc, value);
      undo.grounded.push_back(loc);
    }
    for (const auto& [loc, value] : txs_[i].writes) {
      auto it = state.current.find(loc);
      if (it != state.current.end()) {
        undo.previous_values.emplace_back(loc, it->second);
        it->second = value;
      } else {
        undo.added_locs.push_back(loc);
        state.current.emplace(loc, value);
      }
    }
  }

  void Revert(const Applied& undo, ReplayState& state) {
    for (const auto& [loc, value] : undo.previous_values) {
      state.current[loc] = value;
    }
    for (uintptr_t loc : undo.added_locs) {
      state.current.erase(loc);
    }
    for (uintptr_t loc : undo.grounded) {
      ground_.erase(loc);
    }
    Unplace(undo.index);
  }

  // Interval pruning: the earliest-committing pending transaction `fp`
  // bounds the candidate set — any transaction that *began* after fp's
  // commit point must serialize after fp, so only fp itself and
  // transactions concurrent with it (begin_ts < fp commit) may come next.
  // Per-thread transactions are sequential, so this caps the branching
  // factor at the recorded thread count.
  bool Admissible(size_t i, uint64_t fp_commit_ts) const {
    return txs_[i].commit_ts == fp_commit_ts || txs_[i].begin_ts < fp_commit_ts;
  }

  // Force-places every pure reader that is admissible and matches the
  // current state *without grounding a new location*: it changes nothing,
  // and deferring it never enables an order that placing it now forbids.
  // This keeps the bulk of the read-only transactions out of the branching
  // entirely. (A reader whose match would ground a fresh location has a
  // side effect and stays a backtrackable candidate.) Returns the number of
  // readers placed (appended to `order`).
  size_t PlaceForcedReaders(std::vector<size_t>& order, ReplayState& state,
                            std::unordered_map<uintptr_t, uint64_t>& pending) {
    size_t placed = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      const uint64_t fp_commit_ts =
          min_unused_ < txs_.size() ? txs_[min_unused_].commit_ts : 0;
      for (size_t i = min_unused_; i < txs_.size(); ++i) {
        if (suffix_min_begin_[i] >= fp_commit_ts && i != min_unused_) {
          break;  // nothing at or beyond i can be admissible
        }
        if (used_[i] || !txs_[i].writes.empty() || !Admissible(i, fp_commit_ts)) {
          continue;
        }
        if (!TxMatches(txs_[i], state, pending) || !pending.empty()) {
          continue;
        }
        Place(i);
        order.push_back(i);
        ++placed;
        progress = true;
        break;  // fp may have changed; rescan
      }
    }
    return placed;
  }

  const std::vector<NormalTx>& txs_;
  std::unordered_map<uintptr_t, uint64_t> ground_;
  const int64_t step_budget_;
  std::vector<uint64_t> suffix_min_begin_;
  std::vector<bool> used_;
  size_t min_unused_ = 0;
  int64_t steps_ = 0;
};

bool OrderSearch::Run(std::vector<size_t>& order) {
  used_.assign(txs_.size(), false);
  min_unused_ = 0;
  ReplayState state;
  state.ground = &ground_;
  std::unordered_map<uintptr_t, uint64_t> pending;

  std::vector<Frame> stack;
  stack.emplace_back();
  stack.back().forced_count = PlaceForcedReaders(order, state, pending);
  stack.back().fp_commit_ts = min_unused_ < txs_.size() ? txs_[min_unused_].commit_ts : 0;
  stack.back().cursor = min_unused_;

  while (!stack.empty()) {
    if (order.size() == txs_.size()) {
      return true;
    }
    Frame& frame = stack.back();
    if (frame.has_chosen) {
      // Control returned here after a failed child: undo the choice and
      // resume scanning from the cursor.
      order.pop_back();
      Revert(frame.chosen, state);
      frame.chosen = Applied{};
      frame.has_chosen = false;
    }

    // Scan for the next admissible, matching candidate.
    size_t candidate = txs_.size();
    if (++steps_ < step_budget_) {
      for (size_t i = frame.cursor; i < txs_.size(); ++i) {
        if (used_[i]) {
          continue;
        }
        if (txs_[i].commit_ts != frame.fp_commit_ts &&
            suffix_min_begin_[i] >= frame.fp_commit_ts) {
          break;  // nothing at or beyond i can be admissible
        }
        if (!Admissible(i, frame.fp_commit_ts)) {
          continue;
        }
        if (TxMatches(txs_[i], state, pending)) {
          candidate = i;
          break;
        }
      }
    }

    if (candidate == txs_.size()) {
      // Dead end (or budget): unwind this frame's forced readers and pop.
      for (size_t k = 0; k < frame.forced_count; ++k) {
        Unplace(order.back());
        order.pop_back();
      }
      stack.pop_back();
      if (budget_exhausted()) {
        return false;
      }
      continue;
    }

    frame.cursor = candidate + 1;
    Apply(candidate, state, pending, frame.chosen);
    frame.has_chosen = true;
    order.push_back(candidate);

    stack.emplace_back();
    stack.back().forced_count = PlaceForcedReaders(order, state, pending);
    stack.back().fp_commit_ts = min_unused_ < txs_.size() ? txs_[min_unused_].commit_ts : 0;
    stack.back().cursor = min_unused_;
  }
  return false;
}

}  // namespace

OpacityResult CheckOpacity(const History& history) {
  OpacityResult result;

  // 1. Normalize, rejecting intra-transaction inconsistencies outright.
  std::vector<NormalTx> txs;
  for (size_t index = 0; index < history.committed.size(); ++index) {
    const HistoryTx& raw = history.committed[index];
    NormalTx tx;
    tx.history_index = index;
    tx.begin_ts = raw.begin_ts;
    tx.commit_ts = raw.commit_ts;
    std::unordered_map<uintptr_t, uint64_t> first_external;
    for (const HistoryAccess& access : raw.accesses) {
      if (access.is_write) {
        tx.writes[access.loc] = access.word;  // last write wins
        continue;
      }
      if (auto it = tx.writes.find(access.loc); it != tx.writes.end()) {
        if (it->second != access.word) {
          result.diagnosis = DescribeTx(tx) + " read back a value differing from its own write";
          return result;
        }
        continue;  // internal read
      }
      auto [it, inserted] = first_external.emplace(access.loc, access.word);
      if (inserted) {
        tx.external_reads.emplace_back(access.loc, access.word);
      } else if (it->second != access.word) {
        result.diagnosis =
            DescribeTx(tx) + " observed two different values for one location (torn read)";
        return result;
      }
    }
    txs.push_back(std::move(tx));
  }

  // 2. One unified search serializes updates and readers together: every
  // committed transaction (a read-only one included) must find a spot in a
  // single value-consistent total order that also respects the recorded
  // real-time [begin, commit] intervals. Timestamps order the candidate
  // exploration, so exact histories replay linearly.
  std::sort(txs.begin(), txs.end(),
            [](const NormalTx& a, const NormalTx& b) { return a.commit_ts < b.commit_ts; });
  OrderSearch search(txs, history.initial);
  std::vector<size_t> order;
  if (!search.Run(order)) {
    result.inconclusive = search.budget_exhausted();
    result.diagnosis = result.inconclusive
                           ? "search budget exhausted without finding a serializable order"
                           : "no serializable order exists for the committed transactions "
                             "(value replay fails in every interval-respecting order)";
    return result;
  }
  for (const NormalTx& tx : txs) {
    if (!tx.writes.empty()) {
      ++result.serialized_updates;
    }
  }

  result.opaque = true;
  return result;
}

}  // namespace sb7
