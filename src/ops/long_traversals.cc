// Long traversals T1–T6 and queries Q6, Q7 (Appendix B.2.1).
//
// All originate from OO7 and keep its naming. They go through all assemblies
// and/or all atomic parts (composite parts are visited once per referencing
// base assembly, as in OO7's shared design library) and never fail.

#include "src/ops/operation.h"
#include "src/ops/traversal_helpers.h"

namespace sb7 {
namespace {

constexpr LockSet kReadStructureParts{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts) |
            LockBit(kLockAtomicParts),
    .write = 0};
constexpr LockSet kWriteAtomicParts{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts),
    .write = LockBit(kLockAtomicParts)};
constexpr LockSet kReadDocuments{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts) |
            LockBit(kLockDocuments),
    .write = 0};
constexpr LockSet kWriteDocuments{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts),
    .write = LockBit(kLockDocuments)};
constexpr LockSet kReadAssembliesParts{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts),
    .write = 0};
constexpr LockSet kReadAtomicIndex{
    .read = LockBit(kLockStructure) | LockBit(kLockAtomicParts), .write = 0};

// What T1/T2*/T3* do at each atomic part.
enum class AtomUpdate { kNone, kSwapXY, kNudgeDateIndexed };

// T1 family: full DFS down to atomic part graphs.
//   update_scope: 0 = read-only (T1), 1 = root parts only (T2a/T3a),
//                 2 = every part (T2b/T3b), 3 = every part, four times
//                 (T2c/T3c). T6 visits only root parts, read-only.
class GraphTraversal : public Operation {
 public:
  GraphTraversal(std::string name, AtomUpdate update, int update_scope, bool roots_only,
                 LockSet locks)
      : Operation(std::move(name), OpCategory::kLongTraversal, update == AtomUpdate::kNone,
                  locks),
        update_(update),
        update_scope_(update_scope),
        roots_only_(roots_only) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    int64_t visited = 0;
    ForEachBaseAssembly(dh.module()->design_root(), [&](BaseAssembly* base) {
      base->components().ForEach([&](CompositePart* part) {
        if (roots_only_) {
          Visit(dh, part->root_part(), /*is_root=*/true);
          ++visited;
          return;
        }
        AtomicPart* root = part->root_part();
        visited += TraverseAtomicGraph(
            root, [&](AtomicPart* atom) { Visit(dh, atom, atom == root); });
      });
    });
    return visited;
  }

 private:
  void Visit(DataHolder& dh, AtomicPart* atom, bool is_root) const {
    const bool update_this = update_ != AtomUpdate::kNone &&
                             (update_scope_ >= 2 || (update_scope_ == 1 && is_root));
    if (!update_this) {
      atom->ReadVisit();
      return;
    }
    const int repeats = update_scope_ == 3 ? 4 : 1;
    for (int i = 0; i < repeats; ++i) {
      if (update_ == AtomUpdate::kSwapXY) {
        atom->SwapXY();
      } else {
        UpdateAtomicPartDateIndexed(dh, atom);
      }
    }
  }

  const AtomUpdate update_;
  const int update_scope_;
  const bool roots_only_;
};

// T4 / T5: DFS down to documents; T4 counts 'I', T5 toggles the phrase.
class DocumentTraversal : public Operation {
 public:
  DocumentTraversal(std::string name, bool update, LockSet locks)
      : Operation(std::move(name), OpCategory::kLongTraversal, !update, locks),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    int64_t total = 0;
    ForEachBaseAssembly(dh.module()->design_root(), [&](BaseAssembly* base) {
      base->components().ForEach([&](CompositePart* part) {
        Document* doc = part->documentation();
        total += update_ ? doc->TogglePhrase() : doc->CountChar('I');
      });
    });
    return total;
  }

 private:
  const bool update_;
};

// Q6: complex assemblies that are ancestors of a base assembly whose build
// date is lower than that of one of its composite parts.
class QuerySix : public Operation {
 public:
  QuerySix()
      : Operation("Q6", OpCategory::kLongTraversal, /*read_only=*/true, kReadAssembliesParts) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    int64_t matched = 0;
    MatchSubtree(dh.module()->design_root(), matched);
    return matched;
  }

 private:
  static bool BaseMatches(BaseAssembly* base) {
    const Date base_date = base->build_date();
    bool found = false;
    base->components().ForEach([&](CompositePart* part) {
      if (part->build_date() > base_date) {
        found = true;
        return false;  // stop at the first newer part, per the spec
      }
      return true;
    });
    return found;
  }

  // Returns true when the subtree under `assembly` contains a matching base
  // assembly; counts (and read-visits) every matching complex assembly.
  static bool MatchSubtree(ComplexAssembly* assembly, int64_t& matched) {
    bool any = false;
    assembly->sub_assemblies().ForEach([&](Assembly* child) {
      if (child->is_base()) {
        any = BaseMatches(static_cast<BaseAssembly*>(child)) || any;
      } else {
        any = MatchSubtree(static_cast<ComplexAssembly*>(child), matched) || any;
      }
    });
    if (any) {
      assembly->ReadVisit();
      ++matched;
    }
    return any;
  }
};

// Q7: scan the whole atomic part id index.
class QuerySeven : public Operation {
 public:
  QuerySeven()
      : Operation("Q7", OpCategory::kLongTraversal, /*read_only=*/true, kReadAtomicIndex) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    int64_t visited = 0;
    dh.atomic_part_id_index().ForEach([&visited](const int64_t&, AtomicPart* const& atom) {
      atom->ReadVisit();
      ++visited;
      return true;
    });
    return visited;
  }
};

}  // namespace

void AppendLongTraversals(std::vector<std::unique_ptr<Operation>>& out) {
  out.push_back(std::make_unique<GraphTraversal>("T1", AtomUpdate::kNone, 0, false,
                                                 kReadStructureParts));
  out.push_back(
      std::make_unique<GraphTraversal>("T2a", AtomUpdate::kSwapXY, 1, false, kWriteAtomicParts));
  out.push_back(
      std::make_unique<GraphTraversal>("T2b", AtomUpdate::kSwapXY, 2, false, kWriteAtomicParts));
  out.push_back(
      std::make_unique<GraphTraversal>("T2c", AtomUpdate::kSwapXY, 3, false, kWriteAtomicParts));
  out.push_back(std::make_unique<GraphTraversal>("T3a", AtomUpdate::kNudgeDateIndexed, 1, false,
                                                 kWriteAtomicParts));
  out.push_back(std::make_unique<GraphTraversal>("T3b", AtomUpdate::kNudgeDateIndexed, 2, false,
                                                 kWriteAtomicParts));
  out.push_back(std::make_unique<GraphTraversal>("T3c", AtomUpdate::kNudgeDateIndexed, 3, false,
                                                 kWriteAtomicParts));
  out.push_back(std::make_unique<DocumentTraversal>("T4", /*update=*/false, kReadDocuments));
  out.push_back(std::make_unique<DocumentTraversal>("T5", /*update=*/true, kWriteDocuments));
  out.push_back(
      std::make_unique<GraphTraversal>("T6", AtomUpdate::kNone, 0, true, kReadStructureParts));
  out.push_back(std::make_unique<QuerySix>());
  out.push_back(std::make_unique<QuerySeven>());
}

}  // namespace sb7
