// Structure modifications SM1–SM8 (Appendix B.2.4).
//
// Under the medium-grained strategy these hold only the structure lock, in
// write mode — it excludes every other operation (all of which hold it in
// read mode), which is exactly the paper's design: "an additional read-write
// lock isolates structure modification operations", and "indexes, sets and
// bags do not have to be synchronized separately in this case".
//
// Preconditions (pool availability, only-child rules) are checked before any
// mutation, so a failing operation leaves no partial state even under the
// locking strategies, which have no rollback.

#include "src/core/builder.h"
#include "src/ops/operation.h"
#include "src/ops/traversal_helpers.h"

namespace sb7 {
namespace {

constexpr LockSet kStructureWrite{.read = 0, .write = LockBit(kLockStructure)};

class SmOperation : public Operation {
 public:
  explicit SmOperation(std::string name)
      : Operation(std::move(name), OpCategory::kStructureModification, /*read_only=*/false,
                  kStructureWrite) {}
};

// SM1: create an unlinked composite part in the design library.
class CreatePart : public SmOperation {
 public:
  CreatePart() : SmOperation("SM1") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    if (!CanCreateCompositePart(dh)) {
      throw OperationFailed{};
    }
    return CreateCompositePart(dh, rng)->id();
  }
};

// SM2: delete a random composite part with its document and graph.
class DeletePart : public SmOperation {
 public:
  DeletePart() : SmOperation("SM2") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    CompositePart* part =
        dh.composite_part_id_index().Lookup(RandomId(dh.composite_part_ids(), rng));
    if (part == nullptr) {
      throw OperationFailed{};
    }
    DeleteCompositePart(dh, part);
    return 1;
  }
};

// SM3: link a random base assembly to a random composite part.
class CreateLink : public SmOperation {
 public:
  CreateLink() : SmOperation("SM3") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    CompositePart* part =
        dh.composite_part_id_index().Lookup(RandomId(dh.composite_part_ids(), rng));
    if (base == nullptr || part == nullptr) {
      throw OperationFailed{};
    }
    base->components().Add(part);
    part->used_in().Add(base);
    return 1;
  }
};

// SM4: remove a random link of a random base assembly.
class DeleteLink : public SmOperation {
 public:
  DeleteLink() : SmOperation("SM4") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    if (base == nullptr) {
      throw OperationFailed{};
    }
    const int64_t n = base->components().Size();
    if (n == 0) {
      throw OperationFailed{};
    }
    CompositePart* part = base->components().Get(static_cast<int64_t>(rng.NextBounded(n)));
    base->components().RemoveOne(part);
    part->used_in().RemoveOne(base);
    return 1;
  }
};

// SM5: create a sibling of a random base assembly.
class CreateBase : public SmOperation {
 public:
  CreateBase() : SmOperation("SM5") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    if (base == nullptr || !CanCreateBaseAssembly(dh)) {
      throw OperationFailed{};
    }
    return CreateBaseAssembly(dh, base->super_assembly(), rng)->id();
  }
};

// SM6: delete a random base assembly, unless it is the only child.
class DeleteBase : public SmOperation {
 public:
  DeleteBase() : SmOperation("SM6") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    if (base == nullptr) {
      throw OperationFailed{};
    }
    if (base->super_assembly()->sub_assemblies().Size() <= 1) {
      throw OperationFailed{};
    }
    DeleteBaseAssembly(dh, base);
    return 1;
  }
};

// SM7: add a full assembly subtree under a random complex assembly.
class CreateSubtree : public SmOperation {
 public:
  CreateSubtree() : SmOperation("SM7") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    ComplexAssembly* assembly =
        dh.complex_assembly_id_index().Lookup(RandomId(dh.complex_assembly_ids(), rng));
    if (assembly == nullptr) {
      throw OperationFailed{};
    }
    const int root_level = assembly->level() - 1;  // subtree height k - 1
    if (root_level < 1 || !CanCreateSubtree(dh, root_level)) {
      throw OperationFailed{};
    }
    CreateAssemblySubtree(dh, assembly, root_level, rng);
    const auto [complexes, bases] = SubtreeNodeCounts(dh.params(), root_level);
    return complexes + bases;
  }
};

// SM8: delete the whole subtree of a random complex assembly.
class DeleteSubtree : public SmOperation {
 public:
  DeleteSubtree() : SmOperation("SM8") {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    ComplexAssembly* assembly =
        dh.complex_assembly_id_index().Lookup(RandomId(dh.complex_assembly_ids(), rng));
    if (assembly == nullptr) {
      throw OperationFailed{};
    }
    ComplexAssembly* parent = assembly->super_assembly();
    if (parent == nullptr || parent->sub_assemblies().Size() <= 1) {
      throw OperationFailed{};
    }
    DeleteAssemblySubtree(dh, assembly);
    return 1;
  }
};

}  // namespace

void AppendStructureModifications(std::vector<std::unique_ptr<Operation>>& out) {
  out.push_back(std::make_unique<CreatePart>());
  out.push_back(std::make_unique<DeletePart>());
  out.push_back(std::make_unique<CreateLink>());
  out.push_back(std::make_unique<DeleteLink>());
  out.push_back(std::make_unique<CreateBase>());
  out.push_back(std::make_unique<DeleteBase>());
  out.push_back(std::make_unique<CreateSubtree>());
  out.push_back(std::make_unique<DeleteSubtree>());
}

}  // namespace sb7
