// Operation model: the 45 STMBench7 operations (Appendix B.2).
//
// Every operation is pure benchmark logic over DataHolder — no concurrency
// control. Strategies wrap Run(): the coarse strategy brackets it with one
// read-write lock, the medium strategy acquires the operation's declared
// LockSet (Figure 5 of the paper), and the STM strategies run it as one flat
// transaction.
//
// Failure semantics (§3): Run() throws OperationFailed when the operation
// cannot proceed (missing random id, empty bag, exhausted pool). A failure is
// a committed outcome, distinct from STM-level aborts/retries, and is
// reported separately by the harness.

#ifndef STMBENCH7_SRC_OPS_OPERATION_H_
#define STMBENCH7_SRC_OPS_OPERATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/data_holder.h"

namespace sb7 {

struct OperationFailed {};

enum class OpCategory {
  kLongTraversal,
  kShortTraversal,
  kShortOperation,
  kStructureModification,
};

std::string_view OpCategoryName(OpCategory category);

// Locks of the medium-grained strategy (paper Figure 5): one per assembly
// level, one for all composite parts, all atomic parts, all documents, the
// manual, plus the structure-modification lock. The enum order is the global
// acquisition order (deadlock freedom by total order).
enum LockId : int {
  kLockStructure = 0,
  kLockLevel7,
  kLockLevel6,
  kLockLevel5,
  kLockLevel4,
  kLockLevel3,
  kLockLevel2,
  kLockLevel1,
  kLockCompositeParts,
  kLockAtomicParts,
  kLockDocuments,
  kLockManual,
  kLockCount,
};

constexpr uint16_t LockBit(LockId id) { return static_cast<uint16_t>(1u << id); }

// All assembly-level locks (complex levels 2..7 plus base level 1).
constexpr uint16_t kAllLevelBits = LockBit(kLockLevel7) | LockBit(kLockLevel6) |
                                   LockBit(kLockLevel5) | LockBit(kLockLevel4) |
                                   LockBit(kLockLevel3) | LockBit(kLockLevel2) |
                                   LockBit(kLockLevel1);
constexpr uint16_t kComplexLevelBits = kAllLevelBits & ~LockBit(kLockLevel1);

// Which locks an operation takes, and in which mode. A lock present in both
// masks is acquired in write mode.
struct LockSet {
  uint16_t read = 0;
  uint16_t write = 0;
};

class Operation {
 public:
  Operation(std::string name, OpCategory category, bool read_only, LockSet locks)
      : name_(std::move(name)), category_(category), read_only_(read_only), locks_(locks) {}
  virtual ~Operation() = default;
  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;

  // Executes the operation; returns its Appendix-B result value. Throws
  // OperationFailed on benchmark-level failure.
  virtual int64_t Run(DataHolder& dh, Rng& rng) const = 0;

  const std::string& name() const { return name_; }
  OpCategory category() const { return category_; }
  bool read_only() const { return read_only_; }
  const LockSet& locks() const { return locks_; }

 private:
  const std::string name_;
  const OpCategory category_;
  const bool read_only_;
  const LockSet locks_;
};

// Owns all 45 operations in specification order: T1..T6, Q6, Q7, ST1..ST10,
// OP1..OP15, SM1..SM8.
class OperationRegistry {
 public:
  OperationRegistry();

  const std::vector<std::unique_ptr<Operation>>& all() const { return operations_; }
  // nullptr if no operation has that name.
  const Operation* Find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<Operation>> operations_;
};

// --- factories, grouped by specification section ---
void AppendLongTraversals(std::vector<std::unique_ptr<Operation>>& out);
void AppendShortTraversals(std::vector<std::unique_ptr<Operation>>& out);
void AppendShortOperations(std::vector<std::unique_ptr<Operation>>& out);
void AppendStructureModifications(std::vector<std::unique_ptr<Operation>>& out);

}  // namespace sb7

#endif  // STMBENCH7_SRC_OPS_OPERATION_H_
