// Short traversals ST1–ST10 (Appendix B.2.2): random paths through the
// structure, some via indexes, some updating what they visit.

#include "src/ops/operation.h"
#include "src/ops/traversal_helpers.h"

namespace sb7 {
namespace {

constexpr LockSet kPathPartsRead{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts) |
            LockBit(kLockAtomicParts),
    .write = 0};
constexpr LockSet kPathPartsWrite{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts),
    .write = LockBit(kLockAtomicParts)};
constexpr LockSet kPathDocRead{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts) |
            LockBit(kLockDocuments),
    .write = 0};
constexpr LockSet kPathDocWrite{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts),
    .write = LockBit(kLockDocuments)};
constexpr LockSet kBottomUpRead{
    .read = LockBit(kLockStructure) | kAllLevelBits | LockBit(kLockCompositeParts) |
            LockBit(kLockAtomicParts),
    .write = 0};
constexpr LockSet kBottomUpWrite{
    .read = LockBit(kLockStructure) | LockBit(kLockLevel1) | LockBit(kLockCompositeParts) |
            LockBit(kLockAtomicParts),
    .write = kComplexLevelBits};
constexpr LockSet kTitleScanRead{
    .read = LockBit(kLockStructure) | LockBit(kLockLevel1) | LockBit(kLockCompositeParts) |
            LockBit(kLockDocuments),
    .write = 0};
constexpr LockSet kBaseScanRead{
    .read = LockBit(kLockStructure) | LockBit(kLockLevel1) | LockBit(kLockCompositeParts),
    .write = 0};

// Walks a uniformly random root-to-base-assembly path; throws
// OperationFailed when the reached base assembly has no composite parts
// (possible once SM5/SM7 created unlinked assemblies).
CompositePart* RandomPathToCompositePart(DataHolder& dh, Rng& rng) {
  Assembly* node = dh.module()->design_root();
  while (!node->is_base()) {
    auto* complex = static_cast<ComplexAssembly*>(node);
    const int64_t n = complex->sub_assemblies().Size();
    SB7_CHECK(n > 0);  // SM6/SM8 never remove the last child
    node = complex->sub_assemblies().Get(static_cast<int64_t>(rng.NextBounded(n)));
  }
  auto* base = static_cast<BaseAssembly*>(node);
  const int64_t parts = base->components().Size();
  if (parts == 0) {
    throw OperationFailed{};
  }
  return base->components().Get(static_cast<int64_t>(rng.NextBounded(parts)));
}

// ST1 / ST6: random path to one atomic part; ST6 also swaps its x/y.
class RandomPathToAtomicPart : public Operation {
 public:
  RandomPathToAtomicPart(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortTraversal, !update,
                  update ? kPathPartsWrite : kPathPartsRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    CompositePart* part = RandomPathToCompositePart(dh, rng);
    const auto& atoms = part->parts();
    AtomicPart* atom = atoms[rng.NextBounded(static_cast<uint64_t>(atoms.size()))];
    const int64_t sum = atom->x() + atom->y();
    if (update_) {
      atom->SwapXY();
    }
    return sum;
  }

 private:
  const bool update_;
};

// ST2 / ST7: random path to one document; ST7 toggles the phrase.
class RandomPathToDocument : public Operation {
 public:
  RandomPathToDocument(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortTraversal, !update,
                  update ? kPathDocWrite : kPathDocRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    Document* doc = RandomPathToCompositePart(dh, rng)->documentation();
    return update_ ? doc->TogglePhrase() : doc->CountChar('I');
  }

 private:
  const bool update_;
};

// ST3 / ST8 (T7 in OO7): bottom-up from a random atomic part to the root,
// visiting each complex assembly at most once; ST8 updates them.
class BottomUpTraversal : public Operation {
 public:
  BottomUpTraversal(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortTraversal, !update,
                  update ? kBottomUpWrite : kBottomUpRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    AtomicPart* atom = dh.atomic_part_id_index().Lookup(RandomId(dh.atomic_part_ids(), rng));
    if (atom == nullptr) {
      throw OperationFailed{};
    }
    CompositePart* part = atom->part_of();
    if (part->used_in().Size() == 0) {
      throw OperationFailed{};
    }
    std::unordered_set<ComplexAssembly*> seen;
    part->used_in().ForEach([&](BaseAssembly* base) {
      for (ComplexAssembly* up = base->super_assembly(); up != nullptr;
           up = up->super_assembly()) {
        if (!seen.insert(up).second) {
          break;  // everything above has been visited already
        }
        if (update_) {
          up->NudgeBuildDate();
        } else {
          up->ReadVisit();
        }
      }
    });
    return static_cast<int64_t>(seen.size());
  }

 private:
  const bool update_;
};

// ST4 (Q4 in OO7): 100 random document titles; read-visit the base
// assemblies above every document found.
class TitleLookupTraversal : public Operation {
 public:
  TitleLookupTraversal()
      : Operation("ST4", OpCategory::kShortTraversal, /*read_only=*/true, kTitleScanRead) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    int64_t visited = 0;
    for (int i = 0; i < 100; ++i) {
      const int64_t part_id = RandomId(dh.composite_part_ids(), rng);
      Document* doc = dh.document_title_index().Lookup(DataHolder::DocumentTitleFor(part_id));
      if (doc == nullptr) {
        continue;
      }
      doc->part()->used_in().ForEach([&visited](BaseAssembly* base) {
        base->ReadVisit();
        ++visited;
      });
    }
    return visited;
  }
};

// ST5 (Q5 in OO7): scan the base assembly index for assemblies older than
// one of their composite parts.
class BaseAssemblyScan : public Operation {
 public:
  BaseAssemblyScan()
      : Operation("ST5", OpCategory::kShortTraversal, /*read_only=*/true, kBaseScanRead) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    int64_t matched = 0;
    dh.base_assembly_id_index().ForEach([&matched](const int64_t&, BaseAssembly* const& base) {
      const Date base_date = base->build_date();
      bool found = false;
      base->components().ForEach([&](CompositePart* part) {
        if (part->build_date() > base_date) {
          found = true;
          return false;
        }
        return true;
      });
      if (found) {
        base->ReadVisit();
        ++matched;
      }
      return true;
    });
    return matched;
  }
};

// ST9 / ST10: random path to a composite part, then a full DFS over its
// atomic part graph; ST10 updates every part visited.
class RandomPathGraphTraversal : public Operation {
 public:
  RandomPathGraphTraversal(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortTraversal, !update,
                  update ? kPathPartsWrite : kPathPartsRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    CompositePart* part = RandomPathToCompositePart(dh, rng);
    return TraverseAtomicGraph(part->root_part(), [this](AtomicPart* atom) {
      if (update_) {
        atom->SwapXY();
      } else {
        atom->ReadVisit();
      }
    });
  }

 private:
  const bool update_;
};

}  // namespace

void AppendShortTraversals(std::vector<std::unique_ptr<Operation>>& out) {
  out.push_back(std::make_unique<RandomPathToAtomicPart>("ST1", /*update=*/false));
  out.push_back(std::make_unique<RandomPathToDocument>("ST2", /*update=*/false));
  out.push_back(std::make_unique<BottomUpTraversal>("ST3", /*update=*/false));
  out.push_back(std::make_unique<TitleLookupTraversal>());
  out.push_back(std::make_unique<BaseAssemblyScan>());
  out.push_back(std::make_unique<RandomPathToAtomicPart>("ST6", /*update=*/true));
  out.push_back(std::make_unique<RandomPathToDocument>("ST7", /*update=*/true));
  out.push_back(std::make_unique<BottomUpTraversal>("ST8", /*update=*/true));
  out.push_back(std::make_unique<RandomPathGraphTraversal>("ST9", /*update=*/false));
  out.push_back(std::make_unique<RandomPathGraphTraversal>("ST10", /*update=*/true));
}

}  // namespace sb7
