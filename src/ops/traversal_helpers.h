// Shared traversal building blocks for the operation implementations.

#ifndef STMBENCH7_SRC_OPS_TRAVERSAL_HELPERS_H_
#define STMBENCH7_SRC_OPS_TRAVERSAL_HELPERS_H_

#include <unordered_set>

#include "src/common/hotspot.h"
#include "src/core/data_holder.h"
#include "src/core/objects.h"

namespace sb7 {

// Depth-first walk over the assembly tree, applying `fn` to every base
// assembly. Children are read transactionally through the Tx collections.
template <typename Fn>
void ForEachBaseAssembly(ComplexAssembly* root, Fn&& fn) {
  root->sub_assemblies().ForEach([&fn](Assembly* child) {
    if (child->is_base()) {
      fn(static_cast<BaseAssembly*>(child));
    } else {
      ForEachBaseAssembly(static_cast<ComplexAssembly*>(child), fn);
    }
  });
}

// Depth-first walk over an atomic-part graph via outgoing connections,
// starting at `root`; `fn` is applied to each part exactly once. Returns the
// number of parts visited. The graph shape is immutable (only attributes are
// mutable), so the visited set is plain local state.
template <typename Fn>
int64_t TraverseAtomicGraph(AtomicPart* root, Fn&& fn) {
  std::unordered_set<AtomicPart*> seen;
  std::vector<AtomicPart*> stack{root};
  seen.insert(root);
  int64_t visited = 0;
  while (!stack.empty()) {
    AtomicPart* part = stack.back();
    stack.pop_back();
    fn(part);
    ++visited;
    for (Connection* conn : part->outgoing()) {
      if (seen.insert(conn->to()).second) {
        stack.push_back(conn->to());
      }
    }
  }
  return visited;
}

// Updates an atomic part's *indexed* build date (T3a/b/c, OP15): the date
// index must track the change, mirroring how the original benchmark updates
// the index inside the operation.
inline void UpdateAtomicPartDateIndexed(DataHolder& dh, AtomicPart* part) {
  dh.atomic_part_date_index().Remove(MakeDateKey(part->build_date(), part->id()));
  part->NudgeBuildDate();
  dh.atomic_part_date_index().Insert(MakeDateKey(part->build_date(), part->id()), part);
}

// Random id in [1, pool.capacity()] — the benchmark's designed failure
// source: the id may currently be unassigned. Uniform by default; under an
// active hotspot policy (scenario engine) the draw is Zipfian so traversal
// entry points and index keys concentrate on the low-id hot set.
inline int64_t RandomId(const IdPool& pool, Rng& rng) {
  return SampleHotspotId(pool.capacity(), rng);
}

}  // namespace sb7

#endif  // STMBENCH7_SRC_OPS_TRAVERSAL_HELPERS_H_
