#include "src/ops/operation.h"

#include "src/common/diag.h"

namespace sb7 {

std::string_view OpCategoryName(OpCategory category) {
  switch (category) {
    case OpCategory::kLongTraversal:
      return "long traversals";
    case OpCategory::kShortTraversal:
      return "short traversals";
    case OpCategory::kShortOperation:
      return "short operations";
    case OpCategory::kStructureModification:
      return "structure modifications";
  }
  return "unknown";
}

OperationRegistry::OperationRegistry() {
  AppendLongTraversals(operations_);
  AppendShortTraversals(operations_);
  AppendShortOperations(operations_);
  AppendStructureModifications(operations_);
  SB7_CHECK(operations_.size() == 45);
}

const Operation* OperationRegistry::Find(std::string_view name) const {
  for (const auto& op : operations_) {
    if (op->name() == name) {
      return op.get();
    }
  }
  return nullptr;
}

}  // namespace sb7
