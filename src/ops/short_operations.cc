// Short operations OP1–OP15 (Appendix B.2.3): index probes and local
// neighbourhood visits, read-only and updating variants.

#include "src/ops/operation.h"
#include "src/ops/traversal_helpers.h"

namespace sb7 {
namespace {

constexpr LockSet kAtomicRead{.read = LockBit(kLockStructure) | LockBit(kLockAtomicParts),
                              .write = 0};
constexpr LockSet kAtomicWrite{.read = LockBit(kLockStructure),
                               .write = LockBit(kLockAtomicParts)};
constexpr LockSet kManualRead{.read = LockBit(kLockStructure) | LockBit(kLockManual),
                              .write = 0};
constexpr LockSet kManualWrite{.read = LockBit(kLockStructure),
                               .write = LockBit(kLockManual)};
constexpr LockSet kComplexRead{.read = LockBit(kLockStructure) | kComplexLevelBits, .write = 0};
constexpr LockSet kComplexWrite{.read = LockBit(kLockStructure), .write = kComplexLevelBits};
constexpr LockSet kBaseRead{.read = LockBit(kLockStructure) | LockBit(kLockLevel1) |
                                    kComplexLevelBits,
                            .write = 0};
constexpr LockSet kBaseWrite{.read = LockBit(kLockStructure) | kComplexLevelBits,
                             .write = LockBit(kLockLevel1)};
constexpr LockSet kBaseComponentsRead{
    .read = LockBit(kLockStructure) | LockBit(kLockLevel1) | LockBit(kLockCompositeParts),
    .write = 0};
constexpr LockSet kBaseComponentsWrite{
    .read = LockBit(kLockStructure) | LockBit(kLockLevel1),
    .write = LockBit(kLockCompositeParts)};

// What an operation does to each atomic part it finds.
enum class AtomAction { kRead, kSwapXY, kNudgeDateIndexed };

void ApplyAtomAction(DataHolder& dh, AtomicPart* atom, AtomAction action) {
  switch (action) {
    case AtomAction::kRead:
      atom->ReadVisit();
      break;
    case AtomAction::kSwapXY:
      atom->SwapXY();
      break;
    case AtomAction::kNudgeDateIndexed:
      UpdateAtomicPartDateIndexed(dh, atom);
      break;
  }
}

// OP1 / OP9 / OP15 (Q1 in OO7): ten random atomic part id lookups.
class TenRandomParts : public Operation {
 public:
  TenRandomParts(std::string name, AtomAction action)
      : Operation(std::move(name), OpCategory::kShortOperation, action == AtomAction::kRead,
                  action == AtomAction::kRead ? kAtomicRead : kAtomicWrite),
        action_(action) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    int64_t processed = 0;
    for (int i = 0; i < 10; ++i) {
      AtomicPart* atom = dh.atomic_part_id_index().Lookup(RandomId(dh.atomic_part_ids(), rng));
      if (atom == nullptr) {
        continue;  // per the spec this lowers the count, it is not a failure
      }
      ApplyAtomAction(dh, atom, action_);
      ++processed;
    }
    return processed;
  }

 private:
  const AtomAction action_;
};

// OP2 / OP3 / OP10 (Q2/Q3 in OO7): build-date range scans.
class DateRangeScan : public Operation {
 public:
  DateRangeScan(std::string name, bool young_only, AtomAction action)
      : Operation(std::move(name), OpCategory::kShortOperation, action == AtomAction::kRead,
                  action == AtomAction::kRead ? kAtomicRead : kAtomicWrite),
        young_only_(young_only),
        action_(action) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    const Parameters& params = dh.params();
    const int64_t lo = young_only_ ? params.young_date_lo : params.min_build_date;
    const int64_t hi = params.max_build_date;
    // Collect first: the OP10 update path mutates the index being scanned.
    std::vector<AtomicPart*> found;
    dh.atomic_part_date_index().Range(
        DateKeyLowerBound(lo), DateKeyUpperBound(hi),
        [&found](const int64_t&, AtomicPart* const& atom) {
          found.push_back(atom);
          return true;
        });
    for (AtomicPart* atom : found) {
      ApplyAtomAction(dh, atom, action_);
    }
    return static_cast<int64_t>(found.size());
  }

 private:
  const bool young_only_;
  const AtomAction action_;
};

// OP4 / OP5 / OP11 (T8/T9 in OO7 plus the manual update): manual operations.
class ManualOperation : public Operation {
 public:
  enum class Kind { kCountI, kFirstLast, kToggleCase };

  ManualOperation(std::string name, Kind kind)
      : Operation(std::move(name), OpCategory::kShortOperation, kind != Kind::kToggleCase,
                  kind == Kind::kToggleCase ? kManualWrite : kManualRead),
        kind_(kind) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    (void)rng;
    Manual* manual = dh.manual();
    switch (kind_) {
      case Kind::kCountI:
        return manual->CountChar('I');
      case Kind::kFirstLast:
        return manual->FirstEqualsLast();
      case Kind::kToggleCase:
        return manual->ToggleCase();
    }
    return 0;
  }

 private:
  const Kind kind_;
};

// OP6 / OP12: random complex assembly, visit/update all its siblings.
class ComplexSiblings : public Operation {
 public:
  ComplexSiblings(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortOperation, !update,
                  update ? kComplexWrite : kComplexRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    ComplexAssembly* assembly =
        dh.complex_assembly_id_index().Lookup(RandomId(dh.complex_assembly_ids(), rng));
    if (assembly == nullptr) {
      throw OperationFailed{};
    }
    ComplexAssembly* parent = assembly->super_assembly();
    if (parent == nullptr) {
      // The root has no siblings; process just the root itself.
      Visit(assembly);
      return 1;
    }
    int64_t processed = 0;
    parent->sub_assemblies().ForEach([&](Assembly* sibling) {
      Visit(sibling);
      ++processed;
    });
    return processed;
  }

 private:
  void Visit(Assembly* assembly) const {
    if (update_) {
      assembly->NudgeBuildDate();
    } else {
      assembly->ReadVisit();
    }
  }
  const bool update_;
};

// OP7 / OP13: random base assembly, visit/update all its siblings.
class BaseSiblings : public Operation {
 public:
  BaseSiblings(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortOperation, !update,
                  update ? kBaseWrite : kBaseRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    if (base == nullptr) {
      throw OperationFailed{};
    }
    int64_t processed = 0;
    base->super_assembly()->sub_assemblies().ForEach([&](Assembly* sibling) {
      if (update_) {
        sibling->NudgeBuildDate();
      } else {
        sibling->ReadVisit();
      }
      ++processed;
    });
    return processed;
  }

 private:
  const bool update_;
};

// OP8 / OP14: random base assembly, visit/update its composite parts.
class BaseComponents : public Operation {
 public:
  BaseComponents(std::string name, bool update)
      : Operation(std::move(name), OpCategory::kShortOperation, !update,
                  update ? kBaseComponentsWrite : kBaseComponentsRead),
        update_(update) {}

  int64_t Run(DataHolder& dh, Rng& rng) const override {
    BaseAssembly* base =
        dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
    if (base == nullptr) {
      throw OperationFailed{};
    }
    int64_t processed = 0;
    base->components().ForEach([&](CompositePart* part) {
      if (update_) {
        part->NudgeBuildDate();
      } else {
        part->ReadVisit();
      }
      ++processed;
    });
    return processed;
  }

 private:
  const bool update_;
};

}  // namespace

void AppendShortOperations(std::vector<std::unique_ptr<Operation>>& out) {
  out.push_back(std::make_unique<TenRandomParts>("OP1", AtomAction::kRead));
  out.push_back(std::make_unique<DateRangeScan>("OP2", /*young_only=*/true, AtomAction::kRead));
  out.push_back(std::make_unique<DateRangeScan>("OP3", /*young_only=*/false, AtomAction::kRead));
  out.push_back(std::make_unique<ManualOperation>("OP4", ManualOperation::Kind::kCountI));
  out.push_back(std::make_unique<ManualOperation>("OP5", ManualOperation::Kind::kFirstLast));
  out.push_back(std::make_unique<ComplexSiblings>("OP6", /*update=*/false));
  out.push_back(std::make_unique<BaseSiblings>("OP7", /*update=*/false));
  out.push_back(std::make_unique<BaseComponents>("OP8", /*update=*/false));
  out.push_back(std::make_unique<TenRandomParts>("OP9", AtomAction::kSwapXY));
  out.push_back(std::make_unique<DateRangeScan>("OP10", /*young_only=*/true, AtomAction::kSwapXY));
  out.push_back(std::make_unique<ManualOperation>("OP11", ManualOperation::Kind::kToggleCase));
  out.push_back(std::make_unique<ComplexSiblings>("OP12", /*update=*/true));
  out.push_back(std::make_unique<BaseSiblings>("OP13", /*update=*/true));
  out.push_back(std::make_unique<BaseComponents>("OP14", /*update=*/true));
  out.push_back(std::make_unique<TenRandomParts>("OP15", AtomAction::kNudgeDateIndexed));
}

}  // namespace sb7
