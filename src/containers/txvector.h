// Transactional dynamic array, set and bag.
//
// TxVector is the building block for every small collection in the benchmark
// structure (assembly child lists, base-assembly/composite-part bags, the
// per-composite-part set of atomic parts). Storage lives in chunks; a chunk
// is one TmUnit, so under the object-granular STM an element update clones
// the whole chunk — matching how a Java array is a single transactional
// object under ASTM. Under the word STMs, element accesses are independent
// word accesses; under the lock strategies they compile down to plain
// atomics guarded externally.
//
// TxSet and TxBag are thin semantic wrappers: benchmark collections are small
// (3..200 elements), so linear membership scans match the asymptotics of the
// original benchmark's usage.

#ifndef STMBENCH7_SRC_CONTAINERS_TXVECTOR_H_
#define STMBENCH7_SRC_CONTAINERS_TXVECTOR_H_

#include <deque>

#include "src/common/diag.h"
#include "src/ebr/ebr.h"
#include "src/stm/field.h"

namespace sb7 {

template <typename T>
class TxVector : public TmObject {
 public:
  explicit TxVector(int64_t initial_capacity = 4)
      : chunk_(unit(), MakeChunk(initial_capacity < 1 ? 1 : initial_capacity)),
        size_(unit(), 0) {
    unit().set_topology(true);
  }

  ~TxVector() override {
    // raw-ok: destruction implies exclusivity; retired chunks are owned by EBR.
    delete internal::DecodeWord<Chunk*>(chunk_.LoadRaw());
  }

  int64_t Size() const { return size_.Get(); }
  bool Empty() const { return Size() == 0; }

  T Get(int64_t index) const {
    // Bound against the logical size, not the chunk capacity: a slot in
    // [size, capacity) holds stale data from a removed or cleared element
    // (the "printContents" bug class — an iteration bounded by capacity
    // reads elements that no longer exist).
    SB7_DCHECK(index >= 0 && index < Size());
    Chunk* chunk = chunk_.Get();
    SB7_DCHECK(index < static_cast<int64_t>(chunk->slots.size()));
    return chunk->slots[index].Get();
  }

  void Set(int64_t index, const T& value) {
    SB7_DCHECK(index >= 0 && index < Size());
    chunk_.Get()->slots[index].Set(value);
  }

  void PushBack(const T& value) {
    const int64_t size = size_.Get();
    Chunk* chunk = chunk_.Get();
    if (size == static_cast<int64_t>(chunk->slots.size())) {
      chunk = Grow(chunk, size);
    }
    chunk->slots[size].Set(value);
    size_.Set(size + 1);
  }

  // Removes by swapping the last element in; order is not preserved, which
  // matches the bag/set semantics of all benchmark collections. The vacated
  // last slot keeps its stale value until overwritten by a later PushBack —
  // accessors must bound by Size(), never by chunk capacity.
  void RemoveAt(int64_t index) {
    const int64_t size = size_.Get();
    SB7_DCHECK(index >= 0 && index < size);
    if (index != size - 1) {
      Set(index, Get(size - 1));
    }
    size_.Set(size - 1);
  }

  // Removes the first occurrence of `value`; returns false if absent.
  bool RemoveFirst(const T& value) {
    const int64_t size = size_.Get();
    for (int64_t i = 0; i < size; ++i) {
      if (Get(i) == value) {
        RemoveAt(i);
        return true;
      }
    }
    return false;
  }

  bool Contains(const T& value) const {
    const int64_t size = size_.Get();
    for (int64_t i = 0; i < size; ++i) {
      if (Get(i) == value) {
        return true;
      }
    }
    return false;
  }

  int64_t Count(const T& value) const {
    int64_t n = 0;
    const int64_t size = size_.Get();
    for (int64_t i = 0; i < size; ++i) {
      if (Get(i) == value) {
        ++n;
      }
    }
    return n;
  }

  // Stale values stay behind in the slots (see RemoveAt).
  void Clear() { size_.Set(0); }

  // Applies fn(element) to each element; fn returning false stops early.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const int64_t size = size_.Get();
    for (int64_t i = 0; i < size; ++i) {
      if constexpr (std::is_void_v<decltype(fn(Get(i)))>) {
        fn(Get(i));
      } else {
        if (!fn(Get(i))) {
          return;
        }
      }
    }
  }

  // Lock-coverage wiring for the fine-grained strategy: accesses to this
  // vector (and its chunks) count against `cover`'s lock.
  void SetCover(TmUnit& cover) {
    unit().set_cover(&cover);
    // Chunks chain through this vector's unit, so existing and future chunks
    // are covered transitively.
  }

 private:
  struct Chunk : TmObject {
    Chunk(TmUnit& owner_unit, int64_t capacity) {
      unit().set_cover(&owner_unit);
      unit().set_topology(true);
      for (int64_t i = 0; i < capacity; ++i) {
        slots.emplace_back(unit(), T{});
      }
    }
    // emplace_back into a deque never relocates existing TxFields.
    std::deque<TxField<T>> slots;
  };

  Chunk* MakeChunk(int64_t capacity) { return new Chunk(unit(), capacity); }

  Chunk* Grow(Chunk* old_chunk, int64_t size) {
    auto* fresh = new Chunk(unit(), 0);
    // Seed the new chunk with transactionally read values; the chunk itself
    // is thread-private until chunk_ is written below.
    for (int64_t i = 0; i < size; ++i) {
      fresh->slots.emplace_back(fresh->unit(), old_chunk->slots[i].Get());
    }
    const int64_t new_capacity = static_cast<int64_t>(old_chunk->slots.size()) * 2;
    for (int64_t i = size; i < new_capacity; ++i) {
      fresh->slots.emplace_back(fresh->unit(), T{});
    }
    chunk_.Set(fresh);
    if (Transaction* tx = CurrentTx()) {
      tx->OnCommit([old_chunk] { EbrDomain::Global().RetireObject(old_chunk); });
      tx->OnAbort([fresh] { delete fresh; });
    } else {
      EbrDomain::Global().RetireObject(old_chunk);
    }
    return fresh;
  }

  TxField<Chunk*> chunk_;
  TxField<int64_t> size_;
};

// Set with linear membership (no duplicates).
template <typename T>
class TxSet {
 public:
  explicit TxSet(int64_t initial_capacity = 4) : items_(initial_capacity) {}

  // Returns false if the value was already present.
  bool Add(const T& value) {
    if (items_.Contains(value)) {
      return false;
    }
    items_.PushBack(value);
    return true;
  }

  bool Remove(const T& value) { return items_.RemoveFirst(value); }
  bool Contains(const T& value) const { return items_.Contains(value); }
  int64_t Size() const { return items_.Size(); }
  T Get(int64_t index) const { return items_.Get(index); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    items_.ForEach(std::forward<Fn>(fn));
  }

  void SetCover(TmUnit& cover) { items_.SetCover(cover); }

 private:
  TxVector<T> items_;
};

// Bag: duplicates allowed; models the many-to-many links between base
// assemblies and composite parts.
template <typename T>
class TxBag {
 public:
  explicit TxBag(int64_t initial_capacity = 4) : items_(initial_capacity) {}

  void Add(const T& value) { items_.PushBack(value); }
  bool RemoveOne(const T& value) { return items_.RemoveFirst(value); }
  bool Contains(const T& value) const { return items_.Contains(value); }
  int64_t Count(const T& value) const { return items_.Count(value); }
  int64_t Size() const { return items_.Size(); }
  T Get(int64_t index) const { return items_.Get(index); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    items_.ForEach(std::forward<Fn>(fn));
  }

  void SetCover(TmUnit& cover) { items_.SetCover(cover); }

 private:
  TxVector<T> items_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CONTAINERS_TXVECTOR_H_
