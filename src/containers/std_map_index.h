// std::map-backed index for the locking strategies.
//
// No internal synchronization: callers rely on the coarse- or medium-grained
// locks (under which index access is always covered by the appropriate lock,
// see strategy/). Not safe under any STM strategy — the harness never wires
// this implementation into an STM run.

#ifndef STMBENCH7_SRC_CONTAINERS_STD_MAP_INDEX_H_
#define STMBENCH7_SRC_CONTAINERS_STD_MAP_INDEX_H_

#include <map>

#include "src/containers/index.h"

namespace sb7 {

template <typename K, typename V>
class StdMapIndex : public Index<K, V> {
 public:
  V Lookup(const K& key) const override {
    auto it = map_.find(key);
    return it == map_.end() ? V{} : it->second;
  }

  bool Insert(const K& key, V value) override {
    auto [it, inserted] = map_.insert_or_assign(key, std::move(value));
    (void)it;
    return inserted;
  }

  bool Remove(const K& key) override { return map_.erase(key) > 0; }

  void Range(const K& lo, const K& hi,
             const std::function<bool(const K&, const V&)>& fn) const override {
    for (auto it = map_.lower_bound(lo); it != map_.end() && !(hi < it->first); ++it) {
      if (!fn(it->first, it->second)) {
        return;
      }
    }
  }

  void ForEach(const std::function<bool(const K&, const V&)>& fn) const override {
    for (const auto& [key, value] : map_) {
      if (!fn(key, value)) {
        return;
      }
    }
  }

  int64_t Size() const override { return static_cast<int64_t>(map_.size()); }

 private:
  std::map<K, V> map_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CONTAINERS_STD_MAP_INDEX_H_
