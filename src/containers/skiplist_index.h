// Node-granular transactional skip list index.
//
// This is the "scalable" index refactoring suggested in §5 of the paper:
// every node is its own transactional object, so independent updates touch
// disjoint transactional locations and can commit in parallel. Atomicity of
// multi-link updates comes from the enclosing transaction (or the enclosing
// lock in the locking strategies), so the algorithm itself is the plain
// sequential skip list — the concurrency control is entirely injected, in
// the spirit of the benchmark's core-code rule.
//
// Node heights are derived deterministically from the key hash (p = 1/4),
// keeping structure shape independent of insertion interleaving, which the
// cross-backend equivalence tests rely on.
//
// Deliberately avoided: a centralized size field (it would serialize every
// writer on one word). Size() walks the bottom level and is O(n); it is used
// by tests and reports only, never by benchmark operations.

#ifndef STMBENCH7_SRC_CONTAINERS_SKIPLIST_INDEX_H_
#define STMBENCH7_SRC_CONTAINERS_SKIPLIST_INDEX_H_

#include <deque>
#include <functional>

#include "src/common/rng.h"
#include "src/containers/index.h"
#include "src/ebr/ebr.h"
#include "src/stm/field.h"

namespace sb7 {

template <typename K, typename V>
class SkipListIndex : public Index<K, V> {
 public:
  SkipListIndex() : head_(new Node(K{}, V{}, kMaxHeight)) {}

  ~SkipListIndex() override {
    Node* node = head_;
    while (node != nullptr) {
      // raw-ok: destructor runs after the last transaction.
      Node* next = internal::DecodeWord<Node*>(node->next[0].LoadRaw());
      delete node;
      node = next;
    }
  }

  V Lookup(const K& key) const override {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) {
      return node->value.Get();
    }
    return V{};
  }

  bool Insert(const K& key, V value) override {
    Node* preds[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, preds);
    if (node != nullptr && node->key == key) {
      node->value.Set(value);
      return false;
    }
    const int height = HeightFor(key);
    auto* fresh = new Node(key, value, height);
    for (int level = 0; level < height; ++level) {
      // raw-ok: the new node is thread-private until the predecessor links
      // below are written, so its own links are seeded directly.
      fresh->next[level].StoreRaw(
          internal::EncodeWord<Node*>(preds[level]->next[level].Get()));
    }
    for (int level = 0; level < height; ++level) {
      preds[level]->next[level].Set(fresh);
    }
    if (Transaction* tx = CurrentTx()) {
      tx->OnAbort([fresh] { delete fresh; });
    }
    return true;
  }

  bool Remove(const K& key) override {
    Node* preds[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, preds);
    if (node == nullptr || !(node->key == key)) {
      return false;
    }
    const int height = node->height();
    for (int level = 0; level < height; ++level) {
      // The predecessor at this level might not point at `node` (taller
      // predecessors can skip it only if heights disagree — they cannot for
      // the matched key, but guard for robustness).
      if (preds[level]->next[level].Get() == node) {
        preds[level]->next[level].Set(node->next[level].Get());
      }
    }
    if (Transaction* tx = CurrentTx()) {
      tx->OnCommit([node] { EbrDomain::Global().RetireObject(node); });
    } else {
      EbrDomain::Global().RetireObject(node);
    }
    return true;
  }

  void Range(const K& lo, const K& hi,
             const std::function<bool(const K&, const V&)>& fn) const override {
    Node* node = FindGreaterOrEqual(lo, nullptr);
    while (node != nullptr && !(hi < node->key)) {
      if (!fn(node->key, node->value.Get())) {
        return;
      }
      node = node->next[0].Get();
    }
  }

  void ForEach(const std::function<bool(const K&, const V&)>& fn) const override {
    Node* node = head_->next[0].Get();
    while (node != nullptr) {
      if (!fn(node->key, node->value.Get())) {
        return;
      }
      node = node->next[0].Get();
    }
  }

  int64_t Size() const override {
    int64_t n = 0;
    Node* node = head_->next[0].Get();
    while (node != nullptr) {
      ++n;
      node = node->next[0].Get();
    }
    return n;
  }

 private:
  static constexpr int kMaxHeight = 16;

  struct Node : TmObject {
    Node(const K& node_key, const V& node_value, int node_height)
        : key(node_key), value(unit(), node_value) {
      for (int i = 0; i < node_height; ++i) {
        next.emplace_back(unit(), nullptr);
      }
    }
    const K key;  // immutable: safe to compare without transactional reads
    TxField<V> value;
    std::deque<TxField<Node*>> next;
    int height() const { return static_cast<int>(next.size()); }
  };

  static int HeightFor(const K& key) {
    uint64_t state = std::hash<K>{}(key) ^ 0xa5a5a5a55a5a5a5aull;
    uint64_t bits = SplitMix64Next(state);
    int height = 1;
    while (height < kMaxHeight && (bits & 3) == 0) {
      ++height;
      bits >>= 2;
    }
    return height;
  }

  // Returns the first node with node->key >= key (nullptr if none) and, when
  // `preds` is non-null, the predecessor at every level.
  Node* FindGreaterOrEqual(const K& key, Node** preds) const {
    Node* pred = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* next = pred->next[level].Get();
      while (next != nullptr && next->key < key) {
        pred = next;
        next = pred->next[level].Get();
      }
      if (preds != nullptr) {
        preds[level] = pred;
      }
      if (level == 0) {
        return next;
      }
    }
    return nullptr;  // unreachable
  }

  Node* head_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CONTAINERS_SKIPLIST_INDEX_H_
