// Ordered index interface (Table 1 of the paper lists the six instances).
//
// Three implementations with different concurrency/granularity tradeoffs:
//   * StdMapIndex      — plain std::map; the java.util analogue used by the
//                        locking strategies (no internal synchronization).
//   * SnapshotIndex    — one transactional pointer to an immutable map; every
//                        update clones the whole map. This models the naive
//                        STM port where "each index is represented by a
//                        single object" (§5).
//   * SkipListIndex    — node-granular transactional skip list; the
//                        "implement the indexes manually, with each node
//                        synchronized separately" refactoring §5 proposes.
//                        (A skip list stands in for the suggested B-tree; the
//                        node-granularity property is what matters.)

#ifndef STMBENCH7_SRC_CONTAINERS_INDEX_H_
#define STMBENCH7_SRC_CONTAINERS_INDEX_H_

#include <cstdint>
#include <functional>

namespace sb7 {

template <typename K, typename V>
class Index {
 public:
  virtual ~Index() = default;

  // Returns the mapped value or V{} when absent.
  virtual V Lookup(const K& key) const = 0;

  // Inserts or replaces; returns true when the key was new.
  virtual bool Insert(const K& key, V value) = 0;

  // Returns true when the key was present.
  virtual bool Remove(const K& key) = 0;

  // In-order visit of all entries with lo <= key <= hi; fn returning false
  // stops the scan.
  virtual void Range(const K& lo, const K& hi,
                     const std::function<bool(const K&, const V&)>& fn) const = 0;

  // In-order visit of every entry.
  virtual void ForEach(const std::function<bool(const K&, const V&)>& fn) const = 0;

  virtual int64_t Size() const = 0;
};

// Composite key helpers for the build-date index (a multimap emulated with a
// (date, id) composite key).
inline int64_t MakeDateKey(int64_t build_date, int64_t id) {
  return (build_date << 32) | (id & 0xffffffff);
}
inline int64_t DateKeyLowerBound(int64_t build_date) { return build_date << 32; }
inline int64_t DateKeyUpperBound(int64_t build_date) {
  return (build_date << 32) | 0xffffffff;
}
inline int64_t DateKeyDate(int64_t key) { return key >> 32; }

}  // namespace sb7

#endif  // STMBENCH7_SRC_CONTAINERS_INDEX_H_
