// Single-object snapshot index: the naive STM port of an index.
//
// The whole index is one transactional location holding a pointer to an
// immutable std::map. Reads cost a single transactional read plus an O(log n)
// probe of the immutable snapshot; every update *clones the entire map*,
// swaps the pointer, and retires the old snapshot through EBR.
//
// This mechanically reproduces the pathology §5 describes for the ASTM port,
// where "the manual and each index are represented by single objects": under
// the object-granular STM a writer both pays the full-copy cost and
// serializes with every other index writer; under the word STMs all updates
// conflict on the one pointer word. The skip-list index is the refactored
// alternative (see the `ablation-index` sweep, `sb7-bench --sweep ablation-index`).

#ifndef STMBENCH7_SRC_CONTAINERS_SNAPSHOT_INDEX_H_
#define STMBENCH7_SRC_CONTAINERS_SNAPSHOT_INDEX_H_

#include <map>

#include "src/containers/index.h"
#include "src/ebr/ebr.h"
#include "src/stm/field.h"

namespace sb7 {

template <typename K, typename V>
class SnapshotIndex : public Index<K, V>, public TmObject {
 public:
  SnapshotIndex() : snapshot_(unit(), new Map()) {}

  // raw-ok: destructor runs after the last transaction; no Tx to route through.
  ~SnapshotIndex() override { delete internal::DecodeWord<const Map*>(snapshot_.LoadRaw()); }

  V Lookup(const K& key) const override {
    const Map* map = snapshot_.Get();
    auto it = map->find(key);
    return it == map->end() ? V{} : it->second;
  }

  bool Insert(const K& key, V value) override {
    if (CurrentTx() == nullptr) {
      // Direct mode (initial build, or lock strategies whose external locks
      // already serialize writers against readers): mutate in place. The
      // clone-per-update cost model below only exists to reproduce the
      // transactional-object semantics.
      return MutableSnapshot()->insert_or_assign(key, std::move(value)).second;
    }
    const Map* old_map = snapshot_.Get();
    auto* fresh = new Map(*old_map);  // whole-index clone
    const bool inserted = fresh->insert_or_assign(key, std::move(value)).second;
    Publish(old_map, fresh);
    return inserted;
  }

  bool Remove(const K& key) override {
    if (CurrentTx() == nullptr) {
      return MutableSnapshot()->erase(key) > 0;
    }
    const Map* old_map = snapshot_.Get();
    if (old_map->find(key) == old_map->end()) {
      return false;
    }
    auto* fresh = new Map(*old_map);
    fresh->erase(key);
    Publish(old_map, fresh);
    return true;
  }

  void Range(const K& lo, const K& hi,
             const std::function<bool(const K&, const V&)>& fn) const override {
    const Map* map = snapshot_.Get();
    for (auto it = map->lower_bound(lo); it != map->end() && !(hi < it->first); ++it) {
      if (!fn(it->first, it->second)) {
        return;
      }
    }
  }

  void ForEach(const std::function<bool(const K&, const V&)>& fn) const override {
    const Map* map = snapshot_.Get();
    for (const auto& [key, value] : *map) {
      if (!fn(key, value)) {
        return;
      }
    }
  }

  int64_t Size() const override { return static_cast<int64_t>(snapshot_.Get()->size()); }

 private:
  using Map = std::map<K, V>;

  Map* MutableSnapshot() {
    // raw-ok: direct mode only (no tx in flight; external locks serialize).
    return const_cast<Map*>(internal::DecodeWord<const Map*>(snapshot_.LoadRaw()));
  }

  void Publish(const Map* old_map, Map* fresh) {
    snapshot_.Set(fresh);
    if (Transaction* tx = CurrentTx()) {
      tx->OnCommit([old_map] { EbrDomain::Global().RetireObject(old_map); });
      tx->OnAbort([fresh] { delete fresh; });
    } else {
      EbrDomain::Global().RetireObject(old_map);
    }
  }

  TxField<const Map*> snapshot_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CONTAINERS_SNAPSHOT_INDEX_H_
