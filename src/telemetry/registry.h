// Metrics registry: named counter/gauge callbacks rendered into Prometheus
// text exposition format (version 0.0.4) by the /metrics endpoint.
//
// Registration happens at run setup (driver construction), before worker
// threads exist; Collect()/RenderPrometheus() run on the sampler or HTTP
// thread while workers are live, so every registered callback must be safe
// to call concurrently with the run (atomic loads, snapshot merges).

#ifndef STMBENCH7_SRC_TELEMETRY_REGISTRY_H_
#define STMBENCH7_SRC_TELEMETRY_REGISTRY_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace sb7::telemetry {

enum class MetricKind { kCounter, kGauge };

// One collected metric point. `labels` is the rendered label body without
// braces (e.g. `backend="tl2",scenario="-"`), empty for unlabeled metrics.
struct MetricPoint {
  std::string name;
  std::string labels;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  using Reader = std::function<double()>;
  // A provider appends any number of points per collection — the shape used
  // by block exporters (all StmStats counters, latency quantiles) that
  // derive their points from one shared snapshot.
  using Provider = std::function<void(std::vector<MetricPoint>&)>;

  void AddCounter(std::string name, std::string help, Reader read);
  void AddGauge(std::string name, std::string help, Reader read);
  void AddProvider(Provider provider);

  std::vector<MetricPoint> Collect() const;

  // Prometheus text format: one # HELP / # TYPE pair per metric name (first
  // occurrence wins), then `name{labels} value` lines.
  std::string RenderPrometheus() const;

  // Escapes a label value per the exposition format (backslash, quote,
  // newline) and wraps it in quotes.
  static std::string LabelValue(const std::string& value);

 private:
  mutable std::mutex mutex_;
  std::vector<Provider> providers_;
};

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_REGISTRY_H_
