// Telemetry time series: the per-interval Sample record, the bounded
// in-memory ring the sampler appends to, and the versioned JSONL artifact
// (`--telemetry <file>`) it flushes to.
//
// JSONL layout (schema kTelemetrySchemaVersion, pinned by
// tools/lint/schema.lock rule R4 and tests/telemetry_test.cc):
//   line 1   {"schema": 1, "kind": "header", "tool": "stmbench7",
//             "backend": ..., "scenario": ..., "scale": ..., "threads": N,
//             "interval_s": ..., "hw_available": bool,
//             "stats_fields": [ ... X-macro counter names ... ]}
//   line 2.. {"kind": "sample", "seq": N, "t_s": ..., "interval_s": ...,
//             "phase_index": N, "phase": ..., "started": N, "completed": N,
//             "failed": N, "ops_per_s": ...,
//             "latency_ms": {"count": N, "p50": ..., "p90": ..., "p99": ...,
//                            "p999": ..., "max": ...},
//             optional "stm": {counter: value, ...}  (cumulative),
//             optional "hw": {"cycles": N, "instructions": N,
//                             "llc_misses": N, "stalled_cycles": N},
//             "trace_dropped": N}
//   last     {"kind": "footer", "samples": N, "samples_dropped": N}
// Counters are cumulative since run start; ops_per_s and latency_ms are the
// window between this sample and the previous one. t_s is steady-clock
// seconds since sampler start (never wall clock — wall time would make
// intervals skew under NTP slew; consumers needing absolute time stamp the
// file themselves).

#ifndef STMBENCH7_SRC_TELEMETRY_SERIES_H_
#define STMBENCH7_SRC_TELEMETRY_SERIES_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "src/stm/stm.h"

namespace sb7::telemetry {

// The telemetry JSONL schema version this build writes; readers (the
// in-tree validator) accept [1, current]. Bumps are guarded by sb7-lint R4
// against tools/lint/schema.lock.
constexpr int kTelemetrySchemaVersion = 1;

// One hardware-counter reading (cumulative since HwCounters::Start).
// available=false zeroes carry no information — the graceful-degradation
// path when perf_event_open is unavailable or unprivileged.
struct HwSample {
  bool available = false;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t llc_misses = 0;
  int64_t stalled_cycles = 0;

  // end - begin, field-wise; available only when both ends were.
  static HwSample Delta(const HwSample& end, const HwSample& begin);
};

// One sampler tick. Counter fields are cumulative; ops_per_s / latency are
// the window since the previous tick.
struct Sample {
  int64_t seq = 0;
  double t_s = 0.0;        // steady-clock seconds since sampler start
  double interval_s = 0.0; // actual window length (first window: t_s)

  int phase_index = -1;
  std::string phase;

  int64_t started = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  double ops_per_s = 0.0;

  // Window latency distribution. max_ms is the cumulative max (the true
  // window max is not recoverable from bucket deltas — see
  // TtcHistogram::Delta).
  int64_t lat_count = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;

  bool has_stm = false;
  StmStats::View stm = {};

  int64_t trace_dropped = 0;
  HwSample hw;
};

// Bounded FIFO of samples; Push drops the oldest once full and counts the
// drops (surfaced in the JSONL footer — silent truncation would read as
// "the run was shorter than it was"). Internally mutex-guarded: the sampler
// thread pushes ~1/s, the HTTP thread snapshots rarely.
class SeriesRing {
 public:
  explicit SeriesRing(size_t capacity);

  void Push(Sample sample);
  std::vector<Sample> Snapshot() const;  // oldest first
  size_t size() const;
  int64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;  // circular, valid range [start_, start_+size_)
  size_t start_ = 0;
  size_t size_ = 0;
  int64_t dropped_ = 0;
};

// Run identity echoed into the JSONL header and the /series dump.
struct RunInfo {
  std::string backend;
  std::string scenario;  // "-" for plain runs
  std::string scale;
  int threads = 0;
  double interval_s = 0.0;
  bool hw_available = false;
};

// One sample as a single-line JSON object (shared by the JSONL writer and
// the /series endpoint).
std::string SampleToJson(const Sample& sample);

void WriteTelemetryJsonl(std::ostream& out, const RunInfo& info,
                         const std::vector<Sample>& samples, int64_t samples_dropped);

// Validates a telemetry JSONL stream against the schema above: header
// first, schema version in [1, current], per-line JSON well-formedness,
// required sample fields, seq/t_s monotonicity, footer sample count.
// Returns the empty string when valid, else a line-tagged description of
// the first problem.
std::string ValidateTelemetryJsonl(std::istream& in);

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_SERIES_H_
