#include "src/telemetry/http.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SB7_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace sb7::telemetry {

void MetricsHttpServer::Handle(std::string path, std::string content_type,
                               Handler handler) {
  routes_[std::move(path)] = Route{std::move(content_type), std::move(handler)};
}

#if defined(SB7_HAVE_SOCKETS)

namespace {

// How long one poll round blocks: the Stop() latency ceiling.
constexpr int kPollMillis = 100;

// Requests beyond this are broken clients, not scrapes.
constexpr size_t kMaxRequestBytes = 8192;

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      return;  // client went away; nothing to clean up beyond the close
    }
    sent += static_cast<size_t>(n);
  }
}

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 404:
      return "HTTP/1.0 404 Not Found";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed";
    default:
      return "HTTP/1.0 400 Bad Request";
  }
}

std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << StatusLine(code) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

bool MetricsHttpServer::Start(int port, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    return false;
  };
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return fail("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return fail("bind to port " + std::to_string(port));
  }
  if (listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  } else {
    port_ = port;
  }
  // mo: release — publishes the bound socket/port to running() readers.
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() { Serve(); });
  return true;
}

void MetricsHttpServer::Serve() {
  // mo: acquire — pairs with Start's release and Stop's acq_rel exchange.
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, kPollMillis);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    // Drain every pending connection this round; accept stops blocking
    // once the backlog is empty because the listener is only read after
    // poll reported readiness (a race with a dropped client yields one
    // spurious blocking accept at worst, bounded by the next scrape).
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    HandleConnection(client);
    close(client);
  }
}

void MetricsHttpServer::HandleConnection(int client_fd) {
  // Bounded read until the header terminator; scrape requests are tiny.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    request.append(buffer, static_cast<size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION.
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    WriteAll(client_fd, MakeResponse(400, "text/plain", "bad request\n"));
    return;
  }
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    WriteAll(client_fd, MakeResponse(400, "text/plain", "bad request\n"));
    return;
  }
  const std::string method = request.substr(0, method_end);
  std::string path = request.substr(method_end + 1, path_end - method_end - 1);
  if (const size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);  // scrapers may append ?format=...; exact-match the path
  }
  if (method != "GET" && method != "HEAD") {
    WriteAll(client_fd, MakeResponse(405, "text/plain", "GET only\n"));
    return;
  }
  const auto route = routes_.find(path);
  if (route == routes_.end()) {
    WriteAll(client_fd, MakeResponse(404, "text/plain", "not found\n"));
    return;
  }
  const std::string body = route->second.handler();
  WriteAll(client_fd,
           MakeResponse(200, route->second.content_type, method == "HEAD" ? "" : body));
}

void MetricsHttpServer::Stop() {
  // mo: acq_rel — one winner flips the flag and joins; losers see the fd
  // state the winner published.
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

#else  // !SB7_HAVE_SOCKETS

bool MetricsHttpServer::Start(int, std::string* error) {
  if (error != nullptr) {
    *error = "sockets unavailable on this platform";
  }
  return false;
}

void MetricsHttpServer::Serve() {}
void MetricsHttpServer::HandleConnection(int) {}
// mo: release — stub platform; keeps the flag discipline uniform.
void MetricsHttpServer::Stop() { running_.store(false, std::memory_order_release); }

#endif

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

}  // namespace sb7::telemetry
