#include "src/telemetry/http.h"

#include <cerrno>
#include <sstream>
#include <utility>

#include "src/net/net.h"

namespace sb7::telemetry {

void MetricsHttpServer::Handle(std::string path, std::string content_type,
                               Handler handler) {
  routes_[std::move(path)] = Route{std::move(content_type), std::move(handler)};
}

#if defined(SB7_HAVE_SOCKETS)

namespace {

// How long one poll round blocks: the Stop() latency ceiling.
constexpr int kPollMillis = 100;

// Total budget for reading one request and writing its response; a client
// slower than this is dropped (its handler thread, not the accept loop,
// eats the wait).
constexpr int kIoBudgetMillis = 2000;

// Requests beyond this are broken clients, not scrapes.
constexpr size_t kMaxRequestBytes = 8192;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 404:
      return "HTTP/1.0 404 Not Found";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed";
    default:
      return "HTTP/1.0 400 Bad Request";
  }
}

// `include_body` distinguishes GET from HEAD: a HEAD response advertises
// the length the corresponding GET body would have (RFC 7231 §4.3.2) while
// sending no body bytes — handing an empty body here would lie
// "Content-Length: 0" to scrapers probing endpoint size.
std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body, bool include_body) {
  std::ostringstream out;
  out << StatusLine(code) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n";
  if (include_body) {
    out << body;
  }
  return out.str();
}

// Reads until the header terminator, the size cap, EOF, or the deadline.
// The fd is non-blocking; waits go through the EINTR-retrying PollRetry.
std::string ReadRequest(int fd) {
  std::string request;
  char buffer[1024];
  int remaining = kIoBudgetMillis;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = net::ReadSome(fd, buffer, sizeof(buffer));
    if (n > 0) {
      request.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      break;  // client closed its half; parse whatever arrived
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      break;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (remaining <= 0 || net::PollRetry(&pfd, 1, kPollMillis) < 0) {
      break;  // budget spent or poll error: drop the slow client
    }
    remaining -= kPollMillis;
  }
  return request;
}

}  // namespace

bool MetricsHttpServer::Start(int port, std::string* error) {
  net::ListenResult listen = net::ListenTcp(port, /*backlog=*/16);
  if (!listen.ok()) {
    if (error != nullptr) {
      *error = listen.error;
    }
    return false;
  }
  listen_fd_ = std::move(listen.fd);
  port_ = listen.port;
  // mo: release — publishes the bound socket/port to running() readers.
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() { Serve(); });
  return true;
}

void MetricsHttpServer::Serve() {
  // mo: acquire — pairs with Start's release and Stop's acq_rel exchange.
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_.get();
    pfd.events = POLLIN;
    const int ready = net::PollRetry(&pfd, 1, kPollMillis);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    // Drain every pending connection this round. The listener is
    // non-blocking, so a client that vanished between poll readiness and
    // accept yields EAGAIN instead of wedging the loop.
    for (;;) {
      const int client = net::AcceptRetry(listen_fd_.get());
      if (client < 0) {
        break;
      }
      if (!net::SetNonBlocking(client)) {
        net::CloseFd(client);
        continue;
      }
      // One short-lived thread per connection: a stalled scraper costs its
      // own thread kIoBudgetMillis, never the accept loop or other scrapes.
      auto done = std::make_shared<std::atomic<bool>>(false);
      net::UniqueFd client_fd(client);
      std::thread handler([this, done, fd = std::move(client_fd)]() mutable {
        HandleConnection(std::move(fd));
        // mo: release — publishes handler completion to the reaper's
        // acquire load in JoinHandlers.
        done->store(true, std::memory_order_release);
      });
      {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        handlers_.push_back(HandlerThread{std::move(handler), done});
      }
      JoinHandlers(/*all=*/false);
    }
  }
}

void MetricsHttpServer::JoinHandlers(bool all) {
  std::vector<HandlerThread> finished;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    if (all) {
      finished.swap(handlers_);
    } else {
      for (auto it = handlers_.begin(); it != handlers_.end();) {
        // mo: acquire — pairs with the handler's release store on exit.
        if (it->done->load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = handlers_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (HandlerThread& handler : finished) {
    if (handler.thread.joinable()) {
      handler.thread.join();
    }
  }
}

void MetricsHttpServer::HandleConnection(net::UniqueFd client_fd) {
  const int fd = client_fd.get();
  // net::WriteAll is SIGPIPE-free (MSG_NOSIGNAL) and deadline-bounded: a
  // scraper that disconnects mid-response surfaces as a failed write, not
  // a process-killing signal; a stalled one is dropped after the budget.
  auto respond = [fd](int code, const std::string& content_type,
                      const std::string& body, bool include_body) {
    net::WriteAll(fd, MakeResponse(code, content_type, body, include_body),
                  kIoBudgetMillis);
  };

  const std::string request = ReadRequest(fd);
  // Request line: METHOD SP PATH SP VERSION.
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    respond(400, "text/plain", "bad request\n", true);
    return;
  }
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    respond(400, "text/plain", "bad request\n", true);
    return;
  }
  const std::string method = request.substr(0, method_end);
  std::string path = request.substr(method_end + 1, path_end - method_end - 1);
  if (const size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);  // scrapers may append ?format=...; exact-match the path
  }
  if (method != "GET" && method != "HEAD") {
    respond(405, "text/plain", "GET only\n", true);
    return;
  }
  const auto route = routes_.find(path);
  if (route == routes_.end()) {
    respond(404, "text/plain", "not found\n", method == "GET");
    return;
  }
  // The body is rendered for HEAD too: its length is the contract.
  const std::string body = route->second.handler();
  respond(200, route->second.content_type, body, method == "GET");
}

void MetricsHttpServer::Stop() {
  // mo: acq_rel — one winner flips the flag and joins; losers see the fd
  // state the winner published.
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    JoinHandlers(/*all=*/true);
    listen_fd_.reset();
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  JoinHandlers(/*all=*/true);
  listen_fd_.reset();
}

#else  // !SB7_HAVE_SOCKETS

bool MetricsHttpServer::Start(int, std::string* error) {
  if (error != nullptr) {
    *error = "sockets unavailable on this platform";
  }
  return false;
}

void MetricsHttpServer::Serve() {}
void MetricsHttpServer::HandleConnection(net::UniqueFd) {}
void MetricsHttpServer::JoinHandlers(bool) {}
// mo: release — stub platform; keeps the flag discipline uniform.
void MetricsHttpServer::Stop() { running_.store(false, std::memory_order_release); }

#endif

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

}  // namespace sb7::telemetry
