#include "src/telemetry/hwcounters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace sb7::telemetry {

#if defined(__linux__)

namespace {

int OpenEvent(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  // inherit: new threads of this process are counted from their birth and
  // read() returns the inherited sum. Incompatible with PERF_FORMAT_GROUP,
  // which is why each event gets its own fd.
  attr.inherit = 1;
  // Counting user cycles only keeps the events usable at
  // perf_event_paranoid=2 (the common distro default).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  return fd < 0 ? -1 : static_cast<int>(fd);
}

int64_t ReadEvent(int fd) {
  if (fd < 0) {
    return 0;
  }
  int64_t value = 0;
  if (read(fd, &value, sizeof(value)) != static_cast<ssize_t>(sizeof(value))) {
    return 0;
  }
  return value;
}

}  // namespace

bool HwCounters::Start(std::string* detail) {
  Stop();
  fds_[kCycles] = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fds_[kCycles] < 0) {
    if (detail != nullptr) {
      *detail = std::string("perf_event_open(cycles) failed: ") + std::strerror(errno) +
                " (check /proc/sys/kernel/perf_event_paranoid)";
    }
    return false;
  }
  // The remaining events are best-effort; a closed fd reads as 0 and the
  // exporters skip the metric.
  fds_[kInstructions] = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[kLlcMisses] = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  fds_[kStalledCycles] =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  available_ = true;
  return true;
}

HwSample HwCounters::Read() const {
  HwSample sample;
  if (!available_) {
    return sample;
  }
  sample.available = true;
  sample.cycles = ReadEvent(fds_[kCycles]);
  sample.instructions = ReadEvent(fds_[kInstructions]);
  sample.llc_misses = ReadEvent(fds_[kLlcMisses]);
  sample.stalled_cycles = ReadEvent(fds_[kStalledCycles]);
  return sample;
}

void HwCounters::Stop() {
  available_ = false;
  for (int& fd : fds_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
}

#else  // !defined(__linux__)

bool HwCounters::Start(std::string* detail) {
  if (detail != nullptr) {
    *detail = "perf_event_open is Linux-only";
  }
  return false;
}

HwSample HwCounters::Read() const { return HwSample{}; }

void HwCounters::Stop() { available_ = false; }

#endif

HwCounters::~HwCounters() { Stop(); }

}  // namespace sb7::telemetry
