// Telemetry facade: owns the metrics registry, the lock-free latency
// histogram the workers record into, the background sampler thread, the
// hardware counters and the optional HTTP exposition endpoint.
//
// Cost discipline: when the driver runs without telemetry the only residue
// in the hot path is one null pointer check (verified by the CI sampler-off
// overhead gate). With telemetry on, a worker pays two relaxed fetch_adds
// and one striped histogram record per operation; everything else happens
// on the sampler/HTTP threads.

#ifndef STMBENCH7_SRC_TELEMETRY_TELEMETRY_H_
#define STMBENCH7_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/telemetry/http.h"
#include "src/telemetry/hwcounters.h"
#include "src/telemetry/registry.h"
#include "src/telemetry/series.h"

namespace sb7::telemetry {

// Time source seam. The default reads the process steady clock; tests
// substitute ManualClock (with background=false) to make sampler output
// fully deterministic — the "paused clock" requirement.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() = 0;
};

class ManualClock : public Clock {
 public:
  // mo: relaxed — test-only seam; no ordering with other state.
  int64_t NowNanos() override { return now_nanos_.load(std::memory_order_relaxed); }
  void AdvanceNanos(int64_t nanos) {
    // mo: relaxed — test-only seam; the sampler reads on the same thread or
    // under the facade's sample mutex.
    now_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }

 private:
  std::atomic<int64_t> now_nanos_{0};
};

struct TelemetryOptions {
  double interval_seconds = 1.0;
  size_t series_capacity = 4096;
  bool hw_counters = true;
  int metrics_port = -1;  // -1 = no endpoint; 0 = ephemeral (see server_port)
  // false: no sampler thread; the owner drives SampleNow() — used by tests
  // (with a ManualClock) and anywhere wall-clock pacing is unwanted.
  bool background = true;
  Clock* clock = nullptr;  // borrowed; null = steady clock
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // --- hot path (worker threads, only when telemetry is enabled) ---
  void RecordOp(bool success, int64_t latency_nanos) {
    // mo: relaxed — monotonic tallies; the sampler snapshots them with no
    // cross-counter consistency requirement.
    if (success) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_.Record(latency_nanos);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- run setup (driver construction; single-threaded) ---
  void SetRunInfo(RunInfo info);
  void SetPhase(int index, const std::string& name);
  void SetStmSource(std::function<StmStats::View()> source);
  void SetTraceDroppedSource(std::function<int64_t()> source);
  // Opens the hardware counters; call before the worker threads are spawned
  // (perf_event inherit semantics). No-op when options.hw_counters is off.
  void StartHw();
  // Binds and serves /metrics + /series; no-op unless options.metrics_port
  // was >= 0. Returns false with `error` set on bind failure.
  bool StartServer(std::string* error);

  // --- sampler lifecycle (driver Run) ---
  void Start();  // records t0; spawns the sampler thread when background
  void Stop();   // takes a final sample, joins the sampler, stops the server

  // One sampler tick; also the manual-mode entry point. Thread-safe.
  void SampleNow();

  // --- consumers ---
  MetricsRegistry& registry() { return registry_; }
  const RunInfo& run_info() const { return run_info_; }
  int server_port() const { return server_.port(); }
  bool server_running() const { return server_.running(); }
  bool hw_available() const { return hw_.available(); }
  const std::string& hw_detail() const { return hw_detail_; }
  HwSample HwNow() const { return hw_.Read(); }
  std::vector<Sample> SeriesSnapshot() const { return ring_.Snapshot(); }
  int64_t SamplesDropped() const { return ring_.dropped(); }
  // mo: relaxed — monotonic tally; used by tests and the JSONL writer.
  int64_t CompletedOps() const { return completed_.load(std::memory_order_relaxed); }
  void WriteJsonl(std::ostream& out) const;
  std::string RenderPrometheus() const { return registry_.RenderPrometheus(); }
  std::string RenderSeriesJson() const;

 private:
  int64_t Now();
  void SamplerLoop();
  void RegisterBuiltinMetrics();

  TelemetryOptions options_;
  MetricsRegistry registry_;
  ConcurrentTtcHistogram latency_;
  SeriesRing ring_;
  HwCounters hw_;
  std::string hw_detail_;
  MetricsHttpServer server_;
  RunInfo run_info_;

  std::function<StmStats::View()> stm_source_;
  std::function<int64_t()> trace_dropped_source_;

  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  // mo: phase index/name pair — the index is the atomic fast read; the name
  // string is guarded by phase_mutex_ (sampler + boundary thread only).
  std::atomic<int> phase_index_{-1};
  std::mutex phase_mutex_;
  std::string phase_name_;

  // Sampler state, guarded by sample_mutex_ (one tick at a time).
  std::mutex sample_mutex_;
  int64_t t0_nanos_ = 0;
  bool started_ = false;
  int64_t next_seq_ = 0;
  double prev_t_s_ = 0.0;
  int64_t prev_completed_ = 0;
  TtcHistogram prev_latency_;

  std::thread sampler_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_TELEMETRY_H_
