#include "src/telemetry/registry.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

namespace sb7::telemetry {

void MetricsRegistry::AddCounter(std::string name, std::string help, Reader read) {
  AddProvider([name = std::move(name), help = std::move(help),
               read = std::move(read)](std::vector<MetricPoint>& out) {
    out.push_back({name, "", help, MetricKind::kCounter, read()});
  });
}

void MetricsRegistry::AddGauge(std::string name, std::string help, Reader read) {
  AddProvider([name = std::move(name), help = std::move(help),
               read = std::move(read)](std::vector<MetricPoint>& out) {
    out.push_back({name, "", help, MetricKind::kGauge, read()});
  });
}

void MetricsRegistry::AddProvider(Provider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_.push_back(std::move(provider));
}

std::vector<MetricPoint> MetricsRegistry::Collect() const {
  std::vector<MetricPoint> points;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Provider& provider : providers_) {
    provider(points);
  }
  return points;
}

std::string MetricsRegistry::LabelValue(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<MetricPoint> points = Collect();
  std::ostringstream out;
  out.precision(12);
  std::set<std::string> described;
  for (const MetricPoint& point : points) {
    if (described.insert(point.name).second) {
      if (!point.help.empty()) {
        out << "# HELP " << point.name << " " << point.help << "\n";
      }
      out << "# TYPE " << point.name << " "
          << (point.kind == MetricKind::kCounter ? "counter" : "gauge") << "\n";
    }
    out << point.name;
    if (!point.labels.empty()) {
      out << "{" << point.labels << "}";
    }
    // The format requires Go-style floats; NaN spells "NaN".
    if (std::isnan(point.value)) {
      out << " NaN\n";
    } else {
      out << " " << point.value << "\n";
    }
  }
  return out.str();
}

}  // namespace sb7::telemetry
