// Minimal HTTP/1.0 exposition endpoint: an accept loop thread plus one
// short-lived handler thread per connection, GET/HEAD only, Connection:
// close. Serves the handlers registered before Start() — the telemetry
// facade mounts /metrics (Prometheus text) and /series (JSON).
//
// Deliberately not a web server: no keep-alive, no chunking, no TLS, one
// request per connection, bounded request read. All socket I/O goes
// through the hardened src/net/ primitives (SIGPIPE-free writes, EINTR
// retries, non-blocking fds with deadline-bounded I/O), so a scraper that
// disconnects mid-response or stalls mid-request can neither kill the
// process nor wedge other scrapes.

#ifndef STMBENCH7_SRC_TELEMETRY_HTTP_H_
#define STMBENCH7_SRC_TELEMETRY_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/net.h"

namespace sb7::telemetry {

class MetricsHttpServer {
 public:
  // Returns the response body; called on a handler thread, so it must be
  // safe to run concurrently with the benchmark's worker threads (and with
  // other handler threads).
  using Handler = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Mount `handler` at `path` (exact match). Call before Start().
  void Handle(std::string path, std::string content_type, Handler handler);

  // Binds (port 0 = ephemeral; see port()), spawns the accept loop.
  // Returns false with `error` set on bind/listen failure.
  bool Start(int port, std::string* error);

  // Joins the accept loop and every in-flight handler, closes the socket.
  // Idempotent.
  void Stop();

  // mo: acquire — pairs with Start's release store of the bound state.
  bool running() const { return running_.load(std::memory_order_acquire); }
  // The actually-bound port (resolves ephemeral binds); -1 before Start.
  int port() const { return port_; }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void Serve();
  void HandleConnection(net::UniqueFd client_fd);
  // Reaps finished handler threads; joins all of them when `all` is set.
  void JoinHandlers(bool all);

  std::map<std::string, Route> routes_;
  net::UniqueFd listen_fd_;
  int port_ = -1;
  std::thread thread_;
  // mo: acquire/release — the accept loop re-checks this between poll
  // rounds; release in Stop() pairs with the loop's acquire load.
  std::atomic<bool> running_{false};

  // In-flight handler threads, each tagged done when its connection
  // finishes so the accept loop can reap without blocking.
  struct HandlerThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex handlers_mutex_;
  std::vector<HandlerThread> handlers_;
};

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_HTTP_H_
