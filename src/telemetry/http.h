// Minimal HTTP/1.0 exposition endpoint: one poll-loop thread, GET-only,
// Connection: close. Serves the handlers registered before Start() — the
// telemetry facade mounts /metrics (Prometheus text) and /series (JSON).
//
// Deliberately not a web server: no keep-alive, no chunking, no TLS, one
// request per connection, bounded request read. It exists so a running
// benchmark can be scraped (`curl :9187/metrics`) and as the first socket
// ingress on the sb7-serve roadmap path.

#ifndef STMBENCH7_SRC_TELEMETRY_HTTP_H_
#define STMBENCH7_SRC_TELEMETRY_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace sb7::telemetry {

class MetricsHttpServer {
 public:
  // Returns the response body; called on the server thread, so it must be
  // safe to run concurrently with the benchmark's worker threads.
  using Handler = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Mount `handler` at `path` (exact match). Call before Start().
  void Handle(std::string path, std::string content_type, Handler handler);

  // Binds (port 0 = ephemeral; see port()), spawns the poll loop. Returns
  // false with `error` set on bind/listen failure.
  bool Start(int port, std::string* error);

  // Joins the poll loop and closes the socket. Idempotent.
  void Stop();

  // mo: acquire — pairs with Start's release store of the bound state.
  bool running() const { return running_.load(std::memory_order_acquire); }
  // The actually-bound port (resolves ephemeral binds); -1 before Start.
  int port() const { return port_; }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void Serve();
  void HandleConnection(int client_fd);

  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
  // mo: acquire/release — the poll loop re-checks this between poll rounds;
  // release in Stop() pairs with the loop's acquire load.
  std::atomic<bool> running_{false};
};

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_HTTP_H_
