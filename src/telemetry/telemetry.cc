#include "src/telemetry/telemetry.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "src/common/timing.h"

namespace sb7::telemetry {

Telemetry::Telemetry(TelemetryOptions options)
    : options_(options), ring_(options.series_capacity) {
  RegisterBuiltinMetrics();
}

Telemetry::~Telemetry() { Stop(); }

int64_t Telemetry::Now() {
  return options_.clock != nullptr ? options_.clock->NowNanos() : NowNanos();
}

void Telemetry::SetRunInfo(RunInfo info) {
  run_info_ = std::move(info);
  run_info_.interval_s = options_.interval_seconds;
}

void Telemetry::SetPhase(int index, const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    phase_name_ = name;
  }
  // mo: release — pairs with the sampler's acquire load so a sampler that
  // sees the new index also sees the new name (the name write precedes).
  phase_index_.store(index, std::memory_order_release);
}

void Telemetry::SetStmSource(std::function<StmStats::View()> source) {
  stm_source_ = std::move(source);
  registry_.AddProvider([this](std::vector<MetricPoint>& out) {
    if (!stm_source_) {
      return;
    }
    const StmStats::View view = stm_source_();
    view.ForEachField([&out](const char* name, int64_t value) {
      out.push_back({std::string("sb7_stm_") + name + "_total", "",
                     "StmStats counter (cumulative)", MetricKind::kCounter,
                     static_cast<double>(value)});
    });
  });
}

void Telemetry::SetTraceDroppedSource(std::function<int64_t()> source) {
  trace_dropped_source_ = std::move(source);
  registry_.AddCounter("sb7_trace_events_dropped_total",
                       "Trace events lost to ring overflow", [this]() {
                         return trace_dropped_source_ ? static_cast<double>(
                                                            trace_dropped_source_())
                                                      : 0.0;
                       });
}

void Telemetry::StartHw() {
  if (!options_.hw_counters) {
    hw_detail_ = "disabled by configuration";
    return;
  }
  std::string detail;
  if (!hw_.Start(&detail)) {
    hw_detail_ = detail;
  }
}

bool Telemetry::StartServer(std::string* error) {
  if (options_.metrics_port < 0) {
    return false;
  }
  server_.Handle("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                 [this]() { return RenderPrometheus(); });
  server_.Handle("/series", "application/json",
                 [this]() { return RenderSeriesJson(); });
  return server_.Start(options_.metrics_port, error);
}

void Telemetry::Start() {
  {
    std::lock_guard<std::mutex> lock(sample_mutex_);
    t0_nanos_ = Now();
    started_ = true;
    next_seq_ = 0;
    prev_t_s_ = 0.0;
    prev_completed_ = 0;
    prev_latency_ = TtcHistogram();
  }
  if (!options_.background) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  sampler_ = std::thread([this]() { SamplerLoop(); });
}

void Telemetry::SamplerLoop() {
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, interval, [this]() { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void Telemetry::Stop() {
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (!stop_requested_ && sampler_.joinable()) {
      stop_requested_ = true;
      was_running = true;
    }
  }
  if (was_running) {
    stop_cv_.notify_all();
  }
  if (sampler_.joinable()) {
    sampler_.join();
  }
  if (was_running && started_) {
    // Tail sample so short runs always leave at least one data point and
    // the series covers the run right up to shutdown.
    SampleNow();
    started_ = false;
  }
  server_.Stop();
  hw_.Stop();
}

void Telemetry::SampleNow() {
  std::lock_guard<std::mutex> lock(sample_mutex_);
  Sample sample;
  sample.seq = next_seq_++;
  sample.t_s = static_cast<double>(Now() - t0_nanos_) / 1e9;
  sample.interval_s = sample.t_s - prev_t_s_;

  // mo: acquire — pairs with SetPhase's release so the name read below is
  // the one written with (or after) this index.
  sample.phase_index = phase_index_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> phase_lock(phase_mutex_);
    sample.phase = phase_name_;
  }

  // mo: relaxed — monotonic tallies; no cross-counter consistency needed.
  sample.completed = completed_.load(std::memory_order_relaxed);
  sample.failed = failed_.load(std::memory_order_relaxed);
  sample.started = sample.completed + sample.failed;
  if (sample.interval_s > 0) {
    sample.ops_per_s =
        static_cast<double>(sample.completed - prev_completed_) / sample.interval_s;
  }

  const TtcHistogram cumulative = latency_.Snapshot();
  const TtcHistogram window = TtcHistogram::Delta(cumulative, prev_latency_);
  sample.lat_count = window.total_count();
  sample.p50_ms = window.QuantileMillis(0.5);
  sample.p90_ms = window.QuantileMillis(0.9);
  sample.p99_ms = window.QuantileMillis(0.99);
  sample.p999_ms = window.QuantileMillis(0.999);
  sample.max_ms = static_cast<double>(cumulative.max_nanos()) / 1e6;

  if (stm_source_) {
    sample.has_stm = true;
    sample.stm = stm_source_();
  }
  if (trace_dropped_source_) {
    sample.trace_dropped = trace_dropped_source_();
  }
  sample.hw = hw_.Read();

  prev_t_s_ = sample.t_s;
  prev_completed_ = sample.completed;
  prev_latency_ = cumulative;
  ring_.Push(std::move(sample));
}

void Telemetry::RegisterBuiltinMetrics() {
  registry_.AddCounter("sb7_ops_completed_total", "Successfully completed operations",
                       [this]() {
                         // mo: relaxed — monotonic tally read for exposition.
                         return static_cast<double>(
                             completed_.load(std::memory_order_relaxed));
                       });
  registry_.AddCounter("sb7_ops_failed_total", "Operations that raised OperationFailed",
                       [this]() {
                         // mo: relaxed — monotonic tally read for exposition.
                         return static_cast<double>(failed_.load(std::memory_order_relaxed));
                       });
  registry_.AddGauge("sb7_phase_index", "Current scenario phase index (-1 before start)",
                     [this]() {
                       // mo: acquire — same pairing as SampleNow.
                       return static_cast<double>(
                           phase_index_.load(std::memory_order_acquire));
                     });
  registry_.AddProvider([this](std::vector<MetricPoint>& out) {
    const TtcHistogram snapshot = latency_.Snapshot();
    const char* name = "sb7_latency_ms";
    const char* help = "Operation latency quantiles (cumulative), milliseconds";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto& [label, q] : quantiles) {
      out.push_back({name, std::string("q=\"") + label + "\"", help, MetricKind::kGauge,
                     snapshot.QuantileMillis(q)});
    }
    out.push_back({"sb7_latency_max_ms", "", "Max operation latency, milliseconds",
                   MetricKind::kGauge,
                   static_cast<double>(snapshot.max_nanos()) / 1e6});
  });
  registry_.AddProvider([this](std::vector<MetricPoint>& out) {
    const HwSample hw = hw_.Read();
    if (!hw.available) {
      return;
    }
    out.push_back({"sb7_hw_cycles_total", "", "CPU cycles (user, all worker threads)",
                   MetricKind::kCounter, static_cast<double>(hw.cycles)});
    out.push_back({"sb7_hw_instructions_total", "", "Retired instructions",
                   MetricKind::kCounter, static_cast<double>(hw.instructions)});
    out.push_back({"sb7_hw_llc_misses_total", "", "Last-level cache misses",
                   MetricKind::kCounter, static_cast<double>(hw.llc_misses)});
    out.push_back({"sb7_hw_stalled_cycles_total", "", "Backend-stalled cycles",
                   MetricKind::kCounter, static_cast<double>(hw.stalled_cycles)});
  });
  registry_.AddGauge("sb7_telemetry_samples", "Samples currently in the series ring",
                     [this]() { return static_cast<double>(ring_.size()); });
  registry_.AddCounter("sb7_telemetry_samples_dropped_total",
                       "Samples evicted from the series ring",
                       [this]() { return static_cast<double>(ring_.dropped()); });
  registry_.AddProvider([this](std::vector<MetricPoint>& out) {
    const std::string labels = "backend=" + MetricsRegistry::LabelValue(run_info_.backend) +
                               ",scenario=" +
                               MetricsRegistry::LabelValue(run_info_.scenario) +
                               ",scale=" + MetricsRegistry::LabelValue(run_info_.scale);
    out.push_back({"sb7_run_info", labels, "Run identity (value is always 1)",
                   MetricKind::kGauge, 1.0});
  });
}

void Telemetry::WriteJsonl(std::ostream& out) const {
  RunInfo info = run_info_;
  info.hw_available = hw_.available();
  WriteTelemetryJsonl(out, info, ring_.Snapshot(), ring_.dropped());
}

std::string Telemetry::RenderSeriesJson() const {
  const std::vector<Sample> samples = ring_.Snapshot();
  std::ostringstream out;
  out.precision(12);
  out << "{\"schema\": " << kTelemetrySchemaVersion << ", \"backend\": \""
      << run_info_.backend << "\", \"interval_s\": " << run_info_.interval_s
      << ", \"samples_dropped\": " << ring_.dropped() << ", \"samples\": [";
  for (size_t i = 0; i < samples.size(); ++i) {
    out << (i == 0 ? "" : ", ") << SampleToJson(samples[i]);
  }
  out << "]}";
  return out.str();
}

}  // namespace sb7::telemetry
