#include "src/telemetry/series.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/diag.h"
#include "src/perf/json.h"

namespace sb7::telemetry {

HwSample HwSample::Delta(const HwSample& end, const HwSample& begin) {
  HwSample delta;
  delta.available = end.available && begin.available;
  delta.cycles = end.cycles - begin.cycles;
  delta.instructions = end.instructions - begin.instructions;
  delta.llc_misses = end.llc_misses - begin.llc_misses;
  delta.stalled_cycles = end.stalled_cycles - begin.stalled_cycles;
  return delta;
}

SeriesRing::SeriesRing(size_t capacity) : capacity_(capacity) {
  SB7_CHECK(capacity > 0);
}

void SeriesRing::Push(Sample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.size() < capacity_) {
    samples_.push_back(std::move(sample));
    size_ = samples_.size();
    return;
  }
  samples_[start_] = std::move(sample);
  start_ = (start_ + 1) % capacity_;
  dropped_ += 1;
}

std::vector<Sample> SeriesRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(samples_[(start_ + i) % samples_.size()]);
  }
  return out;
}

size_t SeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

int64_t SeriesRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

namespace {

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string SampleToJson(const Sample& sample) {
  std::ostringstream out;
  out.precision(12);
  out << "{\"kind\": \"sample\", \"seq\": " << sample.seq << ", \"t_s\": " << sample.t_s
      << ", \"interval_s\": " << sample.interval_s
      << ", \"phase_index\": " << sample.phase_index
      << ", \"phase\": " << JsonString(sample.phase) << ", \"started\": " << sample.started
      << ", \"completed\": " << sample.completed << ", \"failed\": " << sample.failed
      << ", \"ops_per_s\": " << sample.ops_per_s << ", \"latency_ms\": {\"count\": "
      << sample.lat_count << ", \"p50\": " << sample.p50_ms << ", \"p90\": " << sample.p90_ms
      << ", \"p99\": " << sample.p99_ms << ", \"p999\": " << sample.p999_ms
      << ", \"max\": " << sample.max_ms << "}";
  if (sample.has_stm) {
    out << ", \"stm\": {";
    bool first = true;
    sample.stm.ForEachField([&out, &first](const char* name, int64_t value) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    });
    out << "}";
  }
  if (sample.hw.available) {
    out << ", \"hw\": {\"cycles\": " << sample.hw.cycles
        << ", \"instructions\": " << sample.hw.instructions
        << ", \"llc_misses\": " << sample.hw.llc_misses
        << ", \"stalled_cycles\": " << sample.hw.stalled_cycles << "}";
  }
  out << ", \"trace_dropped\": " << sample.trace_dropped << "}";
  return out.str();
}

void WriteTelemetryJsonl(std::ostream& out, const RunInfo& info,
                         const std::vector<Sample>& samples, int64_t samples_dropped) {
  std::ostringstream header;
  header.precision(12);
  header << "{\"schema\": " << kTelemetrySchemaVersion
         << ", \"kind\": \"header\", \"tool\": \"stmbench7\", \"backend\": "
         << JsonString(info.backend) << ", \"scenario\": " << JsonString(info.scenario)
         << ", \"scale\": " << JsonString(info.scale) << ", \"threads\": " << info.threads
         << ", \"interval_s\": " << info.interval_s
         << ", \"hw_available\": " << (info.hw_available ? "true" : "false")
         << ", \"stats_fields\": [";
  bool first = true;
  StmStats::View{}.ForEachField([&header, &first](const char* name, int64_t) {
    header << (first ? "" : ", ") << "\"" << name << "\"";
    first = false;
  });
  header << "]}";
  out << header.str() << "\n";
  for (const Sample& sample : samples) {
    out << SampleToJson(sample) << "\n";
  }
  out << "{\"kind\": \"footer\", \"samples\": " << samples.size()
      << ", \"samples_dropped\": " << samples_dropped << "}\n";
}

namespace {

std::string LineError(size_t line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

std::string ValidateTelemetryJsonl(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  bool saw_footer = false;
  int64_t samples = 0;
  int64_t prev_seq = -1;
  double prev_t = -1.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (saw_footer) {
      return LineError(line_no, "content after the footer record");
    }
    const perf::JsonParseResult parsed = perf::ParseJson(line);
    if (!parsed.error.empty()) {
      return LineError(line_no, "invalid JSON: " + parsed.error);
    }
    const perf::JsonValue& record = parsed.value;
    if (!record.is_object()) {
      return LineError(line_no, "record is not an object");
    }
    const perf::JsonValue* kind = record.Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return LineError(line_no, "missing \"kind\"");
    }
    if (!saw_header) {
      if (kind->AsString() != "header") {
        return LineError(line_no, "first record must be the header");
      }
      const perf::JsonValue* schema = record.Find("schema");
      if (schema == nullptr || !schema->is_number()) {
        return LineError(line_no, "header lacks a numeric \"schema\"");
      }
      const int version = static_cast<int>(schema->AsNumber());
      if (version < 1 || version > kTelemetrySchemaVersion) {
        return LineError(line_no, "unsupported schema version " + std::to_string(version));
      }
      for (const char* key : {"backend", "scenario", "scale"}) {
        const perf::JsonValue* value = record.Find(key);
        if (value == nullptr || !value->is_string()) {
          return LineError(line_no, std::string("header lacks string \"") + key + "\"");
        }
      }
      for (const char* key : {"threads", "interval_s"}) {
        const perf::JsonValue* value = record.Find(key);
        if (value == nullptr || !value->is_number()) {
          return LineError(line_no, std::string("header lacks numeric \"") + key + "\"");
        }
      }
      const perf::JsonValue* fields = record.Find("stats_fields");
      if (fields == nullptr || !fields->is_array()) {
        return LineError(line_no, "header lacks the \"stats_fields\" array");
      }
      saw_header = true;
      continue;
    }
    if (kind->AsString() == "footer") {
      const perf::JsonValue* count = record.Find("samples");
      if (count == nullptr || !count->is_number()) {
        return LineError(line_no, "footer lacks a numeric \"samples\"");
      }
      if (static_cast<int64_t>(count->AsNumber()) != samples) {
        return LineError(line_no, "footer sample count " +
                                      std::to_string(static_cast<int64_t>(count->AsNumber())) +
                                      " != " + std::to_string(samples) + " sample records");
      }
      if (const perf::JsonValue* drops = record.Find("samples_dropped");
          drops == nullptr || !drops->is_number()) {
        return LineError(line_no, "footer lacks a numeric \"samples_dropped\"");
      }
      saw_footer = true;
      continue;
    }
    if (kind->AsString() != "sample") {
      return LineError(line_no, "unknown record kind \"" + kind->AsString() + "\"");
    }
    for (const char* key : {"seq", "t_s", "interval_s", "phase_index", "started",
                            "completed", "failed", "ops_per_s", "trace_dropped"}) {
      const perf::JsonValue* value = record.Find(key);
      if (value == nullptr || !value->is_number()) {
        return LineError(line_no, std::string("sample lacks numeric \"") + key + "\"");
      }
    }
    const perf::JsonValue* latency = record.Find("latency_ms");
    if (latency == nullptr || !latency->is_object()) {
      return LineError(line_no, "sample lacks the \"latency_ms\" object");
    }
    for (const char* key : {"count", "p50", "p90", "p99", "p999", "max"}) {
      const perf::JsonValue* value = latency->Find(key);
      if (value == nullptr || !value->is_number()) {
        return LineError(line_no, std::string("latency_ms lacks numeric \"") + key + "\"");
      }
    }
    const auto seq = static_cast<int64_t>(record.Find("seq")->AsNumber());
    const double t_s = record.Find("t_s")->AsNumber();
    if (seq <= prev_seq) {
      return LineError(line_no, "seq not strictly increasing");
    }
    if (t_s < prev_t) {
      return LineError(line_no, "t_s decreased");
    }
    prev_seq = seq;
    prev_t = t_s;
    ++samples;
  }
  if (!saw_header) {
    return "empty stream: no header record";
  }
  if (!saw_footer) {
    return "truncated stream: no footer record";
  }
  return "";
}

}  // namespace sb7::telemetry
