// Hardware performance counters via perf_event_open(2): cycles,
// instructions, LLC misses and backend-stalled cycles for the whole process.
//
// The counters are opened with inherit=1, so child threads created *after*
// Start() are counted too — the driver opens them before spawning workers
// and every Read() returns the sum over all worker threads. Each event is
// individually optional (stalled-cycles in particular is unsupported on
// many parts); the whole facility degrades to available()=false when
// perf_event_open is missing (non-Linux), the syscall is denied
// (perf_event_paranoid, seccomp, containers) or no event opens. Callers
// treat an unavailable HwSample as "no data", never as zeros.

#ifndef STMBENCH7_SRC_TELEMETRY_HWCOUNTERS_H_
#define STMBENCH7_SRC_TELEMETRY_HWCOUNTERS_H_

#include <string>

#include "src/telemetry/series.h"

namespace sb7::telemetry {

class HwCounters {
 public:
  HwCounters() = default;
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  // Opens the events for the calling process. Must run before the counted
  // threads are spawned (inherit only covers descendants). Returns whether
  // at least the cycle counter opened; `detail` (optional) receives a
  // human-readable reason when it did not.
  bool Start(std::string* detail);

  // Cumulative reading since Start; {available=false} before Start/after
  // Stop or when Start failed. Safe from any thread.
  HwSample Read() const;

  void Stop();

  bool available() const { return available_; }

 private:
  enum Slot { kCycles = 0, kInstructions, kLlcMisses, kStalledCycles, kSlotCount };

  int fds_[kSlotCount] = {-1, -1, -1, -1};
  bool available_ = false;
};

}  // namespace sb7::telemetry

#endif  // STMBENCH7_SRC_TELEMETRY_HWCOUNTERS_H_
