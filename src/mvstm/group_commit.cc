#include "src/mvstm/group_commit.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/common/diag.h"
#include "src/mvstm/mvstm.h"
#include "src/stm/lock_table.h"

namespace sb7 {
namespace {

// Spin-wait step for the member/leader protocol. Under the interleaving
// explorer this must be a schedulable yield (a blocking wait would deadlock
// the cooperative scheduler); in a real run a short pause beats a syscall
// while the leader is mid-group, with a thread yield as pressure valve.
void SpinPause(int& spins) {
  if (sp::UnderMcScheduler()) {
    sp::SyncPoint(nullptr, sp::OpKind::kYield);
    return;
  }
  if (++spins < 64) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
    return;
  }
  spins = 0;
  std::this_thread::yield();
}

}  // namespace

GroupCommitSequencer::GroupCommitSequencer(redo::RedoLogWriter* writer,
                                           size_t max_group)
    : writer_(writer),
      max_group_(writer->durability() == redo::Durability::kAlways
                     ? 1
                     : std::max<size_t>(1, max_group)) {}

void GroupCommitSequencer::ValidateMember(Enrollee* node, const Group& group) {
  MvTx& tx = *node->tx;
  // The TL2 validation skip is sound only when no other commit can have
  // interleaved between this transaction's reads and the group's write
  // version. A multi-member group is itself that interleaving.
  const bool ok = (group.size == 1 && group.wv == tx.start_ts_ + 1)
                      ? true
                      : tx.ValidateReadSet();
  // mo: release — the leader's acquire load of the outcome must also see any
  // abort-cause state this validation produced on the member's behalf.
  node->outcome.store(ok ? kValidated : kEvicted, std::memory_order_release);
}

void GroupCommitSequencer::LeadPending(Enrollee* self) {
  // mo: acq_rel — acquire the pushers' release CASes (node fields and next
  // links are plain data published by the push); release so a re-push of the
  // emptied slot orders after this pop.
  Enrollee* top = pending_.exchange(nullptr, std::memory_order_acq_rel);
  if (top == nullptr) {
    return;
  }
  // The stack pops newest-first; reverse to enrollment order so the log reads
  // naturally. Within a group the order carries no meaning — members hold
  // disjoint write stripes and share one commit timestamp.
  std::vector<Enrollee*> nodes;
  for (Enrollee* node = top; node != nullptr; node = node->next) {
    nodes.push_back(node);
  }
  std::reverse(nodes.begin(), nodes.end());

  size_t begin = 0;
  while (begin < nodes.size()) {
    const size_t count = std::min(max_group_, nodes.size() - begin);
    Group* group = new Group;
    group->size = count;
    // One timestamp fence for the whole group: every member commits at wv.
    group->wv = LockTable::ClockAdvance();
    for (size_t i = begin; i < begin + count; ++i) {
      // mo: release — publishes wv and size to the claimed member.
      nodes[i]->group.store(group, std::memory_order_release);
    }
    // Our own transaction validates inline (validation must run on the
    // owning thread: abort causes land in thread-local state); everyone else
    // validates concurrently on their own threads.
    if (self != nullptr) {
      // mo: relaxed — our own store from the claim loop above.
      if (self->group.load(std::memory_order_relaxed) == group) {
        ValidateMember(self, *group);
      }
    }
    redo::GroupRecord record;
    record.group_seq = group_seq_;
    record.commit_ts = group->wv;
    record.members.reserve(count);
    for (size_t i = begin; i < begin + count; ++i) {
      int outcome = kPending;
      int spins = 0;
      // mo: acquire — pairs with the member's release store; after this we
      // may read the member's record.
      while ((outcome = nodes[i]->outcome.load(std::memory_order_acquire)) ==
             kPending) {
        SpinPause(spins);
      }
      if (outcome == kValidated) {
        record.members.push_back(nodes[i]->record);
      }
    }
    // A fully evicted group appends nothing and consumes no sequence number;
    // the wasted clock tick is harmless (timestamps need not be dense).
    if (!record.members.empty()) {
      writer_->AppendGroup(record);
      ++group_seq_;
    }
    // mo: release — the append (or the decision to skip it) happens-before
    // any member's publish; pairs with the members' acquire.
    group->published.store(1, std::memory_order_release);
    begin += count;
  }
}

bool GroupCommitSequencer::CommitThrough(MvTx& tx, uint64_t* wv_out) {
  SB7_DCHECK(!tx.write_log_.empty());
  Enrollee node;
  node.tx = &tx;
  node.record = redo::CurrentAttemptContext();

  // mo: relaxed load seed + release CAS — the CAS publishes the node's plain
  // fields (tx, record, next) to whichever leader pops the stack.
  Enrollee* head = pending_.load(std::memory_order_relaxed);
  do {
    node.next = head;
  } while (!pending_.compare_exchange_weak(head, &node,
                                           std::memory_order_release));

  bool validated = false;
  int spins = 0;
  for (;;) {
    // mo: acquire — pairs with the leader's release store after it fixed the
    // group's wv and size.
    Group* group = node.group.load(std::memory_order_acquire);
    if (group == nullptr) {
      // Unclaimed. If no leader is running, become one — this is what keeps
      // a late enrollee from stranding behind a leader that popped the stack
      // before our push landed.
      uint32_t expected = 0;
      // mo: acq_rel — taking the slot orders after the previous leader's
      // appends (group_seq_ is plain leader-only state).
      if (leader_busy_.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
        LeadPending(&node);
        // mo: release — hands group_seq_ and the writer to the next leader.
        leader_busy_.store(0, std::memory_order_release);
        continue;
      }
      SpinPause(spins);
      continue;
    }
    if (!validated) {
      validated = true;
      // Leaders validate their own node inside LeadPending; if that already
      // happened our outcome is set and re-validating would be redundant.
      // mo: relaxed — reading our own thread's store.
      if (node.outcome.load(std::memory_order_relaxed) == kPending) {
        ValidateMember(&node, *group);
      }
    }
    // mo: acquire — the log append happens-before our publish (write-ahead
    // rule); pairs with the leader's release.
    if (group->published.load(std::memory_order_acquire) == 0) {
      SpinPause(spins);
      continue;
    }
    // mo: relaxed — our own thread stored the outcome.
    const bool ok = node.outcome.load(std::memory_order_relaxed) == kValidated;
    *wv_out = group->wv;
    // size must be read before the fetch_add: the RMW is this member's last
    // access to the group — anything after it races the last member's delete.
    const size_t size = group->size;
    // mo: acq_rel — the last member must see every other member's final
    // access to the group before freeing it.
    if (group->done.fetch_add(1, std::memory_order_acq_rel) + 1 == size) {
      delete group;
    }
    return ok;
  }
}

}  // namespace sb7
