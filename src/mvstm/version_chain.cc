#include "src/mvstm/version_chain.h"

#include <atomic>

#include "src/common/diag.h"
#include "src/ebr/ebr.h"
#include "src/stm/lock_table.h"
#include "src/stm/stm.h"

namespace sb7 {

namespace internal {

void FreeMvHistoryHead(void* head) { delete static_cast<MvVersion*>(head); }

}  // namespace internal

void VersionChain::Publish(TxFieldBase& field, uint64_t value, uint64_t commit_ts) {
  // mo: relaxed — the committer holds this field's stripe lock, so it is the
  // only possible writer of the head and the word until it unlocks.
  auto* old_head = static_cast<MvVersion*>(field.LoadMvHistory(std::memory_order_relaxed));
  if (old_head == nullptr) {
    // First write ever: synthesize the pre-history version so that readers
    // with a start timestamp below `commit_ts` still find their snapshot.
    old_head = new MvVersion{field.LoadRaw(std::memory_order_relaxed), 0, nullptr};
  }
  auto* node = new MvVersion{value, commit_ts, old_head};
  // Publish the version before the in-place word: a reader that sees the new
  // word but a null history head would misattribute it to the pre-history
  // snapshot (see the chain-empty fallback in ReadAtSnapshot).
  // mo: release (both) — the node's fields must be visible before the head
  // pointer, and the head before the word (readers load in reverse order).
  field.StoreMvHistory(node, std::memory_order_release);
  field.StoreRaw(value, std::memory_order_release);
  // The displaced node stays reachable (node->next) for the read-only
  // transactions that still need it; EBR frees it only once every registered
  // thread has quiesced, i.e. once those transactions have finished. Later
  // transactions pin start_ts >= commit_ts and stop their walk at `node`.
  EbrDomain::Global().RetireObject(old_head);
}

uint64_t VersionChain::ReadAtSnapshot(const TxFieldBase& field, uint64_t snapshot_ts) {
  // Safety hinges on the commit protocol's lock-before-clock-advance order
  // (MvTx::TryCommit, as in TL2): a commit with timestamp wv holds all its
  // stripe locks before the clock can reach wv. Hence, for any reader whose
  // snapshot_ts came from the clock, an UNLOCKED stripe proves that every
  // commit to it with timestamp <= snapshot_ts has fully published its
  // versions — the word and the chain can be trusted. A LOCKED stripe may
  // carry an in-flight commit that belongs in this snapshot, so the reader
  // waits out the (short) publish+release window instead of serving a
  // possibly pre-commit state. Waiting is not aborting: the reader stays
  // abort-free, it is merely not wait-free across a rival's commit point.
  const sp::AtomicU64& stripe = LockTable::Global().StripeOf(field);
  for (int attempt = 0;; ++attempt) {
    Backoff::Pause(attempt);
    // mo: acquire — an unlocked word pairs with the last committer's release,
    // making its published chain and writeback visible.
    const uint64_t pre = stripe.load(std::memory_order_acquire);
    if (LockTable::IsLocked(pre)) {
      continue;
    }
    if (LockTable::VersionOf(pre) <= snapshot_ts) {
      // The stripe's newest commit is within the snapshot: the in-place word
      // is the snapshot value. The post-check rejects words torn by a commit
      // that locked the stripe between the two loads.
      const uint64_t word = field.LoadRaw(std::memory_order_acquire);
      // mo: acquire — seqlock post-check; pairs with lockers' CAS.
      if (stripe.load(std::memory_order_acquire) == pre) {
        return word;
      }
      continue;
    }
    // Stripe newer than the snapshot (possibly on behalf of a colliding
    // field) but unlocked: the version this reader needs is already in the
    // chain. Load the word BEFORE the history head: writers publish the head
    // before the word, so a null head here proves the word read below
    // predates every committed write to this field — it is the pre-history
    // value, committed at ts 0.
    const uint64_t word = field.LoadRaw(std::memory_order_acquire);
    // mo: acquire — pairs with Publish's release; seeing the head implies the
    // node contents (value, commit_ts, next) are initialized.
    const auto* node =
        static_cast<const MvVersion*>(field.LoadMvHistory(std::memory_order_acquire));
    if (node == nullptr) {
      return word;
    }
    for (; node != nullptr; node = node->next) {
      if (node->commit_ts <= snapshot_ts) {
        return node->value;
      }
    }
    // Unreachable: every chain bottoms out at a version with commit_ts 0.
    SB7_CHECK(false && "mvstm: version chain missing snapshot version");
  }
}

namespace {
std::atomic<int64_t> g_live_mv_nodes{0};
}  // namespace

void* MvVersion::operator new(size_t size) {
  // mo: relaxed — leak-check tally; read single-threaded in tests.
  g_live_mv_nodes.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(size);
}

void MvVersion::operator delete(void* ptr) {
  // mo: relaxed — leak-check tally; read single-threaded in tests.
  g_live_mv_nodes.fetch_sub(1, std::memory_order_relaxed);
  ::operator delete(ptr);
}

// mo: relaxed — leak-check tally; read single-threaded in tests.
int64_t MvVersion::LiveNodeCount() { return g_live_mv_nodes.load(std::memory_order_relaxed); }

}  // namespace sb7
