// Durable redo log for the mvstm backend (docs/DURABILITY.md).
//
// The log is *logical*: each record re-describes a committed update
// transaction as the operation it ran plus everything that made the run
// deterministic — the operation index, the RNG state at the start of the
// committed attempt, and the hotspot skew active at the time. Because mvstm
// serializes update transactions at their commit timestamps (TL2 validation),
// replaying the records single-threaded in log order re-executes the exact
// serial history the concurrent run was equivalent to, and the recovered
// world's deep fingerprint (src/check/fingerprint.h) equals the original's.
// Physical (field, value) logging is impossible here — field identity is a
// memory address and some field words are heap pointers — and unnecessary:
// operations are pure functions of (transactional state, RNG stream, theta).
//
// On-disk format (all integers little-endian, encoded byte-by-byte like
// src/net/wire.*; no struct punning):
//
//     frame  := u32 body_len | u32 header_crc | body | u32 body_crc
//     body   := u8 record_type | payload
//
// header_crc is the CRC-32C of the four body_len bytes, body_crc the CRC-32C
// of the body. Covering the length with its own checksum makes every
// single-bit flip in a frame deterministically detectable: a flipped length
// can never silently re-frame the stream, and CRC-32C detects all single-bit
// errors in the body. A log is a file-header record, then group records
// (one per commit group, carrying the group's members), then — on clean
// shutdown only — a close record. Recovery accepts a torn tail (the kill -9
// common case): everything up to the last complete record is replayed and
// the truncation is reported in the RecoverySummary.

#ifndef STMBENCH7_SRC_MVSTM_REDO_LOG_H_
#define STMBENCH7_SRC_MVSTM_REDO_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"

namespace sb7::redo {

// Pinned by sb7-lint R4 against tools/lint/schema.lock: bumping the record
// layout without bumping this constant fails the lint gate.
constexpr uint32_t kRedoLogFormatVersion = 1;

// "SB7R" little-endian, first payload field of the file-header record.
constexpr uint32_t kRedoMagic = 0x52374253;

// A group record holds at most a few hundred members of ~50 bytes each;
// a length prefix beyond this bound is corruption, not a big record.
constexpr uint32_t kMaxRedoBodyBytes = 1u << 20;

// Sentinel op_index for commits made outside the operation registry (raw
// RunAtomically bodies in tests and litmus runs). Such logs replay as an
// error — only registry operations are re-executable.
constexpr uint16_t kRawOpIndex = 0xFFFF;

enum class RecordType : uint8_t {
  kFileHeader = 1,
  kGroup = 2,
  kClose = 3,
};

struct FileHeaderRecord {
  uint32_t magic = kRedoMagic;
  uint32_t version = kRedoLogFormatVersion;
  uint64_t seed = 0;       // structure-build seed (DataHolder::Setup)
  std::string scale;       // "tiny" | "small" | "medium"
  std::string backend;     // strategy that wrote the log (informational)
};

// One committed update transaction: everything needed to re-execute its
// operation deterministically against the replayed world.
struct MemberRecord {
  uint16_t op_index = kRawOpIndex;
  uint64_t client_tag = 0;       // ingress request_id; 0 for local operations
  double theta = 0.0;            // hotspot skew active at the attempt
  uint64_t rng[4] = {0, 0, 0, 0};  // xoshiro256++ state at attempt start
};

struct GroupRecord {
  uint64_t group_seq = 0;   // contiguous from 0; scan rejects gaps
  uint64_t commit_ts = 0;   // the group's shared write version
  std::vector<MemberRecord> members;
};

struct CloseRecord {
  uint64_t groups = 0;
  uint64_t members = 0;
};

struct RedoRecord {
  RecordType type = RecordType::kFileHeader;
  FileHeaderRecord header;
  GroupRecord group;
  CloseRecord close;
};

// CRC-32C (Castagnoli), table-driven software implementation.
uint32_t Crc32(const void* data, size_t len);

// Payload codecs: Encode* returns the record body (type byte + payload);
// DecodeRecord rejects truncated or type-unknown bodies. Framing is separate
// so tests can corrupt the two layers independently.
std::string EncodeFileHeader(const FileHeaderRecord& record);
std::string EncodeGroup(const GroupRecord& record);
std::string EncodeClose(const CloseRecord& record);
bool DecodeRecord(const std::string& body, RedoRecord* out);

// Appends `body` to `out` as one frame (length + header crc + body + crc).
void AppendRecordFrame(std::string* out, const std::string& body);

enum class ExtractStatus {
  kRecord,    // one complete frame extracted; *offset advanced past it
  kEnd,       // clean end of input
  kTornTail,  // input ends inside a frame (torn write / truncation)
  kCorrupt,   // checksum or length-bound violation
};

// Extracts the next frame body from `bytes` starting at *offset. On
// kTornTail/kCorrupt, *detail describes the stop reason and *offset is left
// at the bad frame.
ExtractStatus TryExtractRecord(const std::string& bytes, size_t* offset,
                               std::string* body, std::string* detail);

// ---------------------------------------------------------------------------
// Writer

enum class Durability {
  kOff,     // append only; no fsync until Close
  kGroup,   // one fsync per commit group
  kAlways,  // groups of one, fsync per commit
};

bool ParseDurability(std::string_view name, Durability* out);
const char* DurabilityName(Durability durability);

// Fault-injection seam for the crash-recovery tests: the writer wounds its
// own file at the configured group and fires.
enum class CrashPoint {
  kNone,
  kBeforeAppend,  // record never reaches the file
  kTornWrite,     // only a prefix of the frame reaches the file
  kAfterAppend,   // full frame written, fsync skipped
};

bool ParseCrashPoint(std::string_view name, CrashPoint* out);
const char* CrashPointName(CrashPoint point);

struct CrashConfig {
  CrashPoint point = CrashPoint::kNone;
  uint64_t at_group = 0;  // group_seq the crash fires on
  // Invoked after the wound; the CLI leaves this unset, which _Exit(137)s
  // the process. Tests install a flag-setting hook, after which the writer
  // is dead: every later append and the close record are dropped, so the
  // file stays exactly in its crash state.
  std::function<void()> on_fire;
};

struct WriterStats {
  uint64_t groups = 0;
  uint64_t members = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
};

// Append-side of the log. All appends come from the group-commit leader
// while it holds the leader slot, so the writer needs no internal locking;
// WriteFileHeader precedes the workers and Close follows their join.
class RedoLogWriter {
 public:
  // File-backed when `path` is non-empty (created/truncated); in-memory
  // otherwise (tests, litmus runs under the interleaving explorer).
  RedoLogWriter(std::string path, Durability durability);
  ~RedoLogWriter();
  RedoLogWriter(const RedoLogWriter&) = delete;
  RedoLogWriter& operator=(const RedoLogWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void SetCrashConfig(CrashConfig crash) { crash_ = std::move(crash); }

  void WriteFileHeader(uint64_t seed, const std::string& scale,
                       const std::string& backend);
  void AppendGroup(const GroupRecord& group);
  // Clean shutdown: close record + final fsync (every policy). Idempotent.
  void Close();

  // True once a crash point fired; the file is frozen in its crash state.
  bool dead() const { return dead_; }
  bool closed() const { return closed_; }
  const WriterStats& stats() const { return stats_; }
  Durability durability() const { return durability_; }
  const std::string& path() const { return path_; }
  // In-memory mode only: the bytes a file would hold.
  const std::string& memory_buffer() const { return memory_; }

 private:
  void WriteRaw(const char* data, size_t len);
  void Fsync();
  void Fire();

  std::string path_;
  Durability durability_;
  int fd_ = -1;
  std::string memory_;
  bool ok_ = true;
  std::string error_;
  bool dead_ = false;
  bool closed_ = false;
  CrashConfig crash_;
  WriterStats stats_;
};

// ---------------------------------------------------------------------------
// Recovery

struct RecoverySummary {
  bool header_ok = false;
  FileHeaderRecord header;
  uint64_t groups = 0;
  uint64_t members = 0;
  bool clean_close = false;  // intact close record matching the group count
  bool torn_tail = false;    // input ended inside a record
  bool corrupt = false;      // checksum / framing violation stopped the scan
  uint64_t bytes_consumed = 0;
  uint64_t bytes_total = 0;
  std::string detail;        // human-readable stop reason when torn/corrupt
};

// Sequentially scans `bytes`, collecting the complete, checksum-valid group
// records in order and describing the stop condition in `summary`. A torn or
// corrupt tail is not a scan failure — the records before it are good.
void ScanLog(const std::string& bytes, std::vector<GroupRecord>* groups,
             RecoverySummary* summary);

bool ReadLogFile(const std::string& path, std::string* bytes, std::string* error);

struct ReplayResult {
  bool ok = false;          // scan legal and, if replayed, invariants held
  std::string error;        // set when ok == false
  RecoverySummary summary;
  bool replayed = false;    // a world was rebuilt (requires an intact header)
  uint64_t fingerprint = 0; // DeepFingerprint of the recovered world
  int64_t ops_replayed = 0;
  std::vector<std::string> invariant_violations;
};

// Rebuilds the world from the log header's (seed, scale), then re-executes
// every logged member single-threaded in log order under `backend` (any
// MakeStrategy name; the fingerprint is content-based, so replays under
// different backends must agree). A log whose header never reached the disk
// recovers the empty world: ok, replayed == false.
ReplayResult RecoverFromBytes(const std::string& bytes, const std::string& backend);
ReplayResult RecoverFromLog(const std::string& path, const std::string& backend);

// Formats a --recover style terminal report (also used by tools/crash_loop.sh,
// which greps the "fingerprint:" line).
std::string FormatReplayResult(const ReplayResult& result);

// ---------------------------------------------------------------------------
// Replay-context capture (thread-local)
//
// StmStrategy::Execute snapshots the capture context at the top of every
// attempt (rng state, op index, hotspot theta, ingress client tag); the
// group-commit sequencer reads the snapshot of the attempt that committed
// and writes it into the member record. The serve front-end tags requests so
// `acked ⊆ durable` is checkable against the recovered log.

void SetCaptureClientTag(uint64_t tag);
void CaptureAttemptContext(const Rng& rng);
const MemberRecord& CurrentAttemptContext();

}  // namespace sb7::redo

#endif  // STMBENCH7_SRC_MVSTM_REDO_LOG_H_
