#include "src/mvstm/mvstm.h"

#include <algorithm>

#include "src/common/diag.h"
#include "src/ebr/ebr.h"
#include "src/mvstm/group_commit.h"
#include "src/mvstm/version_chain.h"

namespace sb7 {

std::unique_ptr<TxImplBase> MvStm::CreateTx() {
  return std::make_unique<MvTx>(stats(), sequencer_);
}

void MvTx::SetReadOnly(bool read_only) {
  // Called once per RunAtomically execution, before the first attempt.
  hint_read_only_ = read_only;
  demoted_ = false;
}

void MvTx::BeginAttempt() {
  read_only_ = hint_read_only_ && !demoted_;
  if (read_only_) {
    // Passing through a quiescent state here (a) lazily registers the thread
    // with the EBR domain and (b) is the last quiescence until the
    // transaction ends, so every version node retired from now on survives
    // until this snapshot read is over. Must precede the clock read: the
    // grace-period argument in version_chain.h needs start_ts_ >= the commit
    // timestamp of any node whose retirement we failed to observe.
    EbrDomain::Global().Quiesce();
  }
  start_ts_ = LockTable::ClockNow();
  read_set_.clear();
  write_log_.clear();
  write_index_.clear();
  acquired_.clear();
  local_reads_ = local_writes_ = local_validation_steps_ = 0;
}

void MvTx::FlushLocalStats() {
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.reads.fetch_add(local_reads_, std::memory_order_relaxed);
  stats_.writes.fetch_add(local_writes_, std::memory_order_relaxed);
  stats_.validation_steps.fetch_add(local_validation_steps_, std::memory_order_relaxed);
}

uint64_t MvTx::Read(const TxFieldBase& field) {
  ++local_reads_;
  if (read_only_) {
    return VersionChain::ReadAtSnapshot(field, start_ts_);
  }
  if (!write_index_.empty()) {
    auto it = write_index_.find(&field);
    if (it != write_index_.end()) {
      return write_log_[it->second].value;
    }
  }
  const sp::AtomicU64& stripe = LockTable::Global().StripeOf(field);
  // mo: acquire (all three) — seqlock-style bracket around the data read;
  // pairs with committers' release of the stripe (see Tl2Tx::Read).
  const uint64_t pre = stripe.load(std::memory_order_acquire);
  const uint64_t value = field.LoadRaw(std::memory_order_acquire);
  const uint64_t post = stripe.load(std::memory_order_acquire);
  if (LockTable::IsLocked(pre) || pre != post || LockTable::VersionOf(pre) > start_ts_) {
    SetTxAbortCause(AbortCause::kReadValidation, &stripe);
    throw TxAborted{};
  }
  read_set_.push_back(&stripe);
  return value;
}

void MvTx::Write(TxFieldBase& field, uint64_t value) {
  if (read_only_) {
    // The read-only promise was wrong (a mislabeled operation). The snapshot
    // path recorded no read set, so the attempt cannot be upgraded in place;
    // abort once and rerun every later attempt in update mode.
    demoted_ = true;
    SetTxAbortCause(AbortCause::kSnapshotTooOld,
                    &LockTable::Global().StripeOf(field));
    throw TxAborted{};
  }
  ++local_writes_;
  auto [it, inserted] = write_index_.try_emplace(&field, write_log_.size());
  if (inserted) {
    write_log_.push_back(WriteEntry{&field, value});
  } else {
    write_log_[it->second].value = value;
  }
}

bool MvTx::AcquireWriteStripes() {
  // Sorted by address so concurrent committers collide cleanly (see Tl2Tx).
  std::vector<sp::AtomicU64*> stripes;
  stripes.reserve(write_log_.size());
  for (const WriteEntry& entry : write_log_) {
    stripes.push_back(&LockTable::Global().StripeOf(*entry.field));
  }
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());

  acquired_.reserve(stripes.size());
  for (sp::AtomicU64* stripe : stripes) {
    // mo: acquire probe, acq_rel CAS — see Tl2Tx::AcquireWriteStripes.
    uint64_t word = stripe->load(std::memory_order_acquire);
    if (LockTable::IsLocked(word) ||
        !stripe->compare_exchange_strong(word, LockTable::MakeLocked(this),
                                         std::memory_order_acq_rel)) {
      SetTxAbortCause(AbortCause::kWriteLock, stripe);
      ReleaseAcquired(0, /*use_saved=*/true);
      return false;
    }
    acquired_.push_back(AcquiredStripe{stripe, word});
  }
  return true;
}

void MvTx::ReleaseAcquired(uint64_t unlock_version, bool use_saved) {
  for (const AcquiredStripe& held : acquired_) {
    // mo: release — unlocking publishes the version-chain nodes and the
    // in-place writeback this commit produced.
    held.stripe->store(use_saved ? held.saved_word : LockTable::MakeVersion(unlock_version),
                       std::memory_order_release);
  }
  acquired_.clear();
}

bool MvTx::ValidateReadSet() {
  TxValidationScope validation;
  validation.set_steps(read_set_.size());
  local_validation_steps_ += static_cast<int64_t>(read_set_.size());
  for (const sp::AtomicU64* stripe : read_set_) {
    // mo: acquire — pairs with committers' release stores on the stripe.
    const uint64_t word = stripe->load(std::memory_order_acquire);
    uint64_t effective = word;
    if (LockTable::IsLocked(word)) {
      if (LockTable::OwnerOf(word) != this) {
        SetTxAbortCause(AbortCause::kReadValidation, stripe);
        return false;
      }
      // Locked by our own commit: validate against the pre-lock version (a
      // rival may have committed between our read and our lock acquisition).
      const auto it = std::lower_bound(
          acquired_.begin(), acquired_.end(), stripe,
          [](const AcquiredStripe& held, const sp::AtomicU64* key) {
            return held.stripe < key;
          });
      SB7_DCHECK(it != acquired_.end() && it->stripe == stripe);
      effective = it->saved_word;
    }
    if (LockTable::VersionOf(effective) > start_ts_) {
      SetTxAbortCause(AbortCause::kReadValidation, stripe);
      return false;
    }
  }
  return true;
}

bool MvTx::TryCommit() {
  if (read_only_ || write_log_.empty()) {
    // Snapshot reads are consistent at start_ts_ by construction; update-mode
    // reads were validated per read against start_ts_. Either way a
    // write-free transaction serializes at its start point.
    FlushLocalStats();
    RunCommitHooks();
    return true;
  }
  if (!AcquireWriteStripes()) {
    FlushLocalStats();
    RunAbortHooks();
    return false;
  }
  if (sequencer_ != nullptr) {
    // Group-commit path (group_commit.h): the group's leader takes the clock
    // tick and drives the redo-log append; validation runs inside
    // CommitThrough on this thread. On success the append (per the log's
    // durability policy) has already happened, so publishing here keeps the
    // write-ahead rule: no version becomes visible that the log does not
    // describe.
    uint64_t wv = 0;
    if (!sequencer_->CommitThrough(*this, &wv)) {
      ReleaseAcquired(0, /*use_saved=*/true);
      FlushLocalStats();
      RunAbortHooks();
      return false;
    }
    for (const WriteEntry& entry : write_log_) {
      VersionChain::Publish(*entry.field, entry.value, wv);
    }
    ReleaseAcquired(wv, /*use_saved=*/false);
    FlushLocalStats();
    RunCommitHooks();
    return true;
  }
  const uint64_t wv = LockTable::ClockAdvance();
  if (wv != start_ts_ + 1 && !ValidateReadSet()) {
    ReleaseAcquired(0, /*use_saved=*/true);
    FlushLocalStats();
    RunAbortHooks();
    return false;
  }
  // Past this point the commit cannot fail: publish the versions. Publishing
  // before the stripes unlock is what lets a concurrent snapshot reader with
  // start_ts >= wv proceed without waiting for the unlock.
  for (const WriteEntry& entry : write_log_) {
    VersionChain::Publish(*entry.field, entry.value, wv);
  }
  ReleaseAcquired(wv, /*use_saved=*/false);
  FlushLocalStats();
  RunCommitHooks();
  return true;
}

void MvTx::AbortSelf() {
  SB7_DCHECK(acquired_.empty());
  FlushLocalStats();
  RunAbortHooks();
}

}  // namespace sb7
