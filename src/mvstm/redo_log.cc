#include "src/mvstm/redo_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/check/fingerprint.h"
#include "src/common/hotspot.h"
#include "src/core/data_holder.h"
#include "src/core/invariants.h"
#include "src/core/parameters.h"
#include "src/ebr/ebr.h"
#include "src/ops/operation.h"
#include "src/stm/field.h"
#include "src/strategy/strategy.h"

namespace sb7::redo {
namespace {

// Little-endian, byte-by-byte codec helpers (same discipline as
// src/net/wire.cc: the format must be identical across hosts).
void AppendU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
}

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendDouble(std::string* out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// Short strings (scale / backend names): u8 length + bytes.
void AppendString(std::string* out, const std::string& value) {
  const size_t len = value.size() < 255 ? value.size() : 255;
  out->push_back(static_cast<char>(len));
  out->append(value.data(), len);
}

// Bounds-checked reader over a record body.
struct BodyReader {
  const std::string& body;
  size_t pos = 0;

  bool ReadU8(uint8_t* out) {
    if (pos + 1 > body.size()) {
      return false;
    }
    *out = static_cast<uint8_t>(body[pos++]);
    return true;
  }
  bool ReadU16(uint16_t* out) {
    if (pos + 2 > body.size()) {
      return false;
    }
    *out = static_cast<uint16_t>(static_cast<uint8_t>(body[pos]) |
                                 (static_cast<uint8_t>(body[pos + 1]) << 8));
    pos += 2;
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (pos + 4 > body.size()) {
      return false;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(body[pos + i])) << (8 * i);
    }
    pos += 4;
    *out = value;
    return true;
  }
  bool ReadU64(uint64_t* out) {
    if (pos + 8 > body.size()) {
      return false;
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(body[pos + i])) << (8 * i);
    }
    pos += 8;
    *out = value;
    return true;
  }
  bool ReadDouble(double* out) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) {
      return false;
    }
    __builtin_memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool ReadString(std::string* out) {
    uint8_t len = 0;
    if (!ReadU8(&len) || pos + len > body.size()) {
      return false;
    }
    out->assign(body, pos, len);
    pos += len;
    return true;
  }
  bool AtEnd() const { return pos == body.size(); }
};

// Frame layout constants: u32 body_len + u32 header_crc, then body, then
// u32 body_crc.
constexpr size_t kFrameHeaderBytes = 8;
constexpr size_t kFrameTrailerBytes = 4;

thread_local uint64_t tls_client_tag = 0;
thread_local MemberRecord tls_attempt_context;

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  // CRC-32C (Castagnoli). Table built once; the polynomial's single-bit
  // error detection is what makes the corruption sweep deterministic.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (0x82F63B78u ^ (crc >> 1)) : (crc >> 1);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFileHeader(const FileHeaderRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(RecordType::kFileHeader));
  AppendU32(&body, record.magic);
  AppendU32(&body, record.version);
  AppendU64(&body, record.seed);
  AppendString(&body, record.scale);
  AppendString(&body, record.backend);
  return body;
}

std::string EncodeGroup(const GroupRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(RecordType::kGroup));
  AppendU64(&body, record.group_seq);
  AppendU64(&body, record.commit_ts);
  AppendU16(&body, static_cast<uint16_t>(record.members.size()));
  for (const MemberRecord& member : record.members) {
    AppendU16(&body, member.op_index);
    AppendU64(&body, member.client_tag);
    AppendDouble(&body, member.theta);
    for (uint64_t word : member.rng) {
      AppendU64(&body, word);
    }
  }
  return body;
}

std::string EncodeClose(const CloseRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(RecordType::kClose));
  AppendU64(&body, record.groups);
  AppendU64(&body, record.members);
  return body;
}

bool DecodeRecord(const std::string& body, RedoRecord* out) {
  BodyReader reader{body};
  uint8_t type = 0;
  if (!reader.ReadU8(&type)) {
    return false;
  }
  switch (static_cast<RecordType>(type)) {
    case RecordType::kFileHeader: {
      out->type = RecordType::kFileHeader;
      FileHeaderRecord& header = out->header;
      return reader.ReadU32(&header.magic) && reader.ReadU32(&header.version) &&
             reader.ReadU64(&header.seed) && reader.ReadString(&header.scale) &&
             reader.ReadString(&header.backend) && reader.AtEnd();
    }
    case RecordType::kGroup: {
      out->type = RecordType::kGroup;
      GroupRecord& group = out->group;
      uint16_t count = 0;
      if (!reader.ReadU64(&group.group_seq) || !reader.ReadU64(&group.commit_ts) ||
          !reader.ReadU16(&count)) {
        return false;
      }
      group.members.assign(count, MemberRecord{});
      for (MemberRecord& member : group.members) {
        if (!reader.ReadU16(&member.op_index) || !reader.ReadU64(&member.client_tag) ||
            !reader.ReadDouble(&member.theta)) {
          return false;
        }
        for (uint64_t& word : member.rng) {
          if (!reader.ReadU64(&word)) {
            return false;
          }
        }
      }
      return reader.AtEnd();
    }
    case RecordType::kClose: {
      out->type = RecordType::kClose;
      return reader.ReadU64(&out->close.groups) && reader.ReadU64(&out->close.members) &&
             reader.AtEnd();
    }
    default:
      return false;
  }
}

void AppendRecordFrame(std::string* out, const std::string& body) {
  std::string len_bytes;
  AppendU32(&len_bytes, static_cast<uint32_t>(body.size()));
  out->append(len_bytes);
  AppendU32(out, Crc32(len_bytes.data(), len_bytes.size()));
  out->append(body);
  AppendU32(out, Crc32(body.data(), body.size()));
}

ExtractStatus TryExtractRecord(const std::string& bytes, size_t* offset,
                               std::string* body, std::string* detail) {
  const size_t remaining = bytes.size() - *offset;
  if (remaining == 0) {
    return ExtractStatus::kEnd;
  }
  if (remaining < kFrameHeaderBytes) {
    *detail = "truncated frame header";
    return ExtractStatus::kTornTail;
  }
  BodyReader header{bytes, *offset};
  uint32_t body_len = 0;
  uint32_t header_crc = 0;
  header.ReadU32(&body_len);
  header.ReadU32(&header_crc);
  if (Crc32(bytes.data() + *offset, 4) != header_crc) {
    *detail = "frame length checksum mismatch";
    return ExtractStatus::kCorrupt;
  }
  if (body_len == 0 || body_len > kMaxRedoBodyBytes) {
    *detail = "frame length out of range";
    return ExtractStatus::kCorrupt;
  }
  if (remaining < kFrameHeaderBytes + body_len + kFrameTrailerBytes) {
    *detail = "truncated record body";
    return ExtractStatus::kTornTail;
  }
  const size_t body_start = *offset + kFrameHeaderBytes;
  BodyReader trailer{bytes, body_start + body_len};
  uint32_t body_crc = 0;
  trailer.ReadU32(&body_crc);
  if (Crc32(bytes.data() + body_start, body_len) != body_crc) {
    *detail = "record checksum mismatch";
    return ExtractStatus::kCorrupt;
  }
  body->assign(bytes, body_start, body_len);
  *offset = body_start + body_len + kFrameTrailerBytes;
  return ExtractStatus::kRecord;
}

bool ParseDurability(std::string_view name, Durability* out) {
  if (name == "off") {
    *out = Durability::kOff;
  } else if (name == "group") {
    *out = Durability::kGroup;
  } else if (name == "always") {
    *out = Durability::kAlways;
  } else {
    return false;
  }
  return true;
}

const char* DurabilityName(Durability durability) {
  switch (durability) {
    case Durability::kOff:
      return "off";
    case Durability::kGroup:
      return "group";
    case Durability::kAlways:
      return "always";
  }
  return "?";
}

bool ParseCrashPoint(std::string_view name, CrashPoint* out) {
  if (name == "before-append") {
    *out = CrashPoint::kBeforeAppend;
  } else if (name == "torn-write") {
    *out = CrashPoint::kTornWrite;
  } else if (name == "after-append") {
    *out = CrashPoint::kAfterAppend;
  } else {
    return false;
  }
  return true;
}

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kBeforeAppend:
      return "before-append";
    case CrashPoint::kTornWrite:
      return "torn-write";
    case CrashPoint::kAfterAppend:
      return "after-append";
  }
  return "?";
}

RedoLogWriter::RedoLogWriter(std::string path, Durability durability)
    : path_(std::move(path)), durability_(durability) {
  if (path_.empty()) {
    return;  // in-memory mode
  }
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    ok_ = false;
    error_ = "cannot open redo log '" + path_ + "'";
  }
}

RedoLogWriter::~RedoLogWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void RedoLogWriter::WriteRaw(const char* data, size_t len) {
  if (fd_ < 0) {
    memory_.append(data, len);
    return;
  }
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd_, data + written, len - written);
    if (n < 0) {
      ok_ = false;
      error_ = "write to redo log '" + path_ + "' failed";
      return;
    }
    written += static_cast<size_t>(n);
  }
}

void RedoLogWriter::Fsync() {
  if (fd_ < 0) {
    return;
  }
  if (::fsync(fd_) != 0) {
    ok_ = false;
    error_ = "fsync of redo log '" + path_ + "' failed";
    return;
  }
  ++stats_.fsyncs;
}

void RedoLogWriter::Fire() {
  dead_ = true;
  if (crash_.on_fire) {
    crash_.on_fire();
    return;
  }
  // CLI default: die the way kill -9 would, without flushing anything.
  std::_Exit(137);
}

void RedoLogWriter::WriteFileHeader(uint64_t seed, const std::string& scale,
                                    const std::string& backend) {
  if (dead_ || !ok_) {
    return;
  }
  FileHeaderRecord header;
  header.seed = seed;
  header.scale = scale;
  header.backend = backend;
  std::string frame;
  AppendRecordFrame(&frame, EncodeFileHeader(header));
  WriteRaw(frame.data(), frame.size());
  stats_.bytes += frame.size();
  if (durability_ != Durability::kOff) {
    Fsync();
  }
}

void RedoLogWriter::AppendGroup(const GroupRecord& group) {
  if (dead_ || !ok_) {
    return;
  }
  std::string frame;
  AppendRecordFrame(&frame, EncodeGroup(group));
  const bool fire =
      crash_.point != CrashPoint::kNone && group.group_seq == crash_.at_group;
  if (fire && crash_.point == CrashPoint::kBeforeAppend) {
    Fire();
    return;
  }
  if (fire && crash_.point == CrashPoint::kTornWrite) {
    // The kill -9 common case: a prefix of the frame reaches the file.
    WriteRaw(frame.data(), frame.size() / 2);
    Fire();
    return;
  }
  WriteRaw(frame.data(), frame.size());
  ++stats_.groups;
  stats_.members += group.members.size();
  stats_.bytes += frame.size();
  if (fire && crash_.point == CrashPoint::kAfterAppend) {
    Fire();  // the append is in the page cache but was never fsynced
    return;
  }
  if (durability_ != Durability::kOff) {
    Fsync();
  }
}

void RedoLogWriter::Close() {
  if (dead_ || !ok_ || closed_) {
    return;
  }
  CloseRecord close;
  close.groups = stats_.groups;
  close.members = stats_.members;
  std::string frame;
  AppendRecordFrame(&frame, EncodeClose(close));
  WriteRaw(frame.data(), frame.size());
  stats_.bytes += frame.size();
  Fsync();
  closed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ScanLog(const std::string& bytes, std::vector<GroupRecord>* groups,
             RecoverySummary* summary) {
  summary->bytes_total = bytes.size();
  size_t offset = 0;
  std::string body;
  std::string detail;
  bool saw_header = false;
  uint64_t expected_seq = 0;
  uint64_t last_commit_ts = 0;
  for (;;) {
    const ExtractStatus status = TryExtractRecord(bytes, &offset, &body, &detail);
    if (status == ExtractStatus::kEnd) {
      break;
    }
    if (status == ExtractStatus::kTornTail) {
      summary->torn_tail = true;
      summary->detail = detail;
      break;
    }
    if (status == ExtractStatus::kCorrupt) {
      summary->corrupt = true;
      summary->detail = detail;
      break;
    }
    RedoRecord record;
    if (!DecodeRecord(body, &record)) {
      summary->corrupt = true;
      summary->detail = "undecodable record body";
      break;
    }
    if (!saw_header) {
      if (record.type != RecordType::kFileHeader) {
        summary->corrupt = true;
        summary->detail = "log does not start with a file header";
        break;
      }
      if (record.header.magic != kRedoMagic) {
        summary->corrupt = true;
        summary->detail = "bad file magic";
        break;
      }
      if (record.header.version != kRedoLogFormatVersion) {
        summary->corrupt = true;
        summary->detail = "unsupported redo log format version";
        break;
      }
      summary->header = record.header;
      summary->header_ok = true;
      saw_header = true;
    } else if (record.type == RecordType::kGroup) {
      // Sequence gaps and a backwards clock cannot come from the writer;
      // reject rather than replay a spliced or reordered log.
      if (record.group.group_seq != expected_seq ||
          record.group.commit_ts <= last_commit_ts) {
        summary->corrupt = true;
        summary->detail = "group sequence or commit-timestamp order violation";
        break;
      }
      ++expected_seq;
      last_commit_ts = record.group.commit_ts;
      ++summary->groups;
      summary->members += record.group.members.size();
      groups->push_back(std::move(record.group));
    } else if (record.type == RecordType::kClose) {
      summary->clean_close = record.close.groups == summary->groups &&
                             record.close.members == summary->members;
      summary->bytes_consumed = offset;
      return;  // the close record is final
    } else {
      summary->corrupt = true;
      summary->detail = "duplicate file header";
      break;
    }
    summary->bytes_consumed = offset;
  }
}

bool ReadLogFile(const std::string& path, std::string* bytes, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read redo log '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *bytes = buffer.str();
  return true;
}

ReplayResult RecoverFromBytes(const std::string& bytes, const std::string& backend) {
  ReplayResult result;
  std::vector<GroupRecord> groups;
  ScanLog(bytes, &groups, &result.summary);
  if (!result.summary.header_ok) {
    // Killed before the header reached the disk: the recovered state is the
    // never-built world. Legal crash outcome, nothing to replay.
    result.ok = true;
    return result;
  }
  const std::string& scale = result.summary.header.scale;
  if (scale != "tiny" && scale != "small" && scale != "medium") {
    result.error = "log header names unknown scale '" + scale + "'";
    return result;
  }
  std::unique_ptr<SyncStrategy> strategy = MakeStrategy(backend);
  if (strategy == nullptr) {
    result.error = "unknown replay backend '" + backend + "'";
    return result;
  }

  DataHolder::Setup setup;
  setup.params = Parameters::ForName(scale);
  setup.index_kind = DefaultIndexKindFor(backend);
  setup.seed = result.summary.header.seed;
  DataHolder data(setup);
  OperationRegistry registry;
  const auto& ops = registry.all();

  Rng rng;
  double active_theta = 0.0;
  for (const GroupRecord& group : groups) {
    for (const MemberRecord& member : group.members) {
      if (member.op_index >= ops.size()) {
        result.error = "log records an operation outside the registry";
        ResetHotspotPolicy();
        return result;
      }
      if (member.theta != active_theta) {
        if (member.theta == 0.0) {
          ResetHotspotPolicy();
        } else {
          HotspotPolicy policy;
          policy.theta = member.theta;
          SetHotspotPolicy(policy);
        }
        active_theta = member.theta;
      }
      rng.RestoreState(member.rng);
      SetTxOpContext(member.op_index);
      try {
        strategy->Execute(*ops[member.op_index], data, rng);
      } catch (const OperationFailed&) {
        // A failure-committed operation: its buffered writes committed in the
        // original run and commit identically here.
      }
      SetTxOpContext(-1);
      EbrDomain::Global().Quiesce();
      ++result.ops_replayed;
    }
  }
  ResetHotspotPolicy();
  EbrDomain::Global().Quiesce();
  EbrDomain::Global().TryReclaim();

  const InvariantReport invariants = CheckInvariants(data);
  result.invariant_violations = invariants.violations;
  result.fingerprint = DeepFingerprint(data);
  result.replayed = true;
  result.ok = invariants.ok();
  if (!result.ok) {
    result.error = "recovered world violates invariants: " + invariants.violations[0];
  }
  return result;
}

ReplayResult RecoverFromLog(const std::string& path, const std::string& backend) {
  std::string bytes;
  std::string error;
  if (!ReadLogFile(path, &bytes, &error)) {
    ReplayResult result;
    result.error = std::move(error);
    return result;
  }
  return RecoverFromBytes(bytes, backend);
}

std::string FormatReplayResult(const ReplayResult& result) {
  std::ostringstream out;
  const RecoverySummary& summary = result.summary;
  out << "redo log: " << summary.bytes_consumed << "/" << summary.bytes_total
      << " bytes, " << summary.groups << " groups, " << summary.members
      << " members\n";
  out << "shutdown: "
      << (summary.clean_close ? "clean"
          : summary.torn_tail ? "torn tail (" + summary.detail + ")"
          : summary.corrupt   ? "corrupt (" + summary.detail + ")"
                              : "no close record")
      << "\n";
  if (!result.replayed) {
    out << "fingerprint: none ("
        << (result.error.empty() ? "log header incomplete" : result.error) << ")\n";
    return out.str();
  }
  out << "replayed: " << result.ops_replayed << " operations under seed "
      << summary.header.seed << " (" << summary.header.scale << ")\n";
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(result.fingerprint));
  out << "fingerprint: " << hex << "\n";
  if (!result.invariant_violations.empty()) {
    out << "INVARIANT VIOLATIONS (" << result.invariant_violations.size() << "):\n";
    for (const std::string& violation : result.invariant_violations) {
      out << "  " << violation << "\n";
    }
  }
  return out.str();
}

void SetCaptureClientTag(uint64_t tag) { tls_client_tag = tag; }

void CaptureAttemptContext(const Rng& rng) {
  MemberRecord& context = tls_attempt_context;
  const int op = TxOpContext();
  context.op_index =
      op >= 0 && op < kRawOpIndex ? static_cast<uint16_t>(op) : kRawOpIndex;
  context.client_tag = tls_client_tag;
  context.theta = CurrentHotspotPolicy().theta;
  rng.SaveState(context.rng);
}

const MemberRecord& CurrentAttemptContext() { return tls_attempt_context; }

}  // namespace sb7::redo
