// Group commit for mvstm (docs/DURABILITY.md).
//
// With a redo log attached, update transactions stop committing solo.
// After acquiring its write stripes, a committer enrolls in the forming
// commit group and one thread — the leader — takes a single timestamp fence
// (LockTable::ClockAdvance) and drives a single log append + fsync for the
// whole group, so the per-commit durability cost is amortized across every
// member. The protocol, per group:
//
//   1. enroll   — committers push themselves onto a pending stack (stripe
//                 locks already held, so intra-group write sets are disjoint
//                 by construction).
//   2. lead     — any enrolled committer that finds the leader slot free
//                 claims it, pops the whole stack, and fixes the group's
//                 shared write version with one clock tick. Waiting members
//                 periodically retry the slot themselves, so a member can
//                 never be stranded behind a leader that finished without it.
//   3. validate — every member re-validates its own read set on its own
//                 thread (correct abort-cause attribution). The TL2
//                 "wv == start_ts + 1" validation skip is sound only for a
//                 group of one: inside a larger group it would admit
//                 intra-group write skew, so multi-member groups always
//                 validate in full. A member that sees another member's
//                 stripe lock in its read set fails validation here — the
//                 read-write conflicts a shared write version cannot order
//                 are evicted from the group, never committed.
//   4. append   — the leader writes one checksummed group record for the
//                 members that validated and fsyncs per the log's policy.
//   5. publish  — only after the append do members publish their version
//                 chain nodes at the shared write version and release their
//                 stripes (write-ahead rule: nothing becomes visible that
//                 the log does not describe).
//
// All coordination runs on sp::Atomic spin loops with yield sync points —
// never blocking waits — so the protocol is explorable by the deterministic
// interleaving explorer (sb7-mc) like every other STM protocol in the tree.

#ifndef STMBENCH7_SRC_MVSTM_GROUP_COMMIT_H_
#define STMBENCH7_SRC_MVSTM_GROUP_COMMIT_H_

#include <cstdint>
#include <cstddef>

#include "src/mc/sync_point.h"
#include "src/mvstm/redo_log.h"

namespace sb7 {

class MvTx;

class GroupCommitSequencer {
 public:
  // Commit groups larger than this split into several groups (each with its
  // own clock tick and record) within one leadership stint.
  static constexpr size_t kDefaultMaxGroup = 64;

  // `writer` must outlive the sequencer. Durability::kAlways degenerates to
  // groups of one — every commit takes its own tick, record and fsync —
  // which is exactly what makes `group` measurably cheaper than `always`.
  explicit GroupCommitSequencer(redo::RedoLogWriter* writer,
                                size_t max_group = kDefaultMaxGroup);

  GroupCommitSequencer(const GroupCommitSequencer&) = delete;
  GroupCommitSequencer& operator=(const GroupCommitSequencer&) = delete;

  // Commits `tx` through the current group. Preconditions: tx holds its
  // write stripes and has a non-empty write log. On true, *wv_out is the
  // group's shared write version and the log append (per policy) has
  // happened — the caller publishes its versions at *wv_out and releases
  // its stripes. On false, read-set validation failed; the caller restores
  // its stripes and aborts. Blocks (spinning with yields) until the
  // group's leader has appended the record.
  bool CommitThrough(MvTx& tx, uint64_t* wv_out);

  redo::RedoLogWriter* writer() const { return writer_; }
  size_t max_group() const { return max_group_; }

 private:
  enum Outcome : int {
    kPending = 0,
    kValidated = 1,
    kEvicted = 2,
  };

  struct Group {
    uint64_t wv = 0;
    size_t size = 0;
    // mo: release by the leader after the log append; members acquire it
    // before publishing (write-ahead ordering).
    sp::Atomic<uint32_t> published{0};
    // Members that finished publishing; the last one frees the group.
    sp::Atomic<size_t> done{0};
  };

  struct Enrollee {
    MvTx* tx = nullptr;
    redo::MemberRecord record;
    Enrollee* next = nullptr;  // pending-stack link; published by the push CAS
    // mo: release by the leader once wv/size are set; acquire by the member.
    sp::Atomic<Group*> group{nullptr};
    // mo: release by the member after validating; acquire by the leader.
    sp::Atomic<int> outcome{kPending};
  };

  // Validates `node`'s transaction against its group on the calling thread
  // and publishes the outcome.
  static void ValidateMember(Enrollee* node, const Group& group);

  // Leader duty: pops the pending stack and drives every popped node through
  // validate/append/publish, in chunks of max_group_. `self` is the calling
  // thread's own enrollee (validated inline when claimed) or null.
  void LeadPending(Enrollee* self);

  redo::RedoLogWriter* writer_;
  size_t max_group_;
  // Treiber stack of enrolled committers awaiting a leader.
  sp::Atomic<Enrollee*> pending_{nullptr};
  // 0 = free, 1 = a leader is driving groups; appends are serialized by this
  // slot, so log order equals write-version order.
  sp::Atomic<uint32_t> leader_busy_{0};
  // Next group_seq to append; leader-only state (guarded by leader_busy_).
  uint64_t group_seq_ = 0;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_MVSTM_GROUP_COMMIT_H_
