// Per-field version history for the multi-version STM (mvstm).
//
// Every TxFieldBase carries a hook (TxFieldBase::LoadMvHistory /
// StoreMvHistory) pointing at a singly linked, newest-first list of committed
// versions {value, commit_ts}. Writers publish a new head while holding the
// field's stripe lock; read-only transactions walk the list to the newest
// version with commit_ts <= their start timestamp and therefore never
// validate and never abort (LSA/SwissTM-style timestamped version lists).
//
// Reclamation piggybacks on the EBR domain and keeps the lists short without
// any per-field garbage-collection pass:
//
//   * When a push displaces the previous head N_old, N_old is retired
//     immediately. Any read-only transaction that still needs N_old (start
//     timestamp < the new version's commit_ts) is between two quiescent
//     points, so EBR's grace period keeps N_old alive until it finishes.
//   * Transactions that begin after the retirement pin a start timestamp >=
//     the new head's commit_ts (the commit advanced the global clock before
//     retiring), so their walk stops at the new head and never dereferences
//     the dangling `next` pointer below it.
//   * The first push to a field synthesizes a base version {initial value,
//     ts 0} below the new head — the pre-history snapshot older readers need
//     — and retires it by the same rule.
//
// Net effect: at any instant exactly one node per field (the head) is owned
// by the chain; everything older is in EBR limbo or already freed. The field
// destructor frees the head via internal::FreeMvHistoryHead.

#ifndef STMBENCH7_SRC_MVSTM_VERSION_CHAIN_H_
#define STMBENCH7_SRC_MVSTM_VERSION_CHAIN_H_

#include <cstddef>
#include <cstdint>

#include "src/stm/field.h"

namespace sb7 {

// One committed version of a field's word. Immutable once published.
struct MvVersion {
  uint64_t value;
  uint64_t commit_ts;
  // Next-older version. May dangle once no transaction with start_ts <
  // commit_ts can exist; such a node is never dereferenced (see above).
  const MvVersion* next;

  // Allocation is instrumented so tests can prove that version nodes are
  // actually reclaimed instead of accumulating per commit.
  static void* operator new(size_t size);
  static void operator delete(void* ptr);
  static int64_t LiveNodeCount();
};

class VersionChain {
 public:
  // Publishes `value` as the newest committed version of `field` at
  // `commit_ts` and stores it in place. The caller must hold the field's
  // stripe lock and must already have advanced the global clock to at least
  // `commit_ts`. Retires the displaced head (or the synthesized base version
  // on the first push) through EbrDomain::Global().
  static void Publish(TxFieldBase& field, uint64_t value, uint64_t commit_ts);

  // Returns the value of the newest version with commit_ts <= snapshot_ts.
  // Tries the in-place word under the stripe's pre/post check first, then
  // walks the version list. Never aborts; may briefly wait out a rival
  // commit's publish window when the stripe is locked (an in-flight commit
  // may carry a timestamp inside this snapshot). The calling thread must be
  // inside an EBR grace period (registered and not quiescing until the
  // enclosing transaction finishes).
  static uint64_t ReadAtSnapshot(const TxFieldBase& field, uint64_t snapshot_ts);

};

}  // namespace sb7

#endif  // STMBENCH7_SRC_MVSTM_VERSION_CHAIN_H_
