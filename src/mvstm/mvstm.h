// Multi-version STM ("mvstm"): timestamped version lists in the spirit of
// LSA / SwissTM, layered on the shared striped lock table and global clock.
//
// Two execution modes per transaction, chosen by the retry loop's read-only
// hint (Operation::read_only() via StmStrategy):
//
//   * Read-only: pin start_ts = ClockNow() at begin, serve every read from
//     the newest version with commit_ts <= start_ts (VersionChain). No read
//     set, no validation, no aborts — the long-traversal pathology that
//     collapses invisible-read STMs (§5 of the paper) disappears by
//     construction.
//   * Update: TL2-style invisible reads with per-read validation and a redo
//     log, committed under sorted per-stripe locks at a fresh clock tick;
//     each written field additionally publishes a {value, commit_ts} version
//     node for concurrent and future snapshot readers.
//
// A body that writes despite the read-only hint is demoted: the attempt
// aborts once and every later attempt of that execution runs in update mode.

#ifndef STMBENCH7_SRC_MVSTM_MVSTM_H_
#define STMBENCH7_SRC_MVSTM_MVSTM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/stm/lock_table.h"
#include "src/stm/stm.h"

namespace sb7 {

class GroupCommitSequencer;

class MvStm : public Stm {
 public:
  std::string_view name() const override { return "mvstm"; }

  // Routes every update commit through `sequencer` (group commit + redo
  // logging, src/mvstm/group_commit.h). Must be called before any
  // transaction runs; detaching is not supported — transaction objects cache
  // the pointer per thread. Null (the default) keeps the solo TL2-style
  // commit path, so an unlogged run pays nothing for the feature.
  void AttachSequencer(GroupCommitSequencer* sequencer) { sequencer_ = sequencer; }
  GroupCommitSequencer* sequencer() const { return sequencer_; }

  bool wants_replay_capture() const override { return sequencer_ != nullptr; }

 protected:
  std::unique_ptr<TxImplBase> CreateTx() override;

 private:
  GroupCommitSequencer* sequencer_ = nullptr;
};

class MvTx : public TxImplBase {
 public:
  explicit MvTx(StmStats& stats, GroupCommitSequencer* sequencer = nullptr)
      : stats_(stats), sequencer_(sequencer) {}

  void SetReadOnly(bool read_only) override;
  void BeginAttempt() override;
  uint64_t Read(const TxFieldBase& field) override;
  void Write(TxFieldBase& field, uint64_t value) override;
  bool TryCommit() override;
  void AbortSelf() override;

  // True while the current attempt serves reads from the pinned snapshot.
  bool snapshot_mode() const { return read_only_; }
  uint64_t start_ts() const { return start_ts_; }

 private:
  // The sequencer validates members on their own threads and needs the read
  // set, start timestamp and write log for that (group_commit.cc).
  friend class GroupCommitSequencer;

  struct WriteEntry {
    TxFieldBase* field;
    uint64_t value;
  };

  bool AcquireWriteStripes();
  void ReleaseAcquired(uint64_t unlock_version, bool use_saved);
  bool ValidateReadSet();
  void FlushLocalStats();

  StmStats& stats_;
  GroupCommitSequencer* sequencer_;

  // Mode for the current RunAtomically execution.
  bool hint_read_only_ = false;
  bool demoted_ = false;     // body wrote under the read-only hint
  bool read_only_ = false;   // effective mode of the current attempt

  // Snapshot timestamp (read-only mode) / TL2 read version (update mode).
  uint64_t start_ts_ = 0;

  std::vector<const sp::AtomicU64*> read_set_;
  std::vector<WriteEntry> write_log_;
  std::unordered_map<const TxFieldBase*, size_t> write_index_;

  struct AcquiredStripe {
    sp::AtomicU64* stripe;
    uint64_t saved_word;  // pre-lock word, restored on failed commit
  };
  std::vector<AcquiredStripe> acquired_;

  int64_t local_reads_ = 0;
  int64_t local_writes_ = 0;
  int64_t local_validation_steps_ = 0;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_MVSTM_MVSTM_H_
