#include "src/trace/tracer.h"

#include "src/common/diag.h"
#include "src/common/timing.h"
#include "src/stm/lock_table.h"

namespace sb7::trace {
namespace {

// Owner-tagged thread-local slot (the HistoryRecorder pattern, hardened):
// a worker's state pointer is only trusted when the owner tag matches the
// installed tracer, so sequential tracers in one process never cross-talk
// and states owned by the tracer survive worker-thread exit. The tag is a
// process-unique instance id rather than the tracer's address — unlike the
// recorder's thread-owned buffers, the slot points into tracer-owned heap
// state, and a later tracer constructed where a destroyed one lived must
// not inherit a freed pointer through address reuse.
struct TlsSlot {
  uint64_t owner = 0;
  void* state = nullptr;
};
thread_local TlsSlot tls_slot;

// mo: relaxed — id allocation only needs uniqueness, not ordering.
std::atomic<uint64_t> g_next_tracer_id{1};

// Conflict key of a field: the address of its lock-table stripe, matching
// the keys backends attach to aborts.
uintptr_t KeyOf(const TxFieldBase& field) {
  return reinterpret_cast<uintptr_t>(&LockTable::Global().StripeOf(field));
}

}  // namespace

Tracer::Tracer(TraceOptions options)
    : options_(options),
      // mo: relaxed — the id only needs uniqueness, not ordering.
      instance_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  if (installed_) {
    Uninstall();
  }
}

void Tracer::Install() {
  SB7_CHECK(!installed_);
  if (options_.timing) {
    SetTxTimingEnabled(true);
  }
  SB7_CHECK(InstallTxObserver(this));
  installed_ = true;
}

void Tracer::Uninstall() {
  SB7_CHECK(installed_);
  SB7_CHECK(RemoveTxObserver(this));
  if (options_.timing) {
    SetTxTimingEnabled(false);
  }
  installed_ = false;
}

Tracer::ThreadState& Tracer::LocalState() {
  if (tls_slot.owner != instance_id_) {
    auto state = std::make_unique<ThreadState>(options_);
    ThreadState* raw = state.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      raw->tid = static_cast<int>(states_.size());
      states_.push_back(std::move(state));
    }
    tls_slot = TlsSlot{instance_id_, raw};
  }
  return *static_cast<ThreadState*>(tls_slot.state);
}

void Tracer::PushEvent(ThreadState& state, EventKind kind, uint32_t arg, AbortCause cause) {
  TraceEvent event;
  event.nanos = NowNanos();
  event.kind = kind;
  event.cause = cause;
  const int op = TxOpContext();
  event.op = static_cast<int16_t>(op >= -1 && op < INT16_MAX ? op : -1);
  event.arg = arg;
  state.ring.Push(event);
}

void Tracer::OnTxBegin(bool /*read_only*/) noexcept {
  ThreadState& state = LocalState();
  if (state.retries == 0) {
    // First attempt of a new transaction: roll the sampling dice once; the
    // decision sticks across its retries.
    state.sampled = (state.tx_counter++ % options_.sample_period) == 0;
  }
  if (state.sampled) {
    PushEvent(state, EventKind::kBegin, state.retries);
  }
}

void Tracer::OnTxCommit() noexcept {
  ThreadState& state = LocalState();
  if (state.sampled) {
    PushEvent(state, EventKind::kCommit, state.retries);
  }
  state.retries = 0;
}

void Tracer::OnTxAbort(const TxAbortInfo& info) noexcept {
  ThreadState& state = LocalState();
  conflicts_.RecordAbort(info.conflict_key, TxOpContext());
  if (state.sampled) {
    PushEvent(state, EventKind::kAbort, state.retries, info.cause);
  }
  ++state.retries;
}

void Tracer::OnTxRead(const TxFieldBase& field, uint64_t /*word*/) noexcept {
  if (!options_.record_accesses) {
    return;
  }
  ThreadState& state = LocalState();
  if (state.sampled) {
    (void)field;
    PushEvent(state, EventKind::kRead, 0);
  }
}

void Tracer::OnTxWrite(const TxFieldBase& field, uint64_t /*word*/) noexcept {
  // Last-writer tracking is what abort attribution pairs victims against;
  // it stays on regardless of the access-event knob.
  conflicts_.RecordWrite(KeyOf(field), TxOpContext());
  if (!options_.record_accesses) {
    return;
  }
  ThreadState& state = LocalState();
  if (state.sampled) {
    PushEvent(state, EventKind::kWrite, 0);
  }
}

void Tracer::OnTxValidation(size_t steps) noexcept {
  ThreadState& state = LocalState();
  if (state.sampled) {
    PushEvent(state, EventKind::kValidation,
              static_cast<uint32_t>(steps < UINT32_MAX ? steps : UINT32_MAX));
  }
}

void Tracer::OnTxBackoff(int attempt) noexcept {
  ThreadState& state = LocalState();
  if (state.sampled) {
    PushEvent(state, EventKind::kBackoff, static_cast<uint32_t>(attempt));
  }
}

void Tracer::OnTxAttemptTiming(const TxAttemptTiming& timing, bool committed) noexcept {
  ThreadState& state = LocalState();
  OpLatencyBreakdown& slot = state.by_op[ConflictOpSlot(TxOpContext())];
  slot.attempts += 1;
  (committed ? slot.commits : slot.aborts) += 1;
  slot.read_nanos += timing.read_nanos;
  slot.validation_nanos += timing.validation_nanos;
  slot.commit_nanos += timing.commit_nanos;
  slot.backoff_nanos += timing.backoff_nanos;
}

std::vector<Tracer::ThreadStream> Tracer::DrainEvents() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadStream> streams;
  streams.reserve(states_.size());
  for (const auto& state : states_) {
    ThreadStream stream;
    stream.tid = state->tid;
    state->ring.Drain(stream.events);
    stream.dropped = state->ring.dropped();
    streams.push_back(std::move(stream));
  }
  return streams;
}

int64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& state : states_) {
    total += state->ring.dropped();
  }
  return total;
}

std::vector<OpLatencyBreakdown> Tracer::LatencyByOp() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OpLatencyBreakdown> merged(kConflictOpSlots);
  for (const auto& state : states_) {
    for (int i = 0; i < kConflictOpSlots; ++i) {
      const OpLatencyBreakdown& from = state->by_op[i];
      OpLatencyBreakdown& into = merged[i];
      into.attempts += from.attempts;
      into.commits += from.commits;
      into.aborts += from.aborts;
      into.read_nanos += from.read_nanos;
      into.validation_nanos += from.validation_nanos;
      into.commit_nanos += from.commit_nanos;
      into.backoff_nanos += from.backoff_nanos;
    }
  }
  return merged;
}

}  // namespace sb7::trace
