/// \file
/// The tracer: a TxObserver that turns the observation seam into three
/// instruments at once —
///
///   1. per-thread event rings of sampled transaction lifecycle events
///      (begin / validation / backoff / abort / commit, optionally raw
///      reads/writes), timestamped with the monotonic clock and tagged with
///      the executing operation;
///   2. the conflict table (src/trace/conflict.h): every transactional
///      write updates a last-writer entry, every attributed abort lands in
///      a bucket and the (victim op × writer op) pair matrix;
///   3. per-op latency decomposition, accumulated from the retry loop's
///      TxAttemptTiming callbacks (read-set build / validation / commit /
///      backoff).
///
/// The tracer composes with the correctness oracle through the
/// multi-observer registry: both install side by side, neither sees the
/// other. Thread streams follow the oracle's owner-tagged thread-local
/// pattern, so states survive worker exit and a second tracer in the same
/// process cannot inherit another tracer's slots.

#ifndef STMBENCH7_SRC_TRACE_TRACER_H_
#define STMBENCH7_SRC_TRACE_TRACER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/stm/field.h"
#include "src/trace/conflict.h"
#include "src/trace/ring.h"

namespace sb7::trace {

struct TraceOptions {
  /// Per-thread event ring capacity (events; rounded up to a power of two).
  size_t ring_capacity = 1 << 16;
  /// Record the lifecycle events of every Nth transaction (1 = all).
  /// Sampling is per transaction, not per attempt: a sampled transaction
  /// keeps all its retries, so abort chains stay intact in the timeline.
  uint32_t sample_period = 1;
  /// Also emit one ring event per transactional read/write of sampled
  /// transactions. Off by default: a single long traversal performs ~10^5
  /// reads and would flood the rings. Conflict-table last-writer updates do
  /// not depend on this.
  bool record_accesses = false;
  /// Enable the per-attempt latency decomposition (adds clock reads to the
  /// retry loop while the tracer is installed).
  bool timing = true;
};

/// Per-op latency decomposition, merged across threads. Slot convention as
/// in ConflictOpSlot: 0 = no op context, i+1 = registry op i.
struct OpLatencyBreakdown {
  int64_t attempts = 0;
  int64_t commits = 0;
  int64_t aborts = 0;
  int64_t read_nanos = 0;
  int64_t validation_nanos = 0;
  int64_t commit_nanos = 0;
  int64_t backoff_nanos = 0;
};

class Tracer : public TxObserver {
 public:
  explicit Tracer(TraceOptions options = {});
  ~Tracer() override;

  /// Install/Uninstall only while no transactions are in flight (observer
  /// registry contract). Install flips the global timing flag when
  /// options.timing is set.
  void Install();
  void Uninstall();
  bool installed() const { return installed_; }

  /// One worker thread's drained event stream. `tid` is the tracer-assigned
  /// sequential id (registration order).
  struct ThreadStream {
    int tid = 0;
    std::vector<TraceEvent> events;
    int64_t dropped = 0;
  };
  /// Drains every thread's ring. Call after the traced workers joined (or
  /// are otherwise quiescent); safe to call repeatedly.
  std::vector<ThreadStream> DrainEvents();

  /// Total events dropped across all rings so far.
  int64_t TotalDropped() const;

  /// Conflict-table access: snapshots for phase windows, summaries for
  /// reports.
  ConflictTable::Snapshot ConflictSnapshot() const { return conflicts_.TakeSnapshot(); }
  ConflictSummary SummarizeWindow(const ConflictTable::Snapshot& end,
                                  const ConflictTable::Snapshot& begin,
                                  size_t top_k) const {
    return SummarizeConflicts(ConflictTable::Delta(end, begin), top_k);
  }

  /// Latency decomposition merged across threads, indexed by op slot
  /// (kConflictOpSlots entries). Empty breakdowns for untouched ops.
  std::vector<OpLatencyBreakdown> LatencyByOp() const;

  // --- TxObserver implementation (called from worker threads) ---
  // noexcept per the TxObserver contract (enforced by sb7-lint): a throw
  // here would unwind through a transaction's commit/abort path.
  void OnTxBegin(bool read_only) noexcept override;
  void OnTxCommit() noexcept override;
  void OnTxAbort(const TxAbortInfo& info) noexcept override;
  void OnTxRead(const TxFieldBase& field, uint64_t word) noexcept override;
  void OnTxWrite(const TxFieldBase& field, uint64_t word) noexcept override;
  void OnTxValidation(size_t steps) noexcept override;
  void OnTxBackoff(int attempt) noexcept override;
  void OnTxAttemptTiming(const TxAttemptTiming& timing, bool committed) noexcept override;

 private:
  struct ThreadState {
    explicit ThreadState(const TraceOptions& options)
        : ring(options.ring_capacity), by_op(kConflictOpSlots) {}
    int tid = 0;
    EventRing ring;
    uint64_t tx_counter = 0;   // transactions started on this thread
    bool sampled = false;      // current transaction is being recorded
    uint32_t retries = 0;      // aborts of the current transaction so far
    std::vector<OpLatencyBreakdown> by_op;
  };

  ThreadState& LocalState();
  void PushEvent(ThreadState& state, EventKind kind, uint32_t arg,
                 AbortCause cause = AbortCause::kUnknown);

  const TraceOptions options_;
  /// Process-unique id tagging this tracer's thread-local slots; never
  /// reused, unlike the tracer's address (see tracer.cc TlsSlot).
  const uint64_t instance_id_;
  bool installed_ = false;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadState>> states_;

  ConflictTable conflicts_;
};

}  // namespace sb7::trace

#endif  // STMBENCH7_SRC_TRACE_TRACER_H_
