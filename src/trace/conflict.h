/// \file
/// Abort attribution: which locations and which operation pairs kill
/// transactions.
///
/// The conflict table is a fixed array of atomically-updated buckets keyed
/// by the conflict key backends attach to aborts (the address of the
/// contended lock-table stripe). Each bucket counts aborts attributed to
/// its key and remembers the op type of the last writer seen there, which
/// feeds a (victim op × last-writer op) pair matrix — the "who kills whom"
/// table §6 of the paper reads off abort rates. Keys that hash to the same
/// bucket share a count (attribution is statistical, like the lock table
/// itself); with 2^12 buckets against a handful of genuinely hot stripes,
/// collisions only blur the cold tail.

#ifndef STMBENCH7_SRC_TRACE_CONFLICT_H_
#define STMBENCH7_SRC_TRACE_CONFLICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/stm/field.h"

namespace sb7::trace {

/// Op axis of the pair matrix: slot 0 = "no operation context" (setup,
/// tests), slot i+1 = registry op index i. 64 covers the 45-op registry
/// with headroom.
inline constexpr int kConflictOpSlots = 64;

/// Clamps an op index from TxOpContext() onto the matrix axis.
constexpr int ConflictOpSlot(int op_index) {
  return (op_index < 0 || op_index >= kConflictOpSlots - 1) ? 0 : op_index + 1;
}

class ConflictTable {
 public:
  static constexpr size_t kBuckets = 4096;

  ConflictTable()
      : buckets_(new Bucket[kBuckets]),
        pairs_(new std::atomic<int64_t>[kConflictOpSlots * kConflictOpSlots]()) {}

  /// Notes a transactional write to `key` by op `op_index` (registry index,
  /// -1 = none): the bucket's last-writer is what a later abort on the same
  /// key pairs its victim against.
  void RecordWrite(uintptr_t key, int op_index) {
    if (key == 0) {
      return;
    }
    Bucket& bucket = buckets_[BucketOf(key)];
    // mo: relaxed — attribution is statistical by design (racing writers
    // may interleave key/op); no reader derives invariants from a bucket.
    bucket.key.store(key, std::memory_order_relaxed);
    bucket.last_writer_op.store(ConflictOpSlot(op_index), std::memory_order_relaxed);
  }

  /// Attributes one abort of op `victim_op_index` to `key`.
  void RecordAbort(uintptr_t key, int victim_op_index) {
    // mo: relaxed — statistical tallies, here and below; see RecordWrite.
    total_aborts_.fetch_add(1, std::memory_order_relaxed);
    if (key == 0) {
      return;
    }
    Bucket& bucket = buckets_[BucketOf(key)];
    // mo: relaxed — statistical bucket updates (see RecordWrite).
    bucket.key.store(key, std::memory_order_relaxed);
    bucket.aborts.fetch_add(1, std::memory_order_relaxed);
    const int writer = bucket.last_writer_op.load(std::memory_order_relaxed);
    const int victim = ConflictOpSlot(victim_op_index);
    pairs_[victim * kConflictOpSlots + writer].fetch_add(1, std::memory_order_relaxed);
    attributed_aborts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Point-in-time copy of every counter; taken at phase boundaries so the
  /// per-phase report is Delta(end, begin).
  struct Snapshot {
    std::vector<int64_t> bucket_aborts;  // size kBuckets
    std::vector<uint64_t> bucket_keys;   // representative key per bucket
    std::vector<int64_t> pair_counts;    // kConflictOpSlots^2, [victim][writer]
    int64_t total_aborts = 0;
    int64_t attributed_aborts = 0;
  };
  Snapshot TakeSnapshot() const;

  /// end - begin, counter-wise; keys come from `end`.
  static Snapshot Delta(const Snapshot& end, const Snapshot& begin);

 private:
  struct Bucket {
    std::atomic<uint64_t> key{0};
    std::atomic<int64_t> aborts{0};
    std::atomic<int32_t> last_writer_op{0};
  };

  static size_t BucketOf(uintptr_t key) {
    // Fibonacci scramble of the (stripe-aligned) key, as in LockTable.
    return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 52) & (kBuckets - 1);
  }

  std::unique_ptr<Bucket[]> buckets_;
  std::unique_ptr<std::atomic<int64_t>[]> pairs_;
  std::atomic<int64_t> total_aborts_{0};
  std::atomic<int64_t> attributed_aborts_{0};
};

/// Report-ready ranking extracted from a snapshot (usually a phase delta).
struct ConflictHotLocation {
  uint64_t key = 0;       // conflict key (stripe address) — an opaque id
  int64_t aborts = 0;
};
struct ConflictPair {
  int victim_slot = 0;    // ConflictOpSlot values; 0 = no op context
  int writer_slot = 0;
  int64_t aborts = 0;
};
struct ConflictSummary {
  int64_t total_aborts = 0;       // all aborts seen in the window
  int64_t attributed_aborts = 0;  // aborts that carried a conflict key
  std::vector<ConflictHotLocation> top_locations;  // descending by aborts
  std::vector<ConflictPair> top_pairs;             // descending by aborts
};

/// Ranks the top-k hottest locations and deadliest op pairs in `snapshot`.
ConflictSummary SummarizeConflicts(const ConflictTable::Snapshot& snapshot, size_t top_k);

}  // namespace sb7::trace

#endif  // STMBENCH7_SRC_TRACE_CONFLICT_H_
