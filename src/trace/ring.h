/// \file
/// Per-thread trace event ring buffer.
///
/// Single-producer (the owning worker thread) bounded ring with drop-new
/// overflow: a full ring drops the incoming event and counts it, never
/// overwriting unconsumed slots. That policy is what makes concurrent
/// draining safe — the producer only writes slots the consumer has already
/// released — and it biases a saturated trace toward the *old* events that
/// explain how the window began, which is what a post-mortem wants.
///
/// Memory ordering: the producer fills the slot, then publishes it with a
/// release store of head; the consumer acquires head before reading slots
/// and releases tail after consuming, which hands the slots back to the
/// producer.

#ifndef STMBENCH7_SRC_TRACE_RING_H_
#define STMBENCH7_SRC_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/stm/field.h"

namespace sb7::trace {

/// Trace event kinds, one per transaction-lifecycle edge the TxObserver
/// seam reports.
enum class EventKind : uint8_t {
  kBegin = 0,   // attempt started            (arg = retry index, 0 = first)
  kRead,        // transactional read         (arg = 0; optional, off by default)
  kWrite,       // transactional write        (arg = 0; optional, off by default)
  kValidation,  // backend validation pass    (arg = read-set entries checked)
  kBackoff,     // backoff before a retry     (arg = attempt index >= 1)
  kAbort,       // attempt aborted            (arg = retry index; cause set)
  kCommit,      // attempt committed          (arg = retry index)
};

constexpr const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin:
      return "begin";
    case EventKind::kRead:
      return "read";
    case EventKind::kWrite:
      return "write";
    case EventKind::kValidation:
      return "validation";
    case EventKind::kBackoff:
      return "backoff";
    case EventKind::kAbort:
      return "abort";
    case EventKind::kCommit:
      return "commit";
  }
  return "?";
}

/// One sampled lifecycle event: 16 bytes, trivially copyable.
struct TraceEvent {
  int64_t nanos = 0;                           // sb7::NowNanos() at the event
  EventKind kind = EventKind::kBegin;
  AbortCause cause = AbortCause::kUnknown;     // kAbort only
  int16_t op = -1;                             // registry op index; -1 = none
  uint32_t arg = 0;                            // kind-specific (see EventKind)
};
static_assert(sizeof(TraceEvent) == 16, "TraceEvent is copied in bulk; keep it dense");

/// SPSC drop-new ring. Push from the owning thread only; Drain from one
/// thread at a time (concurrently with Push is fine).
class EventRing {
 public:
  explicit EventRing(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) {
      rounded <<= 1;
    }
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void Push(const TraceEvent& event) {
    // mo: relaxed — head is producer-owned; only this thread advances it.
    const uint64_t head = head_.load(std::memory_order_relaxed);
    // mo: acquire — pairs with the consumer's release of tail: a released
    // slot may be rewritten only after the consumer is done reading it.
    if (head - tail_.load(std::memory_order_acquire) >= slots_.size()) {
      // mo: relaxed — overflow tally; read after the run quiesces.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[head & mask_] = event;
    // mo: release — publishes the filled slot before the new head.
    head_.store(head + 1, std::memory_order_release);
  }

  /// Appends all currently published events to `out`; returns how many.
  size_t Drain(std::vector<TraceEvent>& out) {
    // mo: acquire on head (pairs with the producer's release — slot
    // contents are visible); relaxed on tail (consumer-owned).
    const uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    const size_t count = static_cast<size_t>(head - tail);
    out.reserve(out.size() + count);
    while (tail != head) {
      out.push_back(slots_[tail & mask_]);
      ++tail;
    }
    // mo: release — hands the consumed slots back to the producer.
    tail_.store(tail, std::memory_order_release);
    return count;
  }

  // mo: relaxed — tally; read after the run quiesces.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};  // next slot to write (producer-owned)
  std::atomic<uint64_t> tail_{0};  // next slot to read (consumer-owned)
  std::atomic<int64_t> dropped_{0};
};

}  // namespace sb7::trace

#endif  // STMBENCH7_SRC_TRACE_RING_H_
