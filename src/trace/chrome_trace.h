/// \file
/// Chrome trace-event JSON export (Perfetto-loadable).
///
/// Converts drained tracer streams into the trace-event format: one track
/// per worker thread (thread-name metadata + complete "X" spans per
/// transaction attempt, closed by its commit/abort event), instant events
/// for validation passes and backoff waits. Abort spans are named and
/// colored by cause, so retry chains read directly off the timeline.
/// Load the file at https://ui.perfetto.dev or chrome://tracing.

#ifndef STMBENCH7_SRC_TRACE_CHROME_TRACE_H_
#define STMBENCH7_SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/trace/tracer.h"

namespace sb7::trace {

struct ChromeTraceOptions {
  /// Operation names in registry order; events with op index i are labeled
  /// op_names[i]. Events without op context are labeled "(no-op)".
  std::vector<std::string> op_names;
};

/// Writes the full trace document: {"displayTimeUnit", "traceEvents",
/// "otherData"}. Timestamps are microseconds relative to the earliest event
/// in any stream.
void WriteChromeTrace(std::ostream& out, const std::vector<Tracer::ThreadStream>& streams,
                      const ChromeTraceOptions& options);

}  // namespace sb7::trace

#endif  // STMBENCH7_SRC_TRACE_CHROME_TRACE_H_
