#include "src/trace/chrome_trace.h"

#include <algorithm>
#include <cstdint>

namespace sb7::trace {
namespace {

// Reserved chrome://tracing color names (cname). Perfetto ignores unknown
// names gracefully, so these are a hint, not a contract.
const char* CauseColor(AbortCause cause) {
  switch (cause) {
    case AbortCause::kReadValidation:
      return "bad";
    case AbortCause::kWriteLock:
      return "terrible";
    case AbortCause::kKill:
      return "yellow";
    case AbortCause::kSnapshotTooOld:
      return "olive";
    case AbortCause::kUnknown:
      break;
  }
  return "grey";
}

void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

std::string MicrosString(int64_t nanos) {
  // Fixed-point microseconds with nanosecond resolution; avoids float
  // formatting drift in golden tests.
  const int64_t micros = nanos / 1000;
  const int64_t frac = nanos % 1000;
  std::string text = std::to_string(micros);
  text.push_back('.');
  text.push_back(static_cast<char>('0' + frac / 100));
  text.push_back(static_cast<char>('0' + frac / 10 % 10));
  text.push_back(static_cast<char>('0' + frac % 10));
  return text;
}

class EventWriter {
 public:
  EventWriter(std::ostream& out, const ChromeTraceOptions& options)
      : out_(out), options_(options) {}

  void Emit(const std::string& body) {
    out_ << (first_ ? "\n  {" : ",\n  {") << body << "}";
    first_ = false;
  }

  std::string OpName(int16_t op) const {
    if (op >= 0 && static_cast<size_t>(op) < options_.op_names.size()) {
      return options_.op_names[op];
    }
    return "(no-op)";
  }

 private:
  std::ostream& out_;
  const ChromeTraceOptions& options_;
  bool first_ = true;
};

}  // namespace

void WriteChromeTrace(std::ostream& out, const std::vector<Tracer::ThreadStream>& streams,
                      const ChromeTraceOptions& options) {
  // Normalize timestamps to the earliest event so the timeline starts at 0.
  int64_t t0 = INT64_MAX;
  int64_t dropped = 0;
  for (const Tracer::ThreadStream& stream : streams) {
    dropped += stream.dropped;
    if (!stream.events.empty()) {
      t0 = std::min(t0, stream.events.front().nanos);
    }
  }
  if (t0 == INT64_MAX) {
    t0 = 0;
  }

  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  EventWriter writer(out, options);
  for (const Tracer::ThreadStream& stream : streams) {
    const std::string tid = std::to_string(stream.tid);
    writer.Emit("\"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
                ", \"name\": \"thread_name\", \"args\": {\"name\": \"worker-" + tid + "\"}");

    // Pending begin of the current attempt on this thread's track; spans
    // close at the matching commit/abort. A begin lost to ring overflow
    // orphans its closing event, which is then skipped.
    bool open = false;
    TraceEvent begin{};
    for (const TraceEvent& event : stream.events) {
      switch (event.kind) {
        case EventKind::kBegin:
          open = true;
          begin = event;
          break;
        case EventKind::kCommit:
        case EventKind::kAbort: {
          if (!open) {
            break;
          }
          open = false;
          const bool committed = event.kind == EventKind::kCommit;
          std::string name;
          if (committed) {
            name = writer.OpName(begin.op);
          } else {
            name = writer.OpName(begin.op);
            name += " abort:";
            name += AbortCauseName(event.cause);
          }
          std::string body = "\"ph\": \"X\", \"pid\": 1, \"tid\": " + tid +
                             ", \"ts\": " + MicrosString(begin.nanos - t0) +
                             ", \"dur\": " + MicrosString(event.nanos - begin.nanos) +
                             ", \"name\": \"";
          AppendEscaped(body, name);
          body += "\", \"cat\": \"tx\", \"cname\": \"";
          body += committed ? "good" : CauseColor(event.cause);
          body += "\", \"args\": {\"op\": \"";
          AppendEscaped(body, writer.OpName(begin.op));
          body += "\", \"outcome\": \"";
          body += committed ? "commit" : "abort";
          body += "\", \"retry\": " + std::to_string(event.arg);
          if (!committed) {
            body += ", \"cause\": \"";
            body += AbortCauseName(event.cause);
            body += "\"";
          }
          body += "}";
          writer.Emit(body);
          break;
        }
        case EventKind::kValidation:
          writer.Emit("\"ph\": \"i\", \"pid\": 1, \"tid\": " + tid +
                      ", \"ts\": " + MicrosString(event.nanos - t0) +
                      ", \"s\": \"t\", \"name\": \"validation\", \"cat\": \"tx\", "
                      "\"args\": {\"steps\": " +
                      std::to_string(event.arg) + "}");
          break;
        case EventKind::kBackoff:
          writer.Emit("\"ph\": \"i\", \"pid\": 1, \"tid\": " + tid +
                      ", \"ts\": " + MicrosString(event.nanos - t0) +
                      ", \"s\": \"t\", \"name\": \"backoff\", \"cat\": \"tx\", "
                      "\"args\": {\"attempt\": " +
                      std::to_string(event.arg) + "}");
          break;
        case EventKind::kRead:
        case EventKind::kWrite:
          writer.Emit("\"ph\": \"i\", \"pid\": 1, \"tid\": " + tid +
                      ", \"ts\": " + MicrosString(event.nanos - t0) +
                      ", \"s\": \"t\", \"name\": \"" +
                      (event.kind == EventKind::kRead ? "read" : "write") +
                      "\", \"cat\": \"access\", \"args\": {}");
          break;
      }
    }
  }
  out << "\n],\n\"otherData\": {\"tool\": \"stmbench7\", \"dropped_events\": " << dropped
      << "}\n}\n";
}

}  // namespace sb7::trace
