#include "src/trace/conflict.h"

#include <algorithm>

namespace sb7::trace {

ConflictTable::Snapshot ConflictTable::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bucket_aborts.resize(kBuckets);
  snapshot.bucket_keys.resize(kBuckets);
  snapshot.pair_counts.resize(kConflictOpSlots * kConflictOpSlots);
  // mo: relaxed — statistical counters; snapshots are taken at phase
  // boundaries where exactness is not load-bearing (see conflict.h).
  for (size_t i = 0; i < kBuckets; ++i) {
    snapshot.bucket_aborts[i] = buckets_[i].aborts.load(std::memory_order_relaxed);
    snapshot.bucket_keys[i] = buckets_[i].key.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kConflictOpSlots * kConflictOpSlots; ++i) {
    // mo: relaxed — same statistical counters as above.
    snapshot.pair_counts[i] = pairs_[i].load(std::memory_order_relaxed);
  }
  // mo: relaxed — same statistical counters as above.
  snapshot.total_aborts = total_aborts_.load(std::memory_order_relaxed);
  snapshot.attributed_aborts = attributed_aborts_.load(std::memory_order_relaxed);
  return snapshot;
}

ConflictTable::Snapshot ConflictTable::Delta(const Snapshot& end, const Snapshot& begin) {
  Snapshot delta = end;
  if (!begin.bucket_aborts.empty()) {
    for (size_t i = 0; i < delta.bucket_aborts.size(); ++i) {
      delta.bucket_aborts[i] -= begin.bucket_aborts[i];
    }
    for (size_t i = 0; i < delta.pair_counts.size(); ++i) {
      delta.pair_counts[i] -= begin.pair_counts[i];
    }
    delta.total_aborts -= begin.total_aborts;
    delta.attributed_aborts -= begin.attributed_aborts;
  }
  return delta;
}

ConflictSummary SummarizeConflicts(const ConflictTable::Snapshot& snapshot, size_t top_k) {
  ConflictSummary summary;
  summary.total_aborts = snapshot.total_aborts;
  summary.attributed_aborts = snapshot.attributed_aborts;

  for (size_t i = 0; i < snapshot.bucket_aborts.size(); ++i) {
    if (snapshot.bucket_aborts[i] > 0) {
      summary.top_locations.push_back(
          ConflictHotLocation{snapshot.bucket_keys[i], snapshot.bucket_aborts[i]});
    }
  }
  std::sort(summary.top_locations.begin(), summary.top_locations.end(),
            [](const ConflictHotLocation& a, const ConflictHotLocation& b) {
              return a.aborts != b.aborts ? a.aborts > b.aborts : a.key < b.key;
            });
  if (summary.top_locations.size() > top_k) {
    summary.top_locations.resize(top_k);
  }

  // A default-constructed snapshot (a window that never opened, e.g. a
  // scenario phase the run's op cap skipped) has empty vectors and
  // summarizes to zeros.
  if (!snapshot.pair_counts.empty()) {
    for (int victim = 0; victim < kConflictOpSlots; ++victim) {
      for (int writer = 0; writer < kConflictOpSlots; ++writer) {
        const int64_t count = snapshot.pair_counts[victim * kConflictOpSlots + writer];
        if (count > 0) {
          summary.top_pairs.push_back(ConflictPair{victim, writer, count});
        }
      }
    }
  }
  std::sort(summary.top_pairs.begin(), summary.top_pairs.end(),
            [](const ConflictPair& a, const ConflictPair& b) {
              if (a.aborts != b.aborts) {
                return a.aborts > b.aborts;
              }
              return a.victim_slot != b.victim_slot ? a.victim_slot < b.victim_slot
                                                    : a.writer_slot < b.writer_slot;
            });
  if (summary.top_pairs.size() > top_k) {
    summary.top_pairs.resize(top_k);
  }
  return summary;
}

}  // namespace sb7::trace
