// Reader-writer lock with writer preference.
//
// The paper's locking strategies use `java.util.concurrent` read-write locks;
// this is the C++ counterpart, self-contained so its queueing behaviour is
// known and instrumentable. Writer preference with reader batching: once a
// writer is waiting, newly arriving readers queue behind it, which prevents
// writer starvation under the read-dominated workloads while still admitting
// whole batches of readers between writers.
//
// Not recursive: a thread must not re-acquire a lock it already holds in
// either mode. The medium-grained strategy acquires its lock set in a fixed
// global order precisely so that this never happens (see strategy/medium).

#ifndef STMBENCH7_SRC_SYNC_RWLOCK_H_
#define STMBENCH7_SRC_SYNC_RWLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sb7 {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void LockRead();
  void UnlockRead();
  void LockWrite();
  void UnlockWrite();

  // Acquisition counters; approximate (relaxed) and intended for reports.
  int64_t read_acquisitions() const { return read_acquisitions_; }
  int64_t write_acquisitions() const { return write_acquisitions_; }

 private:
  std::mutex mu_;
  std::condition_variable readers_cv_;
  std::condition_variable writers_cv_;
  int active_readers_ = 0;
  bool writer_active_ = false;
  int waiting_writers_ = 0;
  int64_t read_acquisitions_ = 0;
  int64_t write_acquisitions_ = 0;
};

// RAII guards.
class ReadGuard {
 public:
  explicit ReadGuard(RwLock& lock) : lock_(lock) { lock_.LockRead(); }
  ~ReadGuard() { lock_.UnlockRead(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RwLock& lock_;
};

class WriteGuard {
 public:
  explicit WriteGuard(RwLock& lock) : lock_(lock) { lock_.LockWrite(); }
  ~WriteGuard() { lock_.UnlockWrite(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RwLock& lock_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_SYNC_RWLOCK_H_
