#include "src/sync/rwlock.h"

#include "src/common/diag.h"

namespace sb7 {

void RwLock::LockRead() {
  std::unique_lock<std::mutex> lock(mu_);
  readers_cv_.wait(lock, [this] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
  ++read_acquisitions_;
}

void RwLock::UnlockRead() {
  std::unique_lock<std::mutex> lock(mu_);
  SB7_DCHECK(active_readers_ > 0);
  if (--active_readers_ == 0 && waiting_writers_ > 0) {
    writers_cv_.notify_one();
  }
}

void RwLock::LockWrite() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  writers_cv_.wait(lock, [this] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  ++write_acquisitions_;
}

void RwLock::UnlockWrite() {
  std::unique_lock<std::mutex> lock(mu_);
  SB7_DCHECK(writer_active_);
  writer_active_ = false;
  if (waiting_writers_ > 0) {
    writers_cv_.notify_one();
  } else {
    readers_cv_.notify_all();
  }
}

}  // namespace sb7
