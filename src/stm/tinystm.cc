#include "src/stm/tinystm.h"

#include "src/common/diag.h"

namespace sb7 {

std::unique_ptr<TxImplBase> TinyStm::CreateTx() { return std::make_unique<TinyTx>(stats()); }

void TinyTx::BeginAttempt() {
  rv_ = LockTable::ClockNow();
  read_set_.clear();
  undo_log_.clear();
  owned_.clear();
  owned_lookup_.clear();
  local_reads_ = local_writes_ = local_validation_steps_ = 0;
}

void TinyTx::FlushLocalStats() {
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.reads.fetch_add(local_reads_, std::memory_order_relaxed);
  stats_.writes.fetch_add(local_writes_, std::memory_order_relaxed);
  stats_.validation_steps.fetch_add(local_validation_steps_, std::memory_order_relaxed);
}

bool TinyTx::ValidateReadSet() const {
  TxValidationScope validation;
  validation.set_steps(read_set_.size());
  local_validation_steps_ += static_cast<int64_t>(read_set_.size());
  for (const ReadEntry& entry : read_set_) {
    // mo: acquire — pairs with committers' release stores on the stripe.
    const uint64_t word = entry.stripe->load(std::memory_order_acquire);
    if (word == entry.observed) {
      continue;
    }
    // The word changed since the read. The only benign change is this
    // transaction itself locking the stripe for writing afterwards.
    if (LockTable::IsLocked(word) && LockTable::OwnerOf(word) == this) {
      continue;
    }
    SetTxAbortCause(AbortCause::kReadValidation, entry.stripe);
    return false;
  }
  return true;
}

bool TinyTx::ExtendSnapshot(uint64_t now) {
  if (!ValidateReadSet()) {
    return false;
  }
  rv_ = now;
  return true;
}

uint64_t TinyTx::Read(const TxFieldBase& field) {
  ++local_reads_;
  sp::AtomicU64& stripe = LockTable::Global().StripeOf(field);
  while (true) {
    // mo: acquire — the pre/post pair brackets the in-place data read
    // seqlock-style; both must see the owning writer's release.
    const uint64_t pre = stripe.load(std::memory_order_acquire);
    if (LockTable::IsLocked(pre)) {
      if (LockTable::OwnerOf(pre) == this) {
        // In-place write-through: memory already holds this transaction's
        // value.
        return field.LoadRaw(std::memory_order_acquire);
      }
      SetTxAbortCause(AbortCause::kWriteLock, &stripe);
      throw TxAborted{};  // owned by a concurrent writer
    }
    const uint64_t value = field.LoadRaw(std::memory_order_acquire);
    // mo: acquire — the post read of the seqlock pair bracketing the data.
    const uint64_t post = stripe.load(std::memory_order_acquire);
    if (post != pre) {
      continue;  // raced with a commit; re-read
    }
    if (LockTable::VersionOf(pre) > rv_ && !ExtendSnapshot(LockTable::ClockNow())) {
      // Cause and conflict key were set by ValidateReadSet.
      throw TxAborted{};
    }
    read_set_.push_back(ReadEntry{&stripe, pre});
    return value;
  }
}

void TinyTx::Write(TxFieldBase& field, uint64_t value) {
  ++local_writes_;
  sp::AtomicU64& stripe = LockTable::Global().StripeOf(field);
  if (!OwnsStripe(&stripe)) {
    // mo: acquire — probe must see the last owner's release of the stripe.
    uint64_t word = stripe.load(std::memory_order_acquire);
    if (LockTable::IsLocked(word)) {
      // Either a concurrent writer owns it, or this transaction does (which
      // OwnsStripe already ruled out).
      SetTxAbortCause(AbortCause::kWriteLock, &stripe);
      throw TxAborted{};
    }
    if (LockTable::VersionOf(word) > rv_ && !ExtendSnapshot(LockTable::ClockNow())) {
      // Cause and conflict key were set by ValidateReadSet.
      throw TxAborted{};
    }
    // mo: acq_rel — encounter-time acquisition: observe the prior owner's
    // release and publish our ownership before the in-place store.
    if (!stripe.compare_exchange_strong(word, LockTable::MakeLocked(this),
                                        std::memory_order_acq_rel)) {
      SetTxAbortCause(AbortCause::kWriteLock, &stripe);
      throw TxAborted{};
    }
    owned_.push_back(OwnedStripe{&stripe, word});
    owned_lookup_.insert(&stripe);
  }
  undo_log_.push_back(UndoEntry{&field, field.LoadRaw(std::memory_order_acquire)});
  field.StoreRaw(value, std::memory_order_release);
}

bool TinyTx::TryCommit() {
  if (owned_.empty()) {
    FlushLocalStats();
    RunCommitHooks();
    return true;
  }
  const uint64_t wv = LockTable::ClockAdvance();
  if (wv != rv_ + 1 && !ValidateReadSet()) {
    RollbackAndRelease();
    FlushLocalStats();
    RunAbortHooks();
    return false;
  }
  for (const OwnedStripe& held : owned_) {
    // mo: release — publishes the in-place writes before the new version.
    held.stripe->store(LockTable::MakeVersion(wv), std::memory_order_release);
  }
  owned_.clear();
  owned_lookup_.clear();
  FlushLocalStats();
  RunCommitHooks();
  return true;
}

void TinyTx::RollbackAndRelease() {
  // Undo in reverse so repeated writes to a field restore the original.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    it->field->StoreRaw(it->old_value, std::memory_order_release);
  }
  undo_log_.clear();
  for (const OwnedStripe& held : owned_) {
    // mo: release — publishes the undo writeback before dropping the lock.
    held.stripe->store(held.pre_lock_word, std::memory_order_release);
  }
  owned_.clear();
  owned_lookup_.clear();
}

void TinyTx::AbortSelf() {
  RollbackAndRelease();
  FlushLocalStats();
  RunAbortHooks();
}

}  // namespace sb7
