// NOrec-style STM (Dalessandro, Spear, Scott — PPoPP'10).
//
// Included as the "modern minimal-metadata baseline" extension: unlike TL2
// and TinySTM it has *no ownership records at all* — one global sequence
// lock orders all writers, reads are invisible and validated **by value**
// (the read set stores (location, value) pairs and re-reads them whenever
// the global clock moves). Value-based validation makes NOrec immune to the
// false conflicts of striped lock tables and very cheap for read-dominated
// workloads, at the price of serializing writer commits — exactly the
// trade-off the backend sweeps (`sb7-bench --sweep fig6`) quantify on the
// STMBench7 mix.

#ifndef STMBENCH7_SRC_STM_NOREC_H_
#define STMBENCH7_SRC_STM_NOREC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/stm/stm.h"

namespace sb7 {

class NorecStm : public Stm {
 public:
  std::string_view name() const override { return "norec"; }

 protected:
  std::unique_ptr<TxImplBase> CreateTx() override;
};

class NorecTx : public TxImplBase {
 public:
  explicit NorecTx(StmStats& stats) : stats_(stats) {}

  void BeginAttempt() override;
  uint64_t Read(const TxFieldBase& field) override;
  void Write(TxFieldBase& field, uint64_t value) override;
  bool TryCommit() override;
  void AbortSelf() override;

 private:
  struct ReadEntry {
    const TxFieldBase* field;
    uint64_t value;
  };

  // Waits for an even (unlocked) global sequence number and returns it.
  static uint64_t WaitForEvenClock();
  // Re-reads every logged location and compares values; on success returns
  // the (even) clock value the validation is consistent with. Throws
  // TxAborted when any value changed.
  uint64_t Validate();

  StmStats& stats_;
  uint64_t snapshot_ = 0;

  std::vector<ReadEntry> read_log_;
  std::vector<std::pair<TxFieldBase*, uint64_t>> write_log_;
  std::unordered_map<const TxFieldBase*, size_t> write_index_;

  int64_t local_reads_ = 0;
  int64_t local_writes_ = 0;
  int64_t local_validation_steps_ = 0;
  void FlushLocalStats();
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_NOREC_H_
