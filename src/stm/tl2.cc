#include "src/stm/tl2.h"

#include <algorithm>

#include "src/common/diag.h"

namespace sb7 {

std::unique_ptr<TxImplBase> Tl2Stm::CreateTx() { return std::make_unique<Tl2Tx>(stats()); }

void Tl2Tx::BeginAttempt() {
  rv_ = LockTable::ClockNow();
  read_set_.clear();
  write_log_.clear();
  write_index_.clear();
  acquired_.clear();
  local_reads_ = local_writes_ = local_validation_steps_ = 0;
}

void Tl2Tx::FlushLocalStats() {
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.reads.fetch_add(local_reads_, std::memory_order_relaxed);
  stats_.writes.fetch_add(local_writes_, std::memory_order_relaxed);
  stats_.validation_steps.fetch_add(local_validation_steps_, std::memory_order_relaxed);
}

uint64_t Tl2Tx::Read(const TxFieldBase& field) {
  ++local_reads_;
  if (!write_index_.empty()) {
    auto it = write_index_.find(&field);
    if (it != write_index_.end()) {
      return write_log_[it->second].value;
    }
  }
  const sp::AtomicU64& stripe = LockTable::Global().StripeOf(field);
  // mo: acquire (both stripe loads and the data load) — the pre/post stripe
  // check brackets the data read seqlock-style; each must see the writeback
  // published by the committer's release of the stripe.
  const uint64_t pre = stripe.load(std::memory_order_acquire);
  const uint64_t value = field.LoadRaw(std::memory_order_acquire);
  const uint64_t post = stripe.load(std::memory_order_acquire);
  if (LockTable::IsLocked(pre) || pre != post || LockTable::VersionOf(pre) > rv_) {
    // Location is being written, or was written after this transaction's
    // snapshot point: the snapshot cannot be extended in plain TL2.
    SetTxAbortCause(AbortCause::kReadValidation, &stripe);
    throw TxAborted{};
  }
  read_set_.push_back(&stripe);
  return value;
}

void Tl2Tx::Write(TxFieldBase& field, uint64_t value) {
  ++local_writes_;
  auto [it, inserted] = write_index_.try_emplace(&field, write_log_.size());
  if (inserted) {
    write_log_.push_back(WriteEntry{&field, value});
  } else {
    write_log_[it->second].value = value;
  }
}

bool Tl2Tx::AcquireWriteStripes() {
  // Collect the distinct stripes covering the write set; sorting by address
  // makes concurrent committers acquire in the same order, so the only
  // possible outcome of a collision is a clean abort, never deadlock.
  std::vector<sp::AtomicU64*> stripes;
  stripes.reserve(write_log_.size());
  for (const WriteEntry& entry : write_log_) {
    stripes.push_back(&LockTable::Global().StripeOf(*entry.field));
  }
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());

  acquired_.reserve(stripes.size());
  for (sp::AtomicU64* stripe : stripes) {
    // mo: acquire on the probe; acq_rel on the CAS — taking the lock must
    // observe the prior owner's release and publish our ownership.
    uint64_t word = stripe->load(std::memory_order_acquire);
    if (LockTable::IsLocked(word) ||
        !stripe->compare_exchange_strong(word, LockTable::MakeLocked(this),
                                         std::memory_order_acq_rel)) {
      SetTxAbortCause(AbortCause::kWriteLock, stripe);
      ReleaseAcquired(0, /*use_saved=*/true);
      return false;
    }
    acquired_.push_back(AcquiredStripe{stripe, word});
  }
  return true;
}

void Tl2Tx::ReleaseAcquired(uint64_t unlock_version, bool use_saved) {
  for (const AcquiredStripe& held : acquired_) {
    // mo: release — unlocking publishes the redo-log writeback (or, on
    // abort, re-exposes the untouched pre-lock version).
    held.stripe->store(use_saved ? held.saved_word : LockTable::MakeVersion(unlock_version),
                       std::memory_order_release);
  }
  acquired_.clear();
}

bool Tl2Tx::ValidateReadSet() {
  TxValidationScope validation;
  validation.set_steps(read_set_.size());
  local_validation_steps_ += static_cast<int64_t>(read_set_.size());
  for (const sp::AtomicU64* stripe : read_set_) {
    // mo: acquire — pairs with committers' release stores; a version we
    // accept implies that commit's writeback is visible.
    const uint64_t word = stripe->load(std::memory_order_acquire);
    uint64_t effective = word;
    if (LockTable::IsLocked(word)) {
      if (LockTable::OwnerOf(word) != this) {
        SetTxAbortCause(AbortCause::kReadValidation, stripe);
        return false;
      }
      // Locked by this transaction's own commit: the stripe must still be
      // validated against the version it carried *before* we locked it — a
      // conflicting commit may have bumped it between our read and our lock
      // acquisition (acquired_ is sorted by stripe address; see
      // AcquireWriteStripes).
      const auto it = std::lower_bound(
          acquired_.begin(), acquired_.end(), stripe,
          [](const AcquiredStripe& held, const sp::AtomicU64* key) {
            return held.stripe < key;
          });
      SB7_DCHECK(it != acquired_.end() && it->stripe == stripe);
      effective = it->saved_word;
    }
    if (LockTable::VersionOf(effective) > rv_) {
      SetTxAbortCause(AbortCause::kReadValidation, stripe);
      return false;
    }
  }
  return true;
}

bool Tl2Tx::TryCommit() {
  if (write_log_.empty()) {
    // Read-only: per-read validation already pinned every read to the rv_
    // snapshot, so the transaction is serializable at its start point.
    FlushLocalStats();
    RunCommitHooks();
    return true;
  }
  if (!AcquireWriteStripes()) {
    FlushLocalStats();
    RunAbortHooks();
    return false;
  }
  const uint64_t wv = LockTable::ClockAdvance();
  // If nobody committed between start and lock acquisition, the read set is
  // trivially valid (the standard TL2 rv + 1 == wv shortcut).
  if (wv != rv_ + 1 && !ValidateReadSet()) {
    ReleaseAcquired(0, /*use_saved=*/true);
    FlushLocalStats();
    RunAbortHooks();
    return false;
  }
  for (const WriteEntry& entry : write_log_) {
    entry.field->StoreRaw(entry.value, std::memory_order_release);
  }
  ReleaseAcquired(wv, /*use_saved=*/false);
  FlushLocalStats();
  RunCommitHooks();
  return true;
}

void Tl2Tx::AbortSelf() {
  // Reads are invisible and writes are buffered; nothing to undo.
  SB7_DCHECK(acquired_.empty());
  FlushLocalStats();
  RunAbortHooks();
}

}  // namespace sb7
