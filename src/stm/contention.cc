#include "src/stm/contention.h"

#include "src/stm/astm.h"

namespace sb7 {
namespace {

class PolkaManager : public ContentionManager {
 public:
  std::string_view name() const override { return "polka"; }

  Action OnConflict(const AstmTx& me, const AstmTx& other, int retries) override {
    (void)me;
    // Give the enemy one backoff interval per unit of its priority (its open
    // count); once exhausted, kill it. This is Polka's "karma with randomized
    // exponential backoff" — the randomized backoff itself is supplied by
    // Backoff::Pause in the caller.
    if (retries > other.Priority()) {
      return Action::kAbortOther;
    }
    return Action::kRetry;
  }
};

class KarmaManager : public ContentionManager {
 public:
  std::string_view name() const override { return "karma"; }

  Action OnConflict(const AstmTx& me, const AstmTx& other, int retries) override {
    if (me.Priority() + retries > other.Priority()) {
      return Action::kAbortOther;
    }
    return Action::kRetry;
  }
};

class AggressiveManager : public ContentionManager {
 public:
  std::string_view name() const override { return "aggressive"; }

  Action OnConflict(const AstmTx& me, const AstmTx& other, int retries) override {
    (void)me;
    (void)other;
    (void)retries;
    return Action::kAbortOther;
  }
};

class TimidManager : public ContentionManager {
 public:
  std::string_view name() const override { return "timid"; }

  Action OnConflict(const AstmTx& me, const AstmTx& other, int retries) override {
    (void)me;
    (void)other;
    (void)retries;
    return Action::kAbortSelf;
  }
};

}  // namespace

std::unique_ptr<ContentionManager> MakePolkaManager() { return std::make_unique<PolkaManager>(); }
std::unique_ptr<ContentionManager> MakeKarmaManager() { return std::make_unique<KarmaManager>(); }
std::unique_ptr<ContentionManager> MakeAggressiveManager() {
  return std::make_unique<AggressiveManager>();
}
std::unique_ptr<ContentionManager> MakeTimidManager() { return std::make_unique<TimidManager>(); }

std::unique_ptr<ContentionManager> MakeContentionManager(std::string_view name) {
  if (name == "polka") {
    return MakePolkaManager();
  }
  if (name == "karma") {
    return MakeKarmaManager();
  }
  if (name == "aggressive") {
    return MakeAggressiveManager();
  }
  if (name == "timid") {
    return MakeTimidManager();
  }
  return nullptr;
}

}  // namespace sb7
