/// \file
/// Transactional field and object model.
///
/// This header defines the seam between the benchmark's data structure and
/// the concurrency-control strategies, playing the role AspectJ weaving
/// plays in the original Java benchmark:
///
///   * `TxField<T>` — a mutable shared field. Get/Set consult the
///     thread-local current transaction. With no transaction installed (the
///     coarse- and medium-grained locking strategies), accesses compile down
///     to plain acquire/release atomics; with a transaction installed they
///     are routed through the STM.
///   * `TmUnit` — the per-object header: a registry of the object's fields
///     plus the metadata the object-granular (ASTM-like) STM needs.
///     Word-based STMs ignore it.
///   * `Transaction` — the interface every STM implements.
///   * `TxObserver` — the observation seam the correctness oracle records
///     histories through.
///
/// The core benchmark code therefore contains no concurrency control at
/// all; strategies are injected orthogonally, as §4 of the paper requires.

#ifndef STMBENCH7_SRC_STM_FIELD_H_
#define STMBENCH7_SRC_STM_FIELD_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/diag.h"
#include "src/ebr/ebr.h"

namespace sb7 {

class TxFieldBase;
class AstmTx;

/// Thrown by STM read/write/commit paths to unwind an aborted transaction
/// back to the retry loop. Never escapes Stm::RunAtomically.
struct TxAborted {};

/// Per-object transactional header. Fields register themselves here at
/// construction time; construction is always thread-private (objects become
/// shared only when a committed transaction links them into the structure),
/// so registration needs no synchronization.
class TmUnit {
 public:
  TmUnit() = default;
  TmUnit(const TmUnit&) = delete;
  TmUnit& operator=(const TmUnit&) = delete;

  /// Returns the field's index within this unit (its slot in ASTM images).
  size_t RegisterField(TxFieldBase* field) {
    fields_.push_back(field);
    return fields_.size() - 1;
  }
  const std::vector<TxFieldBase*>& fields() const { return fields_; }

  /// Large out-of-line payload (document text, index snapshot). The
  /// ASTM-like STM clones it on write-open, reproducing object-granularity
  /// logging cost.
  using PayloadSource = std::function<std::string_view()>;
  void set_payload_source(PayloadSource source) { payload_source_ = std::move(source); }
  const PayloadSource& payload_source() const { return payload_source_; }

  // --- metadata owned by the ASTM-like STM ---
  std::atomic<AstmTx*> astm_owner{nullptr};
  std::atomic<uint64_t> astm_version{0};

  // --- lock-coverage chain (used by the fine-grained locking strategy) ---
  // Each unit is covered by a lockable ancestor: an atomic part or document
  // by its composite part, a collection chunk by its collection's owner.
  // Cover() resolves the chain to the covering root. Default: self.
  void set_cover(TmUnit* cover) { cover_ = cover; }
  // Topology units (collection internals: links, bags, children sets) are
  // written only by structure-modification operations, which the fine
  // strategy serializes via the structure lock; reads of topology therefore
  // need no per-object lock. Used by the fine strategy's audit mode.
  void set_topology(bool topology) { topology_ = topology; }
  bool topology() const { return topology_; }
  TmUnit* Cover() {
    TmUnit* unit = this;
    while (unit->cover_ != unit) {
      unit = unit->cover_;
    }
    return unit;
  }
  const TmUnit* Cover() const { return const_cast<TmUnit*>(this)->Cover(); }

 private:
  std::vector<TxFieldBase*> fields_;
  PayloadSource payload_source_;
  TmUnit* cover_ = this;
  bool topology_ = false;
};

/// Base class for shared benchmark objects: owns the TmUnit.
class TmObject {
 public:
  TmObject() = default;
  TmObject(const TmObject&) = delete;
  TmObject& operator=(const TmObject&) = delete;
  virtual ~TmObject() = default;

  TmUnit& unit() { return unit_; }
  const TmUnit& unit() const { return unit_; }

 private:
  TmUnit unit_;
};

/// STM interface. One instance per in-flight transaction.
class Transaction {
 public:
  virtual ~Transaction() = default;

  /// Transactional load of one 64-bit word.
  virtual uint64_t Read(const TxFieldBase& field) = 0;
  /// Transactional store of one 64-bit word.
  virtual void Write(TxFieldBase& field, uint64_t value) = 0;

  /// Deferred actions. Commit hooks run exactly once, after the commit
  /// point (used to retire replaced payloads and unlinked nodes through
  /// EBR); abort hooks run on every abort (used to free allocations that
  /// never became shared). Hooks must not touch transactional state.
  void OnCommit(std::function<void()> hook) { commit_hooks_.push_back(std::move(hook)); }
  void OnAbort(std::function<void()> hook) { abort_hooks_.push_back(std::move(hook)); }

 protected:
  void RunCommitHooks() {
    for (auto& hook : commit_hooks_) {
      hook();
    }
    commit_hooks_.clear();
    abort_hooks_.clear();
  }
  void RunAbortHooks() {
    for (auto& hook : abort_hooks_) {
      hook();
    }
    commit_hooks_.clear();
    abort_hooks_.clear();
  }

  std::vector<std::function<void()>> commit_hooks_;
  std::vector<std::function<void()>> abort_hooks_;
};

// Thread-local current transaction; null outside transactions (lock modes).
inline thread_local Transaction* tls_current_tx = nullptr;

inline Transaction* CurrentTx() { return tls_current_tx; }
inline void SetCurrentTx(Transaction* tx) { tls_current_tx = tx; }

/// Observation seam for the correctness oracle (src/check/history.*).
///
/// When an observer is installed, every transactional field access and
/// every attempt boundary (begin / commit / abort, driven by
/// Stm::RunAtomically) is reported to it. The hook is a single relaxed load
/// of a global pointer on the hot path — null in normal runs, so benchmark
/// numbers are unaffected unless recording was explicitly requested.
/// Install/uninstall only while no transactions are in flight; the observer
/// itself must be thread-safe (it is called concurrently from every
/// worker).
class TxObserver {
 public:
  virtual ~TxObserver() = default;

  /// A new attempt started on the calling thread (read_only = retry-loop
  /// hint).
  virtual void OnTxBegin(bool read_only) = 0;
  /// A transactional read; `word` is the raw 64-bit encoding the STM
  /// returned.
  virtual void OnTxRead(const TxFieldBase& field, uint64_t word) = 0;
  /// A transactional write; `word` is the raw 64-bit encoding consumed.
  virtual void OnTxWrite(const TxFieldBase& field, uint64_t word) = 0;
  /// The attempt committed; called after the commit point, on the
  /// committing thread, before control returns to the operation.
  virtual void OnTxCommit() = 0;
  /// The attempt aborted.
  virtual void OnTxAbort() = 0;
  /// A field was constructed (word = its initial value). Needed because
  /// field addresses are recycled: a node freed through EBR and a node
  /// later allocated at the same address are different logical locations,
  /// and the birth event is what re-grounds the address in a recorded
  /// history.
  virtual void OnFieldBirth(const TxFieldBase& field, uint64_t word) = 0;
  /// A raw (non-transactional) store. Inside a transaction this is either
  /// pre-publication seeding of a private object or STM writeback of
  /// already recorded values; both are safely treated as writes of the
  /// enclosing transaction.
  virtual void OnRawStore(const TxFieldBase& field, uint64_t word) = 0;
};

inline std::atomic<TxObserver*> g_tx_observer{nullptr};

inline TxObserver* CurrentTxObserver() {
  return g_tx_observer.load(std::memory_order_relaxed);
}
// Returns the previously installed observer (normally null).
inline TxObserver* InstallTxObserver(TxObserver* observer) {
  return g_tx_observer.exchange(observer, std::memory_order_acq_rel);
}

namespace internal {
// Defined in src/mvstm/version_chain.cc. Frees the head node of a field's
// multi-version history; all older nodes were retired through EBR when they
// were displaced, so destruction owns exactly the head node.
void FreeMvHistoryHead(void* head);
}  // namespace internal

/// Untyped shared word. The word doubles as the in-place value for every
/// STM flavour; per-location versioning lives in the global striped lock
/// table (word STMs), in the owning TmUnit (object STM), or in the
/// per-field version chain (multi-version STM).
class TxFieldBase {
 public:
  TxFieldBase(TmUnit& owner, uint64_t initial) : word_(initial), owner_(&owner) {
    index_in_unit_ = owner.RegisterField(this);
    if (TxObserver* observer = CurrentTxObserver()) {
      observer->OnFieldBirth(*this, initial);
    }
  }
  TxFieldBase(const TxFieldBase&) = delete;
  TxFieldBase& operator=(const TxFieldBase&) = delete;
  ~TxFieldBase() {
    // Destruction implies exclusivity (objects are unlinked by a committed
    // transaction and reclaimed through EBR before their fields die).
    if (void* head = mv_history_.load(std::memory_order_relaxed)) {
      internal::FreeMvHistoryHead(head);
    }
  }

  TmUnit& owner() const { return *owner_; }
  size_t index_in_unit() const { return index_in_unit_; }

  // Raw access, used by the STM implementations and by the lock-mode fall-
  // through. Not for use by benchmark code.
  uint64_t LoadRaw(std::memory_order order = std::memory_order_acquire) const {
    return word_.load(order);
  }
  void StoreRaw(uint64_t value, std::memory_order order = std::memory_order_release) {
    word_.store(value, order);
    if (TxObserver* observer = CurrentTxObserver()) {
      observer->OnRawStore(*this, value);
    }
  }

  // --- multi-version hook (mvstm backend) ---
  // Head of this field's committed-version history, managed by
  // src/mvstm/version_chain.*. Null until the mvstm backend first writes the
  // field; only ever stored while holding the field's stripe lock.
  void* LoadMvHistory(std::memory_order order = std::memory_order_acquire) const {
    return mv_history_.load(order);
  }
  void StoreMvHistory(void* head, std::memory_order order = std::memory_order_release) {
    mv_history_.store(head, order);
  }

 private:
  std::atomic<uint64_t> word_;
  std::atomic<void*> mv_history_{nullptr};
  TmUnit* owner_;
  size_t index_in_unit_ = 0;
};

namespace internal {

template <typename T>
uint64_t EncodeWord(const T& value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "TxField requires a trivially copyable type of at most 8 bytes");
  uint64_t word = 0;
  std::memcpy(&word, &value, sizeof(T));
  return word;
}

template <typename T>
T DecodeWord(uint64_t word) {
  T value;
  std::memcpy(&value, &word, sizeof(T));
  return value;
}

}  // namespace internal

/// Typed shared field: Get/Set route through the thread-local current
/// transaction when one is installed, and fall through to plain
/// acquire/release atomics otherwise (the lock strategies).
template <typename T>
class TxField : public TxFieldBase {
 public:
  TxField(TmUnit& owner, const T& initial) : TxFieldBase(owner, internal::EncodeWord(initial)) {}

  T Get() const {
    if (Transaction* tx = CurrentTx()) {
      const uint64_t word = tx->Read(*this);
      if (TxObserver* observer = CurrentTxObserver()) {
        observer->OnTxRead(*this, word);
      }
      return internal::DecodeWord<T>(word);
    }
    return internal::DecodeWord<T>(LoadRaw());
  }

  void Set(const T& value) {
    if (Transaction* tx = CurrentTx()) {
      const uint64_t word = internal::EncodeWord(value);
      tx->Write(*this, word);
      if (TxObserver* observer = CurrentTxObserver()) {
        observer->OnTxWrite(*this, word);
      }
    } else {
      StoreRaw(internal::EncodeWord(value));
    }
  }
};

/// Mutable text payload (documents, the manual). The body is an immutable
/// heap string; updates allocate a replacement and swap the pointer,
/// retiring the old body through EBR once no thread can still be reading
/// it. This gives word-based STMs a single logical location for the whole
/// text, while the object-granular STM additionally pays the whole-body
/// clone on write-open via the owning unit's payload source — exactly the
/// "large object" pathology §5 analyses.
class TxText {
 public:
  TxText(TmUnit& owner, std::string initial)
      : field_(owner, new std::string(std::move(initial))) {
    owner.set_payload_source([this] { return std::string_view(*PeekRaw()); });
  }

  ~TxText() {
    // The final body is owned by the field; safe to free directly here
    // because destruction implies exclusivity.
    delete field_.Get();
  }

  // Returns the current body. The reference stays valid for the duration of
  // the enclosing operation (EBR defers frees past the next quiescence).
  const std::string& Get() const { return *field_.Get(); }

  void Set(std::string text) {
    auto* fresh = new std::string(std::move(text));
    const std::string* old = field_.Get();
    field_.Set(fresh);
    if (Transaction* tx = CurrentTx()) {
      tx->OnCommit([old] { EbrDomain::Global().RetireObject(old); });
      tx->OnAbort([fresh] { delete fresh; });
    } else {
      EbrDomain::Global().RetireObject(old);
    }
  }

 private:
  // Non-transactional peek used only by the ASTM payload-clone cost model.
  const std::string* PeekRaw() const {
    return internal::DecodeWord<const std::string*>(field_.LoadRaw());
  }

  TxField<const std::string*> field_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_FIELD_H_
