/// \file
/// Transactional field and object model.
///
/// This header defines the seam between the benchmark's data structure and
/// the concurrency-control strategies, playing the role AspectJ weaving
/// plays in the original Java benchmark:
///
///   * `TxField<T>` — a mutable shared field. Get/Set consult the
///     thread-local current transaction. With no transaction installed (the
///     coarse- and medium-grained locking strategies), accesses compile down
///     to plain acquire/release atomics; with a transaction installed they
///     are routed through the STM.
///   * `TmUnit` — the per-object header: a registry of the object's fields
///     plus the metadata the object-granular (ASTM-like) STM needs.
///     Word-based STMs ignore it.
///   * `Transaction` — the interface every STM implements.
///   * `TxObserver` — the observation seam the correctness oracle and the
///     tracer (src/trace/) record through; a fixed-capacity multi-observer
///     registry dispatches to every installed observer.
///
/// The core benchmark code therefore contains no concurrency control at
/// all; strategies are injected orthogonally, as §4 of the paper requires.

#ifndef STMBENCH7_SRC_STM_FIELD_H_
#define STMBENCH7_SRC_STM_FIELD_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/diag.h"
#include "src/common/timing.h"
#include "src/ebr/ebr.h"
#include "src/mc/sync_point.h"

namespace sb7 {

class TxFieldBase;
class AstmTx;

/// Thrown by STM read/write/commit paths to unwind an aborted transaction
/// back to the retry loop. Never escapes Stm::RunAtomically.
struct TxAborted {};

/// Per-object transactional header. Fields register themselves here at
/// construction time; construction is always thread-private (objects become
/// shared only when a committed transaction links them into the structure),
/// so registration needs no synchronization.
class TmUnit {
 public:
  TmUnit() = default;
  TmUnit(const TmUnit&) = delete;
  TmUnit& operator=(const TmUnit&) = delete;

  /// Returns the field's index within this unit (its slot in ASTM images).
  size_t RegisterField(TxFieldBase* field) {
    fields_.push_back(field);
    return fields_.size() - 1;
  }
  const std::vector<TxFieldBase*>& fields() const { return fields_; }

  /// Large out-of-line payload (document text, index snapshot). The
  /// ASTM-like STM clones it on write-open, reproducing object-granularity
  /// logging cost.
  using PayloadSource = std::function<std::string_view()>;
  void set_payload_source(PayloadSource source) { payload_source_ = std::move(source); }
  const PayloadSource& payload_source() const { return payload_source_; }

  // --- metadata owned by the ASTM-like STM ---
  // Protocol atomics (ownership word + per-object seqlock): on the
  // SyncPoint seam so the interleaving explorer can schedule around them.
  sp::Atomic<AstmTx*> astm_owner{nullptr};
  sp::AtomicU64 astm_version{0};

  // --- lock-coverage chain (used by the fine-grained locking strategy) ---
  // Each unit is covered by a lockable ancestor: an atomic part or document
  // by its composite part, a collection chunk by its collection's owner.
  // Cover() resolves the chain to the covering root. Default: self.
  void set_cover(TmUnit* cover) { cover_ = cover; }
  // Topology units (collection internals: links, bags, children sets) are
  // written only by structure-modification operations, which the fine
  // strategy serializes via the structure lock; reads of topology therefore
  // need no per-object lock. Used by the fine strategy's audit mode.
  void set_topology(bool topology) { topology_ = topology; }
  bool topology() const { return topology_; }
  TmUnit* Cover() {
    TmUnit* unit = this;
    while (unit->cover_ != unit) {
      unit = unit->cover_;
    }
    return unit;
  }
  const TmUnit* Cover() const { return const_cast<TmUnit*>(this)->Cover(); }

 private:
  std::vector<TxFieldBase*> fields_;
  PayloadSource payload_source_;
  TmUnit* cover_ = this;
  bool topology_ = false;
};

/// Base class for shared benchmark objects: owns the TmUnit.
class TmObject {
 public:
  TmObject() = default;
  TmObject(const TmObject&) = delete;
  TmObject& operator=(const TmObject&) = delete;
  virtual ~TmObject() = default;

  TmUnit& unit() { return unit_; }
  const TmUnit& unit() const { return unit_; }

 private:
  TmUnit unit_;
};

/// STM interface. One instance per in-flight transaction.
class Transaction {
 public:
  virtual ~Transaction() = default;

  /// Transactional load of one 64-bit word.
  virtual uint64_t Read(const TxFieldBase& field) = 0;
  /// Transactional store of one 64-bit word.
  virtual void Write(TxFieldBase& field, uint64_t value) = 0;

  /// Deferred actions. Commit hooks run exactly once, after the commit
  /// point (used to retire replaced payloads and unlinked nodes through
  /// EBR); abort hooks run on every abort (used to free allocations that
  /// never became shared). Hooks must not touch transactional state.
  void OnCommit(std::function<void()> hook) { commit_hooks_.push_back(std::move(hook)); }
  void OnAbort(std::function<void()> hook) { abort_hooks_.push_back(std::move(hook)); }

 protected:
  void RunCommitHooks() {
    for (auto& hook : commit_hooks_) {
      hook();
    }
    commit_hooks_.clear();
    abort_hooks_.clear();
  }
  void RunAbortHooks() {
    for (auto& hook : abort_hooks_) {
      hook();
    }
    commit_hooks_.clear();
    abort_hooks_.clear();
  }

  std::vector<std::function<void()>> commit_hooks_;
  std::vector<std::function<void()>> abort_hooks_;
};

// Thread-local current transaction; null outside transactions (lock modes).
inline thread_local Transaction* tls_current_tx = nullptr;

inline Transaction* CurrentTx() { return tls_current_tx; }
inline void SetCurrentTx(Transaction* tx) { tls_current_tx = tx; }

/// Why a transaction attempt died, as reported by the backend at the abort
/// site. `kUnknown` covers aborts whose site was never annotated (a bug) and
/// self-aborts that carry no conflict (operation-level retry).
enum class AbortCause : uint8_t {
  kUnknown = 0,
  kReadValidation,   // a read-set entry no longer validates at its snapshot
  kWriteLock,        // lost a race for a write lock / ownership arbitration
  kKill,             // killed by a contention manager (object STM)
  kSnapshotTooOld,   // the attempt's snapshot cannot serve the access (mvstm)
};
inline constexpr int kAbortCauseCount = 5;

constexpr const char* AbortCauseName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kReadValidation:
      return "read_validation";
    case AbortCause::kWriteLock:
      return "write_lock";
    case AbortCause::kKill:
      return "kill";
    case AbortCause::kSnapshotTooOld:
      return "snapshot_too_old";
    case AbortCause::kUnknown:
      break;
  }
  return "unknown";
}

/// What a backend knows about an abort at the point it decides to die: the
/// cause, plus an opaque conflict key identifying the contended location
/// (the address of its lock-table stripe for the word STMs; null when the
/// site has no single location, e.g. contention-manager kills).
struct TxAbortInfo {
  AbortCause cause = AbortCause::kUnknown;
  uintptr_t conflict_key = 0;
};

namespace internal {
inline thread_local TxAbortInfo tls_tx_abort_info{};
}  // namespace internal

/// Called by backends immediately before throwing TxAborted or returning
/// false from TryCommit. A plain thread-local store — cheap enough to keep
/// unconditional on abort paths.
inline void SetTxAbortCause(AbortCause cause, const void* conflict_key = nullptr) {
  internal::tls_tx_abort_info =
      TxAbortInfo{cause, reinterpret_cast<uintptr_t>(conflict_key)};
}

/// Consumed once per abort by Stm::RunAtomically; resets to kUnknown so a
/// stale cause can never be attributed to a later abort.
inline TxAbortInfo ConsumeTxAbortInfo() {
  const TxAbortInfo info = internal::tls_tx_abort_info;
  internal::tls_tx_abort_info = TxAbortInfo{};
  return info;
}

/// Operation context for attribution: the index (registry order) of the
/// benchmark operation the calling thread is currently executing, -1 outside
/// operations. Set by the harness worker loop around Execute; read by trace
/// observers to label transactions and conflicts by op type.
namespace internal {
inline thread_local int tls_tx_op_context = -1;
}  // namespace internal

inline void SetTxOpContext(int op_index) { internal::tls_tx_op_context = op_index; }
inline int TxOpContext() { return internal::tls_tx_op_context; }

/// Per-attempt latency decomposition, produced by Stm::RunAtomically when
/// transaction timing is enabled (see SetTxTimingEnabled). All buckets are
/// nanoseconds of the attempt just ended; `validation_nanos` is accumulated
/// by the backends' validation passes and subtracted from the enclosing
/// body/commit buckets so the four buckets are disjoint.
struct TxAttemptTiming {
  int64_t read_nanos = 0;        // operation body: read-set build + compute
  int64_t validation_nanos = 0;  // backend validation passes (body + commit)
  int64_t commit_nanos = 0;      // TryCommit outside validation
  int64_t backoff_nanos = 0;     // contention backoff before the attempt
};

/// Global switch for per-attempt timing. Off by default: the retry loop then
/// takes no timestamps at all, keeping the tracing-off hot path free of
/// clock reads. Flip only while no transactions are in flight.
namespace internal {
inline std::atomic<bool> g_tx_timing_enabled{false};
inline thread_local int64_t tls_tx_validation_nanos = 0;
}  // namespace internal

inline bool TxTimingEnabled() {
  // mo: relaxed — advisory flag, flipped only while no tx is in flight.
  return internal::g_tx_timing_enabled.load(std::memory_order_relaxed);
}
inline void SetTxTimingEnabled(bool enabled) {
  // mo: relaxed — see TxTimingEnabled; quiescence provides the ordering.
  internal::g_tx_timing_enabled.store(enabled, std::memory_order_relaxed);
}

/// Observation seam shared by the correctness oracle (src/check/history.*)
/// and the tracer (src/trace/). When observers are installed, every
/// transactional field access and every attempt boundary (begin / commit /
/// abort, driven by Stm::RunAtomically) is reported to each of them, in
/// installation order. The hot-path guard is a single relaxed load of a
/// global counter — zero in normal runs, so benchmark numbers are
/// unaffected unless observation was explicitly requested.
/// Install/remove only while no transactions are in flight; observers
/// themselves must be thread-safe (they are called concurrently from every
/// worker).
///
/// Every callback is `noexcept` (enforced by `sb7-lint`): observers fire on
/// STM hot paths — inside the retry loop and between a backend's lock
/// acquisition and release — where an escaping exception would unwind
/// through protocol state (held stripes, odd seqlocks) and corrupt it.
class TxObserver {
 public:
  virtual ~TxObserver() = default;

  /// A new attempt started on the calling thread (read_only = retry-loop
  /// hint).
  virtual void OnTxBegin(bool read_only) noexcept = 0;
  /// The attempt committed; called after the commit point, on the
  /// committing thread, before control returns to the operation.
  virtual void OnTxCommit() noexcept = 0;
  /// The attempt aborted; `info` carries the backend-reported cause and
  /// conflict key (kUnknown/null when the site did not annotate).
  virtual void OnTxAbort(const TxAbortInfo& info) noexcept = 0;

  /// A transactional read; `word` is the raw 64-bit encoding the STM
  /// returned.
  virtual void OnTxRead(const TxFieldBase& field, uint64_t word) noexcept {
    (void)field;
    (void)word;
  }
  /// A transactional write; `word` is the raw 64-bit encoding consumed.
  virtual void OnTxWrite(const TxFieldBase& field, uint64_t word) noexcept {
    (void)field;
    (void)word;
  }
  /// A field was constructed (word = its initial value). Needed because
  /// field addresses are recycled: a node freed through EBR and a node
  /// later allocated at the same address are different logical locations,
  /// and the birth event is what re-grounds the address in a recorded
  /// history.
  virtual void OnFieldBirth(const TxFieldBase& field, uint64_t word) noexcept {
    (void)field;
    (void)word;
  }
  /// A raw (non-transactional) store. Inside a transaction this is either
  /// pre-publication seeding of a private object or STM writeback of
  /// already recorded values; both are safely treated as writes of the
  /// enclosing transaction.
  virtual void OnRawStore(const TxFieldBase& field, uint64_t word) noexcept {
    (void)field;
    (void)word;
  }
  /// A backend validation pass finished on the calling thread; `steps` is
  /// the number of read-set entries re-checked.
  virtual void OnTxValidation(size_t steps) noexcept { (void)steps; }
  /// The calling thread is about to back off before retry `attempt` (>= 1).
  virtual void OnTxBackoff(int attempt) noexcept { (void)attempt; }
  /// Latency decomposition of the attempt that just ended. Only fired when
  /// TxTimingEnabled(); precedes the matching OnTxCommit/OnTxAbort.
  virtual void OnTxAttemptTiming(const TxAttemptTiming& timing, bool committed) noexcept {
    (void)timing;
    (void)committed;
  }
};

/// Fixed-capacity observer registry. The count is the publication point:
/// slots [0, count) are fully written before the count that exposes them is
/// stored, so dispatch needs no lock. The capacity is deliberately tiny —
/// an observer is a whole measurement subsystem (oracle, tracer), not a
/// callback list.
inline constexpr int kMaxTxObservers = 4;

namespace internal {
inline std::atomic<int> g_tx_observer_count{0};
inline std::atomic<TxObserver*> g_tx_observers[kMaxTxObservers]{};
inline std::mutex g_tx_observer_mutex;
}  // namespace internal

/// Hot-path guard: one relaxed load, one branch, nothing else when no
/// observer is installed.
inline bool HasTxObservers() {
  // mo: relaxed — a zero/nonzero guard; dispatch re-loads with acquire.
  return internal::g_tx_observer_count.load(std::memory_order_relaxed) != 0;
}

/// Installs `observer` at the end of the list. Returns false (and installs
/// nothing) when the list is full, the observer is null, or it is already
/// installed. Only call while no transactions are in flight.
inline bool InstallTxObserver(TxObserver* observer) {
  if (observer == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(internal::g_tx_observer_mutex);
  // mo: relaxed — reads under the registry mutex, which orders all writers.
  const int count = internal::g_tx_observer_count.load(std::memory_order_relaxed);
  if (count >= kMaxTxObservers) {
    return false;
  }
  for (int i = 0; i < count; ++i) {
    // mo: relaxed — slot reads under the same registry mutex.
    if (internal::g_tx_observers[i].load(std::memory_order_relaxed) == observer) {
      return false;
    }
  }
  // mo: release — slot must be fully visible before the count that exposes
  // it (the count store below is the publication point for dispatch).
  internal::g_tx_observers[count].store(observer, std::memory_order_release);
  internal::g_tx_observer_count.store(count + 1, std::memory_order_release);
  return true;
}

/// Removes a previously installed observer, compacting the list. Returns
/// false when it was not installed. Only call while no transactions are in
/// flight (compaction is not safe against concurrent dispatch).
inline bool RemoveTxObserver(TxObserver* observer) {
  std::lock_guard<std::mutex> lock(internal::g_tx_observer_mutex);
  // mo: relaxed — reads under the registry mutex (see InstallTxObserver).
  const int count = internal::g_tx_observer_count.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    // mo: relaxed — slot reads under the same registry mutex.
    if (internal::g_tx_observers[i].load(std::memory_order_relaxed) != observer) {
      continue;
    }
    for (int j = i; j + 1 < count; ++j) {
      // mo: release stores / relaxed loads — compaction runs under the
      // mutex; release keeps each slot coherent for concurrent dispatch
      // (which is documented unsafe during removal anyway).
      internal::g_tx_observers[j].store(
          internal::g_tx_observers[j + 1].load(std::memory_order_relaxed),
          std::memory_order_release);
    }
    // mo: release — shrink the published window before dropping the slot.
    internal::g_tx_observers[count - 1].store(nullptr, std::memory_order_release);
    internal::g_tx_observer_count.store(count - 1, std::memory_order_release);
    return true;
  }
  return false;
}

/// Dispatches `fn(TxObserver&)` to every installed observer, in
/// installation order. Callers guard with HasTxObservers() so the empty
/// case stays a single branch.
template <typename Fn>
inline void NotifyTxObservers(Fn&& fn) {
  // mo: acquire — pairs with the release publication in InstallTxObserver:
  // a count of N guarantees slots [0, N) are fully written.
  const int count = internal::g_tx_observer_count.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    // mo: acquire — the observer object must be constructed before use.
    if (TxObserver* observer = internal::g_tx_observers[i].load(std::memory_order_acquire)) {
      fn(*observer);
    }
  }
}

/// Scoped instrumentation for one backend validation pass. Reports the pass
/// to observers (OnTxValidation) and, when transaction timing is enabled,
/// charges its duration to the attempt's validation bucket so
/// TxAttemptTiming can subtract it from the enclosing body/commit time.
class TxValidationScope {
 public:
  TxValidationScope() : start_(TxTimingEnabled() ? NowNanos() : 0) {}
  TxValidationScope(const TxValidationScope&) = delete;
  TxValidationScope& operator=(const TxValidationScope&) = delete;
  ~TxValidationScope() {
    if (start_ != 0) {
      internal::tls_tx_validation_nanos += NowNanos() - start_;
    }
    if (HasTxObservers()) {
      NotifyTxObservers([this](TxObserver& observer) { observer.OnTxValidation(steps_); });
    }
  }

  void set_steps(size_t steps) { steps_ = steps; }

 private:
  int64_t start_;
  size_t steps_ = 0;
};

namespace internal {
// Defined in src/mvstm/version_chain.cc. Frees the head node of a field's
// multi-version history; all older nodes were retired through EBR when they
// were displaced, so destruction owns exactly the head node.
void FreeMvHistoryHead(void* head);
}  // namespace internal

/// Untyped shared word. The word doubles as the in-place value for every
/// STM flavour; per-location versioning lives in the global striped lock
/// table (word STMs), in the owning TmUnit (object STM), or in the
/// per-field version chain (multi-version STM).
class TxFieldBase {
 public:
  TxFieldBase(TmUnit& owner, uint64_t initial) : word_(initial), owner_(&owner) {
    index_in_unit_ = owner.RegisterField(this);
    if (HasTxObservers()) {
      NotifyTxObservers(
          [&](TxObserver& observer) { observer.OnFieldBirth(*this, initial); });
    }
  }
  TxFieldBase(const TxFieldBase&) = delete;
  TxFieldBase& operator=(const TxFieldBase&) = delete;
  ~TxFieldBase() {
    // Destruction implies exclusivity (objects are unlinked by a committed
    // transaction and reclaimed through EBR before their fields die).
    // mo: relaxed — no rival access can exist by the argument above.
    if (void* head = mv_history_.load(std::memory_order_relaxed)) {
      internal::FreeMvHistoryHead(head);
    }
  }

  TmUnit& owner() const { return *owner_; }
  size_t index_in_unit() const { return index_in_unit_; }

  // Raw access, used by the STM implementations and by the lock-mode fall-
  // through. Not for use by benchmark code (enforced by sb7-lint): Get/Set
  // are the only seam benchmark code may cross.
  uint64_t LoadRaw(std::memory_order order = std::memory_order_acquire) const {
    // mo: caller-supplied; defaults to acquire for the lock-mode fall-through.
    return word_.load(order);
  }
  void StoreRaw(uint64_t value, std::memory_order order = std::memory_order_release) {
    // mo: caller-supplied; defaults to release for the lock-mode fall-through.
    word_.store(value, order);
    if (HasTxObservers()) {
      NotifyTxObservers(
          [&](TxObserver& observer) { observer.OnRawStore(*this, value); });
    }
  }

  // --- multi-version hook (mvstm backend) ---
  // Head of this field's committed-version history, managed by
  // src/mvstm/version_chain.*. Null until the mvstm backend first writes the
  // field; only ever stored while holding the field's stripe lock.
  void* LoadMvHistory(std::memory_order order = std::memory_order_acquire) const {
    // mo: caller-supplied; acquire default makes the node's fields visible.
    return mv_history_.load(order);
  }
  void StoreMvHistory(void* head, std::memory_order order = std::memory_order_release) {
    // mo: caller-supplied; release default publishes the node's fields.
    mv_history_.store(head, order);
  }

 private:
  // Both on the SyncPoint seam (src/mc/sync_point.h): the in-place word is
  // the datum every STM protocol races on, and the version-chain head is
  // mvstm's publication point.
  sp::AtomicU64 word_;
  sp::Atomic<void*> mv_history_{nullptr};
  TmUnit* owner_;
  size_t index_in_unit_ = 0;
};

namespace internal {

template <typename T>
uint64_t EncodeWord(const T& value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "TxField requires a trivially copyable type of at most 8 bytes");
  uint64_t word = 0;
  std::memcpy(&word, &value, sizeof(T));
  return word;
}

template <typename T>
T DecodeWord(uint64_t word) {
  T value;
  std::memcpy(&value, &word, sizeof(T));
  return value;
}

}  // namespace internal

/// Typed shared field: Get/Set route through the thread-local current
/// transaction when one is installed, and fall through to plain
/// acquire/release atomics otherwise (the lock strategies).
template <typename T>
class TxField : public TxFieldBase {
 public:
  TxField(TmUnit& owner, const T& initial) : TxFieldBase(owner, internal::EncodeWord(initial)) {}

  T Get() const {
    if (Transaction* tx = CurrentTx()) {
      const uint64_t word = tx->Read(*this);
      if (HasTxObservers()) {
        NotifyTxObservers(
            [&](TxObserver& observer) { observer.OnTxRead(*this, word); });
      }
      return internal::DecodeWord<T>(word);
    }
    return internal::DecodeWord<T>(LoadRaw());
  }

  void Set(const T& value) {
    if (Transaction* tx = CurrentTx()) {
      const uint64_t word = internal::EncodeWord(value);
      tx->Write(*this, word);
      if (HasTxObservers()) {
        NotifyTxObservers(
            [&](TxObserver& observer) { observer.OnTxWrite(*this, word); });
      }
    } else {
      StoreRaw(internal::EncodeWord(value));
    }
  }
};

/// Mutable text payload (documents, the manual). The body is an immutable
/// heap string; updates allocate a replacement and swap the pointer,
/// retiring the old body through EBR once no thread can still be reading
/// it. This gives word-based STMs a single logical location for the whole
/// text, while the object-granular STM additionally pays the whole-body
/// clone on write-open via the owning unit's payload source — exactly the
/// "large object" pathology §5 analyses.
class TxText {
 public:
  TxText(TmUnit& owner, std::string initial)
      : field_(owner, new std::string(std::move(initial))) {
    owner.set_payload_source([this] { return std::string_view(*PeekRaw()); });
  }

  ~TxText() {
    // The final body is owned by the field; safe to free directly here
    // because destruction implies exclusivity.
    delete field_.Get();
  }

  // Returns the current body. The reference stays valid for the duration of
  // the enclosing operation (EBR defers frees past the next quiescence).
  const std::string& Get() const { return *field_.Get(); }

  void Set(std::string text) {
    auto* fresh = new std::string(std::move(text));
    const std::string* old = field_.Get();
    field_.Set(fresh);
    if (Transaction* tx = CurrentTx()) {
      tx->OnCommit([old] { EbrDomain::Global().RetireObject(old); });
      tx->OnAbort([fresh] { delete fresh; });
    } else {
      EbrDomain::Global().RetireObject(old);
    }
  }

 private:
  // Non-transactional peek used only by the ASTM payload-clone cost model.
  const std::string* PeekRaw() const {
    return internal::DecodeWord<const std::string*>(field_.LoadRaw());
  }

  TxField<const std::string*> field_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_FIELD_H_
