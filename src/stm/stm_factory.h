// Construction of STM instances by name, used by the CLI and the benches.

#ifndef STMBENCH7_SRC_STM_STM_FACTORY_H_
#define STMBENCH7_SRC_STM_STM_FACTORY_H_

#include <memory>
#include <string_view>

#include "src/stm/stm.h"

namespace sb7 {

// `name` is one of "tl2", "tinystm", "norec", "astm", "mvstm". For "astm",
// `contention_manager` selects the arbiter ("polka", "karma", "aggressive",
// "timid"); an unknown manager name makes construction fail. Word STMs
// ignore `contention_manager`. Returns nullptr for unknown names.
std::unique_ptr<Stm> MakeStm(std::string_view name, std::string_view contention_manager = "polka");

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_STM_FACTORY_H_
