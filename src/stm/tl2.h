// TL2-style word-based STM (Dice, Shalev, Shavit — DISC'06, the paper's [5]).
//
// Mechanics: a transaction samples the global version clock at start (rv),
// reads are invisible and validated per-read against the per-stripe versioned
// locks (post-validation gives opacity, so no zombie executions), writes are
// buffered in a redo log and published at commit under commit-time stripe
// locks with a fresh write version (wv).

#ifndef STMBENCH7_SRC_STM_TL2_H_
#define STMBENCH7_SRC_STM_TL2_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/stm/lock_table.h"
#include "src/stm/stm.h"

namespace sb7 {

class Tl2Stm : public Stm {
 public:
  std::string_view name() const override { return "tl2"; }

 protected:
  std::unique_ptr<TxImplBase> CreateTx() override;
};

class Tl2Tx : public TxImplBase {
 public:
  explicit Tl2Tx(StmStats& stats) : stats_(stats) {}

  void BeginAttempt() override;
  uint64_t Read(const TxFieldBase& field) override;
  void Write(TxFieldBase& field, uint64_t value) override;
  bool TryCommit() override;
  void AbortSelf() override;

  size_t read_set_size() const { return read_set_.size(); }
  size_t write_set_size() const { return write_log_.size(); }

 private:
  struct WriteEntry {
    TxFieldBase* field;
    uint64_t value;
  };

  // Acquires the stripes covering the write set in address order; returns
  // false (with everything released) if any stripe is held by another
  // transaction.
  bool AcquireWriteStripes();
  void ReleaseAcquired(uint64_t unlock_word_version, bool use_saved);
  bool ValidateReadSet();

  StmStats& stats_;
  uint64_t rv_ = 0;

  std::vector<const sp::AtomicU64*> read_set_;
  std::vector<WriteEntry> write_log_;
  std::unordered_map<const TxFieldBase*, size_t> write_index_;

  struct AcquiredStripe {
    sp::AtomicU64* stripe;
    uint64_t saved_word;  // pre-lock word, restored on failed commit
  };
  std::vector<AcquiredStripe> acquired_;

  // Local counters flushed to stats_ at attempt end.
  int64_t local_reads_ = 0;
  int64_t local_writes_ = 0;
  int64_t local_validation_steps_ = 0;
  void FlushLocalStats();
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_TL2_H_
