/// \file
/// STM runtime interface: statistics, the retry loop, and backoff.
///
/// Every STM flavour (TL2, TinySTM, ASTM-like) provides a TxImplBase and is
/// driven by the shared Stm::RunAtomically retry loop. The loop implements
/// the benchmark's failure semantics (§3 of the paper): an exception other
/// than TxAborted thrown by the body is an *operation failure*, which is a
/// committed outcome — the loop attempts to commit the reads performed so
/// far and, only if that commit validates, lets the exception propagate. A
/// failure observed by a transaction that cannot commit was based on an
/// inconsistent snapshot and is retried instead.

#ifndef STMBENCH7_SRC_STM_STM_H_
#define STMBENCH7_SRC_STM_STM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "src/stm/field.h"

namespace sb7 {

/// Aggregate counters, written by transactions at commit/abort boundaries.
/// Each hot counter sits on its own cache line: worker threads bump
/// different counters concurrently, and false sharing here measurably
/// perturbs the very throughput numbers the harness exists to report.
struct StmStats {
  alignas(64) std::atomic<int64_t> starts{0};
  alignas(64) std::atomic<int64_t> commits{0};
  alignas(64) std::atomic<int64_t> aborts{0};
  alignas(64) std::atomic<int64_t> reads{0};
  alignas(64) std::atomic<int64_t> writes{0};
  // Read-set entries re-checked during incremental validation; the O(k^2)
  // signature of invisible-read STMs shows up here.
  alignas(64) std::atomic<int64_t> validation_steps{0};
  // Bytes copied by object-granular write-open cloning (ASTM only).
  alignas(64) std::atomic<int64_t> bytes_cloned{0};
  // Transactions aborted by a contention manager on behalf of another.
  alignas(64) std::atomic<int64_t> kills{0};
  // Transactions executed with the read-only hint (the snapshot path under
  // mvstm). ro_aborts staying at zero under concurrent writers is the
  // defining property of the multi-version backend.
  alignas(64) std::atomic<int64_t> ro_starts{0};
  alignas(64) std::atomic<int64_t> ro_commits{0};
  alignas(64) std::atomic<int64_t> ro_aborts{0};

  struct View {
    int64_t starts, commits, aborts, reads, writes, validation_steps, bytes_cloned, kills;
    int64_t ro_starts, ro_commits, ro_aborts;
  };
  View Snapshot() const {
    return View{starts.load(),       commits.load(),    aborts.load(),
                reads.load(),        writes.load(),     validation_steps.load(),
                bytes_cloned.load(), kills.load(),      ro_starts.load(),
                ro_commits.load(),   ro_aborts.load()};
  }
  void Reset() {
    starts = commits = aborts = reads = writes = 0;
    validation_steps = bytes_cloned = kills = 0;
    ro_starts = ro_commits = ro_aborts = 0;
  }
};

/// Per-attempt transaction implementation. The retry loop owns the life
/// cycle: BeginAttempt -> body -> (TryCommit | AbortSelf). After
/// TryCommit() returns false or AbortSelf() returns, all transaction-held
/// resources (stripe locks, object ownerships, undo state) have been
/// released.
class TxImplBase : public Transaction {
 public:
  /// Starts a fresh attempt on the calling thread.
  virtual void BeginAttempt() = 0;
  /// Returns true iff the transaction committed; on false the attempt has
  /// been fully rolled back and abort hooks have run.
  virtual bool TryCommit() = 0;
  /// Rolls back the attempt (used when the body threw TxAborted).
  virtual void AbortSelf() = 0;
  /// Hint installed by the retry loop before the first BeginAttempt: the
  /// body performs no writes. Backends may use it to serve all reads from a
  /// consistent snapshot (mvstm); the default ignores it.
  virtual void SetReadOnly(bool read_only) { (void)read_only; }
};

/// Exponential backoff with jitter. On this benchmark's single-core hosts
/// the key property is yielding the CPU so the conflicting transaction can
/// finish.
class Backoff {
 public:
  static void Pause(int attempt);
};

/// One STM backend instance: owns the statistics block and the retry loop.
class Stm {
 public:
  Stm();
  virtual ~Stm() = default;
  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  /// Backend name as selected by the CLI (`tl2`, `mvstm`, ...).
  virtual std::string_view name() const = 0;

  /// Executes `body` atomically, retrying on conflicts. Exceptions other
  /// than TxAborted propagate once the enclosing transaction commits (see
  /// the file comment). `read_only` is a caller promise that the body
  /// performs no transactional writes (the driver derives it from
  /// Operation::read_only()); backends that support snapshot reads execute
  /// such bodies without validation or aborts.
  void RunAtomically(const std::function<void(Transaction&)>& body, bool read_only = false);

  StmStats& stats() { return stats_; }
  const StmStats& stats() const { return stats_; }

 protected:
  /// One implementation object is cached per (thread, Stm instance) and
  /// reused across attempts and operations.
  virtual std::unique_ptr<TxImplBase> CreateTx() = 0;

 private:
  TxImplBase& LocalTx();

  uint64_t instance_id_;
  StmStats stats_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_STM_H_
