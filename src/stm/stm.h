/// \file
/// STM runtime interface: statistics, the retry loop, and backoff.
///
/// Every STM flavour (TL2, TinySTM, ASTM-like) provides a TxImplBase and is
/// driven by the shared Stm::RunAtomically retry loop. The loop implements
/// the benchmark's failure semantics (§3 of the paper): an exception other
/// than TxAborted thrown by the body is an *operation failure*, which is a
/// committed outcome — the loop attempts to commit the reads performed so
/// far and, only if that commit validates, lets the exception propagate. A
/// failure observed by a transaction that cannot commit was based on an
/// inconsistent snapshot and is retried instead.

#ifndef STMBENCH7_SRC_STM_STM_H_
#define STMBENCH7_SRC_STM_STM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "src/stm/field.h"

namespace sb7 {

/// X-macro over every StmStats counter — the single source of truth for the
/// counter set. Snapshot/Reset/View and the Subtract/Add helpers are all
/// generated from this list, so a counter added here can never again be
/// silently dropped from per-phase deltas (src/harness/driver.cc) or sweep
/// aggregation (src/perf/runner.cc).
///
/// Counter semantics:
///   starts/commits/aborts      — attempt outcomes from the retry loop.
///   reads/writes               — transactional field accesses.
///   validation_steps           — read-set entries re-checked during
///                                incremental validation; the O(k^2)
///                                signature of invisible-read STMs.
///   bytes_cloned               — object-granular write-open cloning (ASTM).
///   kills                      — transactions aborted by a contention
///                                manager on behalf of another.
///   ro_starts/commits/aborts   — transactions run with the read-only hint
///                                (the snapshot path under mvstm); ro_aborts
///                                staying at zero under concurrent writers
///                                is the defining property of the
///                                multi-version backend.
///   aborts_*                   — `aborts` bucketed by backend-reported
///                                AbortCause; aborts_unknown counts aborts
///                                whose site carried no annotation.
#define SB7_STM_STATS_FIELDS(X) \
  X(starts)                     \
  X(commits)                    \
  X(aborts)                     \
  X(reads)                      \
  X(writes)                     \
  X(validation_steps)           \
  X(bytes_cloned)               \
  X(kills)                      \
  X(ro_starts)                  \
  X(ro_commits)                 \
  X(ro_aborts)                  \
  X(aborts_read_validation)     \
  X(aborts_write_lock)          \
  X(aborts_kill)                \
  X(aborts_snapshot_too_old)    \
  X(aborts_unknown)

/// Aggregate counters, written by transactions at commit/abort boundaries.
/// Each hot counter sits on its own cache line: worker threads bump
/// different counters concurrently, and false sharing here measurably
/// perturbs the very throughput numbers the harness exists to report.
struct StmStats {
#define SB7_STM_STATS_DECLARE(name) alignas(64) std::atomic<int64_t> name{0};
  SB7_STM_STATS_FIELDS(SB7_STM_STATS_DECLARE)
#undef SB7_STM_STATS_DECLARE

  struct View {
#define SB7_STM_STATS_VIEW_FIELD(name) int64_t name = 0;
    SB7_STM_STATS_FIELDS(SB7_STM_STATS_VIEW_FIELD)
#undef SB7_STM_STATS_VIEW_FIELD

    /// a - b, field-wise. The per-phase delta helper.
    static View Subtract(const View& a, const View& b) {
      View diff;
#define SB7_STM_STATS_SUB_FIELD(name) diff.name = a.name - b.name;
      SB7_STM_STATS_FIELDS(SB7_STM_STATS_SUB_FIELD)
#undef SB7_STM_STATS_SUB_FIELD
      return diff;
    }
    /// a + b, field-wise. The sweep-aggregation helper.
    static View Add(const View& a, const View& b) {
      View sum;
#define SB7_STM_STATS_ADD_FIELD(name) sum.name = a.name + b.name;
      SB7_STM_STATS_FIELDS(SB7_STM_STATS_ADD_FIELD)
#undef SB7_STM_STATS_ADD_FIELD
      return sum;
    }
    /// Visits every counter as ("name", value), in X-macro order. Generic
    /// exporters (the telemetry JSONL writer and the Prometheus endpoint)
    /// iterate this instead of naming fields, so a counter added to
    /// SB7_STM_STATS_FIELDS appears in every live-metrics surface with no
    /// further wiring.
    template <typename Fn>
    void ForEachField(Fn&& fn) const {
#define SB7_STM_STATS_VISIT_FIELD(name) fn(#name, name);
      SB7_STM_STATS_FIELDS(SB7_STM_STATS_VISIT_FIELD)
#undef SB7_STM_STATS_VISIT_FIELD
    }
  };

  // mo: relaxed — counters are monotonic tallies read after the worker
  // threads have been joined (phase barriers order the writes); no reader
  // infers other state from a counter value.
  View Snapshot() const {
    View view;
#define SB7_STM_STATS_LOAD_FIELD(name) view.name = name.load(std::memory_order_relaxed);
    SB7_STM_STATS_FIELDS(SB7_STM_STATS_LOAD_FIELD)
#undef SB7_STM_STATS_LOAD_FIELD
    return view;
  }

  // mo: relaxed — only called between phases, when no transaction is in
  // flight; the phase barrier provides the ordering.
  void Reset() {
#define SB7_STM_STATS_RESET_FIELD(name) name.store(0, std::memory_order_relaxed);
    SB7_STM_STATS_FIELDS(SB7_STM_STATS_RESET_FIELD)
#undef SB7_STM_STATS_RESET_FIELD
  }

  /// Bumps the per-cause abort bucket matching `cause`.
  void AddAbortCause(AbortCause cause) {
    std::atomic<int64_t>* bucket = &aborts_unknown;
    switch (cause) {
      case AbortCause::kReadValidation:
        bucket = &aborts_read_validation;
        break;
      case AbortCause::kWriteLock:
        bucket = &aborts_write_lock;
        break;
      case AbortCause::kKill:
        bucket = &aborts_kill;
        break;
      case AbortCause::kSnapshotTooOld:
        bucket = &aborts_snapshot_too_old;
        break;
      case AbortCause::kUnknown:
        break;
    }
    // mo: relaxed — monotonic tally, read only after workers are joined.
    bucket->fetch_add(1, std::memory_order_relaxed);
  }
};

/// Per-attempt transaction implementation. The retry loop owns the life
/// cycle: BeginAttempt -> body -> (TryCommit | AbortSelf). After
/// TryCommit() returns false or AbortSelf() returns, all transaction-held
/// resources (stripe locks, object ownerships, undo state) have been
/// released.
class TxImplBase : public Transaction {
 public:
  /// Starts a fresh attempt on the calling thread.
  virtual void BeginAttempt() = 0;
  /// Returns true iff the transaction committed; on false the attempt has
  /// been fully rolled back and abort hooks have run.
  virtual bool TryCommit() = 0;
  /// Rolls back the attempt (used when the body threw TxAborted).
  virtual void AbortSelf() = 0;
  /// Hint installed by the retry loop before the first BeginAttempt: the
  /// body performs no writes. Backends may use it to serve all reads from a
  /// consistent snapshot (mvstm); the default ignores it.
  virtual void SetReadOnly(bool read_only) { (void)read_only; }
};

/// Exponential backoff with jitter. On this benchmark's single-core hosts
/// the key property is yielding the CPU so the conflicting transaction can
/// finish.
class Backoff {
 public:
  static void Pause(int attempt);
};

/// One STM backend instance: owns the statistics block and the retry loop.
class Stm {
 public:
  Stm();
  virtual ~Stm() = default;
  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  /// Backend name as selected by the CLI (`tl2`, `mvstm`, ...).
  virtual std::string_view name() const = 0;

  /// Executes `body` atomically, retrying on conflicts. Exceptions other
  /// than TxAborted propagate once the enclosing transaction commits (see
  /// the file comment). `read_only` is a caller promise that the body
  /// performs no transactional writes (the driver derives it from
  /// Operation::read_only()); backends that support snapshot reads execute
  /// such bodies without validation or aborts.
  void RunAtomically(const std::function<void(Transaction&)>& body, bool read_only = false);

  StmStats& stats() { return stats_; }
  const StmStats& stats() const { return stats_; }

  /// True when committed attempts must carry a replay-context snapshot for
  /// the redo log (src/mvstm/redo_log.h). Only mvstm with a group-commit
  /// sequencer attached returns true; StmStrategy::Execute checks it to keep
  /// the capture off every hot path that does not log.
  virtual bool wants_replay_capture() const { return false; }

 protected:
  /// One implementation object is cached per (thread, Stm instance) and
  /// reused across attempts and operations.
  virtual std::unique_ptr<TxImplBase> CreateTx() = 0;

 private:
  TxImplBase& LocalTx();

  uint64_t instance_id_;
  StmStats stats_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_STM_H_
