// TinySTM-style word-based STM (Felber, Fetzer, Riegel — the paper's
// [11]/[13] lazy-snapshot / encounter-time family).
//
// Mechanics: encounter-time locking — a write immediately acquires the
// stripe, saves the old value in an undo log and updates memory in place.
// Reads are invisible and timestamp-validated; when a read observes a version
// newer than the current snapshot the snapshot is *extended* (the whole read
// set is revalidated against the current clock), which lets long transactions
// survive concurrent commits that touched none of their reads — the key
// difference from plain TL2.

#ifndef STMBENCH7_SRC_STM_TINYSTM_H_
#define STMBENCH7_SRC_STM_TINYSTM_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/stm/lock_table.h"
#include "src/stm/stm.h"

namespace sb7 {

class TinyStm : public Stm {
 public:
  std::string_view name() const override { return "tinystm"; }

 protected:
  std::unique_ptr<TxImplBase> CreateTx() override;
};

class TinyTx : public TxImplBase {
 public:
  explicit TinyTx(StmStats& stats) : stats_(stats) {}

  void BeginAttempt() override;
  uint64_t Read(const TxFieldBase& field) override;
  void Write(TxFieldBase& field, uint64_t value) override;
  bool TryCommit() override;
  void AbortSelf() override;

 private:
  struct ReadEntry {
    const sp::AtomicU64* stripe;
    uint64_t observed;  // stripe word at read time
  };
  struct UndoEntry {
    TxFieldBase* field;
    uint64_t old_value;
  };
  struct OwnedStripe {
    sp::AtomicU64* stripe;
    uint64_t pre_lock_word;  // restored on abort
  };

  bool OwnsStripe(const sp::AtomicU64* stripe) const {
    return owned_lookup_.count(stripe) != 0;
  }

  // Revalidates the read set against `now` and, on success, moves the
  // snapshot forward. Returns false if any read is stale.
  bool ExtendSnapshot(uint64_t now);
  bool ValidateReadSet() const;
  void RollbackAndRelease();

  StmStats& stats_;
  uint64_t rv_ = 0;

  std::vector<ReadEntry> read_set_;
  std::vector<UndoEntry> undo_log_;
  std::vector<OwnedStripe> owned_;
  std::unordered_set<const sp::AtomicU64*> owned_lookup_;

  int64_t local_reads_ = 0;
  int64_t local_writes_ = 0;
  mutable int64_t local_validation_steps_ = 0;
  void FlushLocalStats();
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_TINYSTM_H_
