#include "src/stm/stm.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/ebr/ebr.h"
#include "src/mc/sync_point.h"

namespace sb7 {
namespace {

// mo: relaxed — id allocation only needs uniqueness, not ordering.
std::atomic<uint64_t> g_stm_instance_counter{1};

// Cache of transaction objects, keyed by STM instance id so that a recreated
// Stm at a recycled address cannot pick up a stale implementation.
//
// Lifetime: transaction objects are reachable from *other* threads — the
// ASTM contention managers follow unit.astm_owner to read the enemy's status
// and priority — so a thread exiting must not free its cached transactions
// outright (the classic descriptor use-after-free). Instead they are retired
// through EBR, which defers the free until every registered thread has passed
// a quiescent state and thus dropped any owner pointer it was chasing.
struct TxCacheEntry {
  uint64_t instance_id = 0;
  std::unique_ptr<TxImplBase> tx;

  TxCacheEntry(uint64_t id, std::unique_ptr<TxImplBase> t) : instance_id(id), tx(std::move(t)) {}
  // Move-construction (vector growth) leaves the source empty, so only the
  // final owner retires. Move-assignment would plain-delete the overwritten
  // descriptor behind EBR's back — deleted until a call site needs it.
  TxCacheEntry(TxCacheEntry&&) = default;
  TxCacheEntry& operator=(TxCacheEntry&&) = delete;
  ~TxCacheEntry() {
    if (tx != nullptr) {
      EbrDomain::Global().RetireObject(tx.release());
    }
  }
};

thread_local std::vector<TxCacheEntry> tls_tx_cache;

Rng& BackoffRng() {
  thread_local Rng rng(0x9bc0ffeeull ^
                       std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return rng;
}

}  // namespace

void Backoff::Pause(int attempt) {
  if (attempt <= 0) {
    return;
  }
  if (sp::UnderMcScheduler()) {
    // Under the interleaving explorer, wall-clock waits are meaningless (the
    // scheduler alone decides who runs) and real sleeps would stall the whole
    // exploration. One yield sync point keeps backoff a scheduling point.
    sp::SyncPoint(nullptr, sp::OpKind::kYield);
    return;
  }
  if (attempt < 3) {
    // Brief spin: the conflicting commit is usually a few instructions away.
    const int spins = 1 << (4 + attempt);
    for (int i = 0; i < spins; ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
    return;
  }
  if (attempt < 10) {
    std::this_thread::yield();
    return;
  }
  // Exponential sleep with jitter, capped at 1 ms.
  const int exp = attempt < 20 ? attempt - 10 : 10;
  const uint64_t cap = std::min<uint64_t>(1000, 1ull << exp);
  const uint64_t micros = 1 + BackoffRng().NextBounded(cap);
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

// mo: relaxed — the id only needs uniqueness, not ordering with anything.
Stm::Stm() : instance_id_(g_stm_instance_counter.fetch_add(1, std::memory_order_relaxed)) {}

TxImplBase& Stm::LocalTx() {
  // First transactional access on this thread: register with the EBR domain
  // (a quiescent point — no shared references are held yet) so reclamation
  // accounts for this thread from its very first operation. Evaluated before
  // tls_tx_cache is first touched: thread-locals are destroyed in reverse
  // construction order, and the cache's destructor retires into EBR, so the
  // EBR per-thread state must be constructed first (destroyed last).
  thread_local bool ebr_registered = (EbrDomain::Global().Quiesce(), true);
  (void)ebr_registered;
  for (auto& entry : tls_tx_cache) {
    if (entry.instance_id == instance_id_) {
      return *entry.tx;
    }
  }
  tls_tx_cache.emplace_back(instance_id_, CreateTx());
  return *tls_tx_cache.back().tx;
}

void Stm::RunAtomically(const std::function<void(Transaction&)>& body, bool read_only) {
  TxImplBase& tx = LocalTx();
  tx.SetReadOnly(read_only);
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  if (read_only) {
    stats_.ro_starts.fetch_add(1, std::memory_order_relaxed);
  }
  for (int attempt = 0;; ++attempt) {
    // `timing` is re-sampled per attempt but effectively run-constant (the
    // flag only flips while no transactions are in flight). When off, the
    // loop takes no timestamps at all.
    const bool timing = TxTimingEnabled();
    int64_t backoff_nanos = 0;
    if (attempt > 0 && HasTxObservers()) {
      NotifyTxObservers([&](TxObserver& observer) { observer.OnTxBackoff(attempt); });
    }
    if (timing) {
      const int64_t backoff_start = NowNanos();
      Backoff::Pause(attempt);
      backoff_nanos = NowNanos() - backoff_start;
    } else {
      Backoff::Pause(attempt);
    }
    // Observed before BeginAttempt so the recorded begin event precedes any
    // attempt state (e.g. the TL2-family clock read): the attempt's
    // serialization point then provably lies inside its recorded
    // [begin, commit] interval, which the opacity checker's search exploits.
    if (HasTxObservers()) {
      NotifyTxObservers([&](TxObserver& observer) { observer.OnTxBegin(read_only); });
    }
    tx.BeginAttempt();
    SetCurrentTx(&tx);
    if (timing) {
      internal::tls_tx_validation_nanos = 0;
    }
    const int64_t body_start = timing ? NowNanos() : 0;
    // Timing landmarks for the attempt; filled in as the attempt unwinds.
    // body_validation is the validation time spent inside the body, so the
    // commit bucket can be charged only the validation done during TryCommit.
    int64_t body_end = 0;
    int64_t body_validation = 0;
    int64_t commit_end = 0;
    const auto emit_timing = [&](bool committed) {
      if (!timing || !HasTxObservers()) {
        return;
      }
      TxAttemptTiming t;
      t.backoff_nanos = backoff_nanos;
      t.validation_nanos = internal::tls_tx_validation_nanos;
      t.read_nanos = std::max<int64_t>(0, (body_end - body_start) - body_validation);
      t.commit_nanos = std::max<int64_t>(
          0, (commit_end - body_end) -
                 (internal::tls_tx_validation_nanos - body_validation));
      NotifyTxObservers(
          [&](TxObserver& observer) { observer.OnTxAttemptTiming(t, committed); });
    };
    try {
      body(tx);
      SetCurrentTx(nullptr);
      if (timing) {
        body_end = NowNanos();
        body_validation = internal::tls_tx_validation_nanos;
      }
      if (tx.TryCommit()) {
        // mo: relaxed — StmStats tallies (see above).
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        if (read_only) {
          stats_.ro_commits.fetch_add(1, std::memory_order_relaxed);
        }
        if (HasTxObservers()) {
          if (timing) {
            commit_end = NowNanos();
          }
          emit_timing(true);
          NotifyTxObservers([&](TxObserver& observer) { observer.OnTxCommit(); });
        }
        return;
      }
      if (timing) {
        commit_end = NowNanos();
      }
    } catch (const TxAborted&) {
      SetCurrentTx(nullptr);
      tx.AbortSelf();
      if (timing) {
        // The body threw mid-flight: everything until now is body time.
        body_end = NowNanos();
        body_validation = internal::tls_tx_validation_nanos;
        commit_end = body_end;
      }
    } catch (...) {
      // Operation-level failure: commit what was read so the failure is based
      // on a consistent snapshot, then propagate it.
      SetCurrentTx(nullptr);
      if (timing) {
        body_end = NowNanos();
        body_validation = internal::tls_tx_validation_nanos;
      }
      if (tx.TryCommit()) {
        // mo: relaxed — StmStats tallies (see above).
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        if (read_only) {
          stats_.ro_commits.fetch_add(1, std::memory_order_relaxed);
        }
        if (HasTxObservers()) {
          if (timing) {
            commit_end = NowNanos();
          }
          emit_timing(true);
          NotifyTxObservers([&](TxObserver& observer) { observer.OnTxCommit(); });
        }
        throw;
      }
      if (timing) {
        commit_end = NowNanos();
      }
    }
    // mo: relaxed — StmStats tallies (see above).
    stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    if (read_only) {
      stats_.ro_aborts.fetch_add(1, std::memory_order_relaxed);
    }
    const TxAbortInfo abort_info = ConsumeTxAbortInfo();
    stats_.AddAbortCause(abort_info.cause);
    if (HasTxObservers()) {
      emit_timing(false);
      NotifyTxObservers(
          [&](TxObserver& observer) { observer.OnTxAbort(abort_info); });
    }
  }
}

}  // namespace sb7
