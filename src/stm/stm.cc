#include "src/stm/stm.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace sb7 {
namespace {

std::atomic<uint64_t> g_stm_instance_counter{1};

// Cache of transaction objects, keyed by STM instance id so that a recreated
// Stm at a recycled address cannot pick up a stale implementation.
struct TxCacheEntry {
  uint64_t instance_id;
  std::unique_ptr<TxImplBase> tx;
};

thread_local std::vector<TxCacheEntry> tls_tx_cache;

Rng& BackoffRng() {
  thread_local Rng rng(0x9bc0ffeeull ^
                       std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return rng;
}

}  // namespace

void Backoff::Pause(int attempt) {
  if (attempt <= 0) {
    return;
  }
  if (attempt < 3) {
    // Brief spin: the conflicting commit is usually a few instructions away.
    const int spins = 1 << (4 + attempt);
    for (int i = 0; i < spins; ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
    return;
  }
  if (attempt < 10) {
    std::this_thread::yield();
    return;
  }
  // Exponential sleep with jitter, capped at 1 ms.
  const int exp = attempt < 20 ? attempt - 10 : 10;
  const uint64_t cap = std::min<uint64_t>(1000, 1ull << exp);
  const uint64_t micros = 1 + BackoffRng().NextBounded(cap);
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Stm::Stm() : instance_id_(g_stm_instance_counter.fetch_add(1, std::memory_order_relaxed)) {}

TxImplBase& Stm::LocalTx() {
  for (auto& entry : tls_tx_cache) {
    if (entry.instance_id == instance_id_) {
      return *entry.tx;
    }
  }
  tls_tx_cache.push_back(TxCacheEntry{instance_id_, CreateTx()});
  return *tls_tx_cache.back().tx;
}

void Stm::RunAtomically(const std::function<void(Transaction&)>& body, bool read_only) {
  TxImplBase& tx = LocalTx();
  tx.SetReadOnly(read_only);
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  if (read_only) {
    stats_.ro_starts.fetch_add(1, std::memory_order_relaxed);
  }
  for (int attempt = 0;; ++attempt) {
    Backoff::Pause(attempt);
    tx.BeginAttempt();
    SetCurrentTx(&tx);
    try {
      body(tx);
      SetCurrentTx(nullptr);
      if (tx.TryCommit()) {
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        if (read_only) {
          stats_.ro_commits.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
    } catch (const TxAborted&) {
      SetCurrentTx(nullptr);
      tx.AbortSelf();
    } catch (...) {
      // Operation-level failure: commit what was read so the failure is based
      // on a consistent snapshot, then propagate it.
      SetCurrentTx(nullptr);
      if (tx.TryCommit()) {
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        if (read_only) {
          stats_.ro_commits.fetch_add(1, std::memory_order_relaxed);
        }
        throw;
      }
    }
    stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    if (read_only) {
      stats_.ro_aborts.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace sb7
