#include "src/stm/stm_factory.h"

#include "src/mvstm/mvstm.h"
#include "src/stm/astm.h"
#include "src/stm/norec.h"
#include "src/stm/tinystm.h"
#include "src/stm/tl2.h"

namespace sb7 {

std::unique_ptr<Stm> MakeStm(std::string_view name, std::string_view contention_manager) {
  if (name == "tl2") {
    return std::make_unique<Tl2Stm>();
  }
  if (name == "mvstm") {
    return std::make_unique<MvStm>();
  }
  if (name == "tinystm") {
    return std::make_unique<TinyStm>();
  }
  if (name == "norec") {
    return std::make_unique<NorecStm>();
  }
  if (name == "astm") {
    auto cm = MakeContentionManager(contention_manager);
    if (!cm) {
      return nullptr;
    }
    return std::make_unique<AstmStm>(std::move(cm));
  }
  return nullptr;
}

}  // namespace sb7
