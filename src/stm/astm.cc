#include "src/stm/astm.h"

#include "src/common/diag.h"
#include "src/stm/lock_table.h"

namespace sb7 {
namespace {

// Conflict key for a unit-granular abort: the lock-table stripe of the
// unit's first field, so attribution shares the word-STM key space. Null
// for the (theoretical) field-less unit.
const void* UnitConflictKey(const TmUnit& unit) {
  const auto& fields = unit.fields();
  return fields.empty() ? nullptr
                        : static_cast<const void*>(&LockTable::Global().StripeOf(*fields[0]));
}

}  // namespace

AstmStm::AstmStm(std::unique_ptr<ContentionManager> cm) : cm_(std::move(cm)) {
  if (!cm_) {
    cm_ = MakePolkaManager();
  }
}

std::unique_ptr<TxImplBase> AstmStm::CreateTx() {
  return std::make_unique<AstmTx>(stats(), *cm_);
}

void AstmTx::BeginAttempt() {
  // mo: release — re-arming the status publishes the cleaned-up state from
  // the previous attempt to contention managers chasing astm_owner.
  status_.store(AstmStatus::kActive, std::memory_order_release);
  read_map_.clear();
  write_map_.clear();
  write_order_.clear();
  // mo: relaxed — heuristic mirror of the open count (see astm.h).
  priority_.store(0, std::memory_order_relaxed);
  local_reads_ = local_writes_ = local_validation_steps_ = local_bytes_cloned_ = 0;
}

void AstmTx::FlushLocalStats() {
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.reads.fetch_add(local_reads_, std::memory_order_relaxed);
  stats_.writes.fetch_add(local_writes_, std::memory_order_relaxed);
  stats_.validation_steps.fetch_add(local_validation_steps_, std::memory_order_relaxed);
  stats_.bytes_cloned.fetch_add(local_bytes_cloned_, std::memory_order_relaxed);
}

void AstmTx::CheckAlive() const {
  // mo: acquire — pairs with the killer's acq_rel CAS in RequestAbort.
  if (status_.load(std::memory_order_acquire) == AstmStatus::kAborted) {
    SetTxAbortCause(AbortCause::kKill);
    throw TxAborted{};
  }
}

bool AstmTx::ValidateReadList() {
  // Full scan: this is the O(k) step that, executed on every new read-open,
  // yields the O(k^2) behaviour characteristic of invisible-read STMs.
  TxValidationScope validation;
  validation.set_steps(read_map_.size());
  local_validation_steps_ += static_cast<int64_t>(read_map_.size());
  for (const auto& [unit, version] : read_map_) {
    // mo: acquire — pairs with committers' seqlock bumps during writeback.
    if (unit->astm_version.load(std::memory_order_acquire) != version) {
      SetTxAbortCause(AbortCause::kReadValidation, UnitConflictKey(*unit));
      return false;
    }
  }
  return true;
}

void AstmTx::HandleConflict(const TmUnit& unit, AstmTx& owner, int& retries) {
  if (owner.status() != AstmStatus::kActive) {
    // The owner is committing or cleaning up; it will release shortly.
    Backoff::Pause(++retries);
    return;
  }
  switch (cm_->OnConflict(*this, owner, retries)) {
    case ContentionManager::Action::kAbortSelf:
      // Lost the arbitration for `unit` to its current owner.
      SetTxAbortCause(AbortCause::kWriteLock, UnitConflictKey(unit));
      throw TxAborted{};
    case ContentionManager::Action::kAbortOther:
      if (owner.RequestAbort()) {
        // mo: relaxed — StmStats tally.
        stats_.kills.fetch_add(1, std::memory_order_relaxed);
      }
      Backoff::Pause(++retries);  // wait for the kill to take effect
      return;
    case ContentionManager::Action::kRetry:
      Backoff::Pause(++retries);
      return;
  }
}

uint64_t AstmTx::OpenRead(const TmUnit& unit) {
  if (auto it = read_map_.find(&unit); it != read_map_.end()) {
    return it->second;
  }
  int retries = 0;
  uint64_t version;
  while (true) {
    CheckAlive();
    // mo: acquire — an even version pairs with the last committer's flush.
    version = unit.astm_version.load(std::memory_order_acquire);
    if ((version & 1) != 0) {
      // A committed writer is flushing its image; wait it out.
      Backoff::Pause(++retries);
      continue;
    }
    // mo: acquire — chasing the owner pointer must see that descriptor's
    // published state (status, priority).
    AstmTx* owner = unit.astm_owner.load(std::memory_order_acquire);
    if (owner != nullptr && owner != this) {
      // Read-after-write conflict (DSTM/ASTM semantics): arbitrate.
      HandleConflict(unit, *owner, retries);
      continue;
    }
    break;
  }
  if (!ValidateReadList()) {
    // Cause and conflict key were set by ValidateReadList.
    throw TxAborted{};
  }
  read_map_.emplace(&unit, version);
  // mo: relaxed — heuristic open-count mirror (see astm.h).
  priority_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

uint64_t AstmTx::Read(const TxFieldBase& field) {
  CheckAlive();
  ++local_reads_;
  const TmUnit& unit = field.owner();
  if (!write_map_.empty()) {
    if (auto it = write_map_.find(const_cast<TmUnit*>(&unit)); it != write_map_.end()) {
      return it->second.words[field.index_in_unit()];
    }
  }
  const uint64_t recorded = OpenRead(unit);
  const uint64_t value = field.LoadRaw(std::memory_order_acquire);
  // Post-validation: a writer may have committed and flushed between the
  // open and the load; the seqlock-style version detects both the bump and
  // the odd (mid-flush) state.
  // mo: acquire — seqlock post-check; pairs with the writeback bumps.
  if (unit.astm_version.load(std::memory_order_acquire) != recorded) {
    SetTxAbortCause(AbortCause::kReadValidation, UnitConflictKey(unit));
    throw TxAborted{};
  }
  return value;
}

AstmTx::WriteImage& AstmTx::OpenWrite(TmUnit& unit) {
  int retries = 0;
  while (true) {
    CheckAlive();
    // mo: acquire load / acq_rel CAS — acquiring ownership must see the
    // previous owner's release (its flush is complete) and publish this
    // descriptor to rivals and contention managers.
    AstmTx* owner = unit.astm_owner.load(std::memory_order_acquire);
    if (owner == nullptr) {
      if (unit.astm_owner.compare_exchange_strong(owner, this, std::memory_order_acq_rel)) {
        break;
      }
      continue;
    }
    SB7_DCHECK(owner != this);  // write_map_ hit would have short-circuited
    HandleConflict(unit, *owner, retries);
  }
  // Ownership acquired; the previous owner (if any) finished its flush before
  // releasing, so the version is stable and even. Clone the whole object:
  // every field word plus any out-of-line payload. This is object-level
  // logging — the cost is proportional to the object, not to the write.
  WriteImage image;
  const auto& fields = unit.fields();
  image.words.reserve(fields.size());
  for (const TxFieldBase* f : fields) {
    image.words.push_back(f->LoadRaw(std::memory_order_acquire));
  }
  local_bytes_cloned_ += static_cast<int64_t>(fields.size() * sizeof(uint64_t));
  if (const TmUnit::PayloadSource& source = unit.payload_source()) {
    const std::string_view payload = source();
    image.payload_clone.assign(payload.data(), payload.size());
    local_bytes_cloned_ += static_cast<int64_t>(payload.size());
  }
  write_order_.push_back(&unit);
  // mo: relaxed — heuristic open-count mirror (see astm.h).
  priority_.fetch_add(1, std::memory_order_relaxed);
  return write_map_.emplace(&unit, std::move(image)).first->second;
}

void AstmTx::Write(TxFieldBase& field, uint64_t value) {
  CheckAlive();
  ++local_writes_;
  TmUnit& unit = field.owner();
  auto it = write_map_.find(&unit);
  if (it == write_map_.end()) {
    WriteImage& image = OpenWrite(unit);
    image.words[field.index_in_unit()] = value;
    return;
  }
  it->second.words[field.index_in_unit()] = value;
}

bool AstmTx::TryCommit() {
  if (!ValidateReadList()) {
    // Cause and conflict key were set by ValidateReadList.
    AbortSelf();
    return false;
  }
  AstmStatus expected = AstmStatus::kActive;
  // mo: acq_rel — the commit point races the killer's CAS in RequestAbort;
  // exactly one lands, and its effects must be visible both ways.
  if (!status_.compare_exchange_strong(expected, AstmStatus::kCommitted,
                                       std::memory_order_acq_rel)) {
    SetTxAbortCause(AbortCause::kKill);
    AbortSelf();  // a contention manager killed this transaction
    return false;
  }
  // Commit point passed: flush redo images. The per-object seqlock goes odd
  // during the flush so concurrent readers never consume torn states.
  for (TmUnit* unit : write_order_) {
    const WriteImage& image = write_map_[unit];
    // mo: acq_rel — odd marks flush-in-progress; readers spin on it.
    unit->astm_version.fetch_add(1, std::memory_order_acq_rel);
    const auto& fields = unit->fields();
    for (size_t i = 0; i < fields.size(); ++i) {
      fields[i]->StoreRaw(image.words[i], std::memory_order_release);
    }
    // mo: acq_rel bump publishes the flushed words (even again); release
    // on the owner clear lets the next acquirer see the completed flush.
    unit->astm_version.fetch_add(1, std::memory_order_acq_rel);
    unit->astm_owner.store(nullptr, std::memory_order_release);
  }
  FlushLocalStats();
  RunCommitHooks();
  return true;
}

void AstmTx::ReleaseOwnerships() {
  // No writeback happened (abort path), so versions stay untouched.
  for (TmUnit* unit : write_order_) {
    // mo: release — hands the unit back with our (non-)effects settled.
    unit->astm_owner.store(nullptr, std::memory_order_release);
  }
  write_order_.clear();
  write_map_.clear();
  // Keep the advertised priority consistent with the surviving read list
  // until the next BeginAttempt resets both.
  // mo: relaxed — heuristic open-count mirror (see astm.h).
  priority_.store(static_cast<int64_t>(read_map_.size()), std::memory_order_relaxed);
}

void AstmTx::AbortSelf() {
  // mo: release — publishes the dead state before ownerships drop.
  status_.store(AstmStatus::kAborted, std::memory_order_release);
  ReleaseOwnerships();
  FlushLocalStats();
  RunAbortHooks();
}

}  // namespace sb7
