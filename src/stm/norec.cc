#include "src/stm/norec.h"

#include <atomic>
#include <thread>

#include "src/common/diag.h"
#include "src/stm/lock_table.h"

namespace sb7 {
namespace {

// The single global sequence lock: even = no writer committing, odd = a
// writer is inside its commit critical section.
sp::AtomicU64 g_norec_clock{0};

}  // namespace

std::unique_ptr<TxImplBase> NorecStm::CreateTx() { return std::make_unique<NorecTx>(stats()); }

uint64_t NorecTx::WaitForEvenClock() {
  while (true) {
    // mo: acquire — an even value pairs with the committer's release store,
    // so every write of that commit is visible before we read data.
    const uint64_t now = g_norec_clock.load(std::memory_order_acquire);
    if ((now & 1) == 0) {
      return now;
    }
    std::this_thread::yield();
  }
}

void NorecTx::BeginAttempt() {
  snapshot_ = WaitForEvenClock();
  read_log_.clear();
  write_log_.clear();
  write_index_.clear();
  local_reads_ = local_writes_ = local_validation_steps_ = 0;
}

void NorecTx::FlushLocalStats() {
  // mo: relaxed — StmStats tallies; read only after workers are joined.
  stats_.reads.fetch_add(local_reads_, std::memory_order_relaxed);
  stats_.writes.fetch_add(local_writes_, std::memory_order_relaxed);
  stats_.validation_steps.fetch_add(local_validation_steps_, std::memory_order_relaxed);
}

uint64_t NorecTx::Validate() {
  while (true) {
    const uint64_t before = WaitForEvenClock();
    TxValidationScope validation;
    validation.set_steps(read_log_.size());
    local_validation_steps_ += static_cast<int64_t>(read_log_.size());
    bool consistent = true;
    const TxFieldBase* conflicting = nullptr;
    for (const ReadEntry& entry : read_log_) {
      if (entry.field->LoadRaw(std::memory_order_acquire) != entry.value) {
        consistent = false;
        conflicting = entry.field;
        break;
      }
    }
    if (!consistent) {
      // NOrec has no per-location metadata of its own; key the conflict by
      // the field's lock-table stripe so attribution shares the word-STM
      // key space.
      SetTxAbortCause(AbortCause::kReadValidation,
                      &LockTable::Global().StripeOf(*conflicting));
      throw TxAborted{};
    }
    // Values matched; the snapshot is only coherent if no writer committed
    // while we were scanning.
    // mo: acquire — re-check pairs with committers' release; equality
    // proves no writer interleaved with the value scan.
    if (g_norec_clock.load(std::memory_order_acquire) == before) {
      return before;
    }
  }
}

uint64_t NorecTx::Read(const TxFieldBase& field) {
  ++local_reads_;
  if (!write_index_.empty()) {
    auto it = write_index_.find(&field);
    if (it != write_index_.end()) {
      return write_log_[it->second].second;
    }
  }
  uint64_t value = field.LoadRaw(std::memory_order_acquire);
  // If a writer committed since our snapshot, re-validate by value and move
  // the snapshot forward, re-reading until the pair (value, clock) is stable.
  // mo: acquire — any clock motion means a commit may have overlapped the
  // data read; pairs with that committer's release store.
  while (g_norec_clock.load(std::memory_order_acquire) != snapshot_) {
    snapshot_ = Validate();
    value = field.LoadRaw(std::memory_order_acquire);
  }
  read_log_.push_back(ReadEntry{&field, value});
  return value;
}

void NorecTx::Write(TxFieldBase& field, uint64_t value) {
  ++local_writes_;
  auto [it, inserted] = write_index_.try_emplace(&field, write_log_.size());
  if (inserted) {
    write_log_.emplace_back(&field, value);
  } else {
    write_log_[it->second].second = value;
  }
}

bool NorecTx::TryCommit() {
  if (write_log_.empty()) {
    // Read-only: every read was validated against a stable clock.
    FlushLocalStats();
    RunCommitHooks();
    return true;
  }
  // Acquire the global sequence lock at a clock equal to our snapshot; any
  // interleaving writer forces a (value-based) re-validation first.
  // mo: acq_rel — taking the sequence lock is the serialization point: it
  // must see every prior commit and publish that a writer is in flight.
  while (!g_norec_clock.compare_exchange_weak(snapshot_, snapshot_ + 1,
                                              std::memory_order_acq_rel)) {
    try {
      snapshot_ = Validate();
    } catch (const TxAborted&) {
      FlushLocalStats();
      RunAbortHooks();
      return false;
    }
  }
  for (const auto& [field, value] : write_log_) {
    field->StoreRaw(value, std::memory_order_release);
  }
  // mo: release — turning the clock even publishes the whole writeback.
  g_norec_clock.store(snapshot_ + 2, std::memory_order_release);
  FlushLocalStats();
  RunCommitHooks();
  return true;
}

void NorecTx::AbortSelf() {
  FlushLocalStats();
  RunAbortHooks();
}

}  // namespace sb7
