// Striped versioned-lock table shared by the word-based STMs.
//
// Each shared word hashes to one of 2^20 stripes. A stripe word encodes
// either an unlocked version number (value << 1) or a locked state holding
// the owning transaction's pointer with the low bit set (transaction objects
// are at least 8-byte aligned, so the low bit is free). Versions are drawn
// from a single global version clock, as in TL2; TinySTM shares the table and
// the clock — only one STM flavour is active per benchmark run, and version
// monotonicity keeps mixed use in tests safe.

#ifndef STMBENCH7_SRC_STM_LOCK_TABLE_H_
#define STMBENCH7_SRC_STM_LOCK_TABLE_H_

#include <atomic>
#include <cstdint>

#include "src/mc/sync_point.h"
#include "src/stm/field.h"

namespace sb7 {

class LockTable {
 public:
  static constexpr size_t kStripeBits = 20;
  static constexpr size_t kStripes = size_t{1} << kStripeBits;

  static LockTable& Global();

  // Stripes and the clock are sp::Atomic — the SyncPoint seam the
  // deterministic interleaving explorer (src/mc/) schedules around. In
  // normal builds (SB7_MC off) sp::Atomic is std::atomic, verbatim.
  sp::AtomicU64& StripeOf(const TxFieldBase& field) {
    auto addr = reinterpret_cast<uintptr_t>(&field);
    // Fibonacci hash of the field address; fields are >= 8-byte objects.
    const uint64_t h = (static_cast<uint64_t>(addr) >> 3) * 0x9e3779b97f4a7c15ull;
    return stripes_[h >> (64 - kStripeBits)];
  }

  // --- encoding helpers ---
  static bool IsLocked(uint64_t word) { return (word & 1) != 0; }
  static uint64_t VersionOf(uint64_t word) { return word >> 1; }
  static uint64_t MakeVersion(uint64_t version) { return version << 1; }
  static uint64_t MakeLocked(const void* owner) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(owner)) | 1;
  }
  static const void* OwnerOf(uint64_t word) {
    return reinterpret_cast<const void*>(static_cast<uintptr_t>(word & ~uint64_t{1}));
  }

  // Global version clock (TL2's "global version number").
  // mo: acquire — a transaction's start timestamp must happen-after the
  // commits whose versions it may observe (their release of the stripes).
  static uint64_t ClockNow() { return clock_.load(std::memory_order_acquire); }
  // mo: acq_rel — the tick is the commit's serialization point: it must see
  // every earlier tick (acquire) and publish this commit's existence to
  // later clock readers (release).
  static uint64_t ClockAdvance() { return clock_.fetch_add(1, std::memory_order_acq_rel) + 1; }

 private:
  LockTable() = default;

  static sp::AtomicU64 clock_;
  sp::AtomicU64 stripes_[kStripes] = {};
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_LOCK_TABLE_H_
