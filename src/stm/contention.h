// Contention managers for the object-granular (ASTM-like) STM.
//
// When a transaction finds the object it wants to acquire owned by another
// active transaction, the contention manager arbitrates: wait and retry,
// abort the other transaction, or abort self. The paper's §5 evaluation uses
// the Polka manager shipped with ASTM; the alternatives here feed the
// contention-manager ablation sweep (`sb7-bench --sweep ablation-cm`).

#ifndef STMBENCH7_SRC_STM_CONTENTION_H_
#define STMBENCH7_SRC_STM_CONTENTION_H_

#include <memory>
#include <string_view>

namespace sb7 {

class AstmTx;

class ContentionManager {
 public:
  enum class Action {
    kRetry,       // back off and retry the acquisition
    kAbortOther,  // kill the current owner
    kAbortSelf,   // abort the acquiring transaction
  };

  virtual ~ContentionManager() = default;
  virtual std::string_view name() const = 0;

  // `retries` counts consecutive failed acquisitions of the same object by
  // `me`. Implementations must be stateless or internally synchronized: one
  // instance arbitrates for all threads.
  virtual Action OnConflict(const AstmTx& me, const AstmTx& other, int retries) = 0;
};

// Polka (Scherer & Scott): back off a number of times proportional to the
// enemy's priority (its open-object count); once the enemy has been given
// that many chances, kill it. Favors transactions with large investments.
std::unique_ptr<ContentionManager> MakePolkaManager();

// Karma: kill the enemy once own priority plus retries exceeds the enemy's
// priority; otherwise wait.
std::unique_ptr<ContentionManager> MakeKarmaManager();

// Aggressive: always kill the enemy.
std::unique_ptr<ContentionManager> MakeAggressiveManager();

// Timid: always abort self.
std::unique_ptr<ContentionManager> MakeTimidManager();

// Factory by name ("polka", "karma", "aggressive", "timid"); returns nullptr
// for unknown names.
std::unique_ptr<ContentionManager> MakeContentionManager(std::string_view name);

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_CONTENTION_H_
