#include "src/stm/lock_table.h"

namespace sb7 {

sp::AtomicU64 LockTable::clock_{1};

LockTable& LockTable::Global() {
  static LockTable* table = new LockTable();  // immortal: 8 MiB of stripes
  return *table;
}

}  // namespace sb7
