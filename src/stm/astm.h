// ASTM-like object-granular STM.
//
// This is the "straightforward STM port" the paper evaluates in §5, rebuilt
// mechanically: a DSTM/ASTM-style object STM with
//
//   * eager write acquisition — writers own whole objects (TmUnits) and both
//     read-after-write and write-after-write conflicts are arbitrated by a
//     contention manager (Polka by default);
//   * invisible reads with *incremental* validation — every read-open of a
//     new object re-validates the entire read list, so a transaction reading
//     k objects performs O(k^2) validation work. This is precisely the cost
//     §5 blames for T1 taking "as much as half an hour";
//   * object-level logging — acquiring an object for writing clones all of
//     it: every field word plus any out-of-line payload (document text, the
//     manual, snapshot indexes). Touching one attribute of the 1 MB manual
//     therefore copies the whole manual, the second §5 pathology.
//
// Versioning per object is a seqlock (odd while a committed writer is
// flushing its redo image), so readers can detect mid-writeback states and
// torn reads without making reads visible.

#ifndef STMBENCH7_SRC_STM_ASTM_H_
#define STMBENCH7_SRC_STM_ASTM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/stm/contention.h"
#include "src/stm/stm.h"

namespace sb7 {

enum class AstmStatus : uint8_t { kActive, kCommitted, kAborted };

class AstmStm : public Stm {
 public:
  // Uses Polka (the paper's configuration) when `cm` is null.
  explicit AstmStm(std::unique_ptr<ContentionManager> cm = nullptr);

  std::string_view name() const override { return "astm"; }
  ContentionManager& contention_manager() { return *cm_; }

 protected:
  std::unique_ptr<TxImplBase> CreateTx() override;

 private:
  std::unique_ptr<ContentionManager> cm_;
};

class AstmTx : public TxImplBase {
 public:
  AstmTx(StmStats& stats, ContentionManager& cm) : stats_(stats), cm_(&cm) {}

  void BeginAttempt() override;
  uint64_t Read(const TxFieldBase& field) override;
  void Write(TxFieldBase& field, uint64_t value) override;
  bool TryCommit() override;
  void AbortSelf() override;

  // Contention-manager interface: a transaction's priority is its investment,
  // measured in opened objects. Contention managers read it on *other*
  // threads while this transaction keeps opening objects, so it is a
  // dedicated atomic mirror of read_map_.size() + write_map_.size() — the
  // maps themselves must never be touched cross-thread.
  // mo: relaxed — a heuristic input to arbitration; any recent value works.
  int64_t Priority() const { return priority_.load(std::memory_order_relaxed); }
  // mo: acquire — pairs with the release transitions in TryCommit/AbortSelf
  // so a reader acting on kCommitted/kAborted sees the state behind it.
  AstmStatus status() const { return status_.load(std::memory_order_acquire); }

  // Attempts to kill this transaction; returns true if the kill landed.
  bool RequestAbort() {
    AstmStatus expected = AstmStatus::kActive;
    // mo: acq_rel — arbitration point against the victim's own commit CAS;
    // winner's ordering must be visible both ways.
    return status_.compare_exchange_strong(expected, AstmStatus::kAborted,
                                           std::memory_order_acq_rel);
  }

 private:
  struct WriteImage {
    std::vector<uint64_t> words;     // one slot per registered field
    std::string payload_clone;       // whole-object copy of out-of-line data
  };

  // Throws TxAborted if a contention manager killed this transaction.
  void CheckAlive() const;
  // Ensures `unit` is in the read list; returns the version recorded for it.
  uint64_t OpenRead(const TmUnit& unit);
  WriteImage& OpenWrite(TmUnit& unit);
  void HandleConflict(const TmUnit& unit, AstmTx& owner, int& retries);
  bool ValidateReadList();
  void ReleaseOwnerships();

  StmStats& stats_;
  ContentionManager* cm_;
  // The kill/commit arbitration word: a protocol atomic, so it sits on the
  // SyncPoint seam for the interleaving explorer.
  sp::Atomic<AstmStatus> status_{AstmStatus::kActive};
  // Cross-thread-readable open count (see Priority()). Deliberately NOT on
  // the SyncPoint seam: it only biases contention-manager heuristics, and
  // instrumenting it would add a schedule point per object open for no
  // protocol coverage. The explorer models the historical Priority() race
  // at the litmus level instead (astm-priority-race).
  std::atomic<int64_t> priority_{0};

  std::unordered_map<const TmUnit*, uint64_t> read_map_;  // unit -> version
  std::unordered_map<TmUnit*, WriteImage> write_map_;
  std::vector<TmUnit*> write_order_;

  int64_t local_reads_ = 0;
  int64_t local_writes_ = 0;
  int64_t local_validation_steps_ = 0;
  int64_t local_bytes_cloned_ = 0;
  void FlushLocalStats();
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STM_ASTM_H_
