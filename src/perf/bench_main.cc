// The sb7-bench benchmark orchestrator: runs declarative sweeps (built-in or
// spec-file), writes the machine-readable BENCH_<sweep>.json artifact, prints
// the human comparison table, and gates against a baseline artifact with
// --compare. Replaces the legacy one-binary-per-figure bench/ targets.
//
// Exit codes: 0 success, 1 sweep failure or flagged regression, 2 usage.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "src/common/text.h"
#include "src/perf/compare.h"
#include "src/perf/json.h"
#include "src/perf/report.h"
#include "src/perf/runner.h"
#include "src/perf/stats.h"
#include "src/telemetry/series.h"

namespace {

std::string UsageText() {
  return R"(usage: sb7-bench [options]
  --sweep <name|file>    run a sweep: a built-in name (see --list) or a
                         key=value spec file (see bench/specs/)
  --list                 list the built-in sweeps and exit
  --out <file>           artifact path (default BENCH_<sweep>.json)
  --no-out               skip writing the JSON artifact
  --compare <baseline>   compare against a BENCH_*.json baseline; with
                         --sweep the fresh result is the candidate, without
                         it --against names the candidate file
  --against <file>       candidate BENCH_*.json for a run-free comparison
  --threshold <f>        relative noise threshold for --compare in (0,1)
                         (default: the spec's threshold, normally 0.15)
  --seconds <f>          override the per-cell measure window
  --warmup <f>           override the per-cell warmup window
  --reps <n>             override the repetition count
  --threads <list>       override the thread axis (comma-separated)
  --scale <s>            override the scale axis (tiny | small | medium)
  --seed <n>             override the base RNG seed
  --serve-factor <f>     gate wire cells against their inproc twins: every
                         serve=wire cell must reach at least 1/f of the
                         matching inproc cell's throughput (f > 1; exit 1
                         on violation). Requires a sweep with a serve axis.
  --trace-cells          install the tracer for every cell and record a
                         per-cell conflict summary in the artifact
  --no-telemetry         run the cells without the live telemetry sampler
                         (drops the steady_state/hw blocks; overhead A/B runs)
  --validate-json <file> parse a JSON file (e.g. a --trace timeline) with the
                         in-tree parser and exit 0 iff it is well-formed
  --validate-jsonl <file>
                         validate a --telemetry JSONL series against the
                         telemetry schema and exit 0 iff it conforms
  --quiet                suppress per-cell progress on stderr
  --help                 show this message
Environment (between spec defaults and flags in precedence):
  SB7_BENCH_SECONDS, SB7_BENCH_SCALE, SB7_BENCH_THREADS
)";
}

struct Options {
  std::string sweep;
  std::string out_path;
  bool no_out = false;
  std::string compare_path;
  std::string against_path;
  double threshold = 0.0;  // 0 = use the spec/baseline threshold
  double seconds = 0.0;
  double warmup = -1.0;
  int reps = 0;
  std::vector<int> threads;
  std::string scale;
  uint64_t seed = 0;
  bool seed_given = false;
  double serve_factor = 0.0;  // 0 = gate off
  bool trace_cells = false;
  bool telemetry = true;
  std::string validate_json_path;
  std::string validate_jsonl_path;
  bool quiet = false;
  bool list = false;
  bool help = false;
  std::string error;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  auto fail = [&options](const std::string& message) {
    if (options.error.empty()) {
      options.error = message;
    }
    return options;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--sweep") {
      if (!next(options.sweep) || options.sweep.empty()) {
        return fail("--sweep requires a built-in name or spec-file path");
      }
    } else if (arg == "--out") {
      if (!next(options.out_path) || options.out_path.empty()) {
        return fail("--out requires a file path");
      }
    } else if (arg == "--no-out") {
      options.no_out = true;
    } else if (arg == "--compare") {
      if (!next(options.compare_path) || options.compare_path.empty()) {
        return fail("--compare requires a baseline BENCH_*.json path");
      }
    } else if (arg == "--against") {
      if (!next(options.against_path) || options.against_path.empty()) {
        return fail("--against requires a candidate BENCH_*.json path");
      }
    } else if (arg == "--threshold") {
      if (!next(value) || !sb7::ParseDouble(value, options.threshold) ||
          options.threshold <= 0 || options.threshold >= 1) {
        return fail("--threshold requires a number in (0,1)");
      }
    } else if (arg == "--seconds") {
      if (!next(value) || !sb7::ParseDouble(value, options.seconds) ||
          options.seconds <= 0) {
        return fail("--seconds requires a positive number");
      }
    } else if (arg == "--warmup") {
      if (!next(value) || !sb7::ParseDouble(value, options.warmup) || options.warmup < 0) {
        return fail("--warmup requires a non-negative number");
      }
    } else if (arg == "--reps") {
      int64_t reps = 0;
      if (!next(value) || !sb7::ParseInt64(value, reps) || reps < 1) {
        return fail("--reps requires a positive integer");
      }
      options.reps = static_cast<int>(reps);
    } else if (arg == "--threads") {
      if (!next(value)) {
        return fail("--threads requires a comma-separated list");
      }
      for (const std::string& item : sb7::SplitCommaList(value)) {
        int64_t t = 0;
        if (!sb7::ParseInt64(item, t) || t < 1) {
          return fail("invalid thread count: " + item);
        }
        options.threads.push_back(static_cast<int>(t));
      }
      if (options.threads.empty()) {
        return fail("--threads requires at least one value");
      }
    } else if (arg == "--scale") {
      if (!next(options.scale) || options.scale.empty()) {
        return fail("--scale requires tiny, small or medium");
      }
    } else if (arg == "--seed") {
      if (!next(value) || !sb7::ParseUint64(value, options.seed)) {
        return fail("--seed requires an integer");
      }
      options.seed_given = true;
    } else if (arg == "--serve-factor") {
      if (!next(value) || !sb7::ParseDouble(value, options.serve_factor) ||
          options.serve_factor <= 1) {
        return fail("--serve-factor requires a number > 1");
      }
    } else if (arg == "--trace-cells") {
      options.trace_cells = true;
    } else if (arg == "--no-telemetry") {
      options.telemetry = false;
    } else if (arg == "--validate-json") {
      if (!next(options.validate_json_path) || options.validate_json_path.empty()) {
        return fail("--validate-json requires a file path");
      }
    } else if (arg == "--validate-jsonl") {
      if (!next(options.validate_jsonl_path) || options.validate_jsonl_path.empty()) {
        return fail("--validate-jsonl requires a file path");
      }
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return fail("unknown argument: " + arg);
    }
  }
  if (options.error.empty() && !options.list && options.sweep.empty() &&
      options.compare_path.empty() && options.validate_json_path.empty() &&
      options.validate_jsonl_path.empty()) {
    return fail(
        "nothing to do: pass --sweep, --compare, --validate-json, --validate-jsonl "
        "or --list");
  }
  if (options.error.empty() && !options.against_path.empty() &&
      options.compare_path.empty()) {
    return fail("--against only applies together with --compare");
  }
  if (options.error.empty() && !options.against_path.empty() && !options.sweep.empty()) {
    return fail("--against names a pre-recorded candidate; drop --sweep or --against");
  }
  if (options.error.empty() && options.sweep.empty() && !options.compare_path.empty() &&
      options.against_path.empty()) {
    return fail("--compare without --sweep requires --against <candidate.json>");
  }
  return options;
}

// Spec < environment < flag.
void ApplyOverrides(sb7::perf::SweepSpec& spec, const Options& options) {
  const sb7::perf::BenchEnv env = sb7::perf::ReadBenchEnv();
  if (env.seconds > 0) {
    spec.seconds = env.seconds;
  }
  if (!env.scale.empty()) {
    spec.scales = {env.scale};
  }
  if (!env.threads.empty()) {
    spec.threads = env.threads;
  }
  if (options.seconds > 0) {
    spec.seconds = options.seconds;
  }
  if (options.warmup >= 0) {
    spec.warmup = options.warmup;
  }
  if (options.reps > 0) {
    spec.reps = options.reps;
  }
  if (!options.threads.empty()) {
    spec.threads = options.threads;
  }
  if (!options.scale.empty()) {
    spec.scales = {options.scale};
  }
  if (options.seed_given) {
    spec.seed = options.seed;
  }
  if (options.threshold > 0) {
    spec.threshold = options.threshold;
  }
}

// Validates that a file parses with the in-tree JSON parser (src/perf/json).
// Used by CI on the emitted --trace timelines: a malformed timeline would
// otherwise only fail when a human loads it into Perfetto.
int RunValidateJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const sb7::perf::JsonParseResult parsed = sb7::perf::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::cerr << "INVALID JSON in " << path << ": " << parsed.error << "\n";
    return 1;
  }
  std::cout << path << ": valid JSON ("
            << (parsed.value.is_object() ? "object" : parsed.value.is_array() ? "array"
                                                                              : "scalar")
            << " root)\n";
  return 0;
}

// Validates a --telemetry JSONL series (header/sample/footer lines, schema
// version, key sets, monotone seq/t_s). Used by the CI telemetry smoke job.
int RunValidateJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  const std::string error = sb7::telemetry::ValidateTelemetryJsonl(in);
  if (!error.empty()) {
    std::cerr << "INVALID telemetry JSONL in " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": valid telemetry series\n";
  return 0;
}

// The --serve-factor gate: every serve=wire cell must reach at least 1/f of
// the throughput of the cell that is identical except serve=inproc. The
// factor is deliberately generous in CI (loopback serving adds framing,
// syscalls and a queue hop per op; see docs/SERVING.md) — the gate exists to
// catch the wire path collapsing (a stall, a rejection storm), not to police
// a few percent.
bool CheckServeFactor(const sb7::perf::SweepResult& result, double factor) {
  std::map<std::string, double> inproc;
  for (const sb7::perf::CellResult& cell : result.cells) {
    if (cell.cell.serve == "inproc") {
      inproc[sb7::perf::CellKey(cell.cell)] = cell.throughput_median;
    }
  }
  bool any = false;
  bool ok = true;
  for (const sb7::perf::CellResult& cell : result.cells) {
    if (cell.cell.serve != "wire") {
      continue;
    }
    sb7::perf::SweepCell twin = cell.cell;
    twin.serve = "inproc";
    const auto it = inproc.find(sb7::perf::CellKey(twin));
    if (it == inproc.end()) {
      continue;  // no inproc twin in this sweep; nothing to gate against
    }
    any = true;
    const double floor = it->second / factor;
    const bool pass = cell.throughput_median >= floor;
    std::cout << "serve gate [" << sb7::perf::CellKey(twin) << "]: wire "
              << static_cast<int64_t>(cell.throughput_median) << " op/s vs inproc "
              << static_cast<int64_t>(it->second) << " op/s (floor "
              << static_cast<int64_t>(floor) << " at factor " << factor << "): "
              << (pass ? "OK" : "FAIL") << "\n";
    ok = ok && pass;
  }
  if (!any) {
    std::cerr << "warning: --serve-factor given but the sweep has no "
                 "wire/inproc cell pairs to gate\n";
  }
  return ok;
}

int RunCompareOnly(const Options& options) {
  const sb7::perf::BaselineLoadResult base =
      sb7::perf::LoadBaselineFile(options.compare_path);
  if (!base.ok()) {
    std::cerr << "error: baseline: " << base.error << "\n";
    return 2;
  }
  const sb7::perf::BaselineLoadResult candidate =
      sb7::perf::LoadBaselineFile(options.against_path);
  if (!candidate.ok()) {
    std::cerr << "error: candidate: " << candidate.error << "\n";
    return 2;
  }
  const sb7::perf::CompareReport report =
      sb7::perf::CompareSweeps(base.baseline, candidate.baseline, options.threshold);
  sb7::perf::PrintCompareReport(std::cout, report);
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);
  if (options.help) {
    std::cout << UsageText();
    return 0;
  }
  if (!options.error.empty()) {
    std::cerr << "error: " << options.error << "\n" << UsageText();
    return 2;
  }
  if (options.list) {
    for (const std::string& name : sb7::perf::BuiltinSweepNames()) {
      std::cout << "  " << name << "\n      " << sb7::perf::BuiltinSweepDescription(name)
                << "\n";
    }
    return 0;
  }
  if (!options.validate_json_path.empty()) {
    return RunValidateJson(options.validate_json_path);
  }
  if (!options.validate_jsonl_path.empty()) {
    return RunValidateJsonl(options.validate_jsonl_path);
  }
  if (options.sweep.empty()) {
    return RunCompareOnly(options);
  }

  sb7::perf::SweepParseResult loaded = sb7::perf::LoadSweep(options.sweep);
  if (!loaded.spec.has_value()) {
    std::cerr << "error: " << loaded.error << "\n";
    return 2;
  }
  sb7::perf::SweepSpec spec = std::move(*loaded.spec);
  ApplyOverrides(spec, options);
  const std::string validation = spec.Validate();
  if (!validation.empty()) {
    std::cerr << "error: " << validation << "\n";
    return 2;
  }

  sb7::perf::SweepRunOptions run_options;
  run_options.trace_cells = options.trace_cells;
  run_options.telemetry = options.telemetry;
  if (!options.quiet) {
    run_options.log = &std::cerr;
    std::cerr << "sweep '" << spec.name << "': "
              << sb7::perf::ExpandCells(spec).size() << " cells x " << spec.reps
              << " rep(s), " << spec.warmup << "s warmup + " << spec.seconds
              << "s measure per phase\n";
  }
  const sb7::perf::SweepRunOutcome outcome = sb7::perf::RunSweep(spec, run_options);
  if (!outcome.ok()) {
    std::cerr << "SWEEP FAILED: " << outcome.error << "\n";
    return 1;
  }

  sb7::perf::PrintSweepTable(std::cout, outcome.result);

  if (!options.no_out) {
    const std::string path =
        options.out_path.empty() ? "BENCH_" + spec.name + ".json" : options.out_path;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 2;
    }
    sb7::perf::WriteSweepJson(out, outcome.result);
    std::cerr << "artifact written to " << path << "\n";
  }

  if (options.serve_factor > 1 &&
      !CheckServeFactor(outcome.result, options.serve_factor)) {
    std::cerr << "SERVE GATE FAILED: a wire cell fell below 1/" << options.serve_factor
              << " of its inproc twin\n";
    return 1;
  }

  if (!options.compare_path.empty()) {
    const sb7::perf::BaselineLoadResult base =
        sb7::perf::LoadBaselineFile(options.compare_path);
    if (!base.ok()) {
      std::cerr << "error: baseline: " << base.error << "\n";
      return 2;
    }
    // The gate threshold is the running spec's (ApplyOverrides already
    // folded --threshold into it) — not the one recorded in the baseline
    // artifact, which may predate a spec edit.
    const sb7::perf::CompareReport report = sb7::perf::CompareSweeps(
        base.baseline, sb7::perf::BaselineFromResult(outcome.result), spec.threshold);
    sb7::perf::PrintCompareReport(std::cout, report);
    return report.ok() ? 0 : 1;
  }
  return 0;
}
