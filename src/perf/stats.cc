#include "src/perf/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/text.h"

namespace sb7::perf {

double Median(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  if (n % 2 == 1) {
    return samples[n / 2];
  }
  return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

double QuantileOf(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double MinOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
}

double MaxOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
}

size_t MedianIndex(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0;
  }
  const double median = Median(samples);
  size_t best = 0;
  double best_distance = -1.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double distance = std::abs(samples[i] - median);
    if (best_distance < 0 || distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

namespace {

// Coefficient of variation (stddev / mean) of samples[first, first + count).
// Returns a huge sentinel when the mean is ~0 so such windows never qualify.
double WindowCv(const std::vector<double>& samples, size_t first, size_t count) {
  double mean = 0.0;
  for (size_t i = 0; i < count; ++i) {
    mean += samples[first + i];
  }
  mean /= static_cast<double>(count);
  if (mean <= 1e-9) {
    return 1e9;
  }
  double var = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double d = samples[first + i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(count);
  return std::sqrt(var) / mean;
}

}  // namespace

SteadyState DetectSteadyState(const std::vector<double>& t_s,
                              const std::vector<double>& ops_per_s,
                              double cv_threshold, double warmup_s, int window) {
  SteadyState result;
  const size_t n = std::min(t_s.size(), ops_per_s.size());
  result.samples = static_cast<int>(n);
  result.warmup_s = warmup_s;
  if (window < 2 || n < static_cast<size_t>(window)) {
    return result;
  }
  const auto w = static_cast<size_t>(window);
  result.tail_cv = WindowCv(ops_per_s, n - w, w);
  for (size_t first = 0; first + w <= n; ++first) {
    if (WindowCv(ops_per_s, first, w) <= cv_threshold) {
      result.detected = true;
      result.steady_at_s = t_s[first];
      result.warmup_covered = warmup_s >= result.steady_at_s;
      return result;
    }
  }
  return result;
}

BenchEnv ReadBenchEnv() {
  BenchEnv env;
  if (const char* raw = std::getenv("SB7_BENCH_SECONDS")) {
    double seconds = 0;
    if (ParseDouble(raw, seconds) && seconds > 0) {
      env.seconds = seconds;
    }
  }
  if (const char* raw = std::getenv("SB7_BENCH_SCALE")) {
    env.scale = raw;
  }
  if (const char* raw = std::getenv("SB7_BENCH_THREADS")) {
    // Space- or comma-separated. All-or-nothing: one bad token discards the
    // whole variable rather than silently running a truncated thread axis.
    std::string text(raw);
    std::replace(text.begin(), text.end(), ' ', ',');
    for (const std::string& item : SplitCommaList(text)) {
      int64_t value = 0;
      if (!ParseInt64(item, value) || value < 1) {
        env.threads.clear();
        break;
      }
      env.threads.push_back(static_cast<int>(value));
    }
  }
  return env;
}

}  // namespace sb7::perf
