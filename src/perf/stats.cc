#include "src/perf/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/text.h"

namespace sb7::perf {

double Median(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  if (n % 2 == 1) {
    return samples[n / 2];
  }
  return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

double MinOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
}

double MaxOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
}

size_t MedianIndex(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0;
  }
  const double median = Median(samples);
  size_t best = 0;
  double best_distance = -1.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double distance = std::abs(samples[i] - median);
    if (best_distance < 0 || distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

BenchEnv ReadBenchEnv() {
  BenchEnv env;
  if (const char* raw = std::getenv("SB7_BENCH_SECONDS")) {
    double seconds = 0;
    if (ParseDouble(raw, seconds) && seconds > 0) {
      env.seconds = seconds;
    }
  }
  if (const char* raw = std::getenv("SB7_BENCH_SCALE")) {
    env.scale = raw;
  }
  if (const char* raw = std::getenv("SB7_BENCH_THREADS")) {
    // Space- or comma-separated. All-or-nothing: one bad token discards the
    // whole variable rather than silently running a truncated thread axis.
    std::string text(raw);
    std::replace(text.begin(), text.end(), ' ', ',');
    for (const std::string& item : SplitCommaList(text)) {
      int64_t value = 0;
      if (!ParseInt64(item, value) || value < 1) {
        env.threads.clear();
        break;
      }
      env.threads.push_back(static_cast<int>(value));
    }
  }
  return env;
}

}  // namespace sb7::perf
