#include "src/perf/sweep.h"

#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "src/common/text.h"
#include "src/harness/workload.h"
#include "src/ops/operation.h"
#include "src/scenario/scenario.h"
#include "src/stm/contention.h"

namespace sb7::perf {
namespace {

const std::vector<std::string> kStrategies = {"coarse", "medium",  "fine",  "tl2",
                                              "tinystm", "norec", "astm", "mvstm"};
const std::vector<std::string> kScales = {"tiny", "small", "medium"};
const std::vector<std::string> kIndexes = {"default", "stdmap", "snapshot", "skiplist"};

bool Contains(const std::vector<std::string>& haystack, const std::string& needle) {
  for (const std::string& item : haystack) {
    if (item == needle) {
      return true;
    }
  }
  return false;
}

std::string Join(const std::vector<std::string>& items, const char* separator = ", ") {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += items[i];
  }
  return out;
}

// Everything except the operations named in `keep` — the mix presets that
// isolate a subset (pinpoint, index-heavy) are defined by their keep set so
// newly added operations default to disabled instead of silently joining.
std::set<std::string> AllBut(const std::set<std::string>& keep) {
  OperationRegistry registry;
  std::set<std::string> disabled;
  for (const auto& op : registry.all()) {
    if (keep.count(op->name()) == 0) {
      disabled.insert(op->name());
    }
  }
  return disabled;
}

const std::vector<std::string>& MixNames() {
  static const std::vector<std::string> names = {"full", "short", "short-only", "pinpoint",
                                                 "index-heavy"};
  return names;
}

}  // namespace

std::string_view SweepMetricName(SweepMetric metric) {
  return metric == SweepMetric::kThroughput ? "throughput" : "latency";
}

std::optional<MixPreset> FindMixPreset(std::string_view name) {
  MixPreset preset;
  preset.name = std::string(name);
  if (name == "full") {
    preset.long_traversals = true;
    return preset;
  }
  if (name == "short") {
    preset.long_traversals = false;
    return preset;
  }
  if (name == "short-only") {
    preset.long_traversals = false;
    preset.disabled_ops = Figure6DisabledOps();
    return preset;
  }
  if (name == "pinpoint") {
    // Path/index operations only: fine-grained locking's best case (narrow
    // lock footprints, no whole-structure scans).
    preset.long_traversals = false;
    preset.disabled_ops = AllBut({"ST1", "ST2", "ST3", "ST6", "ST7", "ST8", "OP1", "OP6",
                                  "OP7", "OP8", "OP9", "OP12", "OP13", "OP14", "OP15"});
    return preset;
  }
  if (name == "index-heavy") {
    // The index-centric operations: OP1 (id probes), OP2 (range), OP15
    // (indexed date updates), ST3 (index + bottom-up), SM1/SM2 (bulk index
    // insert/remove via part creation/deletion).
    preset.long_traversals = false;
    preset.disabled_ops = AllBut({"OP1", "OP2", "OP15", "ST3", "SM1", "SM2"});
    return preset;
  }
  return std::nullopt;
}

std::string MixPresetList() { return Join(MixNames()); }

std::string SweepSpec::Validate() {
  if (name.empty()) {
    return "sweep has no name";
  }
  if (backends.empty()) {
    return "sweep '" + name + "' declares no backends";
  }
  for (const std::string& backend : backends) {
    if (!Contains(kStrategies, backend)) {
      return "unknown backend: " + backend + " (expected one of " + Join(kStrategies) + ")";
    }
  }
  if (threads.empty()) {
    threads = {1};
  }
  for (const int t : threads) {
    if (t < 1) {
      return "thread counts must be >= 1";
    }
  }
  if (workloads.empty()) {
    workloads = {"r"};
  }
  for (const std::string& workload : workloads) {
    if (workload != "r" && workload != "rw" && workload != "w") {
      return "unknown workload: " + workload + " (expected r, rw or w)";
    }
  }
  for (const std::string& scenario : scenarios) {
    if (!FindBuiltinScenario(scenario).has_value()) {
      return "unknown scenario: " + scenario + " (expected one of " + BuiltinScenarioList() +
             ")";
    }
  }
  if (scales.empty()) {
    scales = {"small"};
  }
  for (const std::string& scale : scales) {
    if (!Contains(kScales, scale)) {
      return "unknown scale: " + scale + " (expected tiny, small or medium)";
    }
  }
  if (indexes.empty()) {
    indexes = {"default"};
  }
  for (const std::string& index : indexes) {
    if (!Contains(kIndexes, index)) {
      return "unknown index kind: " + index + " (expected " + Join(kIndexes) + ")";
    }
  }
  if (cms.empty()) {
    cms = {"default"};
  }
  for (const std::string& cm : cms) {
    if (cm != "default" && MakeContentionManager(cm) == nullptr) {
      return "unknown contention manager: " + cm;
    }
  }
  if (mixes.empty()) {
    mixes = {"full"};
  }
  for (const std::string& mix : mixes) {
    if (!FindMixPreset(mix).has_value()) {
      return "unknown mix preset: " + mix + " (expected " + MixPresetList() + ")";
    }
  }
  if (serves.empty()) {
    serves = {"inproc"};
  }
  for (const std::string& serve : serves) {
    if (serve != "inproc" && serve != "wire") {
      return "unknown serve mode: " + serve + " (expected inproc or wire)";
    }
    if (serve == "wire" && !scenarios.empty()) {
      // Wire cells run a plain warmup+measure window; a phased scenario has
      // no meaningful over-the-wire analogue (clients pace, not phases).
      return "serves=wire cannot be combined with scenarios";
    }
  }
  if (durabilities.empty()) {
    durabilities = {"off"};
  }
  for (const std::string& durability : durabilities) {
    if (durability != "off" && durability != "group" && durability != "always") {
      return "unknown durability: " + durability + " (expected off, group or always)";
    }
    if (durability != "off") {
      // The redo log is an mvstm subsystem (group-commit sequencer); a
      // durability cell on any other backend would silently measure nothing.
      for (const std::string& backend : backends) {
        if (backend != "mvstm") {
          return "durabilities=" + durability + " requires mvstm-only backends, got " +
                 backend;
        }
      }
    }
  }
  {
    OperationRegistry registry;
    for (const std::string& probe : probes) {
      if (registry.Find(probe) == nullptr) {
        return "unknown probe operation: " + probe;
      }
    }
  }
  if (metric == SweepMetric::kLatency && probes.empty()) {
    return "metric=latency requires at least one probe operation";
  }
  if (seconds <= 0) {
    return "seconds must be > 0";
  }
  if (warmup < 0) {
    return "warmup must be >= 0";
  }
  if (reps < 1) {
    return "reps must be >= 1";
  }
  if (threshold <= 0 || threshold >= 1) {
    return "threshold must be in (0, 1)";
  }
  if (cv_threshold <= 0 || cv_threshold > 1) {
    return "cv_threshold must be in (0, 1]";
  }
  if (title.empty()) {
    title = name;
  }
  return "";
}

namespace {

SweepSpec MakeFig3() {
  SweepSpec spec;
  spec.name = "fig3";
  spec.title = "Figure 3: max latency [ms] of the long traversals (T1 read-dom., T2b "
               "write-dom.), all operations enabled";
  spec.metric = SweepMetric::kLatency;
  spec.backends = {"coarse", "medium"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"r", "w"};
  spec.probes = {"T1", "T2b"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeFig4() {
  SweepSpec spec;
  spec.name = "fig4";
  spec.title = "Figure 4: total throughput [op/s], long traversals disabled";
  spec.backends = {"coarse", "medium"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"r", "rw", "w"};
  spec.mixes = {"short"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeFig6() {
  SweepSpec spec;
  spec.name = "fig6";
  spec.title = "Figure 6: throughput [op/s], short-only operation subset";
  spec.backends = {"coarse", "medium", "astm", "tl2", "tinystm", "norec"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"r", "rw", "w"};
  spec.mixes = {"short-only"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeTable3() {
  SweepSpec spec;
  spec.name = "table3";
  spec.title = "Table 3: throughput [op/s], coarse lock vs the naive ASTM port, long "
               "traversals disabled";
  spec.backends = {"coarse", "astm"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"r", "rw", "w"};
  spec.mixes = {"short"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeAblationCm() {
  SweepSpec spec;
  spec.name = "ablation-cm";
  spec.title = "Ablation: ASTM contention managers, write-dominated short-only workload";
  spec.backends = {"astm"};
  spec.cms = {"polka", "karma", "aggressive", "timid"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"w"};
  spec.mixes = {"short-only"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeAblationIndex() {
  SweepSpec spec;
  spec.name = "ablation-index";
  spec.title = "Ablation: index representation (snapshot vs skiplist), index-heavy mix";
  spec.backends = {"tl2", "astm"};
  spec.indexes = {"snapshot", "skiplist"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"w"};
  spec.mixes = {"index-heavy"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeAblationLocks() {
  SweepSpec spec;
  spec.name = "ablation-locks";
  spec.title = "Ablation: lock granularity (coarse / medium / fine), read-write workload";
  spec.backends = {"coarse", "medium", "fine"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"rw"};
  spec.mixes = {"full", "short", "pinpoint"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeAblationMvcc() {
  SweepSpec spec;
  spec.name = "ablation-mvcc";
  spec.title = "MVCC ablation: mvstm vs tl2, read-dominated workload, with and without "
               "long traversals";
  spec.backends = {"tl2", "mvstm"};
  spec.threads = {1, 2, 4, 8};
  spec.workloads = {"r"};
  spec.mixes = {"short", "full"};
  spec.probes = {"T1"};
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeScenarioSweep() {
  SweepSpec spec;
  spec.name = "scenario-sweep";
  spec.title = "Scenario sweep: built-in phased scenarios, tl2 vs mvstm";
  spec.backends = {"tl2", "mvstm"};
  spec.threads = {4};
  spec.scenarios = BuiltinScenarioNames();
  spec.warmup = 0.25;
  return spec;
}

SweepSpec MakeSmoke() {
  // The CI gate: small enough to finish (builds included) well under a
  // minute on one core, broad enough to cover a lock strategy, a word STM
  // and the multi-version backend.
  SweepSpec spec;
  spec.name = "smoke";
  spec.title = "Smoke sweep: coarse vs tl2 vs mvstm, tiny structure";
  spec.backends = {"coarse", "tl2", "mvstm"};
  spec.threads = {2};
  spec.workloads = {"r", "w"};
  spec.scales = {"tiny"};
  spec.mixes = {"short"};
  spec.seconds = 0.4;
  spec.warmup = 0.1;
  spec.reps = 1;
  return spec;
}

SweepSpec MakeServe() {
  // In-process vs over-the-wire: the same tl2 cell executed by local worker
  // threads and again with operations arriving through sb7-serve's loopback
  // TCP front-end (closed-loop client, one connection per worker). The gap
  // between the two columns is the serving overhead; --serve-factor gates it.
  SweepSpec spec;
  spec.name = "serve";
  spec.title = "Serve sweep: in-process vs over-the-wire (loopback TCP), tl2";
  spec.backends = {"tl2"};
  spec.threads = {4};
  spec.workloads = {"rw"};
  spec.scales = {"tiny"};
  spec.mixes = {"short"};
  spec.serves = {"inproc", "wire"};
  spec.seconds = 0.8;
  spec.warmup = 0.2;
  spec.reps = 1;
  return spec;
}

SweepSpec MakeDurability() {
  // The cost of crash durability (docs/DURABILITY.md): the same 8-thread
  // mvstm write storm with no redo log, with group commit (one fsync per
  // commit group) and with a forced fsync per commit. Group commit's whole
  // point is the middle column sitting near the left one and well above the
  // right one.
  SweepSpec spec;
  spec.name = "durability";
  spec.title = "Durability sweep: mvstm write storm — no log vs group commit vs "
               "fsync-per-commit";
  spec.backends = {"mvstm"};
  spec.threads = {8};
  spec.workloads = {"w"};
  spec.scales = {"tiny"};
  spec.mixes = {"short"};
  spec.durabilities = {"off", "group", "always"};
  spec.seconds = 0.8;
  spec.warmup = 0.2;
  spec.reps = 3;
  return spec;
}

const std::map<std::string, SweepSpec (*)()>& BuiltinFactories() {
  static const std::map<std::string, SweepSpec (*)()> factories = {
      {"fig3", &MakeFig3},
      {"fig4", &MakeFig4},
      {"fig6", &MakeFig6},
      {"table3", &MakeTable3},
      {"ablation-cm", &MakeAblationCm},
      {"ablation-index", &MakeAblationIndex},
      {"ablation-locks", &MakeAblationLocks},
      {"ablation-mvcc", &MakeAblationMvcc},
      {"scenario-sweep", &MakeScenarioSweep},
      {"serve", &MakeServe},
      {"durability", &MakeDurability},
      {"smoke", &MakeSmoke},
  };
  return factories;
}

}  // namespace

const std::vector<std::string>& BuiltinSweepNames() {
  static const std::vector<std::string> names = {
      "fig3",           "fig4",           "fig6",          "table3",  "ablation-cm",
      "ablation-index", "ablation-locks", "ablation-mvcc", "scenario-sweep", "serve",
      "durability",     "smoke"};
  return names;
}

std::string BuiltinSweepList() { return Join(BuiltinSweepNames()); }

std::optional<SweepSpec> FindBuiltinSweep(std::string_view name) {
  const auto& factories = BuiltinFactories();
  const auto it = factories.find(std::string(name));
  if (it == factories.end()) {
    return std::nullopt;
  }
  SweepSpec spec = it->second();
  const std::string error = spec.Validate();
  if (!error.empty()) {
    // A built-in that fails its own validation is a programming error; the
    // consistency test in tests/perf_test.cc catches it.
    return std::nullopt;
  }
  return spec;
}

std::string BuiltinSweepDescription(std::string_view name) {
  const std::optional<SweepSpec> spec = FindBuiltinSweep(name);
  return spec.has_value() ? spec->title : std::string();
}

namespace {

bool SplitList(const std::string& value, std::vector<std::string>& out) {
  out = SplitCommaList(value);
  return !out.empty();
}

}  // namespace

SweepParseResult ParseSweepSpec(std::istream& in, std::string_view default_name) {
  SweepParseResult result;
  SweepSpec spec;
  spec.name = std::string(default_name);

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    // Trim.
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    const size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    const size_t eq = line.find('=');
    auto fail = [&](const std::string& message) {
      result.error = "line " + std::to_string(line_number) + ": " + message;
      return result;
    };
    if (eq == std::string::npos) {
      return fail("expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);

    if (key == "name") {
      spec.name = value;
    } else if (key == "title") {
      spec.title = value;
    } else if (key == "metric") {
      if (value == "throughput") {
        spec.metric = SweepMetric::kThroughput;
      } else if (value == "latency") {
        spec.metric = SweepMetric::kLatency;
      } else {
        return fail("metric must be throughput or latency");
      }
    } else if (key == "backends") {
      if (!SplitList(value, spec.backends)) {
        return fail("backends requires a comma-separated list");
      }
    } else if (key == "threads") {
      std::vector<std::string> items;
      if (!SplitList(value, items)) {
        return fail("threads requires a comma-separated list");
      }
      spec.threads.clear();
      for (const std::string& item : items) {
        int64_t t = 0;
        if (!ParseInt64(item, t) || t < 1) {
          return fail("invalid thread count: " + item);
        }
        spec.threads.push_back(static_cast<int>(t));
      }
    } else if (key == "workloads") {
      if (!SplitList(value, spec.workloads)) {
        return fail("workloads requires a comma-separated list");
      }
    } else if (key == "scenarios") {
      if (!SplitList(value, spec.scenarios)) {
        return fail("scenarios requires a comma-separated list");
      }
    } else if (key == "scales") {
      if (!SplitList(value, spec.scales)) {
        return fail("scales requires a comma-separated list");
      }
    } else if (key == "indexes") {
      if (!SplitList(value, spec.indexes)) {
        return fail("indexes requires a comma-separated list");
      }
    } else if (key == "cms") {
      if (!SplitList(value, spec.cms)) {
        return fail("cms requires a comma-separated list");
      }
    } else if (key == "mixes") {
      if (!SplitList(value, spec.mixes)) {
        return fail("mixes requires a comma-separated list");
      }
    } else if (key == "serves") {
      if (!SplitList(value, spec.serves)) {
        return fail("serves requires a comma-separated list");
      }
    } else if (key == "durabilities") {
      if (!SplitList(value, spec.durabilities)) {
        return fail("durabilities requires a comma-separated list");
      }
    } else if (key == "probes") {
      if (!SplitList(value, spec.probes)) {
        return fail("probes requires a comma-separated list");
      }
    } else if (key == "seconds") {
      if (!ParseDouble(value, spec.seconds)) {
        return fail("invalid seconds value: " + value);
      }
    } else if (key == "warmup") {
      if (!ParseDouble(value, spec.warmup)) {
        return fail("invalid warmup value: " + value);
      }
    } else if (key == "reps") {
      int64_t reps = 0;
      if (!ParseInt64(value, reps) || reps < 1) {
        return fail("reps requires a positive integer");
      }
      spec.reps = static_cast<int>(reps);
    } else if (key == "seed") {
      if (!ParseUint64(value, spec.seed)) {
        return fail("invalid seed: " + value);
      }
    } else if (key == "threshold") {
      if (!ParseDouble(value, spec.threshold)) {
        return fail("invalid threshold: " + value);
      }
    } else if (key == "cv_threshold") {
      if (!ParseDouble(value, spec.cv_threshold)) {
        return fail("invalid cv_threshold: " + value);
      }
    } else if (key == "max_ops") {
      if (!ParseInt64(value, spec.max_ops)) {
        return fail("invalid max_ops: " + value);
      }
    } else {
      return fail("unknown key: " + key);
    }
  }

  const std::string error = spec.Validate();
  if (!error.empty()) {
    result.error = error;
    return result;
  }
  result.spec = std::move(spec);
  return result;
}

SweepParseResult LoadSweep(const std::string& name_or_path) {
  if (std::optional<SweepSpec> builtin = FindBuiltinSweep(name_or_path)) {
    SweepParseResult result;
    result.spec = std::move(builtin);
    return result;
  }
  std::ifstream file(name_or_path);
  if (!file) {
    SweepParseResult result;
    result.error = "'" + name_or_path + "' is neither a built-in sweep (" +
                   BuiltinSweepList() + ") nor a readable spec file";
    return result;
  }
  // Default the name to the file's basename, sans extension.
  std::string base = name_or_path;
  const size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  const size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) {
    base = base.substr(0, dot);
  }
  return ParseSweepSpec(file, base);
}

}  // namespace sb7::perf
