/// \file
/// Baseline comparison: load a `BENCH_*.json` artifact back and flag
/// per-cell regressions beyond a noise threshold.
///
/// Cells are matched across runs by their canonical CellKey. Throughput
/// metrics regress downward (current < baseline × (1 − threshold)); latency
/// probes regress upward (current > baseline × (1 + threshold)). Cells
/// present on only one side are reported as notes, not regressions — a
/// sweep spec change should be visible but must not fail the gate by
/// itself. `sb7-bench` exits non-zero iff at least one regression is
/// flagged, which is what lets CI pin the perf trajectory.

#ifndef STMBENCH7_SRC_PERF_COMPARE_H_
#define STMBENCH7_SRC_PERF_COMPARE_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/perf/runner.h"

namespace sb7::perf {

/// The comparable slice of one cell: the headline throughput and each
/// probe's median max-latency. The conflict counters ride along from BENCH
/// schema-2 cells recorded with --trace-cells (-1 = the artifact did not
/// carry them); they are informational context in the report, never a gate.
struct BaselineCell {
  double throughput_median = 0.0;
  std::map<std::string, double> probe_max_ms;  ///< op name -> median max ms
  double conflict_total_aborts = -1.0;
  double conflict_attributed_aborts = -1.0;
};

/// The comparable slice of one sweep artifact (either loaded from a
/// BENCH_*.json file or distilled from a fresh SweepResult).
struct Baseline {
  std::string sweep;
  std::string metric;  ///< "throughput" | "latency"
  double threshold = 0.15;
  std::map<std::string, BaselineCell> cells;  ///< CellKey -> stats
};

struct BaselineLoadResult {
  Baseline baseline;
  std::string error;  ///< set on parse/schema errors

  bool ok() const { return error.empty(); }
};

/// Parses a BENCH_*.json document (any schema in [1, current]) into its
/// comparable slice.
BaselineLoadResult LoadBaseline(const std::string& json_text);
/// Reads and parses a BENCH_*.json file.
BaselineLoadResult LoadBaselineFile(const std::string& path);
/// Distills a fresh in-memory sweep result.
Baseline BaselineFromResult(const SweepResult& result);

/// One compared quantity. For latency sweeps each probe is its own row with
/// `key` suffixed by " probe=<op>".
struct CompareRow {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  /// Relative change, signed so that negative is always "worse":
  /// (current−baseline)/baseline for throughput, the negation for latency.
  double delta_fraction = 0.0;
  bool regressed = false;
};

struct CompareReport {
  double threshold = 0.15;
  std::vector<CompareRow> rows;
  std::vector<std::string> notes;  ///< missing / new cells, skipped probes
  int regressions = 0;

  bool ok() const { return regressions == 0; }
};

/// Compares `current` against `baseline` with the given relative noise
/// threshold (<= 0 picks the baseline's recorded threshold). The sweeps'
/// metric fields must agree; a metric mismatch flags every row as a note.
CompareReport CompareSweeps(const Baseline& baseline, const Baseline& current,
                            double threshold);

/// Human-readable comparison: one line per row, regressions marked, notes
/// appended, and a PASS/REGRESSION verdict line last.
void PrintCompareReport(std::ostream& out, const CompareReport& report);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_COMPARE_H_
