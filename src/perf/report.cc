#include "src/perf/report.h"

#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace sb7::perf {
namespace {

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void WriteStringAxis(std::ostream& out, const char* name,
                     const std::vector<std::string>& values, bool last = false) {
  out << "    \"" << name << "\": [";
  for (size_t i = 0; i < values.size(); ++i) {
    out << (i == 0 ? "" : ", ") << JsonString(values[i]);
  }
  out << "]" << (last ? "" : ",") << "\n";
}

void WriteStmBlock(std::ostream& out, const StmStats::View& stm, const char* indent) {
  out << "{\n";
  out << indent << "  \"starts\": " << stm.starts << ", \"commits\": " << stm.commits
      << ", \"aborts\": " << stm.aborts << ",\n";
  out << indent << "  \"reads\": " << stm.reads << ", \"writes\": " << stm.writes
      << ", \"validation_steps\": " << stm.validation_steps
      << ", \"bytes_cloned\": " << stm.bytes_cloned << ", \"kills\": " << stm.kills << ",\n";
  out << indent << "  \"ro_starts\": " << stm.ro_starts
      << ", \"ro_commits\": " << stm.ro_commits << ", \"ro_aborts\": " << stm.ro_aborts
      << ",\n";
  out << indent << "  \"abort_causes\": {\"read_validation\": " << stm.aborts_read_validation
      << ", \"write_lock\": " << stm.aborts_write_lock << ", \"kill\": " << stm.aborts_kill
      << ", \"snapshot_too_old\": " << stm.aborts_snapshot_too_old
      << ", \"unknown\": " << stm.aborts_unknown << "}\n";
  out << indent << "}";
}

void WriteConflictsBlock(std::ostream& out, const CellConflicts& conflicts,
                         const char* indent) {
  out << "{\n";
  out << indent << "  \"total_aborts\": " << conflicts.total_aborts
      << ", \"attributed_aborts\": " << conflicts.attributed_aborts
      << ", \"dropped_events\": " << conflicts.dropped_events << ",\n";
  out << indent << "  \"top_locations\": [";
  for (size_t i = 0; i < conflicts.top_locations.size(); ++i) {
    const trace::ConflictHotLocation& location = conflicts.top_locations[i];
    out << (i == 0 ? "" : ", ") << "{\"key\": \"0x" << std::hex << location.key << std::dec
        << "\", \"aborts\": " << location.aborts << "}";
  }
  out << "],\n";
  out << indent << "  \"top_pairs\": [";
  for (size_t i = 0; i < conflicts.top_pairs.size(); ++i) {
    const NamedConflictPair& pair = conflicts.top_pairs[i];
    out << (i == 0 ? "" : ", ") << "{\"victim\": " << JsonString(pair.victim)
        << ", \"writer\": " << JsonString(pair.writer) << ", \"aborts\": " << pair.aborts
        << "}";
  }
  out << "]\n";
  out << indent << "}";
}

}  // namespace

void WriteSweepJson(std::ostream& out, const SweepResult& result) {
  const SweepSpec& spec = result.spec;
  const auto flags = out.flags();
  out << std::setprecision(12);

  out << "{\n";
  out << "  \"schema\": " << kBenchSchemaVersion << ",\n";
  out << "  \"tool\": \"sb7-bench\",\n";
  out << "  \"sweep\": " << JsonString(spec.name) << ",\n";
  out << "  \"metric\": " << JsonString(std::string(SweepMetricName(spec.metric))) << ",\n";
  out << "  \"config\": {\"seconds\": " << spec.seconds << ", \"warmup\": " << spec.warmup
      << ", \"reps\": " << spec.reps << ", \"seed\": " << spec.seed
      << ", \"threshold\": " << spec.threshold
      << ", \"cv_threshold\": " << spec.cv_threshold << "},\n";

  out << "  \"axes\": {\n";
  WriteStringAxis(out, "backends", spec.backends);
  out << "    \"threads\": [";
  for (size_t i = 0; i < spec.threads.size(); ++i) {
    out << (i == 0 ? "" : ", ") << spec.threads[i];
  }
  out << "],\n";
  WriteStringAxis(out, "workloads", spec.workloads);
  WriteStringAxis(out, "scenarios", spec.scenarios);
  WriteStringAxis(out, "scales", spec.scales);
  WriteStringAxis(out, "indexes", spec.indexes);
  WriteStringAxis(out, "cms", spec.cms);
  WriteStringAxis(out, "mixes", spec.mixes);
  WriteStringAxis(out, "serves", spec.serves);
  WriteStringAxis(out, "durabilities", spec.durabilities, /*last=*/true);
  out << "  },\n";

  out << "  \"cells\": [";
  for (size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    out << (c == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"key\": " << JsonString(CellKey(cell.cell)) << ",\n";
    out << "      \"backend\": " << JsonString(cell.cell.backend)
        << ", \"threads\": " << cell.cell.threads
        << ", \"workload\": " << JsonString(cell.cell.workload) << ", \"scenario\": "
        << JsonString(cell.cell.scenario.empty() ? "-" : cell.cell.scenario)
        << ",\n";
    out << "      \"scale\": " << JsonString(cell.cell.scale)
        << ", \"index\": " << JsonString(cell.cell.index)
        << ", \"cm\": " << JsonString(cell.cell.cm)
        << ", \"mix\": " << JsonString(cell.cell.mix)
        << ", \"serve\": " << JsonString(cell.cell.serve)
        << ", \"durability\": " << JsonString(cell.cell.durability) << ",\n";
    out << "      \"reps\": " << cell.reps
        << ", \"elapsed_median_s\": " << cell.elapsed_median_s << ",\n";
    out << "      \"throughput_median\": " << cell.throughput_median
        << ", \"throughput_min\": " << cell.throughput_min
        << ", \"throughput_max\": " << cell.throughput_max
        << ", \"started_median\": " << cell.started_median
        << ", \"p999_ms\": " << cell.p999_ms;
    if (cell.wire) {
      const WireCellStats& wire = cell.wire_stats;
      out << ",\n      \"wire\": {\"sent\": " << wire.sent << ", \"ok\": " << wire.ok
          << ", \"op_failed\": " << wire.op_failed << ", \"rejected\": " << wire.rejected
          << ", \"bad\": " << wire.bad << ", \"lost\": " << wire.lost << ",\n"
          << "        \"client_throughput\": " << wire.client_throughput
          << ", \"p50_ms\": " << wire.p50_ms << ", \"p99_ms\": " << wire.p99_ms
          << ", \"p999_ms\": " << wire.p999_ms << ", \"max_ms\": " << wire.max_ms << "}";
    }
    if (!cell.probes.empty()) {
      out << ",\n      \"probes\": [";
      for (size_t q = 0; q < cell.probes.size(); ++q) {
        const ProbeStats& probe = cell.probes[q];
        out << (q == 0 ? "" : ", ") << "{\"op\": " << JsonString(probe.op)
            << ", \"max_ms_median\": " << probe.max_ms_median
            << ", \"max_ms_min\": " << probe.max_ms_min
            << ", \"max_ms_max\": " << probe.max_ms_max << "}";
      }
      out << "]";
    }
    if (cell.has_stm) {
      out << ",\n      \"stm\": ";
      WriteStmBlock(out, cell.stm, "      ");
    }
    if (cell.traced) {
      out << ",\n      \"conflicts\": ";
      WriteConflictsBlock(out, cell.conflicts, "      ");
    }
    if (cell.telemetry) {
      const SteadyState& steady = cell.steady;
      out << ",\n      \"steady_state\": {\"samples\": " << steady.samples
          << ", \"detected\": " << (steady.detected ? "true" : "false")
          << ", \"steady_at_s\": " << steady.steady_at_s
          << ", \"tail_cv\": " << steady.tail_cv << ", \"warmup_s\": " << steady.warmup_s
          << ", \"warmup_covered\": " << (steady.warmup_covered ? "true" : "false") << "}";
    }
    if (cell.has_hw) {
      out << ",\n      \"hw\": {\"cycles\": " << cell.hw.cycles
          << ", \"instructions\": " << cell.hw.instructions
          << ", \"llc_misses\": " << cell.hw.llc_misses
          << ", \"stalled_cycles\": " << cell.hw.stalled_cycles << "}";
    }
    out << "\n    }";
  }
  out << "\n  ]\n";
  out << "}\n";
  out.flags(flags);
}

namespace {

// The column axis of the pivot table: backends when the sweep compares
// several, otherwise contention managers, otherwise mixes.
enum class ColumnAxis { kBackend, kCm, kMix };

ColumnAxis PickColumnAxis(const SweepSpec& spec) {
  if (spec.backends.size() > 1) {
    return ColumnAxis::kBackend;
  }
  if (spec.cms.size() > 1) {
    return ColumnAxis::kCm;
  }
  if (spec.mixes.size() > 1) {
    return ColumnAxis::kMix;
  }
  return ColumnAxis::kBackend;
}

const std::string& ColumnValue(const SweepCell& cell, ColumnAxis axis) {
  switch (axis) {
    case ColumnAxis::kCm:
      return cell.cm;
    case ColumnAxis::kMix:
      return cell.mix;
    case ColumnAxis::kBackend:
    default:
      return cell.backend;
  }
}

// Block header: the multi-valued axes that are neither the column axis nor
// the per-row thread axis. Single-valued axes are omitted — their value is
// in the JSON artifact and would only add noise here.
std::string BlockLabel(const SweepSpec& spec, const SweepCell& cell, ColumnAxis axis) {
  std::ostringstream out;
  auto add = [&out](const char* key, const std::string& value) {
    if (out.tellp() > 0) {
      out << "  ";
    }
    out << key << "=" << value;
  };
  if (spec.mixes.size() > 1 && axis != ColumnAxis::kMix) {
    add("mix", cell.mix);
  }
  if (spec.scales.size() > 1) {
    add("scale", cell.scale);
  }
  if (spec.scenarios.size() > 1) {
    add("scenario", cell.scenario);
  }
  if (spec.workloads.size() > 1) {
    add("workload", cell.workload);
  }
  if (spec.indexes.size() > 1) {
    add("index", cell.index);
  }
  if (spec.cms.size() > 1 && axis != ColumnAxis::kCm) {
    add("cm", cell.cm);
  }
  if (spec.serves.size() > 1) {
    add("serve", cell.serve);
  }
  if (spec.durabilities.size() > 1) {
    add("durability", cell.durability);
  }
  return out.str();
}

void PrintPivot(std::ostream& out, const SweepResult& result, const std::string& value_label,
                double (*value_of)(const CellResult&, size_t), size_t probe_index) {
  const SweepSpec& spec = result.spec;
  const ColumnAxis axis = PickColumnAxis(spec);
  const std::vector<std::string>& columns = axis == ColumnAxis::kBackend ? spec.backends
                                            : axis == ColumnAxis::kCm    ? spec.cms
                                                                         : spec.mixes;

  // (block, threads, column) -> value; blocks keep first-seen order.
  std::vector<std::string> block_order;
  std::map<std::string, std::map<int, std::map<std::string, double>>> table;
  for (const CellResult& cell : result.cells) {
    const std::string block = BlockLabel(spec, cell.cell, axis);
    if (table.find(block) == table.end()) {
      block_order.push_back(block);
    }
    table[block][cell.cell.threads][ColumnValue(cell.cell, axis)] =
        value_of(cell, probe_index);
  }

  out << "-- " << value_label << " --\n";
  for (const std::string& block : block_order) {
    if (!block.empty()) {
      out << "[" << block << "]\n";
    }
    out << std::left << std::setw(8) << "threads" << std::right;
    for (const std::string& column : columns) {
      out << " " << std::setw(12) << column;
    }
    out << "\n";
    for (const auto& [threads, row] : table[block]) {
      out << std::left << std::setw(8) << threads << std::right;
      for (const std::string& column : columns) {
        const auto it = row.find(column);
        out << " " << std::setw(12) << std::fixed << std::setprecision(1)
            << (it == row.end() ? 0.0 : it->second);
      }
      out << "\n";
    }
  }
}

double ThroughputOf(const CellResult& cell, size_t) { return cell.throughput_median; }

double ProbeLatencyOf(const CellResult& cell, size_t probe_index) {
  return probe_index < cell.probes.size() ? cell.probes[probe_index].max_ms_median : -1.0;
}

}  // namespace

void PrintSweepTable(std::ostream& out, const SweepResult& result) {
  const SweepSpec& spec = result.spec;
  out << "==================================================================\n";
  out << spec.title << "\n";
  out << "sweep=" << spec.name << "  metric=" << SweepMetricName(spec.metric)
      << "  cell=" << spec.seconds << "s x" << spec.reps << " (median"
      << (spec.reps > 1 ? ", spread in JSON" : "") << ")  warmup=" << spec.warmup << "s\n";
  out << "==================================================================\n";
  if (spec.metric == SweepMetric::kLatency) {
    for (size_t q = 0; q < spec.probes.size(); ++q) {
      PrintPivot(out, result, "max latency of " + spec.probes[q] + " [ms]", &ProbeLatencyOf,
                 q);
    }
  } else {
    PrintPivot(out, result, "throughput [op/s, median of " + std::to_string(spec.reps) + "]",
               &ThroughputOf, 0);
    // Latency probes ride along as extra tables even on throughput sweeps
    // (e.g. ablation-mvcc tracks T1 alongside op/s).
    for (size_t q = 0; q < spec.probes.size(); ++q) {
      PrintPivot(out, result, "max latency of " + spec.probes[q] + " [ms] (-1 = never ran)",
                 &ProbeLatencyOf, q);
    }
  }
}

}  // namespace sb7::perf
