/// \file
/// Minimal JSON document model and recursive-descent parser.
///
/// `sb7-bench --compare` must read back the `BENCH_*.json` artifacts it
/// writes; rather than growing a third-party dependency the perf subsystem
/// carries this ~200-line parser. It handles exactly the JSON subset the
/// report writers emit (objects, arrays, strings with the escape set of
/// `report.cc`, doubles, booleans, null) and rejects everything else with a
/// position-tagged error. It is not a general-purpose JSON library: numbers
/// are always doubles and object key order is not preserved.

#ifndef STMBENCH7_SRC_PERF_JSON_H_
#define STMBENCH7_SRC_PERF_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sb7::perf {

/// One parsed JSON value. The kind discriminates which accessor is valid;
/// the convenience getters below return a fallback instead of asserting so
/// schema probing ("is there a cell key here?") stays terse.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  explicit JsonValue(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Numeric value, or `fallback` when this is not a number.
  double AsNumber(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  /// String value; the empty string when this is not a string.
  const std::string& AsString() const { return string_; }
  bool AsBool(bool fallback = false) const { return kind_ == Kind::kBool ? bool_ : fallback; }

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& Items() const;
  /// Object members (empty for non-objects).
  const std::map<std::string, JsonValue>& Members() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Builders used by tests that assemble synthetic documents.
  static JsonValue MakeObject() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue MakeArray() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  std::map<std::string, JsonValue>& MutableMembers() { return members_; }
  std::vector<JsonValue>& MutableItems() { return items_; }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parse outcome: `value` is set iff `error` is empty. `error` carries a
/// byte offset and a short description ("offset 120: expected ':'").
struct JsonParseResult {
  JsonValue value;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Parses one JSON document; trailing non-whitespace is an error.
JsonParseResult ParseJson(const std::string& text);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_JSON_H_
