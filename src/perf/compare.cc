#include "src/perf/compare.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/perf/json.h"
#include "src/perf/report.h"

namespace sb7::perf {

BaselineLoadResult LoadBaseline(const std::string& json_text) {
  BaselineLoadResult result;
  const JsonParseResult parsed = ParseJson(json_text);
  if (!parsed.ok()) {
    result.error = "malformed JSON: " + parsed.error;
    return result;
  }
  const JsonValue& doc = parsed.value;
  if (!doc.is_object()) {
    result.error = "baseline is not a JSON object";
    return result;
  }
  // Accept every schema up to the current one: PR-era baselines written
  // under schema 1 keep gating newer builds (added keys are optional).
  const JsonValue* schema = doc.Find("schema");
  const int schema_version = schema == nullptr ? -1 : static_cast<int>(schema->AsNumber(-1));
  if (schema_version < 1 || schema_version > kBenchSchemaVersion) {
    result.error = "unsupported BENCH schema (expected 1.." +
                   std::to_string(kBenchSchemaVersion) + ")";
    return result;
  }
  const JsonValue* sweep = doc.Find("sweep");
  const JsonValue* metric = doc.Find("metric");
  const JsonValue* cells = doc.Find("cells");
  if (sweep == nullptr || metric == nullptr || cells == nullptr || !cells->is_array()) {
    result.error = "baseline is missing sweep/metric/cells";
    return result;
  }
  result.baseline.sweep = sweep->AsString();
  result.baseline.metric = metric->AsString();
  if (const JsonValue* config = doc.Find("config")) {
    if (const JsonValue* threshold = config->Find("threshold")) {
      result.baseline.threshold = threshold->AsNumber(0.15);
    }
  }
  for (const JsonValue& cell : cells->Items()) {
    const JsonValue* key = cell.Find("key");
    const JsonValue* throughput = cell.Find("throughput_median");
    if (key == nullptr || !key->is_string() || throughput == nullptr) {
      result.error = "baseline cell is missing key/throughput_median";
      return result;
    }
    BaselineCell& out = result.baseline.cells[key->AsString()];
    out.throughput_median = throughput->AsNumber();
    if (const JsonValue* probes = cell.Find("probes")) {
      for (const JsonValue& probe : probes->Items()) {
        const JsonValue* op = probe.Find("op");
        const JsonValue* median = probe.Find("max_ms_median");
        if (op != nullptr && median != nullptr) {
          out.probe_max_ms[op->AsString()] = median->AsNumber();
        }
      }
    }
    if (const JsonValue* conflicts = cell.Find("conflicts")) {
      if (const JsonValue* total = conflicts->Find("total_aborts")) {
        out.conflict_total_aborts = total->AsNumber(-1);
      }
      if (const JsonValue* attributed = conflicts->Find("attributed_aborts")) {
        out.conflict_attributed_aborts = attributed->AsNumber(-1);
      }
    }
  }
  return result;
}

BaselineLoadResult LoadBaselineFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    BaselineLoadResult result;
    result.error = "cannot read " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadBaseline(buffer.str());
}

Baseline BaselineFromResult(const SweepResult& result) {
  Baseline baseline;
  baseline.sweep = result.spec.name;
  baseline.metric = std::string(SweepMetricName(result.spec.metric));
  baseline.threshold = result.spec.threshold;
  for (const CellResult& cell : result.cells) {
    BaselineCell& out = baseline.cells[CellKey(cell.cell)];
    out.throughput_median = cell.throughput_median;
    for (const ProbeStats& probe : cell.probes) {
      out.probe_max_ms[probe.op] = probe.max_ms_median;
    }
    if (cell.traced) {
      out.conflict_total_aborts = static_cast<double>(cell.conflicts.total_aborts);
      out.conflict_attributed_aborts =
          static_cast<double>(cell.conflicts.attributed_aborts);
    }
  }
  return baseline;
}

CompareReport CompareSweeps(const Baseline& baseline, const Baseline& current,
                            double threshold) {
  CompareReport report;
  report.threshold = threshold > 0 ? threshold : baseline.threshold;

  if (baseline.metric != current.metric) {
    report.notes.push_back("metric mismatch: baseline=" + baseline.metric +
                           " current=" + current.metric + "; nothing compared");
    return report;
  }
  if (baseline.sweep != current.sweep) {
    report.notes.push_back("sweep name differs: baseline=" + baseline.sweep +
                           " current=" + current.sweep);
  }
  const bool latency = baseline.metric == "latency";

  for (const auto& [key, base_cell] : baseline.cells) {
    const auto it = current.cells.find(key);
    if (it == current.cells.end()) {
      report.notes.push_back("cell missing from current run: " + key);
      continue;
    }
    const BaselineCell& cur_cell = it->second;
    if (latency) {
      for (const auto& [op, base_ms] : base_cell.probe_max_ms) {
        const auto probe_it = cur_cell.probe_max_ms.find(op);
        if (probe_it == cur_cell.probe_max_ms.end()) {
          report.notes.push_back("probe " + op + " missing from current cell: " + key);
          continue;
        }
        const double cur_ms = probe_it->second;
        if (base_ms <= 0 || cur_ms <= 0) {
          // -1 means "the probe never completed in that run"; with no valid
          // pair of samples there is nothing to gate on.
          report.notes.push_back("probe " + op + " has no sample on one side: " + key);
          continue;
        }
        CompareRow row;
        row.key = key + " probe=" + op;
        row.baseline = base_ms;
        row.current = cur_ms;
        row.delta_fraction = -(cur_ms - base_ms) / base_ms;  // higher latency = worse
        row.regressed = cur_ms > base_ms * (1.0 + report.threshold);
        report.regressions += row.regressed ? 1 : 0;
        report.rows.push_back(row);
      }
    } else {
      if (base_cell.throughput_median <= 0) {
        report.notes.push_back("baseline throughput is zero, skipped: " + key);
        continue;
      }
      CompareRow row;
      row.key = key;
      row.baseline = base_cell.throughput_median;
      row.current = cur_cell.throughput_median;
      row.delta_fraction = (row.current - row.baseline) / row.baseline;
      row.regressed = row.current < row.baseline * (1.0 - report.threshold);
      report.regressions += row.regressed ? 1 : 0;
      report.rows.push_back(row);
      // Abort-attribution context rides along when both artifacts carry it
      // (schema-2, --trace-cells runs); informational only, never a gate.
      if (base_cell.conflict_total_aborts >= 0 && cur_cell.conflict_total_aborts >= 0) {
        std::ostringstream note;
        note << "aborts " << key << ": "
             << static_cast<int64_t>(base_cell.conflict_total_aborts) << " ("
             << static_cast<int64_t>(base_cell.conflict_attributed_aborts)
             << " attributed) -> " << static_cast<int64_t>(cur_cell.conflict_total_aborts)
             << " (" << static_cast<int64_t>(cur_cell.conflict_attributed_aborts)
             << " attributed)";
        report.notes.push_back(note.str());
      }
    }
  }
  for (const auto& [key, cell] : current.cells) {
    (void)cell;
    if (baseline.cells.find(key) == baseline.cells.end()) {
      report.notes.push_back("new cell, no baseline: " + key);
    }
  }
  return report;
}

void PrintCompareReport(std::ostream& out, const CompareReport& report) {
  out << "== Comparison (noise threshold " << std::fixed << std::setprecision(0)
      << report.threshold * 100 << "%) ==\n";
  for (const CompareRow& row : report.rows) {
    out << (row.regressed ? "REGRESSION " : "    ok     ") << std::fixed
        << std::setprecision(1) << std::setw(10) << row.baseline << " -> " << std::setw(10)
        << row.current << "  (" << std::showpos << std::setprecision(1)
        << row.delta_fraction * 100 << "%" << std::noshowpos << ")  " << row.key << "\n";
  }
  for (const std::string& note : report.notes) {
    out << "    note    " << note << "\n";
  }
  if (report.ok()) {
    out << "PASS: " << report.rows.size() << " cells within threshold\n";
  } else {
    out << "REGRESSIONS: " << report.regressions << " of " << report.rows.size()
        << " compared cells regressed\n";
  }
}

}  // namespace sb7::perf
