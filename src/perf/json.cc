#include "src/perf/json.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace sb7::perf {

const std::vector<JsonValue>& JsonValue::Items() const {
  static const std::vector<JsonValue> empty;
  return kind_ == Kind::kArray ? items_ : empty;
}

const std::map<std::string, JsonValue>& JsonValue::Members() const {
  static const std::map<std::string, JsonValue> empty;
  return kind_ == Kind::kObject ? members_ : empty;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult Parse() {
    JsonParseResult result;
    result.value = ParseValue();
    if (error_.empty()) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        Fail("trailing content after document");
      }
    }
    result.error = error_;
    return result;
  }

 private:
  void Fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << "offset " << pos_ << ": " << message;
      error_ = out.str();
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t length = std::string(literal).size();
    if (text_.compare(pos_, length, literal) == 0) {
      pos_ += length;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of document");
      return JsonValue();
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue(ParseString());
      case 't':
        if (ConsumeLiteral("true")) {
          return JsonValue(true);
        }
        Fail("invalid literal");
        return JsonValue();
      case 'f':
        if (ConsumeLiteral("false")) {
          return JsonValue(false);
        }
        Fail("invalid literal");
        return JsonValue();
      case 'n':
        if (ConsumeLiteral("null")) {
          return JsonValue();
        }
        Fail("invalid literal");
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue object = JsonValue::MakeObject();
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return object;
    }
    while (error_.empty()) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key string");
        break;
      }
      const std::string key = ParseString();
      if (!error_.empty()) {
        break;
      }
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        break;
      }
      object.MutableMembers()[key] = ParseValue();
      if (!error_.empty()) {
        break;
      }
      if (Consume(',')) {
        continue;
      }
      if (!Consume('}')) {
        Fail("expected ',' or '}' in object");
      }
      break;
    }
    return object;
  }

  JsonValue ParseArray() {
    JsonValue array = JsonValue::MakeArray();
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return array;
    }
    while (error_.empty()) {
      array.MutableItems().push_back(ParseValue());
      if (!error_.empty()) {
        break;
      }
      if (Consume(',')) {
        continue;
      }
      if (!Consume(']')) {
        Fail("expected ',' or ']' in array");
      }
      break;
    }
    return array;
  }

  std::string ParseString() {
    std::string out;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // The report writers only emit \u00XX for control characters;
          // decode the low byte and reject anything beyond Latin-1.
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return out;
          }
          const std::string hex = text_.substr(pos_, 4);
          // Validate digit-by-digit: strtol would accept leading
          // whitespace/signs that are not legal JSON.
          long code = 0;
          bool valid = true;
          for (const char h : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              valid = false;
              break;
            }
            code = code * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                    ? h - '0'
                                    : std::tolower(h) - 'a' + 10);
          }
          if (!valid || code > 0xFF) {
            Fail("unsupported \\u escape: " + hex);
            return out;
          }
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default:
          Fail(std::string("unknown escape: \\") + escape);
          return out;
      }
    }
    Fail("unterminated string");
    return out;
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
      return JsonValue();
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("malformed number: " + token);
      return JsonValue();
    }
    return JsonValue(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace sb7::perf
