/// \file
/// Sweep result serialization: the versioned `BENCH_<sweep>.json` artifact
/// (schema pinned by tests/perf_test.cc, following the CSV `schema=3`
/// discipline of the harness reports) and the human-readable comparison
/// table printed after every run.
///
/// BENCH schema 2, top-level keys:
///   schema   integer, currently 2
///   tool     "sb7-bench"
///   sweep    the sweep name
///   metric   "throughput" | "latency"
///   config   {seconds, warmup, reps, seed, threshold}
///   axes     {backends, threads, workloads, scenarios, scales, indexes,
///             cms, mixes} — each the axis value list, in execution order
///   cells    one object per cell:
///            {key, backend, threads, workload, scenario, scale, index, cm,
///             mix, reps, elapsed_median_s, throughput_median,
///             throughput_min, throughput_max, started_median}
///            plus "probes" (array of {op, max_ms_median, max_ms_min,
///            max_ms_max}) when probes are configured and "stm" (the
///            median repetition's counter deltas) for STM backends.
/// Schema 2 adds the "abort_causes" sub-object to every "stm" block and,
/// for sweeps run with --trace-cells, a per-cell "conflicts" block:
///            {total_aborts, attributed_aborts, dropped_events,
///             top_locations: [{key, aborts}],
///             top_pairs: [{victim, writer, aborts}]}
/// Schema 3 adds "cv_threshold" to the config block and, for sweeps run
/// with live telemetry (the default), a per-cell "steady_state" block —
/// the CV-window detector's verdict over the median repetition's
/// throughput series:
///            {samples, detected, steady_at_s, tail_cv, warmup_s,
///             warmup_covered}
/// and, when perf_event counters opened, a per-cell "hw" block (deltas
/// summed over the median repetition's measure phases):
///            {cycles, instructions, llc_misses, stalled_cycles}
/// Schema 4 adds the serve axis ("serves" in the axes block, "serve" and
/// "p999_ms" — the median repetition's server-side all-ops latency p999,
/// -1 when nothing completed — in every cell) and, for serve="wire" cells,
/// a "wire" block with the loopback load client's view:
///            {sent, ok, op_failed, rejected, bad, lost,
///             client_throughput, p50_ms, p99_ms, p999_ms, max_ms}
/// Schema 5 adds the durability axis ("durabilities" in the axes block and
/// "durability" in every cell — the redo-log fsync policy of
/// docs/DURABILITY.md; "off" cells run without a redo log and their keys
/// stay byte-identical to pre-durability baselines).
/// Readers accept any schema in [1, current] (--compare treats the added
/// keys as optional). Changing any of this is a schema bump and must
/// update the golden test.

#ifndef STMBENCH7_SRC_PERF_REPORT_H_
#define STMBENCH7_SRC_PERF_REPORT_H_

#include <iosfwd>

#include "src/perf/runner.h"

namespace sb7::perf {

/// The BENCH_*.json schema version this build writes and reads.
constexpr int kBenchSchemaVersion = 5;

/// Writes the machine-readable sweep artifact described above.
void WriteSweepJson(std::ostream& out, const SweepResult& result);

/// Prints the human-readable comparison table: one pivot block per
/// combination of the row axes, with the column axis (backends when the
/// sweep has several; otherwise contention managers, then mixes) side by
/// side and thread counts down the rows. Latency sweeps print one table per
/// probe operation.
void PrintSweepTable(std::ostream& out, const SweepResult& result);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_REPORT_H_
