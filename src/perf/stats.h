/// \file
/// Small numeric helpers for the benchmark orchestrator: median-of-N and
/// min/max spread over repetition samples, plus the environment defaults
/// (`SB7_BENCH_*`) that the legacy `bench/bench_util.h` binaries honoured.
/// Every sweep cell runs N repetitions; the report always carries the median
/// together with the spread so a noisy host is visible in the artifact
/// instead of silently polluting the trajectory.

#ifndef STMBENCH7_SRC_PERF_STATS_H_
#define STMBENCH7_SRC_PERF_STATS_H_

#include <string>
#include <vector>

namespace sb7::perf {

/// Median of `samples` (mean of the middle pair for even sizes).
/// Returns 0 for an empty vector. Equals `QuantileOf(samples, 0.5)`.
double Median(std::vector<double> samples);

/// Quantile `q` in [0,1] of `samples`, linearly interpolated between order
/// statistics (the "R-7" convention: rank = q * (n - 1)). This is the same
/// interpolation convention as TtcHistogram::QuantileMillis, so harness
/// percentiles and bench aggregates agree on what a "p50" means.
/// Returns 0 for an empty vector.
double QuantileOf(std::vector<double> samples, double q);

/// Smallest sample, or 0 for an empty vector.
double MinOf(const std::vector<double>& samples);

/// Largest sample, or 0 for an empty vector.
double MaxOf(const std::vector<double>& samples);

/// Index of the sample closest to the median (ties break low). The sweep
/// runner uses it to pick the "median repetition" whose STM counters are
/// reported for the cell. Returns 0 for an empty vector.
size_t MedianIndex(const std::vector<double>& samples);

/// Environment defaults shared by `sb7-bench` runs, folded in from the
/// deleted `bench/bench_util.h`:
///   SB7_BENCH_SECONDS  per-cell measure window in seconds
///   SB7_BENCH_SCALE    tiny | small | medium
///   SB7_BENCH_THREADS  space- or comma-separated thread axis override
/// Unset variables leave the corresponding field empty/zero; precedence is
/// spec < environment < command-line flag.
struct BenchEnv {
  double seconds = 0.0;            ///< 0 = not set
  std::string scale;               ///< empty = not set
  std::vector<int> threads;        ///< empty = not set
};

/// Reads the `SB7_BENCH_*` environment knobs (invalid values are ignored).
BenchEnv ReadBenchEnv();

/// Steady-state verdict over a throughput time series (the live telemetry
/// samples of one repetition). The run is declared steady at the first
/// sample where the trailing `window` samples have a coefficient of
/// variation (stddev / mean) at or below `cv_threshold`.
struct SteadyState {
  int samples = 0;          ///< series length the detector saw
  bool detected = false;    ///< a qualifying window was found
  double steady_at_s = 0.0; ///< run time of the first steady sample (start of window)
  double tail_cv = 0.0;     ///< CV of the final window (noise floor indicator)
  double warmup_s = 0.0;    ///< configured warmup the cell discarded
  /// True when the configured warmup covers the detected settling point —
  /// i.e. the measured window was genuinely steady. False flags cells whose
  /// reported throughput still contains warmup transient.
  bool warmup_covered = false;
};

/// Runs the CV-window detector over `(t_s, ops_per_s)` pairs. `warmup_s` is
/// the warmup the sweep discarded before its measured window (used only for
/// the `warmup_covered` verdict). Series shorter than `window` never detect.
SteadyState DetectSteadyState(const std::vector<double>& t_s,
                              const std::vector<double>& ops_per_s,
                              double cv_threshold, double warmup_s, int window = 5);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_STATS_H_
