/// \file
/// Small numeric helpers for the benchmark orchestrator: median-of-N and
/// min/max spread over repetition samples, plus the environment defaults
/// (`SB7_BENCH_*`) that the legacy `bench/bench_util.h` binaries honoured.
/// Every sweep cell runs N repetitions; the report always carries the median
/// together with the spread so a noisy host is visible in the artifact
/// instead of silently polluting the trajectory.

#ifndef STMBENCH7_SRC_PERF_STATS_H_
#define STMBENCH7_SRC_PERF_STATS_H_

#include <string>
#include <vector>

namespace sb7::perf {

/// Median of `samples` (mean of the middle pair for even sizes).
/// Returns 0 for an empty vector.
double Median(std::vector<double> samples);

/// Smallest sample, or 0 for an empty vector.
double MinOf(const std::vector<double>& samples);

/// Largest sample, or 0 for an empty vector.
double MaxOf(const std::vector<double>& samples);

/// Index of the sample closest to the median (ties break low). The sweep
/// runner uses it to pick the "median repetition" whose STM counters are
/// reported for the cell. Returns 0 for an empty vector.
size_t MedianIndex(const std::vector<double>& samples);

/// Environment defaults shared by `sb7-bench` runs, folded in from the
/// deleted `bench/bench_util.h`:
///   SB7_BENCH_SECONDS  per-cell measure window in seconds
///   SB7_BENCH_SCALE    tiny | small | medium
///   SB7_BENCH_THREADS  space- or comma-separated thread axis override
/// Unset variables leave the corresponding field empty/zero; precedence is
/// spec < environment < command-line flag.
struct BenchEnv {
  double seconds = 0.0;            ///< 0 = not set
  std::string scale;               ///< empty = not set
  std::vector<int> threads;        ///< empty = not set
};

/// Reads the `SB7_BENCH_*` environment knobs (invalid values are ignored).
BenchEnv ReadBenchEnv();

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_STATS_H_
