/// \file
/// Sweep execution: expands a SweepSpec into cells, runs every cell through
/// the phase-aware BenchmarkRunner, and aggregates per-cell statistics.
///
/// Each cell repetition is executed as a *scenario*: an optional warmup
/// phase (excluded from all statistics) followed by the measure body — a
/// single closed-loop phase for plain cells, or the cell's built-in
/// scenario's phase list. Reusing the scenario engine this way gives the
/// orchestrator warmup windows, phased cells and per-phase accounting
/// without a second execution path. After the last repetition of every cell
/// the structural invariant checker runs: a sweep over a broken backend must
/// fail loudly, not publish garbage numbers.

#ifndef STMBENCH7_SRC_PERF_RUNNER_H_
#define STMBENCH7_SRC_PERF_RUNNER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/perf/stats.h"
#include "src/perf/sweep.h"
#include "src/stm/stm.h"
#include "src/telemetry/series.h"
#include "src/trace/conflict.h"

namespace sb7::perf {

/// One resolved point of the sweep's cartesian product.
struct SweepCell {
  std::string backend;
  int threads = 1;
  std::string workload;  ///< "r" | "rw" | "w"
  std::string scenario;  ///< built-in scenario name, or empty for plain cells
  std::string scale;
  std::string index;     ///< "default" or an index kind name
  std::string cm;        ///< "default" or a contention manager name
  std::string mix;       ///< mix preset name
  /// "inproc" (workers sample operations locally) or "wire" (operations
  /// arrive over loopback TCP via sb7-serve's OpServer + ingress queue).
  std::string serve = "inproc";
  /// Redo-log fsync policy: "off" (no redo log), "group" or "always"
  /// (mvstm cells run with a scratch redo log and a group-commit sequencer).
  std::string durability = "off";
};

/// Canonical identity of a cell, used to match cells across runs in
/// `--compare`. Fixed key order; empty scenario prints as "-":
///   backend=tl2 threads=4 workload=r scenario=- scale=small index=default
///   cm=default mix=short
/// Wire cells append " serve=wire"; the default inproc mode adds nothing,
/// so pre-serve-axis baselines keep matching their cells. Durability cells
/// likewise append " durability=group|always" only for non-"off" values.
std::string CellKey(const SweepCell& cell);

/// Median/min/max of one latency probe across repetitions. A value of -1
/// means the operation never completed in any repetition.
struct ProbeStats {
  std::string op;
  double max_ms_median = -1.0;
  double max_ms_min = -1.0;
  double max_ms_max = -1.0;
};

/// The "who kills whom" pair with op names resolved against the registry,
/// so the BENCH artifact is readable without re-deriving slot indices.
struct NamedConflictPair {
  std::string victim;
  std::string writer;
  int64_t aborts = 0;
};

/// Per-cell abort attribution (the median repetition's whole-run window,
/// warmup included), collected only under --trace-cells.
struct CellConflicts {
  int64_t total_aborts = 0;
  int64_t attributed_aborts = 0;
  int64_t dropped_events = 0;
  std::vector<trace::ConflictHotLocation> top_locations;
  std::vector<NamedConflictPair> top_pairs;
};

/// Client-side view of a wire cell: the loopback load client's counters and
/// end-to-end (send→response) latency percentiles for the whole run. The
/// server-side numbers in the enclosing CellResult stay the comparable
/// quantities; the gap between p999_ms and this p999 is wire + queueing.
struct WireCellStats {
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t op_failed = 0;
  int64_t rejected = 0;
  int64_t bad = 0;
  int64_t lost = 0;
  double client_throughput = 0.0;  ///< (ok + op_failed) / client elapsed
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  double p999_ms = -1.0;
  double max_ms = -1.0;
};

/// Aggregated result of one cell: median-of-N throughput with min/max
/// spread, probe latencies, and the STM counter deltas of the median
/// repetition (summed over the measure phases; zeros for lock strategies).
struct CellResult {
  SweepCell cell;
  int reps = 0;
  double elapsed_median_s = 0.0;
  double throughput_median = 0.0;
  double throughput_min = 0.0;
  double throughput_max = 0.0;
  double started_median = 0.0;
  /// p999 of the median repetition's server-side operation latency (all
  /// ops merged over the measure phases); -1 when nothing completed.
  /// Present for every cell, so inproc vs wire tails compare directly.
  double p999_ms = -1.0;
  /// Set for serve="wire" cells; the JSON then carries a "wire" block.
  bool wire = false;
  WireCellStats wire_stats;
  std::vector<ProbeStats> probes;
  bool has_stm = false;
  StmStats::View stm = {};
  /// Set when the sweep ran with trace_cells; the JSON then carries a
  /// "conflicts" block for the cell.
  bool traced = false;
  CellConflicts conflicts;
  /// Set when the cells ran with live telemetry; the JSON then carries a
  /// "steady_state" block — the CV-window detector's verdict over the median
  /// repetition's throughput series (warmup-truncation quality).
  bool telemetry = false;
  SteadyState steady;
  /// Hardware-counter delta summed over the median repetition's measure
  /// phases (telemetry runs where perf_event opened only).
  bool has_hw = false;
  telemetry::HwSample hw;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<CellResult> cells;
};

struct SweepRunOptions {
  /// Progress log (one line per cell); null = silent.
  std::ostream* log = nullptr;
  /// Install the tracer for every cell repetition and record per-cell
  /// conflict summaries (sb7-bench --trace-cells). Off by default: tracing
  /// costs a few percent and the sweep artifact is a perf trajectory.
  bool trace_cells = false;
  /// Run every cell with live telemetry (in-memory series, no endpoint, no
  /// JSONL): feeds the steady-state detector and the hw-counter blocks of
  /// the BENCH artifact. On by default; `sb7-bench --no-telemetry` turns it
  /// off for overhead A/B runs.
  bool telemetry = true;
};

struct SweepRunOutcome {
  SweepResult result;
  std::string error;  ///< set on invariant violations or spec errors

  bool ok() const { return error.empty(); }
};

/// Expands the spec's axes into the cell list, in execution order. Exposed
/// separately so tests and `--compare` can enumerate expected cells without
/// running anything.
std::vector<SweepCell> ExpandCells(const SweepSpec& spec);

/// Runs the whole sweep. The spec must already be validated (Validate()).
SweepRunOutcome RunSweep(const SweepSpec& spec, const SweepRunOptions& options);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_RUNNER_H_
