/// \file
/// Declarative benchmark sweep specifications.
///
/// A sweep is the cartesian product of up to nine axes — backend ×
/// threads × workload/scenario preset × structure scale (plus the secondary
/// index / contention-manager / operation-mix / serve axes) — with per-cell
/// warmup/measure windows and a repetition count. The `sb7-bench` driver
/// expands a spec into cells, runs each one through the phase-aware
/// `BenchmarkRunner` (reusing the scenario engine: every cell is a scenario
/// of a warmup phase plus one or more measure phases), and emits a
/// `BENCH_<sweep>.json` artifact with median-of-N statistics.
///
/// Specs come from built-ins reproducing the paper's figures/tables
/// (fig3, fig4, fig6, table3, the ablations, scenario-sweep, smoke) or from
/// `key=value` spec files in the same idiom as scenario specs — see
/// ParseSweepSpec for the format. The files under `bench/specs/` mirror the
/// built-ins one-to-one (pinned by tests/perf_test.cc).

#ifndef STMBENCH7_SRC_PERF_SWEEP_H_
#define STMBENCH7_SRC_PERF_SWEEP_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace sb7::perf {

/// The statistic a sweep optimizes for. It selects the headline number of
/// the human-readable table and the quantity `--compare` gates on:
/// throughput regresses downward, probe latency regresses upward.
enum class SweepMetric { kThroughput, kLatency };

std::string_view SweepMetricName(SweepMetric metric);

/// A named operation-mix preset, the "which operations run" axis:
///   full        everything enabled (long traversals included)
///   short       long traversals disabled (the Figure 4 configuration)
///   short-only  the paper's Figure 6 subset (no large read sets, no manual
///               or large-index writers)
///   pinpoint    path/index operations only — fine-grained locking's best
///               case (ablation-locks)
///   index-heavy the index-centric subset of ablation-index
struct MixPreset {
  std::string name;
  bool long_traversals = true;
  std::set<std::string> disabled_ops;
};

/// Resolves a mix preset by name; nullopt for unknown names.
std::optional<MixPreset> FindMixPreset(std::string_view name);
/// Comma-separated preset names, for error messages.
std::string MixPresetList();

/// One declarative sweep. Empty axis vectors mean "single default value";
/// Validate() fills the defaults in and rejects inconsistent specs.
struct SweepSpec {
  std::string name;
  /// Header of the human-readable comparison table.
  std::string title;
  SweepMetric metric = SweepMetric::kThroughput;

  // --- axes (cartesian product) ---
  std::vector<std::string> backends;   ///< strategy names; required
  std::vector<int> threads;            ///< default {1}
  std::vector<std::string> workloads;  ///< "r" | "rw" | "w"; default {"r"}
  std::vector<std::string> scenarios;  ///< built-in scenario names; empty = plain cells
  std::vector<std::string> scales;     ///< tiny | small | medium; default {"small"}
  std::vector<std::string> indexes;    ///< "default" | stdmap | snapshot | skiplist
  std::vector<std::string> cms;        ///< "default" | contention manager names
  std::vector<std::string> mixes;      ///< mix preset names; default {"full"}
  /// "inproc" (workers generate operations in-process, the classic path) or
  /// "wire" (operations arrive over loopback TCP through sb7-serve's
  /// OpServer + ingress queue, driven by the closed-loop load client).
  /// Default {"inproc"}.
  std::vector<std::string> serves;
  /// Redo-log fsync policy (docs/DURABILITY.md): "off" (no redo log at all —
  /// the classic cell, comparable against pre-durability baselines), "group"
  /// (log + one fsync per commit group) or "always" (log + groups of one,
  /// one fsync per commit). Non-"off" values require mvstm-only backends.
  /// Default {"off"}.
  std::vector<std::string> durabilities;

  /// Operations whose per-cell max latency is recorded (required when
  /// metric == kLatency, e.g. fig3 probes T1 and T2b).
  std::vector<std::string> probes;

  // --- per-cell execution window ---
  double seconds = 1.0;  ///< measure window per body phase, in seconds
  double warmup = 0.2;   ///< warmup window per cell (0 = none), in seconds
  int reps = 3;          ///< repetitions; the report carries median + spread
  uint64_t seed = 20070326;  ///< base RNG seed; repetition r uses seed + r
  /// Relative noise threshold for `--compare` (overridable on the CLI).
  double threshold = 0.15;
  /// Coefficient-of-variation threshold for the steady-state detector that
  /// runs over each cell's live telemetry series (in (0,1]).
  double cv_threshold = 0.10;
  /// Optional started-operation cap applied to every phase of every cell
  /// (a capped phase ends as soon as it fills — determinism in tests).
  int64_t max_ops = -1;

  /// Fills axis defaults and validates names/ranges. Returns an error
  /// message, or the empty string when the spec is runnable.
  std::string Validate();
};

/// Built-in sweep names, in presentation order.
const std::vector<std::string>& BuiltinSweepNames();
/// Comma-separated BuiltinSweepNames(), for error messages.
std::string BuiltinSweepList();
/// Resolves a built-in sweep (already validated); nullopt for unknown names.
std::optional<SweepSpec> FindBuiltinSweep(std::string_view name);
/// One-line description of a built-in, for `sb7-bench --list`.
std::string BuiltinSweepDescription(std::string_view name);

struct SweepParseResult {
  std::optional<SweepSpec> spec;
  std::string error;  ///< set iff spec is empty
};

/// Parses the spec-file format: one `key=value` per line, `#` comments and
/// blank lines ignored, list values comma-separated. Keys:
///   name=<id>                 sweep name (default: `default_name`)
///   title=<text>              table header
///   metric=throughput|latency
///   backends=coarse,tl2,...   axis: synchronization strategies (required)
///   threads=1,2,4,8           axis: worker thread counts
///   workloads=r,rw,w          axis: workload presets
///   scenarios=write-storm,... axis: built-in scenarios (phased cells)
///   scales=tiny,small,medium  axis: structure sizes
///   indexes=default,skiplist  axis: index implementations
///   cms=default,polka,...     axis: astm contention managers
///   mixes=full,short,...      axis: operation-mix presets (see MixPreset)
///   serves=inproc,wire        axis: in-process vs over-the-wire execution
///   durabilities=off,group,always  axis: redo-log fsync policy (mvstm only)
///   probes=T1,T2b             latency probe operations
///   seconds=<f> warmup=<f> reps=<n> seed=<n> threshold=<f> max_ops=<n>
///   cv_threshold=<f>          steady-state CV threshold in (0,1]
/// The parsed spec is validated before being returned.
SweepParseResult ParseSweepSpec(std::istream& in, std::string_view default_name);

/// Resolves `--sweep <name|file>`: built-in names first, then a spec-file
/// path. Unknown names produce an error listing the valid built-ins.
SweepParseResult LoadSweep(const std::string& name_or_path);

}  // namespace sb7::perf

#endif  // STMBENCH7_SRC_PERF_SWEEP_H_
