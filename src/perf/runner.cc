#include "src/perf/runner.h"

#include <unistd.h>

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "src/core/invariants.h"
#include "src/harness/driver.h"
#include "src/harness/workload.h"
#include "src/net/client.h"
#include "src/net/ingress.h"
#include "src/net/server.h"
#include "src/perf/stats.h"

namespace sb7::perf {
namespace {

// Per-repetition measurements, taken over the body (non-warmup) phases.
struct RepSample {
  double elapsed_seconds = 0.0;
  int64_t success = 0;
  int64_t started = 0;
  std::vector<double> probe_max_ms;  // parallel to spec.probes; -1 = never completed
  double p999_ms = -1.0;  // server-side op latency, all ops merged
  bool wire = false;
  WireCellStats wire_stats;
  bool has_stm = false;
  StmStats::View stm = {};
  CellConflicts conflicts;
  // Live telemetry series of the repetition (whole run, warmup included)
  // and the hw delta summed over the measure phases. Empty / unavailable
  // when the sweep ran with telemetry off.
  std::vector<telemetry::Sample> series;
  telemetry::HwSample hw;

  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(success) / elapsed_seconds : 0.0;
  }
  double StartedRate() const {
    return elapsed_seconds > 0 ? static_cast<double>(started) / elapsed_seconds : 0.0;
  }
};

// Builds the cell's scenario: [warmup phase] + measure body. The body is one
// closed-loop phase for plain cells, or the built-in scenario's phases.
// Duration weights are set to absolute seconds (warmup seconds for the
// warmup phase; each body phase's share of seconds-per-phase × body count),
// so the total run length is simply the weight sum.
Scenario BuildCellScenario(const SweepSpec& spec, const SweepCell& cell,
                           double& total_seconds) {
  Scenario scenario;
  std::vector<PhaseSpec> body;
  if (cell.scenario.empty()) {
    PhaseSpec measure;
    measure.name = "measure";
    body.push_back(measure);
    scenario.name = "cell";
  } else {
    const std::optional<Scenario> builtin = FindBuiltinScenario(cell.scenario);
    body = builtin->phases;
    scenario.name = cell.scenario;
  }

  const double body_seconds = spec.seconds * static_cast<double>(body.size());
  double body_weight = 0.0;
  for (const PhaseSpec& phase : body) {
    body_weight += phase.duration_weight;
  }
  for (PhaseSpec& phase : body) {
    phase.duration_weight = phase.duration_weight / body_weight * body_seconds;
  }

  if (spec.warmup > 0) {
    PhaseSpec warmup;
    warmup.name = "warmup";
    warmup.duration_weight = spec.warmup;
    scenario.phases.push_back(warmup);
  }
  scenario.phases.insert(scenario.phases.end(), body.begin(), body.end());
  // The op cap is per phase (the scenario engine flips a capped phase when
  // it fills): a run-level budget would be spent inside the warmup phase and
  // leave the measure phases empty.
  if (spec.max_ops > 0) {
    for (PhaseSpec& phase : scenario.phases) {
      phase.max_ops = spec.max_ops;
    }
  }
  total_seconds = spec.warmup + body_seconds;
  return scenario;
}

BenchConfig BuildCellConfig(const SweepSpec& spec, const SweepCell& cell, int rep) {
  BenchConfig config;
  config.strategy = cell.backend;
  if (cell.cm != "default") {
    config.contention_manager = cell.cm;
  }
  config.scale = cell.scale;
  if (cell.index != "default") {
    config.index_kind = IndexKindForName(cell.index);
  }
  config.workload = WorkloadTypeForName(cell.workload);
  config.threads = cell.threads;

  const std::optional<MixPreset> mix = FindMixPreset(cell.mix);
  config.long_traversals = mix->long_traversals;
  config.disabled_ops = mix->disabled_ops;

  double total_seconds = 0.0;
  config.scenario = BuildCellScenario(spec, cell, total_seconds);
  config.length_seconds = total_seconds;
  // Each repetition reseeds structure build and operation streams together,
  // so rep r is reproducible in isolation via --seed (spec.seed + r).
  config.seed = spec.seed + static_cast<uint64_t>(rep);

  // Durability cells run with a scratch redo log (group-commit sequencer
  // attached); "off" cells run the classic no-log path so they stay
  // comparable against pre-durability baselines. The caller unlinks the
  // scratch file after the repetition.
  if (cell.durability != "off") {
    config.redo_log_path = "/tmp/sb7_bench_" + std::to_string(::getpid()) + "_" +
                           cell.durability + "_rep" + std::to_string(rep) + ".redo";
    config.durability = cell.durability;
  }
  return config;
}

// Aggregates one finished repetition over its body phases. The warmup phase
// (when present) is phases[0] and is excluded.
RepSample CollectRep(const SweepSpec& spec, const BenchmarkRunner& runner,
                     const BenchResult& result) {
  RepSample sample;
  const size_t body_begin = spec.warmup > 0 ? 1 : 0;
  std::vector<int> probe_indices;
  for (const std::string& probe : spec.probes) {
    int index = -1;
    const auto& ops = runner.registry().all();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i]->name() == probe) {
        index = static_cast<int>(i);
        break;
      }
    }
    probe_indices.push_back(index);
  }
  sample.probe_max_ms.assign(spec.probes.size(), -1.0);

  TtcHistogram latency_all;
  for (size_t p = body_begin; p < result.phases.size(); ++p) {
    const PhaseResult& phase = result.phases[p];
    sample.elapsed_seconds += phase.elapsed_seconds;
    sample.success += phase.total_success;
    sample.started += phase.total_started;
    for (const OpMetrics& op : phase.per_op) {
      latency_all.Merge(op.histogram);
    }
    sample.stm = StmStats::View::Add(sample.stm, phase.stm);
    if (phase.hw.available) {
      sample.hw.available = true;
      sample.hw.cycles += phase.hw.cycles;
      sample.hw.instructions += phase.hw.instructions;
      sample.hw.llc_misses += phase.hw.llc_misses;
      sample.hw.stalled_cycles += phase.hw.stalled_cycles;
    }
    for (size_t q = 0; q < probe_indices.size(); ++q) {
      const int op = probe_indices[q];
      if (op < 0 || phase.per_op[op].success == 0) {
        continue;
      }
      const double max_ms =
          static_cast<double>(phase.per_op[op].histogram.max_nanos()) / 1e6;
      sample.probe_max_ms[q] = std::max(sample.probe_max_ms[q], max_ms);
    }
  }
  if (latency_all.total_count() > 0) {
    sample.p999_ms = latency_all.QuantileMillis(0.999);
  }
  sample.has_stm = runner.strategy().stm() != nullptr;
  if (runner.telemetry() != nullptr) {
    sample.series = runner.telemetry()->SeriesSnapshot();
  }

  if (result.traced) {
    // The cell summary is the whole-run window (the per-phase snapshots are
    // in the harness reports); the warmup phase contributes, but its share
    // of a multi-second cell is small and attribution is statistical anyway.
    sample.conflicts.total_aborts = result.conflicts.total_aborts;
    sample.conflicts.attributed_aborts = result.conflicts.attributed_aborts;
    sample.conflicts.dropped_events = result.trace_events_dropped;
    sample.conflicts.top_locations = result.conflicts.top_locations;
    const auto& ops = runner.registry().all();
    auto slot_name = [&ops](int slot) -> std::string {
      if (slot <= 0 || static_cast<size_t>(slot) > ops.size()) {
        return "(none)";
      }
      return ops[slot - 1]->name();
    };
    for (const trace::ConflictPair& pair : result.conflicts.top_pairs) {
      NamedConflictPair named;
      named.victim = slot_name(pair.victim_slot);
      named.writer = slot_name(pair.writer_slot);
      named.aborts = pair.aborts;
      sample.conflicts.top_pairs.push_back(std::move(named));
    }
  }
  return sample;
}

// Loopback ingress depth for wire cells: deep enough that a closed-loop
// client (one outstanding request per connection) never sees backpressure,
// small enough that a wedged runner surfaces as rejections, not buffering.
constexpr size_t kWireQueueCapacity = 1024;

// Runs one wire-cell repetition: the same BenchmarkRunner as an inproc
// cell, but its workers drain a loopback OpServer's ingress queue while a
// closed-loop load client (one connection per worker thread) generates the
// operation mix the inproc cell would have sampled locally. Server-side
// phase accounting stays the source of the comparable throughput/latency
// numbers; the client's end-to-end view lands in sample->wire_stats.
// Returns false with *error set when the plumbing itself failed.
bool RunWireRep(const SweepSpec& spec, const SweepCell& cell, BenchConfig config,
                bool validate, RepSample* sample, std::string* error) {
  net::IngressQueue ingress(kWireQueueCapacity);
  config.ingress = &ingress;
  // The server outlives every worker callback (runner_thread joins before
  // it is destroyed); the indirection only bridges construction order.
  net::OpServer* server_ptr = nullptr;
  config.on_ingress_complete = [&server_ptr](const net::IngressRequest& request,
                                             net::Status status, int64_t nanos) {
    if (server_ptr != nullptr) {
      server_ptr->Complete(request, status, nanos);
    }
  };

  BenchmarkRunner runner(config);
  net::OpServer server(net::ServerOptions{}, &ingress,
                       static_cast<uint16_t>(runner.registry().all().size()));
  server_ptr = &server;
  std::string start_error;
  if (!server.Start(&start_error)) {
    *error = "loopback server failed to start: " + start_error;
    return false;
  }

  net::ClientOptions client_options;
  client_options.port = server.port();
  client_options.connections = cell.threads;
  client_options.seconds = config.length_seconds;
  const std::optional<MixPreset> mix = FindMixPreset(cell.mix);
  client_options.ratios = ComputeOperationRatios(
      runner.registry(), WorkloadTypeForName(cell.workload), mix->long_traversals,
      /*structure_mods_enabled=*/true, mix->disabled_ops);
  client_options.seed = config.seed;

  BenchResult result;
  std::thread runner_thread([&runner, &result]() { result = runner.Run(); });
  // Run() closes + drain-rejects the queue when the phases end, so even a
  // client outliving the runner (op cap, clock skew) only ever sees typed
  // rejections, never a stranded request.
  const net::ClientResult client = net::RunLoadClient(client_options);
  runner_thread.join();
  server.Stop();

  if (!client.Ok()) {
    *error = "loopback client failed: " + client.error;
    return false;
  }
  if (validate) {
    const InvariantReport report = CheckInvariants(runner.data());
    if (!report.ok()) {
      *error = "invariant violation: " + report.violations[0];
      return false;
    }
  }

  *sample = CollectRep(spec, runner, result);
  sample->wire = true;
  sample->wire_stats.sent = client.sent;
  sample->wire_stats.ok = client.ok;
  sample->wire_stats.op_failed = client.op_failed;
  sample->wire_stats.rejected = client.rejected;
  sample->wire_stats.bad = client.bad;
  sample->wire_stats.lost = client.lost;
  sample->wire_stats.client_throughput = client.Throughput();
  if (client.latency.total_count() > 0) {
    sample->wire_stats.p50_ms = client.latency.QuantileMillis(0.5);
    sample->wire_stats.p99_ms = client.latency.QuantileMillis(0.99);
    sample->wire_stats.p999_ms = client.latency.QuantileMillis(0.999);
    sample->wire_stats.max_ms =
        static_cast<double>(client.latency.max_nanos()) / 1e6;
  }
  return true;
}

// Median/min/max over the repetitions where the probe completed at least
// once; all three stay -1 when it never did.
ProbeStats ProbeStatsOf(const std::string& op, const std::vector<RepSample>& samples,
                        size_t probe_index) {
  ProbeStats stats;
  stats.op = op;
  std::vector<double> values;
  for (const RepSample& sample : samples) {
    if (sample.probe_max_ms[probe_index] >= 0) {
      values.push_back(sample.probe_max_ms[probe_index]);
    }
  }
  if (!values.empty()) {
    stats.max_ms_median = Median(values);
    stats.max_ms_min = MinOf(values);
    stats.max_ms_max = MaxOf(values);
  }
  return stats;
}

}  // namespace

std::string CellKey(const SweepCell& cell) {
  std::ostringstream out;
  out << "backend=" << cell.backend << " threads=" << cell.threads
      << " workload=" << cell.workload << " scenario="
      << (cell.scenario.empty() ? "-" : cell.scenario) << " scale=" << cell.scale
      << " index=" << cell.index << " cm=" << cell.cm << " mix=" << cell.mix;
  if (cell.serve != "inproc") {
    out << " serve=" << cell.serve;
  }
  if (cell.durability != "off") {
    out << " durability=" << cell.durability;
  }
  return out.str();
}

std::vector<SweepCell> ExpandCells(const SweepSpec& spec) {
  // Axis nesting, outermost first: durability, serve, mix, scale,
  // scenario/workload, index, cm, backend, threads — so the human table reads
  // as "one block per configuration, backends side by side, thread counts
  // down the rows".
  std::vector<SweepCell> cells;
  std::vector<std::string> scenarios = spec.scenarios;
  if (scenarios.empty()) {
    scenarios = {""};
  }
  for (const std::string& durability : spec.durabilities) {
    for (const std::string& serve : spec.serves) {
      for (const std::string& mix : spec.mixes) {
        for (const std::string& scale : spec.scales) {
          for (const std::string& scenario : scenarios) {
            for (const std::string& workload : spec.workloads) {
              for (const std::string& index : spec.indexes) {
                for (const std::string& cm : spec.cms) {
                  for (const int threads : spec.threads) {
                    for (const std::string& backend : spec.backends) {
                      SweepCell cell;
                      cell.backend = backend;
                      cell.threads = threads;
                      cell.workload = workload;
                      cell.scenario = scenario;
                      cell.scale = scale;
                      cell.index = index;
                      cell.cm = cm;
                      cell.mix = mix;
                      cell.serve = serve;
                      cell.durability = durability;
                      cells.push_back(cell);
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

SweepRunOutcome RunSweep(const SweepSpec& spec, const SweepRunOptions& options) {
  SweepRunOutcome outcome;
  outcome.result.spec = spec;
  const std::vector<SweepCell> cells = ExpandCells(spec);

  for (size_t c = 0; c < cells.size(); ++c) {
    const SweepCell& cell = cells[c];
    std::vector<RepSample> samples;
    for (int rep = 0; rep < spec.reps; ++rep) {
      BenchConfig config = BuildCellConfig(spec, cell, rep);
      // The scratch redo log of a durability cell; empty otherwise. Unlinked
      // once the repetition (and its post-run validation) is done.
      const std::string redo_path = config.redo_log_path;
      config.trace = options.trace_cells;
      if (options.telemetry) {
        // In-memory series only (no JSONL, no endpoint). Sample fast enough
        // that even a sub-second cell yields a usable series for the
        // steady-state detector, without dipping into pure-noise intervals.
        config.telemetry = true;
        config.telemetry_interval = std::clamp(spec.seconds / 8.0, 0.05, 1.0);
      }
      if (cell.serve == "wire") {
        RepSample sample;
        std::string wire_error;
        const bool wire_ok = RunWireRep(spec, cell, std::move(config),
                                        rep == spec.reps - 1, &sample, &wire_error);
        if (!redo_path.empty()) {
          ::unlink(redo_path.c_str());
        }
        if (!wire_ok) {
          outcome.error = "wire cell [" + CellKey(cell) + "]: " + wire_error;
          return outcome;
        }
        samples.push_back(std::move(sample));
        continue;
      }

      BenchmarkRunner runner(config);
      const BenchResult result = runner.Run();
      samples.push_back(CollectRep(spec, runner, result));
      if (!redo_path.empty()) {
        ::unlink(redo_path.c_str());
      }
      if (runner.redo_writer() != nullptr && !runner.redo_writer()->ok()) {
        outcome.error = "redo log failure in cell [" + CellKey(cell) +
                        "]: " + runner.redo_writer()->error();
        return outcome;
      }

      // Validate the structure after the last repetition of the cell.
      if (rep == spec.reps - 1) {
        const InvariantReport report = CheckInvariants(runner.data());
        if (!report.ok()) {
          outcome.error = "invariant violation in cell [" + CellKey(cell) +
                          "]: " + report.violations[0];
          return outcome;
        }
      }
    }

    CellResult cell_result;
    cell_result.cell = cell;
    cell_result.reps = spec.reps;
    std::vector<double> throughputs;
    std::vector<double> elapsed;
    std::vector<double> started;
    for (const RepSample& sample : samples) {
      throughputs.push_back(sample.Throughput());
      elapsed.push_back(sample.elapsed_seconds);
      started.push_back(sample.StartedRate());
    }
    cell_result.throughput_median = Median(throughputs);
    cell_result.throughput_min = MinOf(throughputs);
    cell_result.throughput_max = MaxOf(throughputs);
    cell_result.elapsed_median_s = Median(elapsed);
    cell_result.started_median = Median(started);
    for (size_t q = 0; q < spec.probes.size(); ++q) {
      cell_result.probes.push_back(ProbeStatsOf(spec.probes[q], samples, q));
    }
    const RepSample& median_rep = samples[MedianIndex(throughputs)];
    cell_result.p999_ms = median_rep.p999_ms;
    cell_result.wire = median_rep.wire;
    cell_result.wire_stats = median_rep.wire_stats;
    cell_result.has_stm = median_rep.has_stm;
    cell_result.stm = median_rep.stm;
    cell_result.traced = options.trace_cells;
    cell_result.conflicts = median_rep.conflicts;
    cell_result.telemetry = options.telemetry;
    if (options.telemetry) {
      std::vector<double> t_s;
      std::vector<double> ops_per_s;
      for (const telemetry::Sample& s : median_rep.series) {
        t_s.push_back(s.t_s);
        ops_per_s.push_back(s.ops_per_s);
      }
      cell_result.steady =
          DetectSteadyState(t_s, ops_per_s, spec.cv_threshold, spec.warmup);
      cell_result.has_hw = median_rep.hw.available;
      cell_result.hw = median_rep.hw;
    }
    outcome.result.cells.push_back(cell_result);

    if (options.log != nullptr) {
      *options.log << "[" << (c + 1) << "/" << cells.size() << "] " << CellKey(cell) << "  "
                   << static_cast<int64_t>(cell_result.throughput_median) << " op/s";
      if (spec.reps > 1) {
        *options.log << " (min " << static_cast<int64_t>(cell_result.throughput_min)
                     << ", max " << static_cast<int64_t>(cell_result.throughput_max) << ")";
      }
      *options.log << "\n";
    }
  }
  return outcome;
}

}  // namespace sb7::perf
