#include "src/core/data_holder.h"

#include <vector>

#include "src/common/text.h"
#include "src/containers/skiplist_index.h"
#include "src/containers/snapshot_index.h"
#include "src/containers/std_map_index.h"
#include "src/core/builder.h"
#include "src/ebr/ebr.h"

namespace sb7 {

IndexKind IndexKindForName(std::string_view name) {
  if (name == "snapshot") {
    return IndexKind::kSnapshot;
  }
  if (name == "skiplist") {
    return IndexKind::kSkipList;
  }
  return IndexKind::kStdMap;
}

std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kStdMap:
      return "stdmap";
    case IndexKind::kSnapshot:
      return "snapshot";
    case IndexKind::kSkipList:
      return "skiplist";
  }
  return "stdmap";
}

template <typename K, typename V>
std::unique_ptr<Index<K, V>> DataHolder::MakeIndex() const {
  switch (setup_.index_kind) {
    case IndexKind::kStdMap:
      return std::make_unique<StdMapIndex<K, V>>();
    case IndexKind::kSnapshot:
      return std::make_unique<SnapshotIndex<K, V>>();
    case IndexKind::kSkipList:
      return std::make_unique<SkipListIndex<K, V>>();
  }
  return std::make_unique<StdMapIndex<K, V>>();
}

DataHolder::DataHolder(const Setup& setup) : setup_(setup) {
  const Parameters& params = setup_.params;
  atomic_id_index_ = MakeIndex<int64_t, AtomicPart*>();
  atomic_date_index_ = MakeIndex<int64_t, AtomicPart*>();
  composite_id_index_ = MakeIndex<int64_t, CompositePart*>();
  document_title_index_ = MakeIndex<std::string, Document*>();
  base_id_index_ = MakeIndex<int64_t, BaseAssembly*>();
  complex_id_index_ = MakeIndex<int64_t, ComplexAssembly*>();

  const int64_t slack = params.id_pool_slack_factor;
  composite_ids_ = std::make_unique<IdPool>(params.initial_composite_parts * slack);
  atomic_ids_ = std::make_unique<IdPool>(params.initial_atomic_parts() * slack);
  base_ids_ = std::make_unique<IdPool>(params.base_assembly_count() * slack);
  complex_ids_ = std::make_unique<IdPool>(params.complex_assembly_count() * slack);

  Rng rng(setup_.seed);
  BuildInitialStructure(rng);
}

void DataHolder::BuildInitialStructure(Rng& rng) {
  const Parameters& params = setup_.params;
  SB7_CHECK(CurrentTx() == nullptr);  // the initial build is single-threaded

  manual_ = new Manual(1, "Manual for module #1", BuildManualText(1, params.manual_size));
  module_ = new Module(1, manual_);
  manual_->set_module(module_);

  // Design library first, so base assemblies can draw from it.
  for (int i = 0; i < params.initial_composite_parts; ++i) {
    CreateCompositePart(*this, rng);
  }

  const int64_t root_id = complex_ids_->Allocate();
  auto* root = new ComplexAssembly(root_id, RandomDate(params, rng), params.assembly_levels,
                                   /*super=*/nullptr, module_);
  complex_id_index_->Insert(root_id, root);
  module_->set_design_root(root);

  // Recursive tree build; base assemblies are linked to random composite
  // parts of the library (duplicates allowed, as in OO7's shared library).
  auto build_children = [&](auto&& self, ComplexAssembly* parent) -> void {
    const int child_level = parent->level() - 1;
    for (int i = 0; i < params.assembly_fanout; ++i) {
      if (child_level == 1) {
        BaseAssembly* base = CreateBaseAssembly(*this, parent, rng);
        for (int c = 0; c < params.components_per_assembly; ++c) {
          const int64_t part_id =
              1 + static_cast<int64_t>(rng.NextBounded(params.initial_composite_parts));
          CompositePart* part = composite_id_index_->Lookup(part_id);
          SB7_CHECK(part != nullptr);
          base->components().Add(part);
          part->used_in().Add(base);
        }
      } else {
        const int64_t id = complex_ids_->Allocate();
        SB7_CHECK(id != 0);
        auto* child =
            new ComplexAssembly(id, RandomDate(params, rng), child_level, parent, module_);
        parent->sub_assemblies().Add(child);
        complex_id_index_->Insert(id, child);
        self(self, child);
      }
    }
  };
  build_children(build_children, root);
}

void DataHolder::FreeEverything() {
  SB7_CHECK(CurrentTx() == nullptr);
  EbrDomain::Global().DrainAll();

  std::vector<CompositePart*> parts;
  composite_id_index_->ForEach([&parts](const int64_t&, CompositePart* const& part) {
    parts.push_back(part);
    return true;
  });
  for (CompositePart* part : parts) {
    for (AtomicPart* atom : part->parts()) {
      for (Connection* conn : atom->outgoing()) {
        delete conn;
      }
      delete atom;
    }
    delete part->documentation();
    delete part;
  }

  auto free_tree = [](auto&& self, Assembly* assembly) -> void {
    if (!assembly->is_base()) {
      auto* complex = static_cast<ComplexAssembly*>(assembly);
      std::vector<Assembly*> children;
      complex->sub_assemblies().ForEach(
          [&children](Assembly* child) { children.push_back(child); });
      for (Assembly* child : children) {
        self(self, child);
      }
    }
    delete assembly;
  };
  if (module_ != nullptr && module_->design_root() != nullptr) {
    free_tree(free_tree, module_->design_root());
  }
  delete module_;
  delete manual_;
  module_ = nullptr;
  manual_ = nullptr;
  EbrDomain::Global().DrainAll();
}

DataHolder::~DataHolder() { FreeEverything(); }

}  // namespace sb7
