#include "src/core/builder.h"

#include <vector>

#include "src/common/text.h"
#include "src/ebr/ebr.h"

namespace sb7 {
namespace {

// Schedules `fn` for after the commit point under an STM strategy, or runs
// it immediately under a locking strategy (where the enclosing locks already
// guarantee exclusivity).
template <typename Fn>
void AfterCommit(Fn&& fn) {
  if (Transaction* tx = CurrentTx()) {
    tx->OnCommit(std::forward<Fn>(fn));
  } else {
    fn();
  }
}

void RetireOnAbort(TmObject* obj) {
  if (Transaction* tx = CurrentTx()) {
    tx->OnAbort([obj] { delete obj; });
  }
}

}  // namespace

Date RandomDate(const Parameters& params, Rng& rng) {
  return rng.NextInRange(params.min_build_date, params.max_build_date);
}

bool CanCreateCompositePart(DataHolder& dh) {
  return dh.composite_part_ids().Available() >= 1 &&
         dh.atomic_part_ids().Available() >= dh.params().atomic_parts_per_composite;
}

CompositePart* CreateCompositePart(DataHolder& dh, Rng& rng) {
  const Parameters& params = dh.params();
  const int64_t part_id = dh.composite_part_ids().Allocate();
  SB7_CHECK(part_id != 0);

  auto* document = new Document(part_id, DataHolder::DocumentTitleFor(part_id),
                                BuildDocumentText(part_id, params.document_size));
  auto* part = new CompositePart(part_id, RandomDate(params, rng), document);
  document->set_part(part);

  // Private graph construction: parts and connections are wired directly and
  // become shared only when the index insertions below commit.
  const int n = params.atomic_parts_per_composite;
  std::vector<AtomicPart*> atoms;
  atoms.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int64_t atom_id = dh.atomic_part_ids().Allocate();
    SB7_CHECK(atom_id != 0);
    auto* atom =
        new AtomicPart(atom_id, RandomDate(params, rng),
                       /*x=*/rng.NextInRange(0, 99'999), /*y=*/rng.NextInRange(0, 99'999));
    atom->set_part_of(part);
    part->AddPart(atom);
    atoms.push_back(atom);
  }
  part->set_root_part(atoms[0]);
  for (int i = 0; i < n; ++i) {
    // One ring connection keeps every graph connected; the rest are random.
    AtomicPart* from = atoms[i];
    AtomicPart* ring_to = atoms[(i + 1) % n];
    auto* ring = new Connection(from, ring_to, static_cast<int32_t>(rng.NextInRange(1, 100)));
    from->AddOutgoing(ring);
    ring_to->AddIncoming(ring);
    for (int c = 1; c < params.connections_per_atomic; ++c) {
      AtomicPart* to = atoms[rng.NextBounded(static_cast<uint64_t>(n))];
      auto* conn = new Connection(from, to, static_cast<int32_t>(rng.NextInRange(1, 100)));
      from->AddOutgoing(conn);
      to->AddIncoming(conn);
    }
  }

  dh.composite_part_id_index().Insert(part_id, part);
  dh.document_title_index().Insert(document->title(), document);
  for (AtomicPart* atom : atoms) {
    dh.atomic_part_id_index().Insert(atom->id(), atom);
    dh.atomic_part_date_index().Insert(MakeDateKey(atom->build_date(), atom->id()), atom);
  }

  // If the enclosing transaction aborts, the private graph never became
  // shared and is freed outright.
  if (Transaction* tx = CurrentTx()) {
    tx->OnAbort([part] { RetireCompositePartDeep(part); });
  }
  return part;
}

void RetireCompositePartDeep(CompositePart* part) {
  EbrDomain& ebr = EbrDomain::Global();
  for (AtomicPart* atom : part->parts()) {
    for (Connection* conn : atom->outgoing()) {
      ebr.RetireObject(conn);
    }
    ebr.RetireObject(atom);
  }
  ebr.RetireObject(part->documentation());
  ebr.RetireObject(part);
}

void DeleteCompositePart(DataHolder& dh, CompositePart* part) {
  // Unlink from every base assembly that references it; the bag may hold the
  // same assembly several times (SM3 permits duplicate links). Snapshot the
  // bag first: mutating while iterating is undefined for Tx collections.
  std::vector<BaseAssembly*> users;
  part->used_in().ForEach([&users](BaseAssembly* assembly) { users.push_back(assembly); });
  for (BaseAssembly* assembly : users) {
    assembly->components().RemoveOne(part);
  }

  dh.composite_part_id_index().Remove(part->id());
  dh.document_title_index().Remove(part->documentation()->title());
  for (AtomicPart* atom : part->parts()) {
    dh.atomic_part_id_index().Remove(atom->id());
    dh.atomic_part_date_index().Remove(MakeDateKey(atom->build_date(), atom->id()));
    dh.atomic_part_ids().Release(atom->id());
  }
  dh.composite_part_ids().Release(part->id());

  AfterCommit([part] { RetireCompositePartDeep(part); });
}

bool CanCreateBaseAssembly(DataHolder& dh) { return dh.base_assembly_ids().Available() >= 1; }

BaseAssembly* CreateBaseAssembly(DataHolder& dh, ComplexAssembly* parent, Rng& rng) {
  const int64_t id = dh.base_assembly_ids().Allocate();
  SB7_CHECK(id != 0);
  auto* assembly = new BaseAssembly(id, RandomDate(dh.params(), rng), parent, parent->module());
  parent->sub_assemblies().Add(assembly);
  dh.base_assembly_id_index().Insert(id, assembly);
  RetireOnAbort(assembly);
  return assembly;
}

void DeleteBaseAssembly(DataHolder& dh, BaseAssembly* assembly) {
  std::vector<CompositePart*> components;
  assembly->components().ForEach(
      [&components](CompositePart* part) { components.push_back(part); });
  for (CompositePart* part : components) {
    part->used_in().RemoveOne(assembly);
  }
  assembly->super_assembly()->sub_assemblies().Remove(assembly);
  dh.base_assembly_id_index().Remove(assembly->id());
  dh.base_assembly_ids().Release(assembly->id());
  AfterCommit([assembly] { EbrDomain::Global().RetireObject(assembly); });
}

std::pair<int64_t, int64_t> SubtreeNodeCounts(const Parameters& params, int root_level) {
  // Levels root_level..2 hold complex assemblies, level 1 base assemblies.
  int64_t complexes = 0;
  int64_t layer = 1;
  for (int level = root_level; level >= 2; --level) {
    complexes += layer;
    layer *= params.assembly_fanout;
  }
  if (root_level == 1) {
    return {0, 1};
  }
  return {complexes, layer};
}

bool CanCreateSubtree(DataHolder& dh, int root_level) {
  const auto [complexes, bases] = SubtreeNodeCounts(dh.params(), root_level);
  return dh.complex_assembly_ids().Available() >= complexes &&
         dh.base_assembly_ids().Available() >= bases;
}

Assembly* CreateAssemblySubtree(DataHolder& dh, ComplexAssembly* parent, int root_level,
                                Rng& rng) {
  if (root_level == 1) {
    return CreateBaseAssembly(dh, parent, rng);
  }
  const int64_t id = dh.complex_assembly_ids().Allocate();
  SB7_CHECK(id != 0);
  auto* assembly =
      new ComplexAssembly(id, RandomDate(dh.params(), rng), root_level, parent, parent->module());
  parent->sub_assemblies().Add(assembly);
  dh.complex_assembly_id_index().Insert(id, assembly);
  RetireOnAbort(assembly);
  for (int i = 0; i < dh.params().assembly_fanout; ++i) {
    CreateAssemblySubtree(dh, assembly, root_level - 1, rng);
  }
  return assembly;
}

void DeleteAssemblySubtree(DataHolder& dh, ComplexAssembly* assembly) {
  std::vector<Assembly*> children;
  assembly->sub_assemblies().ForEach([&children](Assembly* child) { children.push_back(child); });
  for (Assembly* child : children) {
    if (child->is_base()) {
      DeleteBaseAssembly(dh, static_cast<BaseAssembly*>(child));
    } else {
      DeleteAssemblySubtree(dh, static_cast<ComplexAssembly*>(child));
    }
  }
  if (assembly->super_assembly() != nullptr) {
    assembly->super_assembly()->sub_assemblies().Remove(assembly);
  }
  dh.complex_assembly_id_index().Remove(assembly->id());
  dh.complex_assembly_ids().Release(assembly->id());
  AfterCommit([assembly] { EbrDomain::Global().RetireObject(assembly); });
}

}  // namespace sb7
