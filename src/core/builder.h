// Construction and destruction of structure elements.
//
// Shared between the initial build (DataHolder constructor) and the
// structure-modification operations SM1–SM8, so created elements always have
// the same shape. All functions perform their shared-memory effects through
// TxFields/Tx collections and are therefore correct under any strategy; the
// memory of deleted elements is retired through EBR at commit time (or
// immediately under the locking strategies, which hold the structure lock
// exclusively during modifications).
//
// Creation functions assume the caller verified pool availability (the Can*
// helpers); this keeps operations all-or-nothing even in lock mode, where
// there is no transactional rollback.

#ifndef STMBENCH7_SRC_CORE_BUILDER_H_
#define STMBENCH7_SRC_CORE_BUILDER_H_

#include "src/core/data_holder.h"

namespace sb7 {

// Uniform build date in [params.min_build_date, params.max_build_date].
Date RandomDate(const Parameters& params, Rng& rng);

// --- composite parts (with document + atomic part graph) ---
bool CanCreateCompositePart(DataHolder& dh);
CompositePart* CreateCompositePart(DataHolder& dh, Rng& rng);
// Unlinks the part from every base assembly using it, unregisters it (and
// its atomic parts and document) from all indexes, releases ids and retires
// the memory.
void DeleteCompositePart(DataHolder& dh, CompositePart* part);

// --- base assemblies ---
bool CanCreateBaseAssembly(DataHolder& dh);
BaseAssembly* CreateBaseAssembly(DataHolder& dh, ComplexAssembly* parent, Rng& rng);
// Caller enforces the "not the only child" precondition (SM6).
void DeleteBaseAssembly(DataHolder& dh, BaseAssembly* assembly);

// --- complex assemblies / subtrees ---
// Number of assemblies (complex, base) in a full subtree whose root sits at
// `root_level` (root included), with the configured fan-out.
std::pair<int64_t, int64_t> SubtreeNodeCounts(const Parameters& params, int root_level);
bool CanCreateSubtree(DataHolder& dh, int root_level);
// Builds a full assembly subtree of the configured fan-out with its root at
// `root_level`, attached under `parent` (SM7). Base assemblies are created
// with empty component bags — ST1/ST2's designed failure path.
Assembly* CreateAssemblySubtree(DataHolder& dh, ComplexAssembly* parent, int root_level,
                                Rng& rng);
// Deletes `assembly` and every descendant, unlinking it from its parent
// (SM8). Caller enforces the root/only-child preconditions.
void DeleteAssemblySubtree(DataHolder& dh, ComplexAssembly* assembly);

// Retires a dead composite part's full object graph through EBR now (lock
// mode) or at commit (STM mode). Exposed for DataHolder's destructor.
void RetireCompositePartDeep(CompositePart* part);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_BUILDER_H_
