#include "src/core/parameters.h"

namespace sb7 {

Parameters Parameters::Medium() { return Parameters{}; }

Parameters Parameters::Small() {
  Parameters p;
  p.assembly_levels = 5;
  p.assembly_fanout = 3;
  p.components_per_assembly = 3;
  p.initial_composite_parts = 50;
  p.atomic_parts_per_composite = 20;
  p.connections_per_atomic = 3;
  p.document_size = 200;
  p.manual_size = 10'000;
  return p;
}

Parameters Parameters::Tiny() {
  Parameters p;
  p.assembly_levels = 3;
  p.assembly_fanout = 2;
  p.components_per_assembly = 2;
  p.initial_composite_parts = 8;
  p.atomic_parts_per_composite = 5;
  p.connections_per_atomic = 2;
  p.document_size = 80;
  p.manual_size = 1'000;
  return p;
}

Parameters Parameters::ForName(std::string_view name) {
  if (name == "medium") {
    return Medium();
  }
  if (name == "tiny") {
    return Tiny();
  }
  return Small();
}

}  // namespace sb7
