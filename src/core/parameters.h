// Structure-scale parameters.
//
// The paper bases STMBench7 on the "medium" OO7 configuration: a single
// module with six levels of complex assemblies of fan-out three (so 3^6 = 729
// base assemblies at level 1 and the root at level 7), a design library of
// 500 composite parts, each with a graph of 200 atomic parts (100 000 atomic
// parts total) and at least three connections per atomic part, 2 000-char
// documents and a ~1 MB manual. Smaller presets exist for tests, examples and
// the ASTM long-traversal demonstrations (where the O(k^2) validation makes
// full scale take, per the paper, "as much as half an hour").

#ifndef STMBENCH7_SRC_CORE_PARAMETERS_H_
#define STMBENCH7_SRC_CORE_PARAMETERS_H_

#include <cstdint>
#include <string_view>

namespace sb7 {

struct Parameters {
  // Assembly tree: base assemblies at level 1, root complex assembly at
  // level `assembly_levels`.
  int assembly_levels = 7;
  int assembly_fanout = 3;           // sub-assemblies per complex assembly
  int components_per_assembly = 3;   // composite parts linked per base assembly

  int initial_composite_parts = 500;
  int atomic_parts_per_composite = 200;
  int connections_per_atomic = 3;    // outgoing connections per atomic part

  int document_size = 2000;          // characters
  int manual_size = 1'000'000;       // characters

  int64_t min_build_date = 1900;
  int64_t max_build_date = 1999;
  // OP2's "young parts" range is [1990, 1999]; OP3's is the full range.
  int64_t young_date_lo = 1990;

  // ID pools are sized at twice the initial population; structure-modifying
  // operations fail when a pool is exhausted, which bounds the structure
  // (§3: "the maximum size of the structure is confined").
  int id_pool_slack_factor = 2;

  int base_assembly_count() const {
    // Root at level `assembly_levels`, base assemblies at level 1:
    // fanout^(levels - 1) leaves.
    int n = 1;
    for (int i = 1; i <= assembly_levels - 1; ++i) {
      n *= assembly_fanout;
    }
    return n;
  }
  int complex_assembly_count() const {
    int n = 0;
    int layer = 1;
    for (int i = 0; i < assembly_levels - 1; ++i) {
      n += layer;
      layer *= assembly_fanout;
    }
    return n;
  }
  int initial_atomic_parts() const {
    return initial_composite_parts * atomic_parts_per_composite;
  }

  static Parameters Medium();  // the paper's configuration
  static Parameters Small();   // CI-sized: ~1k atomic parts
  static Parameters Tiny();    // unit-test sized: tens of objects

  // "medium" | "small" | "tiny"; falls back to Small for unknown names.
  static Parameters ForName(std::string_view name);
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_PARAMETERS_H_
