// The OO7/STMBench7 object model (Figure 1 of the paper).
//
// Module -> tree of complex assemblies -> base assemblies -> composite parts
// (the shared design library) -> graphs of atomic parts wired by connection
// objects; one document per composite part, one manual per module.
//
// Mutability follows Appendix B.1: modules and connections are immutable;
// everything else can be updated by some operation. Immutable links (a
// part's owning composite part, an assembly's parent) are plain members;
// mutable state is held in TxFields / Tx collections so concurrency control
// is injected by the active strategy. Object graphs below a composite part
// are created privately and published atomically, so their shape (parts and
// connections) is immutable even though atomic part attributes are not.

#ifndef STMBENCH7_SRC_CORE_OBJECTS_H_
#define STMBENCH7_SRC_CORE_OBJECTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/text.h"
#include "src/containers/txvector.h"
#include "src/stm/field.h"

namespace sb7 {

class AtomicPart;
class BaseAssembly;
class ComplexAssembly;
class CompositePart;
class Module;

using Date = int64_t;

// Common base: every design object has an immutable id and a mutable build
// date. The benchmark's generic "read-only operation" on an object reads the
// date; the generic "update operation on a non-indexed attribute" nudges it
// by one without changing its parity-free ordering properties.
class DesignObject : public TmObject {
 public:
  DesignObject(int64_t id, Date build_date) : id_(id), build_date_(unit(), build_date) {}

  int64_t id() const { return id_; }
  Date build_date() const { return build_date_.Get(); }
  void set_build_date(Date date) { build_date_.Set(date); }

  // The canonical read-only operation (OO7's "null work" visit).
  Date ReadVisit() const { return build_date_.Get(); }

  // The canonical non-indexed update: toggles the date by +-1, keeping the
  // value inside the configured range (mirrors the Java benchmark's
  // updateBuildDate).
  void NudgeBuildDate() {
    const Date date = build_date_.Get();
    build_date_.Set((date % 2) == 0 ? date + 1 : date - 1);
  }

 private:
  const int64_t id_;
  TxField<Date> build_date_;
};

// Immutable connection between two atomic parts (Appendix B.1: connection
// objects are immutable).
class Connection {
 public:
  Connection(AtomicPart* from, AtomicPart* to, int32_t length)
      : from_(from), to_(to), length_(length) {}

  AtomicPart* from() const { return from_; }
  AtomicPart* to() const { return to_; }
  int32_t length() const { return length_; }

 private:
  AtomicPart* const from_;
  AtomicPart* const to_;
  const int32_t length_;
};

class AtomicPart : public DesignObject {
 public:
  AtomicPart(int64_t id, Date build_date, int64_t x, int64_t y)
      : DesignObject(id, build_date), x_(unit(), x), y_(unit(), y) {}

  int64_t x() const { return x_.Get(); }
  int64_t y() const { return y_.Get(); }

  // The canonical non-indexed atomic part update (T2*, ST6, ST10, OP9/10).
  void SwapXY() {
    const int64_t x = x_.Get();
    const int64_t y = y_.Get();
    x_.Set(y);
    y_.Set(x);
  }

  CompositePart* part_of() const { return part_of_; }

  // Graph wiring; called only during private construction of a composite
  // part's graph, before publication. The owning composite part becomes the
  // lock-coverage root for this part's fields (fine-grained strategy).
  void set_part_of(CompositePart* part);
  void AddOutgoing(Connection* connection) { to_.push_back(connection); }
  void AddIncoming(Connection* connection) { from_.push_back(connection); }

  const std::vector<Connection*>& outgoing() const { return to_; }
  const std::vector<Connection*>& incoming() const { return from_; }

 private:
  TxField<int64_t> x_;
  TxField<int64_t> y_;
  CompositePart* part_of_ = nullptr;
  std::vector<Connection*> to_;
  std::vector<Connection*> from_;
};

class Document : public TmObject {
 public:
  Document(int64_t id, std::string title, std::string text)
      : id_(id), title_(std::move(title)), text_(unit(), std::move(text)) {}

  int64_t id() const { return id_; }
  const std::string& title() const { return title_; }

  CompositePart* part() const { return part_; }
  void set_part(CompositePart* part);

  // T4 / ST2: occurrences of `c` in the body.
  int64_t CountChar(char c) const { return sb7::CountChar(text_.Get(), c); }

  // T5 / ST7: swaps "I am" <-> "This is"; returns the replacement count.
  int64_t TogglePhrase();

  const std::string& text() const { return text_.Get(); }
  void set_text(std::string text) { text_.Set(std::move(text)); }

 private:
  const int64_t id_;
  const std::string title_;
  TxText text_;
  CompositePart* part_ = nullptr;
};

class Manual : public TmObject {
 public:
  Manual(int64_t id, std::string title, std::string text)
      : id_(id), title_(std::move(title)), text_(unit(), std::move(text)) {}

  int64_t id() const { return id_; }
  const std::string& title() const { return title_; }
  const std::string& text() const { return text_.Get(); }

  // OP4: occurrences of 'I'.
  int64_t CountChar(char c) const { return sb7::CountChar(text_.Get(), c); }
  // OP5: 1 if the first and last characters match, else 0.
  int64_t FirstEqualsLast() const {
    const std::string& body = text_.Get();
    return (!body.empty() && body.front() == body.back()) ? 1 : 0;
  }
  // OP11: swaps 'I' <-> 'i' throughout; returns the number of changes.
  int64_t ToggleCase();

  Module* module() const { return module_; }
  void set_module(Module* module) { module_ = module; }

 private:
  const int64_t id_;
  const std::string title_;
  TxText text_;
  Module* module_ = nullptr;
};

class CompositePart : public DesignObject {
 public:
  CompositePart(int64_t id, Date build_date, Document* documentation)
      : DesignObject(id, build_date), documentation_(documentation) {
    used_in_.SetCover(unit());
  }

  Document* documentation() const { return documentation_; }

  AtomicPart* root_part() const { return root_part_; }
  void set_root_part(AtomicPart* part) { root_part_ = part; }

  // The graph's part set: immutable after private construction.
  void AddPart(AtomicPart* part) { parts_.push_back(part); }
  const std::vector<AtomicPart*>& parts() const { return parts_; }

  // Mutable many-to-many link to base assemblies (SM3/SM4/SM2/SM6).
  TxBag<BaseAssembly*>& used_in() { return used_in_; }
  const TxBag<BaseAssembly*>& used_in() const { return used_in_; }

 private:
  Document* const documentation_;
  AtomicPart* root_part_ = nullptr;
  std::vector<AtomicPart*> parts_;
  TxBag<BaseAssembly*> used_in_;
};

class Assembly : public DesignObject {
 public:
  Assembly(int64_t id, Date build_date, int level, ComplexAssembly* super, Module* module)
      : DesignObject(id, build_date), level_(level), super_(super), module_(module) {}

  // Base assemblies sit at level 1; the root complex assembly at the top.
  int level() const { return level_; }
  bool is_base() const { return level_ == 1; }
  ComplexAssembly* super_assembly() const { return super_; }
  Module* module() const { return module_; }

 private:
  const int level_;
  ComplexAssembly* const super_;
  Module* const module_;
};

class BaseAssembly : public Assembly {
 public:
  BaseAssembly(int64_t id, Date build_date, ComplexAssembly* super, Module* module)
      : Assembly(id, build_date, /*level=*/1, super, module) {
    components_.SetCover(unit());
  }

  TxBag<CompositePart*>& components() { return components_; }
  const TxBag<CompositePart*>& components() const { return components_; }

 private:
  TxBag<CompositePart*> components_;
};

class ComplexAssembly : public Assembly {
 public:
  ComplexAssembly(int64_t id, Date build_date, int level, ComplexAssembly* super, Module* module)
      : Assembly(id, build_date, level, super, module) {
    sub_assemblies_.SetCover(unit());
  }

  TxSet<Assembly*>& sub_assemblies() { return sub_assemblies_; }
  const TxSet<Assembly*>& sub_assemblies() const { return sub_assemblies_; }

 private:
  TxSet<Assembly*> sub_assemblies_;
};

// Immutable per Appendix B.1.
class Module : public TmObject {
 public:
  Module(int64_t id, Manual* manual) : id_(id), manual_(manual) {}

  int64_t id() const { return id_; }
  Manual* manual() const { return manual_; }

  ComplexAssembly* design_root() const { return design_root_; }
  void set_design_root(ComplexAssembly* root) { design_root_ = root; }

 private:
  const int64_t id_;
  Manual* const manual_;
  ComplexAssembly* design_root_ = nullptr;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_OBJECTS_H_
