// Transactional ID pool.
//
// Mirrors the Java benchmark's IdPool: ids live in [1, capacity]; deleted
// objects return their ids for reuse. Random-ID operations draw uniformly
// from [1, capacity] and *fail* when the id is currently unused — the
// benchmark's designed failure mechanism (§3). Pool exhaustion is how "the
// maximum size of the structure is confined".
//
// The pool is transactional state: an aborted structure modification rolls
// its allocations back automatically.

#ifndef STMBENCH7_SRC_CORE_ID_POOL_H_
#define STMBENCH7_SRC_CORE_ID_POOL_H_

#include <cstdint>

#include "src/common/diag.h"
#include "src/containers/txvector.h"
#include "src/stm/field.h"

namespace sb7 {

class IdPool : public TmObject {
 public:
  explicit IdPool(int64_t capacity)
      : capacity_(capacity), next_fresh_(unit(), 1), freed_(/*initial_capacity=*/8) {
    SB7_CHECK(capacity >= 1);
  }

  int64_t capacity() const { return capacity_; }

  // Free ids currently available.
  int64_t Available() const {
    return (capacity_ - next_fresh_.Get() + 1) + freed_.Size();
  }

  // Returns a fresh or recycled id, or 0 when the pool is exhausted. Callers
  // that allocate in bulk should consult Available() first so an operation
  // either fully succeeds or fails before mutating anything.
  int64_t Allocate() {
    const int64_t n = freed_.Size();
    if (n > 0) {
      const int64_t id = freed_.Get(n - 1);
      freed_.RemoveAt(n - 1);
      return id;
    }
    const int64_t fresh = next_fresh_.Get();
    if (fresh > capacity_) {
      return 0;
    }
    next_fresh_.Set(fresh + 1);
    return fresh;
  }

  void Release(int64_t id) {
    SB7_DCHECK(id >= 1 && id <= capacity_);
    freed_.PushBack(id);
  }

 private:
  const int64_t capacity_;
  TxField<int64_t> next_fresh_;
  TxVector<int64_t> freed_;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_ID_POOL_H_
