// DataHolder: the benchmark's shared world.
//
// Owns the module, the six indexes of Table 1, and the ID pools. The index
// implementation is selected at construction:
//   * kStdMap   — plain std::map, for the locking strategies (the
//                 java.util analogue);
//   * kSnapshot — one transactional object per index (the naive STM port the
//                 paper's §5 evaluation uses);
//   * kSkipList — node-granular transactional skip list (the refactored,
//                 scalable port §5 proposes).

#ifndef STMBENCH7_SRC_CORE_DATA_HOLDER_H_
#define STMBENCH7_SRC_CORE_DATA_HOLDER_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/containers/index.h"
#include "src/core/id_pool.h"
#include "src/core/objects.h"
#include "src/core/parameters.h"

namespace sb7 {

enum class IndexKind { kStdMap, kSnapshot, kSkipList };

// "stdmap" | "snapshot" | "skiplist".
IndexKind IndexKindForName(std::string_view name);
std::string_view IndexKindName(IndexKind kind);

class DataHolder {
 public:
  struct Setup {
    Parameters params;
    IndexKind index_kind = IndexKind::kStdMap;
    uint64_t seed = 7;
  };

  // Builds the complete initial structure; deterministic in `setup.seed`.
  explicit DataHolder(const Setup& setup);
  ~DataHolder();

  DataHolder(const DataHolder&) = delete;
  DataHolder& operator=(const DataHolder&) = delete;

  const Parameters& params() const { return setup_.params; }
  const Setup& setup() const { return setup_; }

  Module* module() { return module_; }
  Manual* manual() { return manual_; }

  // --- Table 1 indexes ---
  Index<int64_t, AtomicPart*>& atomic_part_id_index() { return *atomic_id_index_; }
  // Keyed by MakeDateKey(build_date, id): an ordered multimap emulation.
  Index<int64_t, AtomicPart*>& atomic_part_date_index() { return *atomic_date_index_; }
  Index<int64_t, CompositePart*>& composite_part_id_index() { return *composite_id_index_; }
  Index<std::string, Document*>& document_title_index() { return *document_title_index_; }
  Index<int64_t, BaseAssembly*>& base_assembly_id_index() { return *base_id_index_; }
  Index<int64_t, ComplexAssembly*>& complex_assembly_id_index() { return *complex_id_index_; }

  // --- ID pools ---
  IdPool& composite_part_ids() { return *composite_ids_; }
  IdPool& atomic_part_ids() { return *atomic_ids_; }
  IdPool& base_assembly_ids() { return *base_ids_; }
  IdPool& complex_assembly_ids() { return *complex_ids_; }

  // Document titles are a pure function of the composite part id, which is
  // how ST4 generates "random document titles".
  static std::string DocumentTitleFor(int64_t composite_part_id) {
    return "Composite Part #" + std::to_string(composite_part_id);
  }

 private:
  template <typename K, typename V>
  std::unique_ptr<Index<K, V>> MakeIndex() const;

  void BuildInitialStructure(Rng& rng);
  void FreeEverything();

  Setup setup_;

  std::unique_ptr<Index<int64_t, AtomicPart*>> atomic_id_index_;
  std::unique_ptr<Index<int64_t, AtomicPart*>> atomic_date_index_;
  std::unique_ptr<Index<int64_t, CompositePart*>> composite_id_index_;
  std::unique_ptr<Index<std::string, Document*>> document_title_index_;
  std::unique_ptr<Index<int64_t, BaseAssembly*>> base_id_index_;
  std::unique_ptr<Index<int64_t, ComplexAssembly*>> complex_id_index_;

  std::unique_ptr<IdPool> composite_ids_;
  std::unique_ptr<IdPool> atomic_ids_;
  std::unique_ptr<IdPool> base_ids_;
  std::unique_ptr<IdPool> complex_ids_;

  Module* module_ = nullptr;
  Manual* manual_ = nullptr;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_DATA_HOLDER_H_
