#include "src/core/invariants.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/hashing.h"
#include "src/containers/index.h"

namespace sb7 {
namespace {

class Checker {
 public:
  explicit Checker(DataHolder& dh) : dh_(dh) {}

  InvariantReport Run() {
    CollectAssemblies();
    CheckAssemblyLinks();
    CheckCompositeParts();
    CheckIndexes();
    CheckIdPools();
    return std::move(report_);
  }

 private:
  void Fail(std::string message) { report_.violations.push_back(std::move(message)); }

  void CollectAssemblies() {
    ComplexAssembly* root = dh_.module()->design_root();
    if (root == nullptr) {
      Fail("module has no design root");
      return;
    }
    if (root->level() != dh_.params().assembly_levels) {
      Fail("design root is not at the top level");
    }
    if (root->super_assembly() != nullptr) {
      Fail("design root has a parent");
    }
    Walk(root);
  }

  void Walk(Assembly* assembly) {
    if (assembly->is_base()) {
      ++report_.base_assemblies;
      bases_.push_back(static_cast<BaseAssembly*>(assembly));
      return;
    }
    ++report_.complex_assemblies;
    auto* complex = static_cast<ComplexAssembly*>(assembly);
    complexes_.push_back(complex);
    if (complex->sub_assemblies().Size() == 0) {
      Fail("complex assembly " + std::to_string(complex->id()) + " has no children");
    }
    complex->sub_assemblies().ForEach([this, complex](Assembly* child) {
      if (child->level() != complex->level() - 1) {
        Fail("child level mismatch under complex assembly " + std::to_string(complex->id()));
      }
      if (child->super_assembly() != complex) {
        Fail("parent back-link broken under complex assembly " + std::to_string(complex->id()));
      }
      Walk(child);
    });
  }

  void CheckAssemblyLinks() {
    for (BaseAssembly* base : bases_) {
      base->components().ForEach([this, base](CompositePart* part) {
        const int64_t forward = base->components().Count(part);
        const int64_t backward = part->used_in().Count(base);
        if (forward != backward) {
          Fail("bag multiplicity mismatch: base assembly " + std::to_string(base->id()) +
               " <-> composite part " + std::to_string(part->id()));
        }
      });
    }
  }

  void CheckCompositeParts() {
    dh_.composite_part_id_index().ForEach(
        [this](const int64_t& id, CompositePart* const& part) {
          ++report_.composite_parts;
          if (part->id() != id) {
            Fail("composite part index key does not match part id");
          }
          Document* doc = part->documentation();
          if (doc == nullptr || doc->part() != part) {
            Fail("document back-link broken for composite part " + std::to_string(id));
          }
          CheckGraph(part);
          part->used_in().ForEach([this, part](BaseAssembly* base) {
            if (base->components().Count(part) == 0) {
              Fail("used_in lists a base assembly that does not hold the part: " +
                   std::to_string(part->id()));
            }
          });
          return true;
        });
  }

  void CheckGraph(CompositePart* part) {
    const auto& atoms = part->parts();
    if (atoms.empty() || part->root_part() == nullptr) {
      Fail("composite part " + std::to_string(part->id()) + " has an empty graph");
      return;
    }
    std::unordered_set<AtomicPart*> members(atoms.begin(), atoms.end());
    if (members.count(part->root_part()) == 0) {
      Fail("root part not a member of its graph: " + std::to_string(part->id()));
    }
    for (AtomicPart* atom : atoms) {
      ++report_.atomic_parts;
      if (atom->part_of() != part) {
        Fail("atomic part " + std::to_string(atom->id()) + " has a broken part_of link");
      }
      for (Connection* conn : atom->outgoing()) {
        if (conn->from() != atom) {
          Fail("connection from-link broken at atomic part " + std::to_string(atom->id()));
        }
        if (members.count(conn->to()) == 0) {
          Fail("connection escapes its graph at atomic part " + std::to_string(atom->id()));
        }
        bool linked_back = false;
        for (Connection* incoming : conn->to()->incoming()) {
          if (incoming == conn) {
            linked_back = true;
            break;
          }
        }
        if (!linked_back) {
          Fail("connection missing from target's incoming list at atomic part " +
               std::to_string(atom->id()));
        }
      }
    }
    // Reachability: the ring connection built at creation guarantees the
    // whole graph is reachable from the root part.
    std::unordered_set<AtomicPart*> seen;
    std::vector<AtomicPart*> stack{part->root_part()};
    seen.insert(part->root_part());
    while (!stack.empty()) {
      AtomicPart* atom = stack.back();
      stack.pop_back();
      for (Connection* conn : atom->outgoing()) {
        if (seen.insert(conn->to()).second) {
          stack.push_back(conn->to());
        }
      }
    }
    if (seen.size() != atoms.size()) {
      Fail("atomic part graph not fully reachable for composite part " +
           std::to_string(part->id()));
    }
  }

  void CheckIndexes() {
    // Assembly indexes match the tree walk exactly.
    std::unordered_set<int64_t> complex_ids;
    for (ComplexAssembly* complex : complexes_) {
      complex_ids.insert(complex->id());
      if (dh_.complex_assembly_id_index().Lookup(complex->id()) != complex) {
        Fail("complex assembly missing from its index: " + std::to_string(complex->id()));
      }
    }
    if (dh_.complex_assembly_id_index().Size() !=
        static_cast<int64_t>(complex_ids.size())) {
      Fail("complex assembly index has stale entries");
    }
    std::unordered_set<int64_t> base_ids;
    for (BaseAssembly* base : bases_) {
      base_ids.insert(base->id());
      if (dh_.base_assembly_id_index().Lookup(base->id()) != base) {
        Fail("base assembly missing from its index: " + std::to_string(base->id()));
      }
    }
    if (dh_.base_assembly_id_index().Size() != static_cast<int64_t>(base_ids.size())) {
      Fail("base assembly index has stale entries");
    }

    // Atomic part indexes: every live part under both keys, nothing extra.
    int64_t live_atoms = 0;
    dh_.composite_part_id_index().ForEach(
        [this, &live_atoms](const int64_t&, CompositePart* const& part) {
          for (AtomicPart* atom : part->parts()) {
            ++live_atoms;
            if (dh_.atomic_part_id_index().Lookup(atom->id()) != atom) {
              Fail("atomic part missing from id index: " + std::to_string(atom->id()));
            }
            if (dh_.atomic_part_date_index().Lookup(
                    MakeDateKey(atom->build_date(), atom->id())) != atom) {
              Fail("atomic part missing from date index under current date: " +
                   std::to_string(atom->id()));
            }
          }
          return true;
        });
    if (dh_.atomic_part_id_index().Size() != live_atoms) {
      Fail("atomic part id index has stale entries");
    }
    if (dh_.atomic_part_date_index().Size() != live_atoms) {
      Fail("atomic part date index has stale entries");
    }
    if (dh_.document_title_index().Size() != report_.composite_parts) {
      Fail("document title index size mismatch");
    }
  }

  void CheckIdPools() {
    auto check_pool = [this](IdPool& pool, int64_t live, const char* name) {
      if (pool.Available() + live != pool.capacity()) {
        Fail(std::string("id pool accounting broken for ") + name);
      }
    };
    check_pool(dh_.composite_part_ids(), report_.composite_parts, "composite parts");
    check_pool(dh_.atomic_part_ids(), report_.atomic_parts, "atomic parts");
    check_pool(dh_.base_assembly_ids(), report_.base_assemblies, "base assemblies");
    check_pool(dh_.complex_assembly_ids(), report_.complex_assemblies, "complex assemblies");
  }

  DataHolder& dh_;
  InvariantReport report_;
  std::vector<ComplexAssembly*> complexes_;
  std::vector<BaseAssembly*> bases_;
};

}  // namespace

InvariantReport CheckInvariants(DataHolder& dh) {
  SB7_CHECK(CurrentTx() == nullptr);
  return Checker(dh).Run();
}

uint64_t StructureChecksum(DataHolder& dh) {
  SB7_CHECK(CurrentTx() == nullptr);
  uint64_t sum = 0;

  // Composite parts, their graphs and documents (order-independent fold).
  dh.composite_part_id_index().ForEach([&sum](const int64_t& id, CompositePart* const& part) {
    uint64_t h = MixHash(static_cast<uint64_t>(id) * 3 + 1);
    h ^= MixHash(static_cast<uint64_t>(part->build_date()));
    h ^= HashString(part->documentation()->text());
    uint64_t atoms = 0;
    for (AtomicPart* atom : part->parts()) {
      uint64_t a = MixHash(static_cast<uint64_t>(atom->id()) * 5 + 2);
      a ^= MixHash(static_cast<uint64_t>(atom->build_date()) + 0x1111);
      a ^= MixHash(static_cast<uint64_t>(atom->x()) + 0x2222);
      a ^= MixHash(static_cast<uint64_t>(atom->y()) * 7 + 0x3333);
      atoms += a;
    }
    h ^= MixHash(atoms);
    uint64_t links = 0;
    part->used_in().ForEach(
        [&links](BaseAssembly* base) { links += MixHash(static_cast<uint64_t>(base->id())); });
    h ^= MixHash(links + 0x4444);
    sum += h;
    return true;
  });

  // Assembly tree.
  auto walk = [&sum](auto&& self, Assembly* assembly) -> void {
    uint64_t h = MixHash(static_cast<uint64_t>(assembly->id()) * 11 + 3);
    h ^= MixHash(static_cast<uint64_t>(assembly->build_date()) + 0x5555);
    h ^= MixHash(static_cast<uint64_t>(assembly->level()) + 0x6666);
    sum += h;
    if (!assembly->is_base()) {
      static_cast<ComplexAssembly*>(assembly)->sub_assemblies().ForEach(
          [&self](Assembly* child) { self(self, child); });
    }
  };
  walk(walk, dh.module()->design_root());

  sum += HashString(dh.manual()->text());
  return sum;
}

}  // namespace sb7
