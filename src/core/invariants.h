// Structure invariant checking and whole-structure checksumming.
//
// The checker validates every cross-link and index the benchmark maintains;
// integration tests run it after multi-threaded workloads to prove that the
// strategy under test preserved atomicity. The checksum folds all mutable
// and structural state into one value; cross-backend equivalence tests use
// it to show that identically seeded runs under different strategies produce
// identical structures.
//
// Both entry points must be called from a quiescent state (no transaction
// installed, no concurrent workers).

#ifndef STMBENCH7_SRC_CORE_INVARIANTS_H_
#define STMBENCH7_SRC_CORE_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/data_holder.h"

namespace sb7 {

struct InvariantReport {
  std::vector<std::string> violations;
  // Live-object tallies gathered during the walk (useful in tests).
  int64_t complex_assemblies = 0;
  int64_t base_assemblies = 0;
  int64_t composite_parts = 0;
  int64_t atomic_parts = 0;

  bool ok() const { return violations.empty(); }
};

// Walks the full structure and all indexes. Checks, among others:
//  * tree shape: child levels, parent back-links, root at the top level;
//  * bidirectional consistency of base-assembly <-> composite-part bags
//    (pairwise multiplicities match);
//  * per-graph integrity: part_of back-links, connection endpoint links,
//    reachability of every atomic part from the root part;
//  * all six indexes agree exactly with the live structure (including the
//    date index tracking current build dates);
//  * id pools: live count + available == capacity.
InvariantReport CheckInvariants(DataHolder& dh);

// Order-independent structural checksum (ids, dates, x/y, text hashes,
// link multiset hashes).
uint64_t StructureChecksum(DataHolder& dh);

}  // namespace sb7

#endif  // STMBENCH7_SRC_CORE_INVARIANTS_H_
