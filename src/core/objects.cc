#include "src/core/objects.h"

namespace sb7 {

void AtomicPart::set_part_of(CompositePart* part) {
  part_of_ = part;
  unit().set_cover(&part->unit());
}

void Document::set_part(CompositePart* part) {
  part_ = part;
  unit().set_cover(&part->unit());
}

int64_t Document::TogglePhrase() {
  const std::string& body = text_.Get();
  auto [replaced, count] = ReplaceAll(body, "I am", "This is");
  if (count == 0) {
    std::tie(replaced, count) = ReplaceAll(body, "This is", "I am");
  }
  if (count > 0) {
    text_.Set(std::move(replaced));
  }
  return count;
}

int64_t Manual::ToggleCase() {
  const std::string& body = text_.Get();
  auto [replaced, count] = ReplaceChar(body, 'I', 'i');
  if (count == 0) {
    std::tie(replaced, count) = ReplaceChar(body, 'i', 'I');
  }
  if (count > 0) {
    text_.Set(std::move(replaced));
  }
  return count;
}

}  // namespace sb7
