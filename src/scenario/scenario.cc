#include "src/scenario/scenario.h"

#include <fstream>
#include <sstream>

#include "src/common/text.h"

namespace sb7 {
namespace {

bool ParseOnOff(const std::string& text, bool& out) {
  if (text == "on" || text == "true" || text == "1") {
    out = true;
    return true;
  }
  if (text == "off" || text == "false" || text == "0") {
    out = false;
    return true;
  }
  return false;
}

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

PhaseSpec MakePhase(std::string name, double weight) {
  PhaseSpec phase;
  phase.name = std::move(name);
  phase.duration_weight = weight;
  return phase;
}

// Validates a completed scenario; returns an error message or "".
std::string Validate(const Scenario& scenario) {
  if (scenario.phases.empty()) {
    return "scenario '" + scenario.name + "' has no phases";
  }
  for (const PhaseSpec& phase : scenario.phases) {
    const std::string where = "phase '" + phase.name + "': ";
    if (phase.duration_weight <= 0.0) {
      return where + "duration weight must be positive";
    }
    if (phase.read_fraction.has_value() &&
        (*phase.read_fraction < 0.0 || *phase.read_fraction > 1.0)) {
      return where + "read_fraction must lie in [0,1]";
    }
    if (phase.threads.has_value() && *phase.threads < 1) {
      return where + "threads must be positive";
    }
    if (phase.arrival != ArrivalModel::kClosed && phase.rate_ops_per_sec <= 0.0) {
      return where + "open-loop arrival needs rate > 0";
    }
    if (phase.burst_size < 1) {
      return where + "burst size must be positive";
    }
    if (phase.zipf_theta < 0.0 || phase.zipf_theta >= 1.0) {
      return where + "zipf theta must lie in [0,1)";
    }
    if (phase.hot_fraction <= 0.0 || phase.hot_fraction > 1.0) {
      return where + "hot_fraction must lie in (0,1]";
    }
  }
  return "";
}

}  // namespace

std::string_view ArrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kClosed:
      return "closed";
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kBursty:
      return "bursty";
  }
  return "closed";
}

double Scenario::TotalWeight() const {
  double total = 0.0;
  for (const PhaseSpec& phase : phases) {
    total += phase.duration_weight;
  }
  return total;
}

namespace {

std::vector<PhaseSpec> MakeSteadyRead() {
  // Mixed warm-up, then a long read-heavy steady state — the paper's
  // read-dominated workload with an explicit cache/snapshot warm-up.
  PhaseSpec warmup = MakePhase("warmup", 1.0);
  warmup.read_fraction = 0.6;
  PhaseSpec steady = MakePhase("steady", 4.0);
  steady.read_fraction = 0.9;
  return {warmup, steady};
}

std::vector<PhaseSpec> MakeWriteStorm() {
  // Read-heavy steady state interrupted by a write storm concentrated on a
  // hot set, then recovery; stresses speculative read optimizations.
  PhaseSpec steady = MakePhase("steady", 2.0);
  steady.read_fraction = 0.9;
  PhaseSpec storm = MakePhase("storm", 1.0);
  storm.read_fraction = 0.1;
  storm.zipf_theta = 0.8;
  PhaseSpec recover = MakePhase("recover", 1.0);
  recover.read_fraction = 0.9;
  return {steady, storm, recover};
}

std::vector<PhaseSpec> MakeDiurnal() {
  // A day of traffic: open-loop Poisson arrivals whose rate follows the
  // sun, with the mix turning writier in the evening.
  PhaseSpec morning = MakePhase("morning", 1.0);
  morning.read_fraction = 0.9;
  morning.arrival = ArrivalModel::kPoisson;
  morning.rate_ops_per_sec = 1000.0;
  PhaseSpec midday = MakePhase("midday", 1.0);
  midday.read_fraction = 0.6;
  midday.arrival = ArrivalModel::kPoisson;
  midday.rate_ops_per_sec = 4000.0;
  PhaseSpec evening = MakePhase("evening", 1.0);
  evening.read_fraction = 0.3;
  evening.arrival = ArrivalModel::kBursty;
  evening.rate_ops_per_sec = 2000.0;
  evening.burst_size = 64;
  PhaseSpec night = MakePhase("night", 1.0);
  night.read_fraction = 0.9;
  night.arrival = ArrivalModel::kPoisson;
  night.rate_ops_per_sec = 200.0;
  return {morning, midday, evening, night};
}

std::vector<PhaseSpec> MakeHotspot() {
  // Uniform baseline, then the same mix with a strong Zipfian hotspot —
  // the contrast isolates the cost of contention concentration.
  PhaseSpec uniform = MakePhase("uniform", 1.0);
  uniform.read_fraction = 0.6;
  PhaseSpec hot = MakePhase("hot", 2.0);
  hot.read_fraction = 0.6;
  hot.zipf_theta = 0.99;
  hot.hot_fraction = 0.1;
  return {uniform, hot};
}

std::vector<PhaseSpec> MakeRamp() {
  // Thread-count ramp 1 -> 2 -> 4 -> 8 under the read-write mix; the
  // scalability figure as one phased run.
  std::vector<PhaseSpec> phases;
  for (int threads : {1, 2, 4, 8}) {
    PhaseSpec phase = MakePhase("t" + std::to_string(threads), 1.0);
    phase.read_fraction = 0.6;
    phase.threads = threads;
    phases.push_back(phase);
  }
  return phases;
}

// The single source of truth: names, help text, the error message, the
// sweep bench and lookup all derive from this table.
struct BuiltinEntry {
  const char* name;
  std::vector<PhaseSpec> (*make)();
};

constexpr BuiltinEntry kBuiltins[] = {
    {"steady-read", MakeSteadyRead}, {"write-storm", MakeWriteStorm},
    {"diurnal", MakeDiurnal},        {"hotspot", MakeHotspot},
    {"ramp", MakeRamp},
};

}  // namespace

const std::vector<std::string>& BuiltinScenarioNames() {
  static const std::vector<std::string>* names = []() {
    auto* out = new std::vector<std::string>;
    for (const BuiltinEntry& entry : kBuiltins) {
      out->push_back(entry.name);
    }
    return out;
  }();
  return *names;
}

std::string BuiltinScenarioList() {
  std::string out;
  for (const std::string& name : BuiltinScenarioNames()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

std::optional<Scenario> FindBuiltinScenario(std::string_view name) {
  for (const BuiltinEntry& entry : kBuiltins) {
    if (name == entry.name) {
      Scenario scenario;
      scenario.name = std::string(name);
      scenario.phases = entry.make();
      return scenario;
    }
  }
  return std::nullopt;
}

ScenarioParseResult ParseScenarioSpec(std::istream& in, std::string_view default_name) {
  ScenarioParseResult result;
  Scenario scenario;
  scenario.name = std::string(default_name);

  auto fail = [&result](int line_number, const std::string& message) {
    result.scenario.reset();
    result.error = "scenario spec line " + std::to_string(line_number) + ": " + message;
    return result;
  };

  std::string line;
  int line_number = 0;
  bool in_phase = false;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(line_number, "expected key=value, got '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (value.empty()) {
      return fail(line_number, "empty value for '" + key + "'");
    }

    if (key == "phase") {
      // Phase names land verbatim in CSV cells; keep them delimiter-free.
      if (value.find_first_of(",\"") != std::string::npos) {
        return fail(line_number, "phase name must not contain ',' or '\"'");
      }
      scenario.phases.push_back(MakePhase(value, 1.0));
      in_phase = true;
      continue;
    }
    if (!in_phase) {
      if (key == "name") {
        scenario.name = value;
        continue;
      }
      return fail(line_number, "'" + key + "' before the first phase= line");
    }

    PhaseSpec& phase = scenario.phases.back();
    int64_t int_value = 0;
    double float_value = 0.0;
    bool bool_value = false;
    if (key == "duration") {
      if (!ParseDouble(value, float_value) || float_value <= 0.0) {
        return fail(line_number, "duration must be a positive weight");
      }
      phase.duration_weight = float_value;
    } else if (key == "workload") {
      if (value != "r" && value != "rw" && value != "w") {
        return fail(line_number, "workload must be r, rw or w");
      }
      phase.read_fraction = ReadOnlyFraction(WorkloadTypeForName(value));
    } else if (key == "read_fraction") {
      if (!ParseDouble(value, float_value) || float_value < 0.0 || float_value > 1.0) {
        return fail(line_number, "read_fraction must lie in [0,1]");
      }
      phase.read_fraction = float_value;
    } else if (key == "traversals") {
      if (!ParseOnOff(value, bool_value)) {
        return fail(line_number, "traversals must be on or off");
      }
      phase.long_traversals = bool_value;
    } else if (key == "sms") {
      if (!ParseOnOff(value, bool_value)) {
        return fail(line_number, "sms must be on or off");
      }
      phase.structure_mods = bool_value;
    } else if (key == "disable") {
      std::istringstream ops(value);
      std::string op;
      while (std::getline(ops, op, ',')) {
        op = Trim(op);
        if (!op.empty()) {
          phase.disabled_ops.insert(op);
        }
      }
    } else if (key == "threads") {
      if (!ParseInt64(value, int_value) || int_value < 1) {
        return fail(line_number, "threads must be a positive integer");
      }
      phase.threads = static_cast<int>(int_value);
    } else if (key == "arrival") {
      if (value == "closed") {
        phase.arrival = ArrivalModel::kClosed;
      } else if (value == "poisson") {
        phase.arrival = ArrivalModel::kPoisson;
      } else if (value == "bursty") {
        phase.arrival = ArrivalModel::kBursty;
      } else {
        return fail(line_number, "arrival must be closed, poisson or bursty");
      }
    } else if (key == "rate") {
      if (!ParseDouble(value, float_value) || float_value <= 0.0) {
        return fail(line_number, "rate must be positive");
      }
      phase.rate_ops_per_sec = float_value;
    } else if (key == "burst") {
      if (!ParseInt64(value, int_value) || int_value < 1) {
        return fail(line_number, "burst must be a positive integer");
      }
      phase.burst_size = static_cast<int>(int_value);
    } else if (key == "zipf") {
      if (!ParseDouble(value, float_value) || float_value < 0.0 || float_value >= 1.0) {
        return fail(line_number, "zipf must lie in [0,1)");
      }
      phase.zipf_theta = float_value;
    } else if (key == "hot_fraction") {
      if (!ParseDouble(value, float_value) || float_value <= 0.0 || float_value > 1.0) {
        return fail(line_number, "hot_fraction must lie in (0,1]");
      }
      phase.hot_fraction = float_value;
    } else if (key == "max_ops") {
      if (!ParseInt64(value, int_value) || int_value < 0) {
        return fail(line_number, "max_ops must be a non-negative integer");
      }
      phase.max_ops = int_value;
    } else {
      return fail(line_number, "unknown key '" + key + "'");
    }
  }

  const std::string error = Validate(scenario);
  if (!error.empty()) {
    result.error = error;
    return result;
  }
  result.scenario = std::move(scenario);
  return result;
}

Scenario ComposeRandomScenario(Rng& rng, const std::vector<std::string>& op_names,
                               int max_phases, int64_t ops_per_phase, int max_threads) {
  Scenario scenario;
  scenario.name = "fuzz";
  const int phase_count = 1 + static_cast<int>(rng.NextBounded(
                                  static_cast<uint64_t>(max_phases < 1 ? 1 : max_phases)));
  for (int p = 0; p < phase_count; ++p) {
    PhaseSpec phase = MakePhase("p" + std::to_string(p), 1.0);
    phase.read_fraction = rng.NextDouble();
    phase.long_traversals = rng.NextBool(0.5);
    phase.structure_mods = rng.NextBool(0.7);
    phase.threads = 1 + static_cast<int>(rng.NextBounded(
                            static_cast<uint64_t>(max_threads < 1 ? 1 : max_threads)));
    if (rng.NextBool(0.4)) {
      phase.zipf_theta = 0.6 + 0.39 * rng.NextDouble();
      phase.hot_fraction = 0.05 + 0.2 * rng.NextDouble();
    }
    const uint64_t blacklisted = rng.NextBounded(4);  // 0..3 disabled ops
    for (uint64_t b = 0; b < blacklisted && !op_names.empty(); ++b) {
      phase.disabled_ops.insert(op_names[rng.NextBounded(op_names.size())]);
    }
    phase.max_ops = ops_per_phase;
    scenario.phases.push_back(std::move(phase));
  }
  return scenario;
}

ScenarioParseResult LoadScenario(const std::string& name_or_path) {
  if (std::optional<Scenario> builtin = FindBuiltinScenario(name_or_path)) {
    return ScenarioParseResult{std::move(builtin), ""};
  }
  std::ifstream file(name_or_path);
  if (!file) {
    ScenarioParseResult result;
    result.error = "unknown scenario '" + name_or_path +
                   "' (built-ins: " + BuiltinScenarioList() +
                   "; otherwise pass a readable spec-file path)";
    return result;
  }
  // Default the scenario name to the file's basename.
  const size_t slash = name_or_path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? name_or_path : name_or_path.substr(slash + 1);
  return ParseScenarioSpec(file, base);
}

}  // namespace sb7
