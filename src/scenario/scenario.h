/// \file
/// Declarative workload scenarios (§6 "more workloads").
///
/// A scenario is an ordered list of timed phases; the harness drives all of
/// them in one run, swapping the operation mix, pacing and hotspot skew at
/// phase boundaries without restarting worker threads. Each phase can
/// override:
///   - the workload mix: a preset (r/rw/w) or an arbitrary read fraction,
///     category switches (long traversals, structure modifications) and a
///     per-phase operation blacklist;
///   - the active thread count (a ramp: the first k of the spawned workers
///     execute, the rest idle);
///   - the arrival model: closed-loop (a worker issues its next operation
///     as soon as the previous one finishes, as the paper does), or
///     open-loop with a target aggregate rate — Poisson arrivals or bursty
///     batches. Open-loop workers queue behind their arrival schedule; the
///     harness reports queue-delay percentiles and an estimated backlog
///     peak;
///   - Zipfian hotspot selection for random ids (see common/hotspot.h).
///
/// Phase durations are relative weights: the run's total `-l` length is
/// split across phases proportionally. A phase may also cap its started
/// operations (`max_ops`), ending early when the cap is reached — that is
/// what makes fixed-seed scenario runs deterministic enough to pin in
/// tests.
///
/// Scenarios come from ~5 built-in presets or from a key=value spec file;
/// see ParseScenarioSpec for the format.

#ifndef STMBENCH7_SRC_SCENARIO_SCENARIO_H_
#define STMBENCH7_SRC_SCENARIO_SCENARIO_H_

#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/harness/workload.h"

namespace sb7 {

/// How operations arrive at the workers within a phase: closed-loop (the
/// paper's model — a worker issues its next operation as soon as the
/// previous one finishes), or open-loop Poisson / bursty arrivals against a
/// target rate.
enum class ArrivalModel { kClosed, kPoisson, kBursty };

std::string_view ArrivalModelName(ArrivalModel model);

/// One timed phase of a scenario. Unset optional fields inherit the
/// run-level configuration.
struct PhaseSpec {
  std::string name = "phase";
  /// Relative duration weight (> 0); resolved against the run length.
  double duration_weight = 1.0;

  // Mix overrides; unset fields inherit the run-level configuration.
  std::optional<double> read_fraction;  ///< in [0, 1]
  std::optional<bool> long_traversals;
  std::optional<bool> structure_mods;
  std::set<std::string> disabled_ops;  ///< merged with the run-level blacklist

  /// Thread ramp: number of active workers (unset = run-level count).
  std::optional<int> threads;

  /// Arrival model. rate_ops_per_sec is the aggregate target across all
  /// active workers; required > 0 for the open-loop models. burst_size is
  /// the batch size of the bursty model.
  ArrivalModel arrival = ArrivalModel::kClosed;
  double rate_ops_per_sec = 0.0;
  int burst_size = 32;

  /// Zipfian hotspot skew for random ids; 0 = uniform.
  double zipf_theta = 0.0;
  /// Hot-set size (share of the id space) used for the hit-rate report.
  double hot_fraction = 0.1;

  /// Optional cap on started operations in this phase; -1 = unlimited. A
  /// capped phase ends as soon as the cap is reached — what makes
  /// fixed-seed scenario runs deterministic enough to pin in tests.
  int64_t max_ops = -1;
};

/// An ordered list of timed phases, driven in one benchmark run.
struct Scenario {
  std::string name;
  std::vector<PhaseSpec> phases;

  /// Sum of the phases' duration weights.
  double TotalWeight() const;
};

/// Names of the built-in scenarios, in presentation order:
/// steady-read, write-storm, diurnal, hotspot, ramp.
const std::vector<std::string>& BuiltinScenarioNames();
/// Comma-separated BuiltinScenarioNames(), for error messages.
std::string BuiltinScenarioList();
/// Resolves a built-in scenario by name; nullopt for unknown names.
std::optional<Scenario> FindBuiltinScenario(std::string_view name);

struct ScenarioParseResult {
  std::optional<Scenario> scenario;
  std::string error;  ///< set iff scenario is empty
};

/// Parses the spec format: one `key=value` per line, `#` comments, blank
/// lines ignored. `phase=<name>` starts a new phase; keys before the first
/// phase are scenario-level (currently `name=`). Per-phase keys:
///   duration=<weight>      relative duration weight (default 1)
///   workload=r|rw|w        preset read fraction
///   read_fraction=<f>      arbitrary read fraction in [0,1]
///   traversals=on|off      long traversals
///   sms=on|off             structure modifications
///   disable=OP4,OP5        comma-separated operation blacklist
///   threads=<n>            active worker count
///   arrival=closed|poisson|bursty
///   rate=<ops/sec>         open-loop target rate
///   burst=<n>              bursty batch size
///   zipf=<theta>           hotspot skew in [0,1)
///   hot_fraction=<f>       hot-set size for reporting, in (0,1]
///   max_ops=<n>            per-phase started-operation cap
ScenarioParseResult ParseScenarioSpec(std::istream& in, std::string_view default_name);

/// Resolves `--scenario <name|file>`: built-in names first, then a spec
/// file path. Unknown names produce an error listing the valid built-ins.
ScenarioParseResult LoadScenario(const std::string& name_or_path);

/// Random phase composition for the fuzz driver (src/check/fuzz.*): draws
/// a 1..max_phases phase list with random read fractions, category
/// switches, per-phase operation blacklists (from `op_names`), thread
/// counts and hotspot skew. Deterministic in the Rng stream. Phases are
/// named "p0", "p1", ... so a shrunk subset can be named in a reproduce
/// command. Every phase is closed-loop and capped at `ops_per_phase`
/// started operations — the caps, not wall-clock, end the phases, which is
/// what keeps fixed-seed fuzz cases replayable.
Scenario ComposeRandomScenario(Rng& rng, const std::vector<std::string>& op_names,
                               int max_phases, int64_t ops_per_phase, int max_threads);

}  // namespace sb7

#endif  // STMBENCH7_SRC_SCENARIO_SCENARIO_H_
