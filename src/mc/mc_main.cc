// The sb7-mc driver: bounded deterministic exploration of the litmus
// registry (src/mc/litmus.h), with replay of recorded failing schedules.
//
// Exit codes: 0 every selected litmus matched its expectation, 1 at least
// one did not (a clean litmus failed, or a racy litmus explored clean, or a
// replay diverged), 2 usage.

#ifndef SB7_MC
#error "mc_main.cc requires an SB7_MC build (cmake -DSB7_MC=ON)"
#endif

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/text.h"
#include "src/mc/explorer.h"
#include "src/mc/litmus.h"
#include "src/mc/trace_io.h"

namespace {

std::string UsageText() {
  return R"(usage: sb7-mc [options]
  --list                 list registered litmus programs and exit
  --litmus <name>        explore one litmus (repeatable); default: all
  --smoke                restrict to the smoke tier with tight bounds
                         (CI's mc_smoke label; <60s on one core)
  --full                 lift the default bounds for a nightly-depth run
  --max-schedules <n>    execution budget per litmus
  --max-steps <n>        recorded steps per execution (then free-runs)
  --switch-bound <n>     max preemptions per schedule; -1 = unbounded
  --no-reduction         disable sleep-set reduction (soundness experiments)
  --trace-out <file>     write the first failing schedule as a replayable
                         trace (format: src/mc/trace_io.h)
  --replay <file>        replay a recorded trace instead of exploring; exit
                         0 iff the replay is faithful and reproduces the
                         recorded outcome class
  --help                 show this message
)";
}

struct Options {
  std::vector<std::string> litmus_names;
  bool list = false;
  bool smoke = false;
  bool full = false;
  bool help = false;
  std::string trace_out;
  std::string replay_path;
  sb7::mc::ExploreOptions explore;
  bool max_schedules_given = false;
  bool max_steps_given = false;
  std::string error;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  auto fail = [&options](const std::string& message) {
    if (options.error.empty()) {
      options.error = message;
    }
    return options;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg == "--litmus") {
      if (!next(value) || value.empty()) {
        return fail("--litmus requires a name (see --list)");
      }
      options.litmus_names.push_back(value);
    } else if (arg == "--max-schedules") {
      uint64_t n = 0;
      if (!next(value) || !sb7::ParseUint64(value, n) || n == 0) {
        return fail("--max-schedules requires a positive count");
      }
      options.explore.max_schedules = n;
      options.max_schedules_given = true;
    } else if (arg == "--max-steps") {
      uint64_t n = 0;
      if (!next(value) || !sb7::ParseUint64(value, n) || n == 0) {
        return fail("--max-steps requires a positive count");
      }
      options.explore.max_steps = n;
      options.max_steps_given = true;
    } else if (arg == "--switch-bound") {
      int64_t n = 0;
      if (!next(value) || !sb7::ParseInt64(value, n) || n < -1) {
        return fail("--switch-bound requires a count or -1");
      }
      options.explore.switch_bound = static_cast<int>(n);
    } else if (arg == "--no-reduction") {
      options.explore.sleep_sets = false;
    } else if (arg == "--trace-out") {
      if (!next(options.trace_out) || options.trace_out.empty()) {
        return fail("--trace-out requires a file path");
      }
    } else if (arg == "--replay") {
      if (!next(options.replay_path) || options.replay_path.empty()) {
        return fail("--replay requires a trace file path");
      }
    } else {
      return fail("unknown argument '" + arg + "' (see --help)");
    }
  }
  if (options.smoke && options.full) {
    return fail("--smoke and --full are mutually exclusive");
  }
  return options;
}

std::vector<const sb7::mc::Litmus*> SelectLitmuses(const Options& options,
                                                   std::string* error) {
  std::vector<const sb7::mc::Litmus*> selected;
  if (!options.litmus_names.empty()) {
    for (const std::string& name : options.litmus_names) {
      const sb7::mc::Litmus* litmus = sb7::mc::FindLitmus(name);
      if (!litmus) {
        *error = "no litmus named '" + name + "' (see --list)";
        return {};
      }
      selected.push_back(litmus);
    }
    return selected;
  }
  for (const sb7::mc::Litmus& litmus : sb7::mc::AllLitmuses()) {
    if (options.smoke && !litmus.smoke) {
      continue;
    }
    selected.push_back(&litmus);
  }
  return selected;
}

int RunReplay(const Options& options) {
  std::string error;
  const auto file = sb7::mc::ReadTraceFile(options.replay_path, &error);
  if (!file) {
    std::cerr << "sb7-mc: bad trace " << options.replay_path << ": " << error << "\n";
    return 2;
  }
  const sb7::mc::Litmus* litmus = sb7::mc::FindLitmus(file->litmus);
  if (!litmus) {
    std::cerr << "sb7-mc: trace names unknown litmus '" << file->litmus << "'\n";
    return 2;
  }
  std::string divergence;
  const sb7::mc::ScheduleTrace trace =
      sb7::mc::Replay(*litmus, file->steps, &divergence);
  const bool recorded_failure = file->result.rfind("ok", 0) != 0;
  std::cout << "replay " << litmus->name << ": " << trace.steps.size() << "/"
            << file->steps.size() << " recorded steps granted\n";
  if (!divergence.empty()) {
    std::cout << "  DIVERGED: " << divergence << "\n";
    return 1;
  }
  if (trace.violation) {
    std::cout << "  reproduced: " << trace.violation.detail << "\n";
  } else if (!trace.check_failure.empty()) {
    std::cout << "  reproduced: " << trace.check_failure << "\n";
  } else {
    std::cout << "  clean execution\n";
  }
  if (recorded_failure != trace.failed()) {
    std::cout << "  MISMATCH: trace recorded '" << file->result << "' but replay "
              << (trace.failed() ? "failed" : "ran clean") << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);
  if (options.help) {
    std::cout << UsageText();
    return 0;
  }
  if (!options.error.empty()) {
    std::cerr << "sb7-mc: " << options.error << "\n" << UsageText();
    return 2;
  }
  if (options.list) {
    for (const sb7::mc::Litmus& litmus : sb7::mc::AllLitmuses()) {
      std::cout << litmus.name << (litmus.expect_violation ? "  [racy]" : "  [clean]")
                << (litmus.smoke ? " [smoke]" : "") << "\n    " << litmus.summary << "\n";
    }
    return 0;
  }
  if (!options.replay_path.empty()) {
    return RunReplay(options);
  }

  // Tier defaults; explicit flags win.
  if (options.smoke && !options.max_schedules_given) {
    options.explore.max_schedules = 200;
  }
  if (options.smoke && !options.max_steps_given) {
    options.explore.max_steps = 400;
  }
  if (options.full && !options.max_schedules_given) {
    options.explore.max_schedules = 200000;
  }

  std::string error;
  const auto selected = SelectLitmuses(options, &error);
  if (!error.empty()) {
    std::cerr << "sb7-mc: " << error << "\n";
    return 2;
  }

  int mismatches = 0;
  for (const sb7::mc::Litmus* litmus : selected) {
    const sb7::mc::ExploreResult result = sb7::mc::Explore(*litmus, options.explore);
    const bool found = result.failures > 0;
    const bool ok = found == litmus->expect_violation;
    std::cout << (ok ? "PASS" : "FAIL") << " " << litmus->name << ": " << result.schedules
              << " schedules, " << result.failures << " failing, " << result.sleep_blocked
              << " sleep-blocked, " << result.truncated << " truncated"
              << (result.budget_exhausted ? " (budget exhausted)" : "") << "\n";
    if (!ok) {
      ++mismatches;
      if (litmus->expect_violation) {
        std::cout << "  expected a failing schedule; exploration was clean\n";
      }
    }
    if (result.first_failure) {
      const sb7::mc::ScheduleTrace& failure = *result.first_failure;
      std::cout << "  first failure: "
                << (failure.violation ? failure.violation.detail : failure.check_failure)
                << "\n";
      if (!options.trace_out.empty()) {
        std::string io_error;
        if (sb7::mc::WriteTraceFile(options.trace_out, failure, litmus->num_threads(),
                                    &io_error)) {
          std::cout << "  trace written to " << options.trace_out << "\n";
        } else {
          std::cerr << "sb7-mc: " << io_error << "\n";
          return 2;
        }
      }
    }
  }
  return mismatches == 0 ? 0 : 1;
}
