/// \file
/// The SyncPoint instrumentation seam for the deterministic interleaving
/// explorer (src/mc/, binary `sb7-mc`).
///
/// `sp::Atomic<T>` is a drop-in stand-in for `std::atomic<T>` used at every
/// *protocol* atomic of the STM backends: the striped lock table and global
/// version clock (src/stm/lock_table.h), the NOrec sequence lock, the
/// in-place field word and mvstm version-chain head (src/stm/field.h), and
/// the ASTM ownership/seqlock/status words. Purely observational atomics —
/// StmStats counters, the TxObserver registry, trace rings — deliberately
/// stay on `std::atomic`: they never decide protocol outcomes, and every
/// extra sync point multiplies the explorer's schedule space.
///
/// Two build modes, selected by the SB7_MC compile definition
/// (`cmake -DSB7_MC=ON`, or the `mc` preset in CMakePresets.json):
///
///   * OFF (default): `sp::Atomic` is an alias template for `std::atomic`.
///     No wrapper object, no extra load, no branch — the seam compiles to
///     exactly the raw atomics the benchmark always used. The CI perf gate
///     (`sb7-bench --compare`) pins this "costs nothing" claim.
///   * ON: every operation first reports (address, operation kind) to
///     `sp::SyncPoint`, where a cooperative scheduler (src/mc/scheduler.h)
///     may park the calling thread until the explorer grants it the next
///     step. Threads never registered with a scheduler pass straight
///     through, so structure setup and unrelated tests run undisturbed.
///
/// The wrapper mirrors the subset of the `std::atomic` interface the
/// backends use; operations default to seq_cst like `std::atomic` (the
/// in-tree lint `sb7-lint` independently forbids *call sites* in the STM
/// directories from relying on that default).

#ifndef STMBENCH7_SRC_MC_SYNC_POINT_H_
#define STMBENCH7_SRC_MC_SYNC_POINT_H_

#include <atomic>
#include <cstdint>

namespace sb7::sp {

/// What an instrumented thread is about to do at a sync point. The explorer
/// derives its dependence relation from this: two pending operations
/// conflict iff they target the same address and at least one of them
/// writes. The `kRacy*` kinds mark *modeled* plain (non-atomic) accesses in
/// mc litmus programs; a co-enabled conflicting pair involving one of them
/// is reported as a data race. `kFree` marks a modeled deallocation; any
/// later access to a freed address is reported as a use-after-free.
enum class OpKind : uint8_t {
  kLoad = 0,
  kStore,
  kRmw,        // fetch_add / exchange / compare_exchange
  kRacyLoad,   // modeled non-atomic read (litmus models only)
  kRacyStore,  // modeled non-atomic write (litmus models only)
  kFree,       // modeled deallocation (litmus models only)
  kYield,      // scheduling point with no memory effect (backoff, spin)
};

constexpr bool IsWriteKind(OpKind kind) {
  return kind == OpKind::kStore || kind == OpKind::kRmw || kind == OpKind::kRacyStore ||
         kind == OpKind::kFree;
}

constexpr bool IsRacyKind(OpKind kind) {
  return kind == OpKind::kRacyLoad || kind == OpKind::kRacyStore;
}

constexpr const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kRmw:
      return "rmw";
    case OpKind::kRacyLoad:
      return "racy-load";
    case OpKind::kRacyStore:
      return "racy-store";
    case OpKind::kFree:
      return "free";
    case OpKind::kYield:
      return "yield";
  }
  return "?";
}

#ifdef SB7_MC

/// Reports an imminent operation on `addr` to the active cooperative
/// scheduler, parking the calling thread until it is granted the step.
/// Pass-through for threads not registered with a scheduler. Defined in
/// src/mc/scheduler.cc.
void SyncPoint(const void* addr, OpKind kind);

/// True when the calling thread is under cooperative scheduling; used by
/// Backoff::Pause to replace real spinning/sleeping with one deterministic
/// yield sync point (wall-clock waits would only slow exploration — the
/// scheduler already decides who runs).
bool UnderMcScheduler();

/// Instrumented atomic: `std::atomic<T>` plus a SyncPoint before every
/// operation. Only the operations the STM backends use are mirrored.
template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept : value_(T{}) {}
  constexpr Atomic(T desired) noexcept : value_(desired) {}  // NOLINT(google-explicit-constructor): mirrors std::atomic
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    SyncPoint(this, OpKind::kLoad);
    return value_.load(order);
  }
  void store(T desired, std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kStore);
    value_.store(desired, order);
  }
  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kRmw);
    return value_.exchange(desired, order);
  }
  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kRmw);
    return value_.fetch_add(arg, order);
  }
  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kRmw);
    return value_.fetch_sub(arg, order);
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kRmw);
    return value_.compare_exchange_strong(expected, desired, order);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order = std::memory_order_seq_cst) {
    SyncPoint(this, OpKind::kRmw);
    return value_.compare_exchange_weak(expected, desired, order);
  }

 private:
  std::atomic<T> value_;
};

#else  // !SB7_MC

inline void SyncPoint(const void* /*addr*/, OpKind /*kind*/) {}
inline bool UnderMcScheduler() { return false; }

/// Zero-cost mode: the seam *is* std::atomic.
template <typename T>
using Atomic = std::atomic<T>;

#endif  // SB7_MC

using AtomicU64 = Atomic<uint64_t>;

}  // namespace sb7::sp

#endif  // STMBENCH7_SRC_MC_SYNC_POINT_H_
