/// \file
/// Replayable schedule traces: text format v1.
///
/// A failing exploration emits its schedule as a small text file that
/// `sb7-mc --replay` feeds back through the scheduler. The format is
/// line-oriented and diff-friendly — traces are meant to be committed as
/// pinned regression seeds and pasted into bug reports:
///
///     sb7-mc-trace v1
///     litmus tracer-tls-uaf
///     threads 2
///     step 0 tid 1 kind store addr slot_owner
///     step 1 tid 0 kind load addr slot_owner
///     ...
///     result uaf thread 0 load on freed state1
///
/// Addresses are written as their symbolic tag when the litmus registered
/// one (model cells always do), else as the raw pointer. Raw pointers are
/// process-specific: replay checks tids and op kinds exactly but only
/// verifies operands with symbolic tags, and reports — rather than
/// crashes on — any divergence.

#ifndef STMBENCH7_SRC_MC_TRACE_IO_H_
#define STMBENCH7_SRC_MC_TRACE_IO_H_

#ifdef SB7_MC

#include <optional>
#include <string>
#include <vector>

#include "src/mc/explorer.h"

namespace sb7::mc {

struct TraceFile {
  std::string litmus;
  int threads = 0;
  std::vector<ReplayStep> steps;
  std::string result;  // free-form outcome line ("ok", "race ...", "uaf ...")
};

/// Serializes `trace` (with `threads` from its litmus) to format v1.
std::string FormatTrace(const ScheduleTrace& trace, int threads);

/// Parses format v1. Returns nullopt and fills `error` on malformed input.
std::optional<TraceFile> ParseTrace(const std::string& text, std::string* error);

/// File helpers; false + `error` on I/O failure.
bool WriteTraceFile(const std::string& path, const ScheduleTrace& trace, int threads,
                    std::string* error);
std::optional<TraceFile> ReadTraceFile(const std::string& path, std::string* error);

}  // namespace sb7::mc

#endif  // SB7_MC
#endif  // STMBENCH7_SRC_MC_TRACE_IO_H_
