/// \file
/// Cooperative scheduler for the deterministic interleaving explorer.
///
/// One execution = N virtual threads (real std::threads) whose every
/// protocol-atomic operation first passes through sp::SyncPoint
/// (src/mc/sync_point.h). A thread reaching a sync point *publishes* the
/// operation it is about to perform — (address, OpKind) — and parks. The
/// control thread (the explorer) waits until every live thread is parked,
/// inspects the pending operations, and grants exactly one thread one step.
/// The granted thread performs its published operation and runs undisturbed
/// until its next sync point (or until it finishes). Because only one
/// virtual thread is ever unparked, the schedule — the sequence of granted
/// thread ids — fully determines the interleaving of instrumented
/// operations, which is what makes executions replayable from a trace.
///
/// The scheduler also hosts the two model-level detectors:
///
///   * data race — at a fully-parked state, a pair of pending operations on
///     the same address where at least one writes and at least one is a
///     kRacy* kind (a *modeled* plain access) is co-enabled: the memory
///     model makes no promise about their order, and the pair is reported.
///   * use-after-free — granting any operation (other than the kFree
///     itself) whose address is in the model-freed set. Litmus programs
///     model deallocation with ModelFree and reuse with ModelAlloc.
///
/// Threads never registered with a scheduler pass through sync points
/// untouched, so structure setup and ordinary tests are undisturbed even in
/// an SB7_MC build.

#ifndef STMBENCH7_SRC_MC_SCHEDULER_H_
#define STMBENCH7_SRC_MC_SCHEDULER_H_

#ifdef SB7_MC

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/mc/sync_point.h"

namespace sb7::mc {

/// A pending (published but not yet granted) operation.
struct PendingOp {
  const void* addr = nullptr;
  sp::OpKind kind = sp::OpKind::kYield;
};

/// Two operations are dependent iff they touch the same address and at
/// least one writes; yields depend on nothing. The explorer's sleep-set
/// reduction and the race detector both derive from this relation.
inline bool Dependent(const PendingOp& a, const PendingOp& b) {
  if (a.kind == sp::OpKind::kYield || b.kind == sp::OpKind::kYield) {
    return false;
  }
  if (a.addr != b.addr) {
    return false;
  }
  return sp::IsWriteKind(a.kind) || sp::IsWriteKind(b.kind);
}

/// One step of a completed or in-flight schedule.
struct ScheduleStep {
  int tid = -1;
  PendingOp op;
};

/// A detected model-level violation.
struct Violation {
  enum class Kind { kNone, kDataRace, kUseAfterFree };
  Kind kind = Kind::kNone;
  std::string detail;  // human-readable: threads, address tag, op kinds
  explicit operator bool() const { return kind != Kind::kNone; }
};

/// Drives one execution of a set of thread bodies. Single-use: construct,
/// Start, repeatedly Step/FreeRun, then Finish (joins). The control thread
/// calling Step must itself be unregistered (it passes through sync points).
class McScheduler {
 public:
  /// `bodies[i]` runs as virtual thread i.
  explicit McScheduler(std::vector<std::function<void()>> bodies);
  ~McScheduler();
  McScheduler(const McScheduler&) = delete;
  McScheduler& operator=(const McScheduler&) = delete;

  /// Spawns the threads and waits for every one to park or finish.
  void Start();

  /// Threads whose next operation is published and grantable.
  std::vector<int> EnabledThreads();

  /// The operation thread `tid` will perform when granted. Only valid for
  /// enabled threads.
  PendingOp PendingOf(int tid);

  /// True once every thread has finished.
  bool AllDone();

  /// Grants `tid` one step and waits for quiescence (all parked/finished).
  /// Returns the step actually taken. Records UAF violations.
  ScheduleStep Step(int tid);

  /// Checks the current fully-parked state for a co-enabled racy pair.
  Violation CheckRaceAtState();

  /// Runs the remaining threads round-robin (fair, deterministic) until all
  /// finish. Used to drain an execution past the step budget or a
  /// sleep-set-blocked state — executions are never abandoned mid-run, as
  /// unwinding through backend code would leave stripe locks held in the
  /// process-global lock table. Returns the number of extra steps taken;
  /// CHECK-fails if `hard_cap` steps do not finish the program (a litmus
  /// that cannot terminate under fair scheduling is a bug in the litmus).
  uint64_t FreeRun(uint64_t hard_cap);

  /// Joins all threads. Must only be called after AllDone().
  void Finish();

  /// First violation recorded during this execution, if any.
  const Violation& violation() const { return violation_; }

  /// Model heap, callable from litmus bodies (thread-safe).
  void ModelAllocAddr(const void* addr);

  // --- internal: called from sp::SyncPoint / thread wrappers ---
  void AtSyncPoint(const void* addr, sp::OpKind kind);

 private:
  void RunThread(int tid);
  bool QuiescentLocked() const;
  void RecordViolation(Violation violation);

  struct ThreadCell {
    bool started = false;
    bool parked = false;    // published an op, waiting for a grant
    bool finished = false;
    bool granted = false;   // may take its published step
    PendingOp pending;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> bodies_;
  std::vector<ThreadCell> cells_;
  std::vector<std::thread> threads_;
  std::unordered_set<const void*> freed_;
  Violation violation_;
  int free_run_cursor_ = 0;
};

/// Tags an address with a stable symbolic name for traces and violation
/// reports (litmus cells register themselves; unknown addresses print raw).
void TagAddress(const void* addr, std::string name);
std::string AddressTag(const void* addr);
void ClearAddressTags();

/// Models deallocation of `addr`: emits a kFree sync point. Later granted
/// accesses to `addr` are use-after-free until ModelAlloc re-arms it.
void ModelFree(const void* addr);

/// Models (re)allocation at `addr`: removes it from the freed set.
void ModelAlloc(const void* addr);

}  // namespace sb7::mc

#endif  // SB7_MC
#endif  // STMBENCH7_SRC_MC_SCHEDULER_H_
