/// \file
/// Bounded stateless exploration of thread interleavings.
///
/// The explorer enumerates schedules of a litmus program (src/mc/litmus.h)
/// by depth-first search over the tree of scheduling choices, re-executing
/// the program from scratch along each branch (stateless model checking: no
/// state capture, only deterministic replay of schedule prefixes).
///
/// Reduction is sleep-set based (Godefroid): after a branch `t` at a state
/// is fully explored, `t` enters the sleep set of its later siblings, and a
/// sleep set propagates along an execution, dropping members whose pending
/// operation is dependent on the chosen step. A state whose every enabled
/// thread sleeps is redundant — its executions only commute already-explored
/// ones — so the run is drained without recording new branch points.
///
/// Bounds, all optional: max schedules, max recorded steps per schedule
/// (past it the run free-runs fairly to completion and counts as
/// truncated), and a context-switch bound (branch points that would preempt
/// a still-enabled thread past the bound are not recorded). Every completed
/// execution is checked: model-level violations from the scheduler (races,
/// use-after-free), plus the litmus's own end-state predicate.

#ifndef STMBENCH7_SRC_MC_EXPLORER_H_
#define STMBENCH7_SRC_MC_EXPLORER_H_

#ifdef SB7_MC

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mc/litmus.h"
#include "src/mc/scheduler.h"

namespace sb7::mc {

struct ExploreOptions {
  uint64_t max_schedules = 10000;  // stop after this many executions
  uint64_t max_steps = 2000;       // recorded steps per execution
  int switch_bound = -1;           // max preemptions; -1 = unbounded
  bool sleep_sets = true;          // disable for reduction-soundness tests
  uint64_t free_run_hard_cap = 1u << 20;  // absolute liveness backstop
};

/// A fully-recorded schedule: the replay seed format's in-memory form.
struct ScheduleTrace {
  std::string litmus;
  std::vector<ScheduleStep> steps;
  bool truncated = false;       // hit max_steps; drained by free-run
  Violation violation;          // model-level (race / UAF)
  std::string check_failure;    // litmus end-state predicate failure, if any
  bool failed() const { return violation || !check_failure.empty(); }
};

struct ExploreResult {
  uint64_t schedules = 0;        // executions completed
  uint64_t truncated = 0;        // executions that hit the step bound
  uint64_t sleep_blocked = 0;    // runs drained at a fully-sleeping state
  uint64_t failures = 0;         // executions that failed a check
  bool budget_exhausted = false; // stopped by max_schedules
  /// First failing schedule, kept for replay emission.
  std::optional<ScheduleTrace> first_failure;
  /// Granted tids of every explored schedule, in exploration order;
  /// deterministic for a given (litmus, options) — the determinism tests
  /// compare two of these wholesale.
  std::vector<std::vector<int>> schedule_tids;
};

/// Explores `litmus` under `options`.
ExploreResult Explore(const Litmus& litmus, const ExploreOptions& options);

/// One step of a trace as read back from a trace file: addresses do not
/// survive a process boundary, so the operand is carried as its symbolic
/// tag (scheduler.h TagAddress) — raw-pointer tags are not re-checkable.
struct ReplayStep {
  int tid = -1;
  sp::OpKind kind = sp::OpKind::kYield;
  std::string addr_tag;
};

/// Replays `steps` against `litmus`: grants tids in order, verifying that
/// each granted thread's pending operation matches the recorded one (kind
/// always; address only when the recorded tag is symbolic). Returns the
/// re-executed trace; `divergence` (if non-null) receives a description of
/// the first mismatch, or stays empty when the replay is faithful. A
/// divergent replay is drained fairly, never abandoned.
ScheduleTrace Replay(const Litmus& litmus, const std::vector<ReplayStep>& steps,
                     std::string* divergence);

}  // namespace sb7::mc

#endif  // SB7_MC
#endif  // STMBENCH7_SRC_MC_EXPLORER_H_
