/// \file
/// Litmus programs for the interleaving explorer.
///
/// A litmus is a tiny concurrent program with a known expected outcome:
/// either *clean* (no schedule may produce a violation) or *racy* (at least
/// one schedule must trip a model-level detector or the end-state check).
/// Two families live here:
///
///   * model litmus — a few instrumented cells and hand-written bodies that
///     model a historical (since fixed) concurrency bug of this repo at the
///     protocol level, paired with a `-fixed` variant mirroring the actual
///     fix that must explore clean. These are the pinned regressions:
///     - astm-priority-race: the cross-thread AstmTx::Priority() read was a
///       plain int64 while the owner thread kept writing it (fixed by
///       making priority_ atomic).
///     - tracer-tls-uaf: the tracer's thread-local slot was keyed by the
///       tracer's *address*; a new tracer constructed where a destroyed one
///       lived inherited a freed state pointer through address reuse (fixed
///       by keying on a process-unique instance id — see trace/tracer.cc).
///   * STM litmus — real transactions through the real backends (tl2,
///     tinystm, norec, astm, mvstm) on a couple of shared fields, with the
///     opacity checker from src/check/ run over the recorded history of
///     every explored schedule. All STM litmus are expected clean; a
///     violation is a bug in the backend (or a regression someone is
///     hunting with `sb7-mc`).
///
/// Shared cells are allocated once per litmus (not per execution), so
/// addresses — and therefore schedules — are stable across the executions
/// of one exploration, which is what makes in-process replay exact.

#ifndef STMBENCH7_SRC_MC_LITMUS_H_
#define STMBENCH7_SRC_MC_LITMUS_H_

#ifdef SB7_MC

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sb7::mc {

struct Litmus {
  std::string name;
  std::string summary;
  /// True when exploration is *expected* to find at least one failing
  /// schedule (the litmus models a bug); false when every schedule must be
  /// clean. `sb7-mc` exits nonzero when the outcome disagrees.
  bool expect_violation = false;
  /// Part of the smoke tier (fast, bounded exploration in CI's mc_smoke).
  bool smoke = true;

  /// Runs on the control thread before each execution: resets cell values,
  /// installs per-execution observers. The control thread is unregistered,
  /// so nothing here hits a sync point.
  std::function<void()> setup;
  /// One body per virtual thread.
  std::vector<std::function<void()>> bodies;
  /// Runs on the control thread after every virtual thread finished (and
  /// before threads are joined). Returns "" when the end state is
  /// acceptable, else a description of the violation.
  std::function<std::string()> check;

  int num_threads() const { return static_cast<int>(bodies.size()); }
};

/// All registered litmus programs, model family first, then the STM family
/// in backend order. Built on first use; cells live for the process.
const std::vector<Litmus>& AllLitmuses();

/// nullptr when no litmus has that name.
const Litmus* FindLitmus(std::string_view name);

}  // namespace sb7::mc

#endif  // SB7_MC
#endif  // STMBENCH7_SRC_MC_LITMUS_H_
