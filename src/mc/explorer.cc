#include "src/mc/explorer.h"

#ifdef SB7_MC

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/common/diag.h"

namespace sb7::mc {
namespace {

// A deferred scheduling alternative: re-run the program, follow `prefix`,
// then grant `alt` with `sleep` in effect at that state. The sleep set
// already contains the siblings explored before this one (LIFO order makes
// their subtrees complete first), so the sleep-set invariant — "everything
// in the set has been explored from an equivalent state" — holds at pop.
struct BranchPoint {
  std::vector<int> prefix;
  int alt = -1;
  std::vector<int> sleep;
};

bool InSet(const std::vector<int>& set, int tid) {
  return std::find(set.begin(), set.end(), tid) != set.end();
}

// Executes one schedule. `choices` is followed verbatim; `branch_sleep` is
// the sleep set in effect when the *last* element of `choices` is granted
// (empty for the root run). Past the prefix the default policy picks the
// previous thread when possible (fewest context switches), else the lowest
// enabled non-sleeping tid, recording branch points for the skipped
// siblings. Returns the completed trace; appends new branch points.
ScheduleTrace RunOne(const Litmus& litmus, const ExploreOptions& options,
                     const std::vector<int>& choices, const std::vector<int>& branch_sleep,
                     std::vector<BranchPoint>* stack, uint64_t* sleep_blocked) {
  ScheduleTrace trace;
  trace.litmus = litmus.name;
  McScheduler scheduler(litmus.bodies);
  if (litmus.setup) {
    litmus.setup();
  }
  scheduler.Start();

  std::vector<int> sleep;
  int switches = 0;
  int last_tid = -1;
  size_t pos = 0;
  bool recording = true;
  while (!scheduler.AllDone()) {
    if (trace.steps.size() >= options.max_steps) {
      trace.truncated = true;
      scheduler.FreeRun(options.free_run_hard_cap);
      break;
    }
    scheduler.CheckRaceAtState();
    const std::vector<int> enabled = scheduler.EnabledThreads();
    SB7_CHECK(!enabled.empty());

    int chosen = -1;
    bool forced = false;
    if (pos < choices.size()) {
      chosen = choices[pos];
      forced = true;
      if (pos + 1 == choices.size()) {
        // The branch step: the deferred alternative runs under the sleep
        // set captured when its siblings were expanded.
        sleep = branch_sleep;
      }
      if (!InSet(enabled, chosen)) {
        // The prefix no longer matches the program (can only happen for a
        // replayed cross-process trace; in-process prefixes are exact).
        trace.check_failure = "schedule prefix diverged: thread not enabled";
        scheduler.FreeRun(options.free_run_hard_cap);
        break;
      }
      ++pos;
    } else {
      // Default policy among non-sleeping enabled threads.
      int best = -1;
      for (int tid : enabled) {
        if (InSet(sleep, tid)) {
          continue;
        }
        if (tid == last_tid) {
          best = tid;
          break;
        }
        if (best < 0) {
          best = tid;
        }
      }
      if (best < 0) {
        // Every enabled thread sleeps: all continuations commute into
        // already-explored schedules. Drain without recording.
        ++*sleep_blocked;
        recording = false;
        scheduler.FreeRun(options.free_run_hard_cap);
        break;
      }
      chosen = best;
      // Defer the siblings this choice passes over. Sibling k's sleep set
      // is the current one plus the siblings ordered before it (and the
      // chosen thread), per the sleep-set discipline. Push in reverse so
      // the lowest-tid sibling pops (and completes) first.
      std::vector<BranchPoint> siblings;
      std::vector<int> sibling_sleep = sleep;
      sibling_sleep.push_back(chosen);
      for (int tid : enabled) {
        if (tid == chosen || InSet(sleep, tid)) {
          continue;
        }
        const bool preempts = last_tid >= 0 && tid != last_tid && InSet(enabled, last_tid);
        if (options.switch_bound >= 0 && preempts && switches >= options.switch_bound) {
          continue;
        }
        std::vector<int> prefix;
        prefix.reserve(trace.steps.size() + 1);
        for (const ScheduleStep& step : trace.steps) {
          prefix.push_back(step.tid);
        }
        siblings.push_back(BranchPoint{std::move(prefix), tid, sibling_sleep});
        sibling_sleep.push_back(tid);
      }
      for (auto it = siblings.rbegin(); it != siblings.rend(); ++it) {
        stack->push_back(std::move(*it));
      }
    }

    // Sleep propagation: members whose pending op depends on the chosen
    // op wake up (their next run would differ from the explored one).
    const PendingOp chosen_op = scheduler.PendingOf(chosen);
    if (!forced || pos == choices.size()) {
      std::vector<int> kept;
      for (int tid : sleep) {
        if (!InSet(enabled, tid) || !Dependent(scheduler.PendingOf(tid), chosen_op)) {
          kept.push_back(tid);
        }
      }
      sleep = std::move(kept);
    }
    if (last_tid >= 0 && chosen != last_tid && InSet(enabled, last_tid)) {
      ++switches;
    }
    last_tid = chosen;
    trace.steps.push_back(scheduler.Step(chosen));
  }

  if (litmus.check && recording) {
    trace.check_failure = litmus.check();
  } else if (litmus.check) {
    // Sleep-blocked drains re-execute known interleavings; skip the
    // (redundant) end-state check but keep any race/UAF the drain hit.
    (void)litmus.check();  // still run it: checks often uninstall observers
    trace.check_failure.clear();
  }
  trace.violation = scheduler.violation();
  scheduler.Finish();
  return trace;
}

}  // namespace

ExploreResult Explore(const Litmus& litmus, const ExploreOptions& options) {
  ExploreResult result;
  std::vector<BranchPoint> stack;
  stack.push_back(BranchPoint{{}, -1, {}});
  while (!stack.empty()) {
    if (result.schedules >= options.max_schedules) {
      result.budget_exhausted = true;
      break;
    }
    BranchPoint branch = std::move(stack.back());
    stack.pop_back();
    std::vector<int> choices = branch.prefix;
    std::vector<int> effective_sleep = branch.sleep;
    if (branch.alt >= 0) {
      choices.push_back(branch.alt);
    }
    if (!options.sleep_sets) {
      effective_sleep.clear();
    }
    uint64_t sleep_blocked = 0;
    ScheduleTrace trace =
        RunOne(litmus, options, choices, effective_sleep, &stack, &sleep_blocked);
    ++result.schedules;
    result.sleep_blocked += sleep_blocked;
    if (trace.truncated) {
      ++result.truncated;
    }
    if (trace.failed()) {
      ++result.failures;
      if (!result.first_failure) {
        result.first_failure = trace;
      }
    }
    std::vector<int> tids;
    tids.reserve(trace.steps.size());
    for (const ScheduleStep& step : trace.steps) {
      tids.push_back(step.tid);
    }
    result.schedule_tids.push_back(std::move(tids));
  }
  return result;
}

ScheduleTrace Replay(const Litmus& litmus, const std::vector<ReplayStep>& steps,
                     std::string* divergence) {
  ScheduleTrace trace;
  trace.litmus = litmus.name;
  if (divergence) {
    divergence->clear();
  }
  McScheduler scheduler(litmus.bodies);
  if (litmus.setup) {
    litmus.setup();
  }
  scheduler.Start();
  const uint64_t hard_cap = 1u << 20;
  for (const ReplayStep& expected : steps) {
    if (scheduler.AllDone()) {
      if (divergence && divergence->empty()) {
        *divergence = "program finished before the trace did";
      }
      break;
    }
    scheduler.CheckRaceAtState();
    const std::vector<int> enabled = scheduler.EnabledThreads();
    if (!InSet(enabled, expected.tid)) {
      if (divergence && divergence->empty()) {
        std::ostringstream out;
        out << "step " << trace.steps.size() << ": thread " << expected.tid
            << " not enabled";
        *divergence = out.str();
      }
      break;
    }
    const PendingOp pending = scheduler.PendingOf(expected.tid);
    const bool tag_known = !expected.addr_tag.empty() && expected.addr_tag != "-" &&
                           expected.addr_tag.compare(0, 2, "0x") != 0;
    if (pending.kind != expected.kind ||
        (tag_known && AddressTag(pending.addr) != expected.addr_tag)) {
      if (divergence && divergence->empty()) {
        std::ostringstream out;
        out << "step " << trace.steps.size() << ": thread " << expected.tid
            << " pending " << sp::OpKindName(pending.kind) << "@" << AddressTag(pending.addr)
            << ", trace says " << sp::OpKindName(expected.kind) << "@" << expected.addr_tag;
        *divergence = out.str();
      }
      break;
    }
    trace.steps.push_back(scheduler.Step(expected.tid));
  }
  // Drain whatever remains — replays of violation traces usually end right
  // at the violation, with threads still live.
  if (!scheduler.AllDone()) {
    scheduler.FreeRun(hard_cap);
  }
  if (litmus.check) {
    trace.check_failure = litmus.check();
  }
  trace.violation = scheduler.violation();
  scheduler.Finish();
  return trace;
}

}  // namespace sb7::mc

#endif  // SB7_MC
