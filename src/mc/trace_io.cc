#include "src/mc/trace_io.h"

#ifdef SB7_MC

#include <fstream>
#include <sstream>

namespace sb7::mc {
namespace {

constexpr char kMagic[] = "sb7-mc-trace v1";

std::optional<sp::OpKind> KindFromName(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(sp::OpKind::kYield); ++k) {
    const auto kind = static_cast<sp::OpKind>(k);
    if (name == sp::OpKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string FormatTrace(const ScheduleTrace& trace, int threads) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "litmus " << trace.litmus << "\n";
  out << "threads " << threads << "\n";
  for (size_t i = 0; i < trace.steps.size(); ++i) {
    const ScheduleStep& step = trace.steps[i];
    out << "step " << i << " tid " << step.tid << " kind " << sp::OpKindName(step.op.kind)
        << " addr " << AddressTag(step.op.addr) << "\n";
  }
  if (trace.violation) {
    out << "result "
        << (trace.violation.kind == Violation::Kind::kDataRace ? "race" : "uaf") << " "
        << trace.violation.detail << "\n";
  } else if (!trace.check_failure.empty()) {
    out << "result check " << trace.check_failure << "\n";
  } else {
    out << "result ok\n";
  }
  return out.str();
}

std::optional<TraceFile> ParseTrace(const std::string& text, std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<TraceFile> {
    if (error) {
      *error = message;
    }
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return fail("missing magic line '" + std::string(kMagic) + "'");
  }
  TraceFile file;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "litmus") {
      fields >> file.litmus;
    } else if (keyword == "threads") {
      fields >> file.threads;
    } else if (keyword == "step") {
      uint64_t index = 0;
      std::string tid_kw, kind_kw, addr_kw, kind_name;
      ReplayStep step;
      fields >> index >> tid_kw >> step.tid >> kind_kw >> kind_name >> addr_kw >>
          step.addr_tag;
      if (!fields || tid_kw != "tid" || kind_kw != "kind" || addr_kw != "addr") {
        return fail("malformed step at line " + std::to_string(line_no));
      }
      if (index != file.steps.size()) {
        return fail("out-of-order step index at line " + std::to_string(line_no));
      }
      const auto kind = KindFromName(kind_name);
      if (!kind) {
        return fail("unknown op kind '" + kind_name + "' at line " + std::to_string(line_no));
      }
      step.kind = *kind;
      file.steps.push_back(std::move(step));
    } else if (keyword == "result") {
      std::string rest;
      std::getline(fields, rest);
      file.result = rest.empty() ? "" : rest.substr(rest.find_first_not_of(' '));
    } else {
      return fail("unknown keyword '" + keyword + "' at line " + std::to_string(line_no));
    }
  }
  if (file.litmus.empty()) {
    return fail("trace names no litmus");
  }
  return file;
}

bool WriteTraceFile(const std::string& path, const ScheduleTrace& trace, int threads,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  out << FormatTrace(trace, threads);
  out.flush();
  if (!out) {
    if (error) {
      *error = "write to " + path + " failed";
    }
    return false;
  }
  return true;
}

std::optional<TraceFile> ReadTraceFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseTrace(text.str(), error);
}

}  // namespace sb7::mc

#endif  // SB7_MC
