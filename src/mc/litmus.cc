#include "src/mc/litmus.h"

#ifdef SB7_MC

#include <memory>
#include <mutex>
#include <sstream>

#include "src/check/history.h"
#include "src/mc/scheduler.h"
#include "src/mc/sync_point.h"
#include "src/mvstm/group_commit.h"
#include "src/mvstm/mvstm.h"
#include "src/mvstm/redo_log.h"
#include "src/stm/stm.h"
#include "src/stm/stm_factory.h"

namespace sb7::mc {
namespace {

// A modeled plain (non-atomic) cell: every access announces itself with a
// kRacy* sync point, which is what the scheduler's race detector keys on.
// Model litmus use it to stand in for the plain fields historical bugs
// read across threads.
struct RacyCell {
  uint64_t value = 0;
  uint64_t Load() {
    sp::SyncPoint(this, sp::OpKind::kRacyLoad);
    return value;
  }
  void Store(uint64_t v) {
    sp::SyncPoint(this, sp::OpKind::kRacyStore);
    value = v;
  }
};

// --- model litmus: the pinned historical races -----------------------------

// The cross-thread Priority() race as shipped: the victim transaction kept
// bumping a plain open-count while contention managers on other threads
// read it during arbitration. (Fixed by making priority_ an atomic mirror;
// see AstmTx in src/stm/astm.h.)
Litmus MakeAstmPriorityRace() {
  auto priority = std::make_shared<RacyCell>();
  TagAddress(priority.get(), "astm_priority");
  Litmus litmus;
  litmus.name = "astm-priority-race";
  litmus.summary = "plain cross-thread Priority() read vs owner writes (historical bug)";
  litmus.expect_violation = true;
  litmus.setup = [priority] { priority->value = 0; };
  litmus.bodies = {
      // Victim: opens objects, bumping its investment.
      [priority] {
        priority->Store(1);
        priority->Store(2);
      },
      // A rival's contention manager sizing up the enemy.
      [priority] { (void)priority->Load(); },
  };
  litmus.check = [] { return std::string(); };
  return litmus;
}

// The fix: the mirror is atomic; arbitrary staleness is fine, tearing and
// UB are not.
Litmus MakeAstmPriorityFixed() {
  auto priority = std::make_shared<sp::AtomicU64>();
  TagAddress(priority.get(), "astm_priority");
  Litmus litmus;
  litmus.name = "astm-priority-fixed";
  litmus.summary = "atomic Priority() mirror: same protocol, no race";
  litmus.expect_violation = false;
  // mo: relaxed — mirrors the production code: a heuristic input.
  litmus.setup = [priority] { priority->store(0, std::memory_order_relaxed); };
  litmus.bodies = {
      [priority] {
        priority->store(1, std::memory_order_relaxed);
        priority->store(2, std::memory_order_relaxed);
      },
      [priority] { (void)priority->load(std::memory_order_relaxed); },
  };
  litmus.check = [] { return std::string(); };
  return litmus;
}

// The tracer TLS use-after-free as shipped: the thread-local slot was keyed
// by the tracer's *address*. Destroying a tracer freed its heap state;
// constructing the next tracer at the recycled address made stale slots
// "match", and the worker dereferenced the freed state. (Fixed by keying
// slots on a process-unique instance id; see src/trace/tracer.cc.)
struct TracerUafCells {
  sp::AtomicU64 slot_owner{0};  // worker's cached owner tag
  sp::AtomicU64 slot_state{0};  // worker's cached state index (1 = state1)
  sp::AtomicU64 state1{0};      // tracer #1's heap state
  sp::AtomicU64 state2{0};      // tracer #2's heap state
};

Litmus MakeTracerTlsUaf() {
  auto cells = std::make_shared<TracerUafCells>();
  TagAddress(&cells->slot_owner, "slot_owner");
  TagAddress(&cells->slot_state, "slot_state");
  TagAddress(&cells->state1, "state1");
  TagAddress(&cells->state2, "state2");
  Litmus litmus;
  litmus.name = "tracer-tls-uaf";
  litmus.summary = "address-keyed TLS slot survives tracer reuse (historical bug)";
  litmus.expect_violation = true;
  litmus.setup = [cells] {
    // mo: relaxed — single-threaded reset from the control thread.
    cells->slot_owner.store(1, std::memory_order_relaxed);  // tracer #1's address
    cells->slot_state.store(1, std::memory_order_relaxed);  // -> state1
    cells->state1.store(7, std::memory_order_relaxed);
    cells->state2.store(0, std::memory_order_relaxed);
  };
  litmus.bodies = {
      // Worker inside a callback: trusts the slot because the owner tag
      // equals the *current* tracer's address — which is tracer #2's too.
      [cells] {
        const uint64_t owner = cells->slot_owner.load(std::memory_order_relaxed);
        if (owner == 1) {
          if (cells->slot_state.load(std::memory_order_relaxed) == 1) {
            (void)cells->state1.load(std::memory_order_relaxed);
          }
        }
      },
      // Lifecycle: tracer #1 destroyed (state freed), tracer #2 constructed
      // at the recycled address — nothing rewrites the worker's slot.
      [cells] {
        ModelFree(&cells->state1);
        cells->state2.store(9, std::memory_order_relaxed);  // tracer #2 init
      },
  };
  litmus.check = [] { return std::string(); };
  return litmus;
}

// The fix: slots are keyed by a never-reused instance id. Tracer #2's id
// (2) can never match a slot tagged by tracer #1 (1), so the worker
// re-registers against fresh state instead of trusting the stale pointer.
Litmus MakeTracerTlsFixed() {
  auto cells = std::make_shared<TracerUafCells>();
  TagAddress(&cells->slot_owner, "slot_owner");
  TagAddress(&cells->slot_state, "slot_state");
  TagAddress(&cells->state1, "state1");
  TagAddress(&cells->state2, "state2");
  Litmus litmus;
  litmus.name = "tracer-tls-fixed";
  litmus.summary = "instance-id-keyed TLS slot: stale entries never match";
  litmus.expect_violation = false;
  litmus.setup = [cells] {
    // mo: relaxed — single-threaded reset from the control thread.
    cells->slot_owner.store(1, std::memory_order_relaxed);  // tracer #1's id
    cells->slot_state.store(1, std::memory_order_relaxed);
    cells->state1.store(7, std::memory_order_relaxed);
    cells->state2.store(0, std::memory_order_relaxed);
  };
  litmus.bodies = {
      [cells] {
        // Current tracer's id is 2; the stale slot says 1 — mismatch, so
        // the worker re-registers with the current tracer's state.
        const uint64_t owner = cells->slot_owner.load(std::memory_order_relaxed);
        if (owner == 2) {
          (void)cells->state1.load(std::memory_order_relaxed);
        } else {
          cells->slot_state.store(2, std::memory_order_relaxed);
          (void)cells->state2.load(std::memory_order_relaxed);
        }
      },
      [cells] {
        ModelFree(&cells->state1);
        cells->state2.store(9, std::memory_order_relaxed);
      },
  };
  litmus.check = [] { return std::string(); };
  return litmus;
}

// Two threads, two variables: the classic 2x2 store program whose six
// interleavings collapse under sleep sets. Kept in the registry for CLI
// experiments with --no-reduction; the reduction-soundness test builds its
// own instrumented copy.
Litmus MakeDpor2x2() {
  struct Cells {
    sp::AtomicU64 x{0}, y{0};
  };
  auto cells = std::make_shared<Cells>();
  TagAddress(&cells->x, "x");
  TagAddress(&cells->y, "y");
  Litmus litmus;
  litmus.name = "dpor-2x2";
  litmus.summary = "two threads x two stores: sleep-set reduction demo";
  litmus.expect_violation = false;
  litmus.setup = [cells] {
    // mo: relaxed — single-threaded reset from the control thread.
    cells->x.store(0, std::memory_order_relaxed);
    cells->y.store(0, std::memory_order_relaxed);
  };
  litmus.bodies = {
      [cells] {
        cells->x.store(1, std::memory_order_relaxed);
        cells->y.store(1, std::memory_order_relaxed);
      },
      [cells] {
        cells->x.store(2, std::memory_order_relaxed);
        cells->y.store(2, std::memory_order_relaxed);
      },
  };
  litmus.check = [] { return std::string(); };
  return litmus;
}

// --- STM litmus: real backends under the explorer --------------------------

class McCell : public TmObject {
 public:
  explicit McCell(int64_t initial = 0) : value(unit(), initial) {}
  TxField<int64_t> value;
};

struct StmCells {
  explicit StmCells(std::string_view backend) : stm(MakeStm(backend)) {}
  std::unique_ptr<Stm> stm;
  McCell x, y;
  std::unique_ptr<HistoryRecorder> recorder;
  int64_t r1 = 0, r2 = 0;
};

// Opacity gate shared by every STM litmus: each explored schedule's history
// must be opaque, independent of the litmus's own end-state condition.
std::string OpacityFailure(StmCells& cells) {
  cells.recorder->Uninstall();
  const History history = cells.recorder->TakeHistory();
  const OpacityResult result = CheckOpacity(history);
  cells.recorder.reset();
  if (!result.ok()) {
    return "opacity: " + result.diagnosis;
  }
  return std::string();
}

void StmSetup(const std::shared_ptr<StmCells>& cells) {
  cells->x.value.Set(0);
  cells->y.value.Set(0);
  cells->r1 = cells->r2 = 0;
  cells->recorder = std::make_unique<HistoryRecorder>();
  cells->recorder->Install();
}

Litmus MakeStmLostUpdate(std::string_view backend) {
  auto cells = std::make_shared<StmCells>(backend);
  Litmus litmus;
  litmus.name = "stm-lost-update-" + std::string(backend);
  litmus.summary = "two concurrent x+=1 transactions must both land";
  litmus.expect_violation = false;
  litmus.setup = [cells] { StmSetup(cells); };
  const auto increment = [cells] {
    cells->stm->RunAtomically(
        [&](Transaction&) { cells->x.value.Set(cells->x.value.Get() + 1); });
  };
  litmus.bodies = {increment, increment};
  litmus.check = [cells]() -> std::string {
    if (std::string failure = OpacityFailure(*cells); !failure.empty()) {
      return failure;
    }
    const int64_t x = cells->x.value.Get();
    if (x != 2) {
      std::ostringstream out;
      out << "lost update: x == " << x << ", want 2";
      return out.str();
    }
    return std::string();
  };
  return litmus;
}

Litmus MakeStmSnapshot(std::string_view backend) {
  auto cells = std::make_shared<StmCells>(backend);
  Litmus litmus;
  litmus.name = "stm-snapshot-" + std::string(backend);
  litmus.summary = "reader never observes a half-applied x=y=1 write pair";
  litmus.expect_violation = false;
  litmus.setup = [cells] { StmSetup(cells); };
  litmus.bodies = {
      [cells] {
        cells->stm->RunAtomically([&](Transaction&) {
          cells->x.value.Set(1);
          cells->y.value.Set(1);
        });
      },
      // Read-only hint: exercises mvstm's abort-free snapshot path.
      [cells] {
        cells->stm->RunAtomically(
            [&](Transaction&) {
              cells->r1 = cells->x.value.Get();
              cells->r2 = cells->y.value.Get();
            },
            /*read_only=*/true);
      },
  };
  litmus.check = [cells]() -> std::string {
    if (std::string failure = OpacityFailure(*cells); !failure.empty()) {
      return failure;
    }
    if (cells->r1 != cells->r2) {
      std::ostringstream out;
      out << "torn snapshot: read x == " << cells->r1 << ", y == " << cells->r2;
      return out.str();
    }
    return std::string();
  };
  return litmus;
}

Litmus MakeStmIncrementPair(std::string_view backend) {
  auto cells = std::make_shared<StmCells>(backend);
  Litmus litmus;
  litmus.name = "stm-increment-pair-" + std::string(backend);
  litmus.summary = "two-location increments stay atomic under write-write conflicts";
  litmus.expect_violation = false;
  litmus.setup = [cells] { StmSetup(cells); };
  const auto bump_both = [cells] {
    cells->stm->RunAtomically([&](Transaction&) {
      cells->x.value.Set(cells->x.value.Get() + 1);
      cells->y.value.Set(cells->y.value.Get() + 1);
    });
  };
  litmus.bodies = {bump_both, bump_both};
  litmus.check = [cells]() -> std::string {
    if (std::string failure = OpacityFailure(*cells); !failure.empty()) {
      return failure;
    }
    const int64_t x = cells->x.value.Get();
    const int64_t y = cells->y.value.Get();
    if (x != 2 || y != 2) {
      std::ostringstream out;
      out << "uneven increments: x == " << x << ", y == " << y << ", want 2/2";
      return out.str();
    }
    return std::string();
  };
  return litmus;
}

// --- group-commit litmus: the durability protocol under the explorer -------

// mvstm with the group-commit sequencer attached, logging to an in-memory
// redo log. The writer and sequencer live for the litmus's whole life
// (AttachSequencer forbids detaching), so per-schedule checks work on the
// *delta* of the writer's counters; the shared log stays scannable across
// schedules because group_seq keeps incrementing contiguously.
struct GroupCommitCells {
  GroupCommitCells()
      : writer("", redo::Durability::kGroup), sequencer(&writer) {
    writer.WriteFileHeader(/*seed=*/1, "tiny", "mvstm");
    stm.AttachSequencer(&sequencer);
  }
  redo::RedoLogWriter writer;
  GroupCommitSequencer sequencer;
  MvStm stm;
  McCell x, y;
  std::unique_ptr<HistoryRecorder> recorder;
  int64_t r1 = 0, r2 = 0;
  uint64_t members_before = 0;
};

void GroupCommitSetup(const std::shared_ptr<GroupCommitCells>& cells) {
  cells->x.value.Set(0);
  cells->y.value.Set(0);
  cells->r1 = cells->r2 = 0;
  cells->members_before = cells->writer.stats().members;
  cells->recorder = std::make_unique<HistoryRecorder>();
  cells->recorder->Install();
}

// Opacity gate plus the write-ahead gate: every byte the sequencer appended
// must frame-check, and every commit that published must have reached the
// log first — under any interleaving the explorer finds.
std::string GroupCommitFailure(GroupCommitCells& cells, uint64_t want_members) {
  cells.recorder->Uninstall();
  const History history = cells.recorder->TakeHistory();
  const OpacityResult result = CheckOpacity(history);
  cells.recorder.reset();
  if (!result.ok()) {
    return "opacity: " + result.diagnosis;
  }
  if (!cells.writer.ok()) {
    return "redo writer failed: " + cells.writer.error();
  }
  const uint64_t members = cells.writer.stats().members - cells.members_before;
  if (members != want_members) {
    std::ostringstream out;
    out << "log members: got " << members << ", want " << want_members;
    return out.str();
  }
  std::vector<redo::GroupRecord> groups;
  redo::RecoverySummary summary;
  redo::ScanLog(cells.writer.memory_buffer(), &groups, &summary);
  if (!summary.header_ok || summary.corrupt || summary.torn_tail) {
    return "log scan: " + summary.detail;
  }
  if (summary.members != cells.writer.stats().members) {
    std::ostringstream out;
    out << "scan sees " << summary.members << " members, writer appended "
        << cells.writer.stats().members;
    return out.str();
  }
  return std::string();
}

Litmus MakeGroupCommitPair() {
  auto cells = std::make_shared<GroupCommitCells>();
  Litmus litmus;
  litmus.name = "mvstm-group-commit";
  litmus.summary = "two increments through the group-commit sequencer both land and log";
  litmus.expect_violation = false;
  litmus.setup = [cells] { GroupCommitSetup(cells); };
  const auto increment = [cells] {
    cells->stm.RunAtomically(
        [&](Transaction&) { cells->x.value.Set(cells->x.value.Get() + 1); });
  };
  litmus.bodies = {increment, increment};
  litmus.check = [cells]() -> std::string {
    if (std::string failure = GroupCommitFailure(*cells, /*want_members=*/2);
        !failure.empty()) {
      return failure;
    }
    const int64_t x = cells->x.value.Get();
    if (x != 2) {
      std::ostringstream out;
      out << "lost update through group commit: x == " << x << ", want 2";
      return out.str();
    }
    return std::string();
  };
  return litmus;
}

Litmus MakeGroupCommitSnapshot() {
  auto cells = std::make_shared<GroupCommitCells>();
  Litmus litmus;
  litmus.name = "mvstm-group-commit-snapshot";
  litmus.summary = "snapshot reader never sees a half-published group member";
  litmus.expect_violation = false;
  litmus.setup = [cells] { GroupCommitSetup(cells); };
  litmus.bodies = {
      // Committer: a two-location write pair driven through the sequencer —
      // publish happens only after the group record's append.
      [cells] {
        cells->stm.RunAtomically([&](Transaction&) {
          cells->x.value.Set(1);
          cells->y.value.Set(1);
        });
      },
      // Snapshot reader racing the group's publish phase.
      [cells] {
        cells->stm.RunAtomically(
            [&](Transaction&) {
              cells->r1 = cells->x.value.Get();
              cells->r2 = cells->y.value.Get();
            },
            /*read_only=*/true);
      },
  };
  litmus.check = [cells]() -> std::string {
    if (std::string failure = GroupCommitFailure(*cells, /*want_members=*/1);
        !failure.empty()) {
      return failure;
    }
    if (cells->r1 != cells->r2) {
      std::ostringstream out;
      out << "torn snapshot through group commit: read x == " << cells->r1
          << ", y == " << cells->r2;
      return out.str();
    }
    return std::string();
  };
  return litmus;
}

std::vector<Litmus> BuildAll() {
  std::vector<Litmus> all;
  all.push_back(MakeAstmPriorityRace());
  all.push_back(MakeAstmPriorityFixed());
  all.push_back(MakeTracerTlsUaf());
  all.push_back(MakeTracerTlsFixed());
  all.push_back(MakeDpor2x2());
  for (const char* backend : {"tl2", "tinystm", "norec", "astm", "mvstm"}) {
    all.push_back(MakeStmLostUpdate(backend));
    all.push_back(MakeStmSnapshot(backend));
    all.push_back(MakeStmIncrementPair(backend));
  }
  all.push_back(MakeGroupCommitPair());
  all.push_back(MakeGroupCommitSnapshot());
  return all;
}

}  // namespace

const std::vector<Litmus>& AllLitmuses() {
  static const auto* all = new std::vector<Litmus>(BuildAll());
  return *all;
}

const Litmus* FindLitmus(std::string_view name) {
  for (const Litmus& litmus : AllLitmuses()) {
    if (litmus.name == name) {
      return &litmus;
    }
  }
  return nullptr;
}

}  // namespace sb7::mc

#endif  // SB7_MC
