#include "src/mc/scheduler.h"

#ifdef SB7_MC

#include <sstream>
#include <unordered_map>

#include "src/common/diag.h"

namespace sb7::mc {
namespace {

// Which scheduler (if any) owns the calling thread. Set for virtual threads
// for the duration of their body; every other thread passes through sync
// points, which is what keeps setup code and ordinary tests unscheduled.
thread_local McScheduler* tls_scheduler = nullptr;

// Address tag registry for human-readable traces. Guarded by its own mutex:
// tags are registered from litmus setup (control thread) and read when
// formatting violations, never on the hot path of an execution.
std::mutex g_tag_mutex;
std::unordered_map<const void*, std::string>& TagMap() {
  static auto* map = new std::unordered_map<const void*, std::string>();
  return *map;
}

}  // namespace

void TagAddress(const void* addr, std::string name) {
  std::lock_guard<std::mutex> lock(g_tag_mutex);
  TagMap()[addr] = std::move(name);
}

std::string AddressTag(const void* addr) {
  if (addr == nullptr) {
    return "-";
  }
  {
    std::lock_guard<std::mutex> lock(g_tag_mutex);
    auto it = TagMap().find(addr);
    if (it != TagMap().end()) {
      return it->second;
    }
  }
  std::ostringstream out;
  out << addr;
  return out.str();
}

void ClearAddressTags() {
  std::lock_guard<std::mutex> lock(g_tag_mutex);
  TagMap().clear();
}

void ModelFree(const void* addr) { sp::SyncPoint(addr, sp::OpKind::kFree); }

void ModelAlloc(const void* addr) {
  if (tls_scheduler != nullptr) {
    tls_scheduler->ModelAllocAddr(addr);
  }
}

McScheduler::McScheduler(std::vector<std::function<void()>> bodies)
    : bodies_(std::move(bodies)), cells_(bodies_.size()) {}

McScheduler::~McScheduler() {
  // Finish() must have joined everything; a scheduler destroyed with live
  // threads would leave them parked forever.
  SB7_CHECK(threads_.empty() && "McScheduler destroyed without Finish()");
}

void McScheduler::RunThread(int tid) {
  tls_scheduler = this;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cells_[tid].started = true;
  }
  bodies_[tid]();
  tls_scheduler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cells_[tid].finished = true;
  }
  cv_.notify_all();
}

void McScheduler::AtSyncPoint(const void* addr, sp::OpKind kind) {
  // Figure out which virtual thread this is: linear scan is fine, N is tiny.
  std::unique_lock<std::mutex> lock(mutex_);
  int tid = -1;
  for (size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].get_id() == std::this_thread::get_id()) {
      tid = static_cast<int>(i);
      break;
    }
  }
  SB7_CHECK(tid >= 0 && "sync point from a thread the scheduler never spawned");
  ThreadCell& cell = cells_[tid];
  cell.pending = PendingOp{addr, kind};
  cell.parked = true;
  cell.granted = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return cell.granted; });
  cell.granted = false;
  cell.parked = false;
  // The published operation executes right after SyncPoint returns, before
  // any other thread is granted a step — the grantor waits for this thread
  // to park again (or finish) before choosing the next step.
}

bool McScheduler::QuiescentLocked() const {
  for (const ThreadCell& cell : cells_) {
    // A granted cell still reads parked=true until the thread wakes and
    // clears both flags; counting it as quiescent would let Step() return
    // before the granted operation ran. Quiescent = finished, or parked
    // with no grant outstanding.
    if (!cell.finished && !(cell.started && cell.parked && !cell.granted)) {
      return false;
    }
  }
  return true;
}

void McScheduler::Start() {
  threads_.reserve(bodies_.size());
  {
    // Hold the lock across the spawn loop: a thread that races to its first
    // sync point must find its own entry in threads_ when it scans for its
    // tid, so the ids are stable before anyone can look.
    std::unique_lock<std::mutex> lock(mutex_);
    for (size_t i = 0; i < bodies_.size(); ++i) {
      threads_.emplace_back(&McScheduler::RunThread, this, static_cast<int>(i));
    }
    cv_.wait(lock, [&] { return QuiescentLocked(); });
  }
}

std::vector<int> McScheduler::EnabledThreads() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> enabled;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].finished && cells_[i].parked) {
      enabled.push_back(static_cast<int>(i));
    }
  }
  return enabled;
}

PendingOp McScheduler::PendingOf(int tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_[tid].pending;
}

bool McScheduler::AllDone() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ThreadCell& cell : cells_) {
    if (!cell.finished) {
      return false;
    }
  }
  return true;
}

ScheduleStep McScheduler::Step(int tid) {
  std::unique_lock<std::mutex> lock(mutex_);
  ThreadCell& cell = cells_[tid];
  SB7_CHECK(cell.parked && !cell.finished && "granting a step to a non-enabled thread");
  const ScheduleStep step{tid, cell.pending};
  // Model heap bookkeeping happens at grant time: the operation is now
  // certain to execute, in this position of the schedule.
  if (step.op.kind == sp::OpKind::kFree) {
    freed_.insert(step.op.addr);
  } else if (step.op.addr != nullptr && step.op.kind != sp::OpKind::kYield &&
             freed_.count(step.op.addr) != 0) {
    std::ostringstream detail;
    detail << "thread " << tid << " " << sp::OpKindName(step.op.kind) << " on freed "
           << AddressTag(step.op.addr);
    RecordViolation(Violation{Violation::Kind::kUseAfterFree, detail.str()});
  }
  cell.granted = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return QuiescentLocked(); });
  return step;
}

Violation McScheduler::CheckRaceAtState() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].finished || !cells_[i].parked) {
      continue;
    }
    for (size_t j = i + 1; j < cells_.size(); ++j) {
      if (cells_[j].finished || !cells_[j].parked) {
        continue;
      }
      const PendingOp& a = cells_[i].pending;
      const PendingOp& b = cells_[j].pending;
      if (Dependent(a, b) && (sp::IsRacyKind(a.kind) || sp::IsRacyKind(b.kind))) {
        std::ostringstream detail;
        detail << "threads " << i << "/" << j << " co-enabled " << sp::OpKindName(a.kind)
               << "+" << sp::OpKindName(b.kind) << " on " << AddressTag(a.addr);
        Violation violation{Violation::Kind::kDataRace, detail.str()};
        RecordViolation(violation);
        return violation;
      }
    }
  }
  return Violation{};
}

uint64_t McScheduler::FreeRun(uint64_t hard_cap) {
  uint64_t steps = 0;
  while (!AllDone()) {
    SB7_CHECK(steps < hard_cap && "litmus did not terminate under fair scheduling");
    const std::vector<int> enabled = EnabledThreads();
    SB7_CHECK(!enabled.empty());
    // Fair round-robin: first enabled tid strictly after the last one
    // granted, wrapping. Fairness is what guarantees STM retry loops and
    // spin-waits terminate — the thread being waited on always runs again.
    int chosen = enabled.front();
    for (int tid : enabled) {
      if (tid > free_run_cursor_) {
        chosen = tid;
        break;
      }
    }
    free_run_cursor_ = chosen;
    Step(chosen);
    ++steps;
  }
  return steps;
}

void McScheduler::Finish() {
  SB7_CHECK(AllDone() && "Finish() before all virtual threads completed");
  for (std::thread& thread : threads_) {
    thread.join();
  }
  threads_.clear();
}

void McScheduler::RecordViolation(Violation violation) {
  if (!violation_) {
    violation_ = std::move(violation);
  }
}

void McScheduler::ModelAllocAddr(const void* addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  freed_.erase(addr);
}

}  // namespace sb7::mc

namespace sb7::sp {

void SyncPoint(const void* addr, OpKind kind) {
  if (mc::tls_scheduler != nullptr) {
    mc::tls_scheduler->AtSyncPoint(addr, kind);
  }
}

bool UnderMcScheduler() { return mc::tls_scheduler != nullptr; }

}  // namespace sb7::sp

#endif  // SB7_MC
