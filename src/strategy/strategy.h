// Synchronization strategies (§4 of the paper).
//
// A strategy makes one operation execution atomic:
//   * coarse  — a single global read-write lock (read mode for read-only
//               operations, write mode otherwise);
//   * medium  — the paper's Figure-5 design: one read-write lock per assembly
//               level, one each for composite parts, atomic parts, documents
//               and the manual, plus a structure-modification lock taken in
//               write mode by SM operations and read mode by everything else.
//               Locks are acquired in a fixed global order (LockId order), so
//               the strategy is deadlock-free by construction;
//   * stm     — one flat transaction per operation, over any Stm flavour.
//
// The failure semantics are uniform: OperationFailed propagates to the
// caller as a committed outcome under every strategy.

#ifndef STMBENCH7_SRC_STRATEGY_STRATEGY_H_
#define STMBENCH7_SRC_STRATEGY_STRATEGY_H_

#include <memory>
#include <string_view>

#include "src/ops/operation.h"
#include "src/stm/stm.h"
#include "src/sync/rwlock.h"

namespace sb7 {

class SyncStrategy {
 public:
  virtual ~SyncStrategy() = default;

  virtual std::string_view name() const = 0;

  // Executes `op` atomically; returns the operation's result value. Throws
  // OperationFailed when the operation failed (a committed outcome).
  virtual int64_t Execute(const Operation& op, DataHolder& dh, Rng& rng) = 0;

  // Non-null for STM strategies; used by reports to surface STM statistics.
  virtual Stm* stm() { return nullptr; }
};

class CoarseLockStrategy : public SyncStrategy {
 public:
  std::string_view name() const override { return "coarse"; }
  int64_t Execute(const Operation& op, DataHolder& dh, Rng& rng) override;

  RwLock& lock() { return lock_; }

 private:
  RwLock lock_;
};

class MediumLockStrategy : public SyncStrategy {
 public:
  std::string_view name() const override { return "medium"; }
  int64_t Execute(const Operation& op, DataHolder& dh, Rng& rng) override;

  RwLock& lock(LockId id) { return locks_[id]; }

 private:
  RwLock locks_[kLockCount];
};

class StmStrategy : public SyncStrategy {
 public:
  explicit StmStrategy(std::unique_ptr<Stm> stm);

  std::string_view name() const override { return stm_->name(); }
  int64_t Execute(const Operation& op, DataHolder& dh, Rng& rng) override;
  Stm* stm() override { return stm_.get(); }

 private:
  std::unique_ptr<Stm> stm_;
};

// "coarse" | "medium" | "fine" | "tl2" | "tinystm" | "norec" | "astm" |
// "mvstm"; nullptr for unknown names. `contention_manager` applies to "astm"
// only.
std::unique_ptr<SyncStrategy> MakeStrategy(std::string_view name,
                                           std::string_view contention_manager = "polka");

// The index implementation each strategy uses by default: std::map under
// locks (the java.util analogue), the naive single-object snapshot under the
// ASTM port (§5's configuration), node-granular skip lists under the word
// STMs (tl2, tinystm, norec, mvstm).
IndexKind DefaultIndexKindFor(std::string_view strategy_name);

}  // namespace sb7

#endif  // STMBENCH7_SRC_STRATEGY_STRATEGY_H_
