// Fine-grained locking strategy — the paper's "future work" baseline.
//
// §4 sketches the design and its difficulty: "there is a need for each
// operation to build a list of objects it wants to access, sort the list and
// then acquire locks in the right order to avoid deadlocks". This strategy
// implements exactly that, made sound by three observations:
//
//  1. *Topology is stable for non-SM operations.* Structure-modification
//     operations hold the structure lock in write mode and everything else
//     holds it in read mode (as in the medium strategy), so links, bags and
//     children sets cannot change while a non-SM operation plans or runs.
//  2. *Plans are replayable.* Every random choice flows from the operation's
//     RNG; planning runs on a **copy** of the RNG, so the real execution
//     makes identical choices and touches exactly the planned objects. Plans
//     never read mutable attributes — operations whose object set depends on
//     attribute values (date predicates: Q6, ST5, OP2/3/10, and the whole-
//     structure traversals) use conservative superset plans instead.
//  3. *Lockable units are bounded.* Locks live at the granularity the paper
//     deems sensible — composite parts (covering their atomic parts and
//     document), assemblies, and the manual ("it would probably make no
//     sense to protect each atomic part with a single lock"). Objects map to
//     a striped array of RW locks through their TmUnit's coverage chain;
//     stripes are acquired in index order, making the strategy deadlock-free
//     by total order. The build-date index is the one index with non-SM
//     writers (T3*, OP15) and gets its own lock, ordered before the stripes.
//
// An *audit mode* (used by tests) installs a pass-through Transaction that
// checks every field access against the plan, turning any planner bug into
// an immediate failure instead of a latent race.

#ifndef STMBENCH7_SRC_STRATEGY_FINE_H_
#define STMBENCH7_SRC_STRATEGY_FINE_H_

#include <unordered_map>

#include "src/strategy/strategy.h"

namespace sb7 {

// The object set an operation will touch, with access modes. Keys are
// coverage-root TmUnits (see TmUnit::Cover()).
class FinePlan {
 public:
  enum class Mode { kNone, kRead, kWrite };

  void AddRead(const TmUnit& unit) { Merge(&unit, /*write=*/false); }
  void AddWrite(const TmUnit& unit) { Merge(&unit, /*write=*/true); }
  void AddRead(const TmObject& object) { AddRead(object.unit()); }
  void AddWrite(const TmObject& object) { AddWrite(object.unit()); }

  void set_date_index_mode(Mode mode) { date_index_mode_ = mode; }
  Mode date_index_mode() const { return date_index_mode_; }

  const std::unordered_map<const TmUnit*, bool>& objects() const { return objects_; }

  // Access check used by audit mode: is `unit`'s coverage root planned, in a
  // sufficient mode?
  bool Covers(const TmUnit& unit, bool write) const {
    auto it = objects_.find(unit.Cover());
    if (it == objects_.end()) {
      return false;
    }
    return !write || it->second;
  }

 private:
  void Merge(const TmUnit* unit, bool write) {
    auto [it, inserted] = objects_.try_emplace(unit->Cover(), write);
    if (!inserted) {
      it->second = it->second || write;
    }
  }

  std::unordered_map<const TmUnit*, bool> objects_;
  Mode date_index_mode_ = Mode::kNone;
};

// Computes the plan for `op`. `rng` must be a copy of the stream the real
// execution will consume. Returns false for structure modifications (which
// run under the exclusive structure lock and need no plan).
bool PlanFineLocks(const Operation& op, DataHolder& dh, Rng rng, FinePlan& plan);

class FineLockStrategy : public SyncStrategy {
 public:
  static constexpr int kStripes = 1024;

  std::string_view name() const override { return "fine"; }
  int64_t Execute(const Operation& op, DataHolder& dh, Rng& rng) override;

  // Tests only: verify every field access against the plan while executing.
  void set_audit_mode(bool audit) { audit_mode_ = audit; }

 private:
  static int StripeOf(const TmUnit* unit);

  RwLock structure_lock_;
  RwLock date_index_lock_;
  RwLock stripes_[kStripes];
  bool audit_mode_ = false;
};

}  // namespace sb7

#endif  // STMBENCH7_SRC_STRATEGY_FINE_H_
