#include "src/strategy/strategy.h"

#include "src/mvstm/redo_log.h"
#include "src/stm/stm_factory.h"
#include "src/strategy/fine.h"

namespace sb7 {

int64_t CoarseLockStrategy::Execute(const Operation& op, DataHolder& dh, Rng& rng) {
  if (op.read_only()) {
    ReadGuard guard(lock_);
    return op.Run(dh, rng);
  }
  WriteGuard guard(lock_);
  return op.Run(dh, rng);
}

int64_t MediumLockStrategy::Execute(const Operation& op, DataHolder& dh, Rng& rng) {
  const LockSet& set = op.locks();
  // Acquire in global LockId order; write wins when both bits are set.
  for (int id = 0; id < kLockCount; ++id) {
    const uint16_t bit = static_cast<uint16_t>(1u << id);
    if (set.write & bit) {
      locks_[id].LockWrite();
    } else if (set.read & bit) {
      locks_[id].LockRead();
    }
  }
  struct Releaser {
    MediumLockStrategy* strategy;
    const LockSet& locks;
    ~Releaser() {
      for (int id = kLockCount - 1; id >= 0; --id) {
        const uint16_t bit = static_cast<uint16_t>(1u << id);
        if (locks.write & bit) {
          strategy->locks_[id].UnlockWrite();
        } else if (locks.read & bit) {
          strategy->locks_[id].UnlockRead();
        }
      }
    }
  } releaser{this, set};
  return op.Run(dh, rng);
}

StmStrategy::StmStrategy(std::unique_ptr<Stm> stm) : stm_(std::move(stm)) {
  SB7_CHECK(stm_ != nullptr);
}

int64_t StmStrategy::Execute(const Operation& op, DataHolder& dh, Rng& rng) {
  int64_t result = 0;
  // OperationFailed thrown by the body propagates out of RunAtomically only
  // after the enclosing transaction commits (see Stm::RunAtomically). The
  // operation's read-only flag routes traversals onto the snapshot path of
  // multi-version backends.
  const bool capture = !op.read_only() && stm_->wants_replay_capture();
  stm_->RunAtomically(
      [&](Transaction&) {
        if (capture) {
          // Snapshot the replay context at the top of *every* attempt: the
          // committed attempt's snapshot becomes the redo-log member record
          // (src/mvstm/redo_log.h). Must precede the first rng draw.
          redo::CaptureAttemptContext(rng);
        }
        result = op.Run(dh, rng);
      },
      op.read_only());
  return result;
}

std::unique_ptr<SyncStrategy> MakeStrategy(std::string_view name,
                                           std::string_view contention_manager) {
  if (name == "coarse") {
    return std::make_unique<CoarseLockStrategy>();
  }
  if (name == "medium") {
    return std::make_unique<MediumLockStrategy>();
  }
  if (name == "fine") {
    return std::make_unique<FineLockStrategy>();
  }
  auto stm = MakeStm(name, contention_manager);
  if (stm != nullptr) {
    return std::make_unique<StmStrategy>(std::move(stm));
  }
  return nullptr;
}

IndexKind DefaultIndexKindFor(std::string_view strategy_name) {
  if (strategy_name == "coarse" || strategy_name == "medium" || strategy_name == "fine") {
    return IndexKind::kStdMap;
  }
  if (strategy_name == "astm") {
    return IndexKind::kSnapshot;
  }
  return IndexKind::kSkipList;
}

}  // namespace sb7
