#include "src/strategy/fine.h"

#include <algorithm>
#include <vector>

#include "src/ops/traversal_helpers.h"

namespace sb7 {
namespace {

// --- plan-building helpers -------------------------------------------------

void AddAllCompositeParts(DataHolder& dh, FinePlan& plan, bool write) {
  dh.composite_part_id_index().ForEach(
      [&plan, write](const int64_t&, CompositePart* const& part) {
        if (write) {
          plan.AddWrite(*part);
        } else {
          plan.AddRead(*part);
        }
        return true;
      });
}

void AddAllBaseAssemblies(DataHolder& dh, FinePlan& plan, bool write) {
  dh.base_assembly_id_index().ForEach(
      [&plan, write](const int64_t&, BaseAssembly* const& base) {
        if (write) {
          plan.AddWrite(*base);
        } else {
          plan.AddRead(*base);
        }
        return true;
      });
}

void AddAllComplexAssemblies(DataHolder& dh, FinePlan& plan, bool write) {
  dh.complex_assembly_id_index().ForEach(
      [&plan, write](const int64_t&, ComplexAssembly* const& assembly) {
        if (write) {
          plan.AddWrite(*assembly);
        } else {
          plan.AddRead(*assembly);
        }
        return true;
      });
}

// Replays the random root-to-composite-part walk of ST1/ST2/ST6/ST7/ST9/ST10
// (see ops/short_traversals.cc) on the planner's RNG copy; the walk reads
// only topology. Returns nullptr when the real run will fail.
CompositePart* ReplayRandomPath(DataHolder& dh, Rng& rng) {
  Assembly* node = dh.module()->design_root();
  while (!node->is_base()) {
    auto* complex = static_cast<ComplexAssembly*>(node);
    const int64_t n = complex->sub_assemblies().Size();
    node = complex->sub_assemblies().Get(static_cast<int64_t>(rng.NextBounded(n)));
  }
  auto* base = static_cast<BaseAssembly*>(node);
  const int64_t parts = base->components().Size();
  if (parts == 0) {
    return nullptr;
  }
  return base->components().Get(static_cast<int64_t>(rng.NextBounded(parts)));
}

void PlanPathOp(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  if (CompositePart* part = ReplayRandomPath(dh, rng)) {
    if (write) {
      plan.AddWrite(*part);
    } else {
      plan.AddRead(*part);
    }
  }
}

// ST3 / ST8: bottom-up walk; visits each complex assembly once.
void PlanBottomUp(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  AtomicPart* atom = dh.atomic_part_id_index().Lookup(RandomId(dh.atomic_part_ids(), rng));
  if (atom == nullptr) {
    return;  // the real run fails identically
  }
  std::unordered_set<ComplexAssembly*> seen;
  atom->part_of()->used_in().ForEach([&](BaseAssembly* base) {
    for (ComplexAssembly* up = base->super_assembly(); up != nullptr;
         up = up->super_assembly()) {
      if (!seen.insert(up).second) {
        break;
      }
      if (write) {
        plan.AddWrite(*up);
      } else {
        plan.AddRead(*up);
      }
    }
  });
}

// ST4: 100 title probes; reads the base assemblies above each found part.
void PlanTitleLookups(DataHolder& dh, Rng& rng, FinePlan& plan) {
  for (int i = 0; i < 100; ++i) {
    const int64_t part_id = RandomId(dh.composite_part_ids(), rng);
    Document* doc = dh.document_title_index().Lookup(DataHolder::DocumentTitleFor(part_id));
    if (doc == nullptr) {
      continue;
    }
    doc->part()->used_in().ForEach([&plan](BaseAssembly* base) { plan.AddRead(*base); });
  }
}

// OP1 / OP9 / OP15: ten id probes; touches the owning composite parts.
void PlanTenRandomParts(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  for (int i = 0; i < 10; ++i) {
    AtomicPart* atom = dh.atomic_part_id_index().Lookup(RandomId(dh.atomic_part_ids(), rng));
    if (atom == nullptr) {
      continue;
    }
    if (write) {
      plan.AddWrite(*atom->part_of());
    } else {
      plan.AddRead(*atom->part_of());
    }
  }
}

// OP6 / OP12: the random complex assembly's siblings (or the root itself).
void PlanComplexSiblings(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  ComplexAssembly* assembly =
      dh.complex_assembly_id_index().Lookup(RandomId(dh.complex_assembly_ids(), rng));
  if (assembly == nullptr) {
    return;
  }
  auto add = [&plan, write](Assembly* target) {
    if (write) {
      plan.AddWrite(*target);
    } else {
      plan.AddRead(*target);
    }
  };
  ComplexAssembly* parent = assembly->super_assembly();
  if (parent == nullptr) {
    add(assembly);
    return;
  }
  parent->sub_assemblies().ForEach([&add](Assembly* sibling) { add(sibling); });
}

// OP7 / OP13: the random base assembly's siblings.
void PlanBaseSiblings(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  BaseAssembly* base = dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
  if (base == nullptr) {
    return;
  }
  base->super_assembly()->sub_assemblies().ForEach([&plan, write](Assembly* sibling) {
    if (write) {
      plan.AddWrite(*sibling);
    } else {
      plan.AddRead(*sibling);
    }
  });
}

// OP8 / OP14: the random base assembly's composite parts.
void PlanBaseComponents(DataHolder& dh, Rng& rng, FinePlan& plan, bool write) {
  BaseAssembly* base = dh.base_assembly_id_index().Lookup(RandomId(dh.base_assembly_ids(), rng));
  if (base == nullptr) {
    return;
  }
  base->components().ForEach([&plan, write](CompositePart* part) {
    if (write) {
      plan.AddWrite(*part);
    } else {
      plan.AddRead(*part);
    }
  });
}

}  // namespace

bool PlanFineLocks(const Operation& op, DataHolder& dh, Rng rng, FinePlan& plan) {
  if (op.category() == OpCategory::kStructureModification) {
    return false;  // runs under the exclusive structure lock
  }
  const std::string& name = op.name();

  // Long traversals and date-predicate queries: conservative superset plans
  // (their exact object set depends on mutable attributes).
  if (name == "T1" || name == "T6" || name == "Q7" || name == "T4") {
    AddAllCompositeParts(dh, plan, /*write=*/false);
  } else if (name == "T2a" || name == "T2b" || name == "T2c" || name == "T5") {
    AddAllCompositeParts(dh, plan, /*write=*/true);
  } else if (name == "T3a" || name == "T3b" || name == "T3c") {
    AddAllCompositeParts(dh, plan, /*write=*/true);
    plan.set_date_index_mode(FinePlan::Mode::kWrite);
  } else if (name == "Q6") {
    AddAllCompositeParts(dh, plan, /*write=*/false);
    AddAllBaseAssemblies(dh, plan, /*write=*/false);
    AddAllComplexAssemblies(dh, plan, /*write=*/false);
  } else if (name == "ST5") {
    AddAllCompositeParts(dh, plan, /*write=*/false);
    AddAllBaseAssemblies(dh, plan, /*write=*/false);
  } else if (name == "ST1" || name == "ST2" || name == "ST9") {
    PlanPathOp(dh, rng, plan, /*write=*/false);
  } else if (name == "ST6" || name == "ST7" || name == "ST10") {
    PlanPathOp(dh, rng, plan, /*write=*/true);
  } else if (name == "ST3") {
    PlanBottomUp(dh, rng, plan, /*write=*/false);
  } else if (name == "ST8") {
    PlanBottomUp(dh, rng, plan, /*write=*/true);
  } else if (name == "ST4") {
    PlanTitleLookups(dh, rng, plan);
  } else if (name == "OP1") {
    PlanTenRandomParts(dh, rng, plan, /*write=*/false);
  } else if (name == "OP9") {
    PlanTenRandomParts(dh, rng, plan, /*write=*/true);
  } else if (name == "OP15") {
    PlanTenRandomParts(dh, rng, plan, /*write=*/true);
    plan.set_date_index_mode(FinePlan::Mode::kWrite);
  } else if (name == "OP2" || name == "OP3") {
    AddAllCompositeParts(dh, plan, /*write=*/false);
    plan.set_date_index_mode(FinePlan::Mode::kRead);
  } else if (name == "OP10") {
    AddAllCompositeParts(dh, plan, /*write=*/true);
    plan.set_date_index_mode(FinePlan::Mode::kRead);
  } else if (name == "OP4" || name == "OP5") {
    plan.AddRead(dh.manual()->unit());
  } else if (name == "OP11") {
    plan.AddWrite(dh.manual()->unit());
  } else if (name == "OP6") {
    PlanComplexSiblings(dh, rng, plan, /*write=*/false);
  } else if (name == "OP12") {
    PlanComplexSiblings(dh, rng, plan, /*write=*/true);
  } else if (name == "OP7") {
    PlanBaseSiblings(dh, rng, plan, /*write=*/false);
  } else if (name == "OP13") {
    PlanBaseSiblings(dh, rng, plan, /*write=*/true);
  } else if (name == "OP8") {
    PlanBaseComponents(dh, rng, plan, /*write=*/false);
  } else if (name == "OP14") {
    PlanBaseComponents(dh, rng, plan, /*write=*/true);
  } else {
    // Unknown operation: fall back to the most conservative plan.
    AddAllCompositeParts(dh, plan, /*write=*/true);
    AddAllBaseAssemblies(dh, plan, /*write=*/true);
    AddAllComplexAssemblies(dh, plan, /*write=*/true);
    plan.AddWrite(dh.manual()->unit());
    plan.set_date_index_mode(FinePlan::Mode::kWrite);
  }
  return true;
}

namespace {

// Pass-through transaction that checks every field access against the plan
// (audit mode). Commit hooks registered by the operation (EBR retirements,
// text swaps) run when the audited execution finishes.
class AuditTx : public Transaction {
 public:
  explicit AuditTx(const FinePlan& plan) : plan_(plan) {}

  uint64_t Read(const TxFieldBase& field) override {
    const TmUnit& unit = field.owner();
    SB7_CHECK(unit.Cover()->topology() || unit.topology() || plan_.Covers(unit, false));
    // raw-ok: the fine-lock plan covering this unit serializes the access.
    return field.LoadRaw();
  }

  void Write(TxFieldBase& field, uint64_t value) override {
    SB7_CHECK(plan_.Covers(field.owner(), true));
    // raw-ok: the fine-lock plan covering this unit serializes the access.
    field.StoreRaw(value);
  }

  void FinishCommit() { RunCommitHooks(); }

 private:
  const FinePlan& plan_;
};

}  // namespace

int FineLockStrategy::StripeOf(const TmUnit* unit) {
  static_assert(FineLockStrategy::kStripes == 1 << 10, "hash shift assumes 1024 stripes");
  const auto addr = reinterpret_cast<uintptr_t>(unit);
  const uint64_t h = (static_cast<uint64_t>(addr) >> 4) * 0x9e3779b97f4a7c15ull;
  return static_cast<int>(h >> (64 - 10));
}

int64_t FineLockStrategy::Execute(const Operation& op, DataHolder& dh, Rng& rng) {
  if (op.category() == OpCategory::kStructureModification) {
    WriteGuard guard(structure_lock_);
    return op.Run(dh, rng);
  }

  ReadGuard structure_guard(structure_lock_);

  // Plan on a copy of the RNG: the real run below replays the same choices.
  FinePlan plan;
  PlanFineLocks(op, dh, rng, plan);

  // Date index lock (the only index with non-SM writers), then the object
  // stripes in ascending order — a total order, hence deadlock freedom.
  const FinePlan::Mode date_mode = plan.date_index_mode();
  if (date_mode == FinePlan::Mode::kWrite) {
    date_index_lock_.LockWrite();
  } else if (date_mode == FinePlan::Mode::kRead) {
    date_index_lock_.LockRead();
  }

  // Stripe set: collisions merge (write wins).
  std::vector<std::pair<int, bool>> stripes;
  stripes.reserve(plan.objects().size());
  for (const auto& [unit, write] : plan.objects()) {
    stripes.emplace_back(StripeOf(unit), write);
  }
  std::sort(stripes.begin(), stripes.end());
  int count = 0;
  for (size_t i = 0; i < stripes.size(); ++i) {
    if (count > 0 && stripes[count - 1].first == stripes[i].first) {
      stripes[count - 1].second = stripes[count - 1].second || stripes[i].second;
    } else {
      stripes[count++] = stripes[i];
    }
  }
  stripes.resize(count);

  for (const auto& [stripe, write] : stripes) {
    if (write) {
      stripes_[stripe].LockWrite();
    } else {
      stripes_[stripe].LockRead();
    }
  }

  struct Releaser {
    FineLockStrategy* strategy;
    const std::vector<std::pair<int, bool>>& held;
    FinePlan::Mode date_mode;
    ~Releaser() {
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->second) {
          strategy->stripes_[it->first].UnlockWrite();
        } else {
          strategy->stripes_[it->first].UnlockRead();
        }
      }
      if (date_mode == FinePlan::Mode::kWrite) {
        strategy->date_index_lock_.UnlockWrite();
      } else if (date_mode == FinePlan::Mode::kRead) {
        strategy->date_index_lock_.UnlockRead();
      }
    }
  } releaser{this, stripes, date_mode};

  if (!audit_mode_) {
    return op.Run(dh, rng);
  }
  AuditTx audit(plan);
  SetCurrentTx(&audit);
  try {
    const int64_t result = op.Run(dh, rng);
    SetCurrentTx(nullptr);
    audit.FinishCommit();
    return result;
  } catch (...) {
    SetCurrentTx(nullptr);
    audit.FinishCommit();  // failures are committed outcomes
    throw;
  }
}

}  // namespace sb7
