// Tests for the live telemetry subsystem (src/telemetry/):
//  - ConcurrentTtcHistogram agreeing with serial recording under concurrent
//    producers, and TtcHistogram merge/delta correctness (the sampler's
//    window math),
//  - the metrics registry's Prometheus rendering,
//  - sampler determinism under the paused ManualClock seam (background off,
//    exact t_s / ops_per_s / seq),
//  - SeriesRing drop-oldest accounting,
//  - the JSONL artifact round-tripping through its own validator, and the
//    validator rejecting corrupted streams,
//  - the HTTP exposition endpoint on an ephemeral port (/metrics text,
//    /series JSON, 404),
//  - hardware-counter graceful degradation,
//  - an end-to-end driver run with telemetry enabled.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/harness/driver.h"
#include "src/perf/json.h"
#include "src/telemetry/telemetry.h"

namespace sb7 {
namespace {

using telemetry::HwSample;
using telemetry::ManualClock;
using telemetry::MetricsHttpServer;
using telemetry::MetricsRegistry;
using telemetry::RunInfo;
using telemetry::Sample;
using telemetry::SeriesRing;
using telemetry::Telemetry;
using telemetry::TelemetryOptions;

constexpr int64_t kMs = 1'000'000;  // nanos per millisecond

// ---------------------------------------------------- concurrent histogram --

TEST(ConcurrentHistogramTest, SnapshotMatchesSerialRecording) {
  ConcurrentTtcHistogram concurrent(100);
  TtcHistogram serial(100);

  // Deterministic per-thread latency streams; every value also recorded
  // serially so the two histograms should agree bucket-for-bucket.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<int64_t>> streams(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      streams[t].push_back(((t * 131 + i * 17) % 900) * kMs + i % 997);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &streams, t] {
      for (int64_t nanos : streams[t]) concurrent.Record(nanos);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& stream : streams) {
    for (int64_t nanos : stream) serial.Record(nanos);
  }

  const TtcHistogram snapshot = concurrent.Snapshot();
  EXPECT_EQ(snapshot.total_count(), serial.total_count());
  EXPECT_EQ(snapshot.sum_nanos(), serial.sum_nanos());
  EXPECT_EQ(snapshot.max_nanos(), serial.max_nanos());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(snapshot.QuantileMillis(q), serial.QuantileMillis(q)) << "q=" << q;
  }
  EXPECT_EQ(snapshot.Format(), serial.Format());
}

TEST(ConcurrentHistogramTest, SnapshotWhileRecordingStaysConsistent) {
  ConcurrentTtcHistogram histogram(100);
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Record((i++ % 50) * kMs);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const TtcHistogram snapshot = histogram.Snapshot();
    // total is derived from bucket counts, so a quantile can never land
    // outside the recorded range even mid-record.
    EXPECT_GE(snapshot.QuantileMillis(1.0), snapshot.QuantileMillis(0.5));
    EXPECT_LE(snapshot.QuantileMillis(1.0),
              static_cast<double>(snapshot.max_nanos()) / kMs + 1.0);
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
}

// -------------------------------------------------------- merge and delta --

TEST(HistogramMergeTest, MergedQuantilesMatchSingleHistogram) {
  TtcHistogram a(100);
  TtcHistogram b(100);
  TtcHistogram whole(100);
  for (int i = 0; i < 600; ++i) {
    const int64_t nanos = (i % 80) * kMs + 250'000;
    a.Record(nanos);
    whole.Record(nanos);
  }
  for (int i = 0; i < 400; ++i) {
    const int64_t nanos = (i % 95) * kMs + 750'000;
    b.Record(nanos);
    whole.Record(nanos);
  }
  a.Merge(b);
  EXPECT_EQ(a.total_count(), whole.total_count());
  EXPECT_EQ(a.sum_nanos(), whole.sum_nanos());
  EXPECT_EQ(a.max_nanos(), whole.max_nanos());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.QuantileMillis(q), whole.QuantileMillis(q)) << "q=" << q;
  }
}

TEST(HistogramMergeTest, MergingEmptyIsIdentity) {
  TtcHistogram a(100);
  TtcHistogram empty(100);
  a.Record(5 * kMs);
  a.Record(7 * kMs);
  const double p50_before = a.QuantileMillis(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.total_count(), 2);
  EXPECT_DOUBLE_EQ(a.QuantileMillis(0.5), p50_before);

  // And merging into an empty histogram adopts the other side wholesale.
  TtcHistogram target(100);
  target.Merge(a);
  EXPECT_EQ(target.total_count(), 2);
  EXPECT_EQ(target.max_nanos(), a.max_nanos());
  EXPECT_DOUBLE_EQ(target.QuantileMillis(0.5), p50_before);
}

TEST(HistogramMergeTest, OverflowBucketsSurviveMerge) {
  TtcHistogram a(100);
  TtcHistogram b(100);
  // Values past the linear range land in geometric buckets: 100 ms linear
  // range, so 150 ms is in the first overflow bucket, 350 ms in the second.
  a.Record(150 * kMs);
  b.Record(350 * kMs);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 2);
  EXPECT_EQ(a.max_nanos(), 350 * kMs);
  // p100 clamps to the recorded max, not the open-ended bucket bound.
  EXPECT_DOUBLE_EQ(a.QuantileMillis(1.0), 350.0);
  EXPECT_GE(a.QuantileMillis(0.25), 100.0);  // first value is in overflow too
}

TEST(HistogramDeltaTest, DeltaIsolatesTheWindow) {
  TtcHistogram begin(100);
  for (int i = 0; i < 100; ++i) begin.Record(10 * kMs);
  TtcHistogram end = begin;
  for (int i = 0; i < 50; ++i) end.Record(40 * kMs);

  const TtcHistogram window = TtcHistogram::Delta(end, begin);
  EXPECT_EQ(window.total_count(), 50);
  // Every record in the window was 40 ms; the interpolated quantiles stay in
  // that bucket.
  EXPECT_GE(window.QuantileMillis(0.5), 40.0);
  EXPECT_LT(window.QuantileMillis(0.5), 41.0);
  // max carries over from `end` (cumulative), not the window.
  EXPECT_EQ(window.max_nanos(), end.max_nanos());
}

TEST(HistogramDeltaTest, EmptyWindowDeltaIsEmpty) {
  TtcHistogram begin(100);
  begin.Record(3 * kMs);
  const TtcHistogram window = TtcHistogram::Delta(begin, begin);
  EXPECT_EQ(window.total_count(), 0);
  EXPECT_DOUBLE_EQ(window.QuantileMillis(0.5), 0.0);
}

// ----------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, RendersPrometheusTextFormat) {
  MetricsRegistry registry;
  registry.AddCounter("sb7_test_ops_total", "Operations", [] { return 42.0; });
  registry.AddGauge("sb7_test_depth", "Queue depth", [] { return 7.5; });
  registry.AddProvider([](std::vector<telemetry::MetricPoint>& out) {
    out.push_back({"sb7_test_labeled", "op=\"T1\"", "Labeled point",
                   telemetry::MetricKind::kGauge, 1.0});
  });

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP sb7_test_ops_total Operations\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sb7_test_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("sb7_test_ops_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sb7_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("sb7_test_depth 7.5\n"), std::string::npos);
  EXPECT_NE(text.find("sb7_test_labeled{op=\"T1\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValueEscapesTheExpositionSet) {
  EXPECT_EQ(MetricsRegistry::LabelValue("plain"), "\"plain\"");
  EXPECT_EQ(MetricsRegistry::LabelValue("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(MetricsRegistry::LabelValue("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(MetricsRegistry::LabelValue("a\nb"), "\"a\\nb\"");
}

// ------------------------------------------------------------- series ring --

TEST(SeriesRingTest, DropsOldestWhenFullAndCountsDrops) {
  SeriesRing ring(3);
  for (int i = 0; i < 5; ++i) {
    Sample sample;
    sample.seq = i;
    ring.Push(sample);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2);
  const std::vector<Sample> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].seq, 2);  // oldest first, oldest two dropped
  EXPECT_EQ(kept[1].seq, 3);
  EXPECT_EQ(kept[2].seq, 4);
}

// ------------------------------------------------------ sampler determinism --

// Builds a facade in manual mode: no sampler thread, no hardware counters,
// time advanced only by the test.
std::unique_ptr<Telemetry> ManualTelemetry(ManualClock* clock) {
  TelemetryOptions options;
  options.background = false;
  options.hw_counters = false;
  options.clock = clock;
  options.interval_seconds = 1.0;
  return std::make_unique<Telemetry>(options);
}

TEST(TelemetrySamplerTest, ManualClockMakesSamplesDeterministic) {
  ManualClock clock;
  auto telemetry = ManualTelemetry(&clock);
  RunInfo info;
  info.backend = "tl2";
  info.scenario = "-";
  info.scale = "tiny";
  info.threads = 2;
  info.interval_s = 1.0;
  telemetry->SetRunInfo(info);
  telemetry->SetPhase(0, "measure");
  telemetry->Start();

  for (int i = 0; i < 10; ++i) telemetry->RecordOp(true, 2 * kMs);
  telemetry->RecordOp(false, 0);
  clock.AdvanceSeconds(1.0);
  telemetry->SampleNow();

  for (int i = 0; i < 30; ++i) telemetry->RecordOp(true, 4 * kMs);
  clock.AdvanceSeconds(2.0);
  telemetry->SampleNow();

  const std::vector<Sample> series = telemetry->SeriesSnapshot();
  ASSERT_EQ(series.size(), 2u);

  EXPECT_EQ(series[0].seq, 0);
  EXPECT_DOUBLE_EQ(series[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(series[0].interval_s, 1.0);
  EXPECT_EQ(series[0].completed, 10);
  EXPECT_EQ(series[0].failed, 1);
  EXPECT_DOUBLE_EQ(series[0].ops_per_s, 10.0);
  EXPECT_EQ(series[0].lat_count, 10);
  EXPECT_EQ(series[0].phase_index, 0);
  EXPECT_EQ(series[0].phase, "measure");
  // All window latencies were 2 ms: the interpolated p50 stays in-bucket.
  EXPECT_GE(series[0].p50_ms, 2.0);
  EXPECT_LT(series[0].p50_ms, 3.0);

  EXPECT_EQ(series[1].seq, 1);
  EXPECT_DOUBLE_EQ(series[1].t_s, 3.0);
  EXPECT_DOUBLE_EQ(series[1].interval_s, 2.0);
  EXPECT_EQ(series[1].completed, 40);  // cumulative
  EXPECT_DOUBLE_EQ(series[1].ops_per_s, 15.0);  // 30 ops over 2 s
  EXPECT_EQ(series[1].lat_count, 30);  // window-only count
  EXPECT_GE(series[1].p50_ms, 4.0);

  // Two identical runs produce identical series — the determinism the
  // ManualClock seam exists for.
  ManualClock clock2;
  auto replay = ManualTelemetry(&clock2);
  replay->SetRunInfo(info);
  replay->SetPhase(0, "measure");
  replay->Start();
  for (int i = 0; i < 10; ++i) replay->RecordOp(true, 2 * kMs);
  replay->RecordOp(false, 0);
  clock2.AdvanceSeconds(1.0);
  replay->SampleNow();
  for (int i = 0; i < 30; ++i) replay->RecordOp(true, 4 * kMs);
  clock2.AdvanceSeconds(2.0);
  replay->SampleNow();
  const std::vector<Sample> series2 = replay->SeriesSnapshot();
  ASSERT_EQ(series2.size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(telemetry::SampleToJson(series2[i]), telemetry::SampleToJson(series[i]));
  }
}

// ------------------------------------------------------------------- JSONL --

TEST(TelemetryJsonlTest, WriteValidateRoundTrip) {
  ManualClock clock;
  auto telemetry = ManualTelemetry(&clock);
  RunInfo info;
  info.backend = "coarse";
  info.scenario = "-";
  info.scale = "tiny";
  info.threads = 1;
  info.interval_s = 0.5;
  telemetry->SetRunInfo(info);
  telemetry->Start();
  for (int tick = 0; tick < 4; ++tick) {
    for (int i = 0; i < 5; ++i) telemetry->RecordOp(true, (tick + 1) * kMs);
    clock.AdvanceSeconds(0.5);
    telemetry->SampleNow();
  }

  std::ostringstream out;
  telemetry->WriteJsonl(out);
  const std::string jsonl = out.str();

  // Header, four samples, footer.
  std::istringstream in(jsonl);
  EXPECT_EQ(telemetry::ValidateTelemetryJsonl(in), "");

  // Every line is also standalone-parseable JSON with the expected kinds.
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<std::string> kinds;
  while (std::getline(lines, line)) {
    const perf::JsonParseResult parsed = perf::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error << " in: " << line;
    const perf::JsonValue* kind = parsed.value.Find("kind");
    if (kind != nullptr) {
      kinds.push_back(kind->AsString());
    } else {
      // The first line carries schema/tool instead of a kind-only marker.
      EXPECT_NE(parsed.value.Find("schema"), nullptr);
      kinds.push_back("header");
    }
  }
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds.front(), "header");
  EXPECT_EQ(kinds.back(), "footer");
  for (size_t i = 1; i + 1 < kinds.size(); ++i) EXPECT_EQ(kinds[i], "sample");
}

TEST(TelemetryJsonlTest, ValidatorRejectsCorruptedStreams) {
  ManualClock clock;
  auto telemetry = ManualTelemetry(&clock);
  RunInfo info;
  info.backend = "coarse";
  info.scale = "tiny";
  info.threads = 1;
  telemetry->SetRunInfo(info);
  telemetry->Start();
  for (int tick = 0; tick < 2; ++tick) {
    telemetry->RecordOp(true, kMs);
    clock.AdvanceSeconds(1.0);
    telemetry->SampleNow();
  }
  std::ostringstream out;
  telemetry->WriteJsonl(out);
  const std::string good = out.str();

  {  // empty stream
    std::istringstream in("");
    EXPECT_NE(telemetry::ValidateTelemetryJsonl(in), "");
  }
  {  // missing header
    const std::string body = good.substr(good.find('\n') + 1);
    std::istringstream in(body);
    EXPECT_NE(telemetry::ValidateTelemetryJsonl(in), "");
  }
  {  // truncated: footer gone
    const std::string truncated = good.substr(0, good.rfind('\n', good.size() - 2) + 1);
    std::istringstream in(truncated);
    EXPECT_NE(telemetry::ValidateTelemetryJsonl(in), "");
  }
  {  // malformed JSON mid-stream
    std::string broken = good;
    const size_t pos = broken.find("\"kind\": \"sample\"");
    ASSERT_NE(pos, std::string::npos);
    broken[pos] = '!';
    std::istringstream in(broken);
    EXPECT_NE(telemetry::ValidateTelemetryJsonl(in), "");
  }
  {  // future schema version
    std::string future = good;
    const size_t pos = future.find("\"schema\": 1");
    ASSERT_NE(pos, std::string::npos);
    future.replace(pos, std::strlen("\"schema\": 1"), "\"schema\": 99");
    std::istringstream in(future);
    EXPECT_NE(telemetry::ValidateTelemetryJsonl(in), "");
  }
}

// -------------------------------------------------------------- HTTP server --

// One blocking HTTP/1.0 GET against localhost; returns the raw response.
std::string HttpGet(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(MetricsEndpointTest, ServesMetricsSeriesAnd404) {
  ManualClock clock;
  TelemetryOptions options;
  options.background = false;
  options.hw_counters = false;
  options.clock = &clock;
  options.metrics_port = 0;  // ephemeral
  Telemetry telemetry(options);
  RunInfo info;
  info.backend = "tl2";
  info.scenario = "-";
  info.scale = "tiny";
  info.threads = 2;
  telemetry.SetRunInfo(info);
  std::string error;
  ASSERT_TRUE(telemetry.StartServer(&error)) << error;
  ASSERT_TRUE(telemetry.server_running());
  const int port = telemetry.server_port();
  ASSERT_GT(port, 0);

  telemetry.Start();
  for (int i = 0; i < 25; ++i) telemetry.RecordOp(true, 3 * kMs);
  clock.AdvanceSeconds(1.0);
  telemetry.SampleNow();

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("sb7_ops_completed_total 25"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE sb7_ops_completed_total counter"), std::string::npos);
  EXPECT_NE(metrics.find("backend=\"tl2\""), std::string::npos);

  const std::string series_response = HttpGet(port, "/series");
  EXPECT_NE(series_response.find("200 OK"), std::string::npos);
  const size_t body_at = series_response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const perf::JsonParseResult parsed = perf::ParseJson(series_response.substr(body_at + 4));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const perf::JsonValue* samples = parsed.value.Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->Items().size(), 1u);
  EXPECT_DOUBLE_EQ(samples->Items()[0].Find("completed")->AsNumber(), 25.0);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  telemetry.Stop();
  EXPECT_FALSE(telemetry.server_running());
}

// Connects a raw blocking socket to localhost:`port`; -1 on failure.
int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

// One blocking HTTP/1.0 request with an arbitrary method; raw response.
std::string HttpRequest(int port, const std::string& method, const std::string& path) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  (void)!write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// Parses the Content-Length header out of a raw response; -1 when absent.
long ContentLength(const std::string& response) {
  const std::string key = "Content-Length: ";
  const size_t at = response.find(key);
  if (at == std::string::npos) return -1;
  return std::stol(response.substr(at + key.size()));
}

// Builds a started telemetry facade with one recorded sample, serving on an
// ephemeral port — the shared fixture for the endpoint-robustness tests.
struct ServingTelemetry {
  ManualClock clock;
  std::unique_ptr<Telemetry> telemetry;
  int port = -1;

  ServingTelemetry() {
    TelemetryOptions options;
    options.background = false;
    options.hw_counters = false;
    options.clock = &clock;
    options.metrics_port = 0;
    telemetry = std::make_unique<Telemetry>(options);
    RunInfo info;
    info.backend = "tl2";
    info.scale = "tiny";
    info.threads = 2;
    telemetry->SetRunInfo(info);
    std::string error;
    if (!telemetry->StartServer(&error)) return;
    port = telemetry->server_port();
    telemetry->Start();
    for (int i = 0; i < 10; ++i) telemetry->RecordOp(true, 2 * kMs);
    clock.AdvanceSeconds(1.0);
    telemetry->SampleNow();
  }
};

TEST(MetricsEndpointTest, HeadAdvertisesTheGetBodyLength) {
  ServingTelemetry serving;
  ASSERT_GT(serving.port, 0);

  for (const std::string path : {"/metrics", "/series"}) {
    const std::string get = HttpRequest(serving.port, "GET", path);
    const std::string head = HttpRequest(serving.port, "HEAD", path);
    ASSERT_NE(get.find("200 OK"), std::string::npos) << path;
    ASSERT_NE(head.find("200 OK"), std::string::npos) << path;

    const size_t body_at = get.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const long body_size = static_cast<long>(get.size() - body_at - 4);
    EXPECT_EQ(ContentLength(get), body_size) << path;

    // The regression: HEAD used to advertise the empty body it sent
    // (Content-Length: 0) instead of the length the GET body would have.
    EXPECT_EQ(ContentLength(head), body_size) << path;
    EXPECT_GT(ContentLength(head), 0) << path;
    // ... while sending no body bytes at all.
    const size_t head_body_at = head.find("\r\n\r\n");
    ASSERT_NE(head_body_at, std::string::npos);
    EXPECT_EQ(head.size(), head_body_at + 4) << path;
  }
  serving.telemetry->Stop();
}

TEST(MetricsEndpointTest, SurvivesAScraperDisconnectStorm) {
  ServingTelemetry serving;
  ASSERT_GT(serving.port, 0);

  // Each client sends a scrape and slams the connection shut without
  // reading: the server's response write hits a dead peer every time. With
  // a plain send() this raises SIGPIPE and kills the process (the original
  // bug); with MSG_NOSIGNAL it is just a failed write on a doomed socket.
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  for (int i = 0; i < 50; ++i) {
    const int fd = ConnectLoopback(serving.port);
    ASSERT_GE(fd, 0);
    (void)!write(fd, request.data(), request.size());
    struct linger hard_close = {1, 0};  // RST on close: the rudest disconnect
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
    close(fd);
  }

  // The endpoint (and the process) is still alive and serving.
  const std::string after = HttpGet(serving.port, "/metrics");
  EXPECT_NE(after.find("200 OK"), std::string::npos);
  EXPECT_NE(after.find("sb7_ops_completed_total"), std::string::npos);
  serving.telemetry->Stop();
}

TEST(MetricsEndpointTest, SlowClientDoesNotBlockConcurrentScrapes) {
  ServingTelemetry serving;
  ASSERT_GT(serving.port, 0);

  // A client that connects, dribbles half a request line and stalls. It
  // owns one handler thread for the I/O budget — the accept loop and other
  // scrapers must not wait behind it.
  const int slow = ConnectLoopback(serving.port);
  ASSERT_GE(slow, 0);
  const std::string partial = "GET /met";
  (void)!write(slow, partial.data(), partial.size());

  const auto start = std::chrono::steady_clock::now();
  const std::string metrics = HttpGet(serving.port, "/metrics");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  // Well under the 2 s per-connection I/O budget the stalled client eats.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1500);

  close(slow);
  serving.telemetry->Stop();
}

// ------------------------------------------------------- hardware counters --

TEST(HwCountersTest, DegradesGracefullyAndDeltaRespectsAvailability) {
  // Whether perf_event works here depends on the kernel/container; either
  // way construction and reads must not crash, and unavailability must come
  // with a human-readable detail.
  TelemetryOptions options;
  options.background = false;
  Telemetry telemetry(options);
  telemetry.StartHw();
  const HwSample now = telemetry.HwNow();
  if (!telemetry.hw_available()) {
    EXPECT_FALSE(now.available);
    EXPECT_FALSE(telemetry.hw_detail().empty());
  } else {
    EXPECT_TRUE(now.available);
  }

  HwSample begin;
  HwSample end;
  end.available = true;
  end.cycles = 100;
  // One side unavailable: the delta carries no information.
  EXPECT_FALSE(HwSample::Delta(end, begin).available);
  begin.available = true;
  begin.cycles = 40;
  const HwSample delta = HwSample::Delta(end, begin);
  EXPECT_TRUE(delta.available);
  EXPECT_EQ(delta.cycles, 60);
}

// ------------------------------------------------------------- end to end --

TEST(TelemetryEndToEndTest, DriverRunProducesAValidSeries) {
  BenchConfig config;
  config.strategy = "coarse";
  config.scale = "tiny";
  config.threads = 2;
  config.length_seconds = 0.4;
  config.seed = 77;
  config.telemetry = true;
  config.telemetry_interval = 0.05;
  config.telemetry_hw = false;
  BenchmarkRunner runner(config);
  const BenchResult result = runner.Run();
  EXPECT_GT(result.total_success, 0);

  ASSERT_NE(runner.telemetry(), nullptr);
  const std::vector<Sample> series = runner.telemetry()->SeriesSnapshot();
  ASSERT_GE(series.size(), 2u);  // Stop() takes a final sample
  int64_t last_seq = -1;
  double last_t = -1.0;
  for (const Sample& sample : series) {
    EXPECT_EQ(sample.seq, last_seq + 1);
    EXPECT_GT(sample.t_s, last_t);
    last_seq = sample.seq;
    last_t = sample.t_s;
  }
  EXPECT_EQ(series.back().completed, runner.telemetry()->CompletedOps());
  EXPECT_EQ(series.back().completed, result.total_success);

  std::ostringstream out;
  runner.telemetry()->WriteJsonl(out);
  std::istringstream in(out.str());
  EXPECT_EQ(telemetry::ValidateTelemetryJsonl(in), "");
}

}  // namespace
}  // namespace sb7
